//! Personalization at both layers (Section 3.2, last paragraphs).
//!
//! The layered method personalizes "in an elegant way": swap the teleport
//! vector at the site layer (a user who prefers the physics department) or
//! at the document layer within a site (a user who prefers a site's news
//! pages), without touching any other peer's computation.
//!
//! Run with: `cargo run --release --example personalized_ranking`

use lmm::core::personalize::PersonalizationBuilder;
use lmm::core::siterank::{layered_doc_rank, LayeredRankConfig};
use lmm::graph::generator::CampusWebConfig;
use lmm::graph::SiteId;
use lmm::rank::metrics;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = CampusWebConfig::small();
    cfg.spam_farms.clear();
    let graph = cfg.generate()?;
    let favorite_site = 10usize; // physics.campus.edu in the naming scheme
    println!(
        "favorite site: {} ({} pages)\n",
        graph.site_name(SiteId(favorite_site)),
        graph.site_size(SiteId(favorite_site))
    );

    // Neutral ranking.
    let neutral = layered_doc_rank(&graph, &LayeredRankConfig::default())?;

    // Site-layer personalization: 60% of teleport mass on the favorite site.
    let site_vector = PersonalizationBuilder::new(graph.n_sites())
        .baseline(0.4)
        .boost(favorite_site, 1.0)
        .build()?;
    let site_cfg = LayeredRankConfig {
        site_personalization: Some(site_vector),
        ..LayeredRankConfig::default()
    };
    let site_personalized = layered_doc_rank(&graph, &site_cfg)?;

    // Document-layer personalization inside the favorite site: prefer its
    // last ten pages (say, the news section).
    let size = graph.site_size(SiteId(favorite_site));
    let mut builder = PersonalizationBuilder::new(size).baseline(0.3);
    for local in size - 10..size {
        builder = builder.boost(local, 1.0);
    }
    let mut local_cfg = LayeredRankConfig::default();
    local_cfg
        .local_personalization
        .insert(favorite_site, builder.build()?);
    let local_personalized = layered_doc_rank(&graph, &local_cfg)?;

    println!(
        "{:<34} {:>12} {:>12} {:>12}",
        "metric", "neutral", "site-pers.", "doc-pers."
    );
    println!(
        "{:<34} {:>12.4} {:>12.4} {:>12.4}",
        "SiteRank(favorite)",
        neutral.site_rank.score(favorite_site),
        site_personalized.site_rank.score(favorite_site),
        local_personalized.site_rank.score(favorite_site),
    );
    let mass = |r: &lmm::core::siterank::LayeredDocRank| -> f64 {
        graph
            .docs_of_site(SiteId(favorite_site))
            .iter()
            .map(|d| r.score(*d))
            .sum()
    };
    println!(
        "{:<34} {:>12.4} {:>12.4} {:>12.4}",
        "rank mass of favorite site",
        mass(&neutral),
        mass(&site_personalized),
        mass(&local_personalized),
    );
    println!(
        "{:<34} {:>12} {:>12.3} {:>12.3}",
        "Kendall tau vs neutral",
        "1.000",
        metrics::kendall_tau(&neutral.global, &site_personalized.global),
        metrics::kendall_tau(&neutral.global, &local_personalized.global),
    );

    println!("\nTop 5 under site-layer personalization:");
    for doc in site_personalized.top_k(5) {
        println!(
            "  {:.5}  {}",
            site_personalized.score(doc),
            graph.url(doc)
        );
    }
    Ok(())
}
