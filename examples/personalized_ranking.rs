//! Personalization at both layers (Section 3.2, last paragraphs), through
//! the unified `RankEngine`.
//!
//! The layered method personalizes "in an elegant way": swap the teleport
//! vector at the site layer (a user who prefers the physics department) or
//! at the document layer within a site (a user who prefers a site's news
//! pages), without touching any other peer's computation. Both vectors are
//! builder options on the engine.
//!
//! Run with: `cargo run --release --example personalized_ranking`

use lmm::core::personalize::PersonalizationBuilder;
use lmm::prelude::*;
use lmm::rank::metrics;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = CampusWebConfig::small();
    cfg.spam_farms.clear();
    let graph = cfg.generate()?;
    let favorite_site = SiteId(10); // physics.campus.edu in the naming scheme
    println!(
        "favorite site: {} ({} pages)\n",
        graph.site_name(favorite_site),
        graph.site_size(favorite_site)
    );

    let layered = BackendSpec::Layered {
        site_layer: SiteLayerMethod::PageRank,
    };

    // Neutral ranking.
    let mut neutral = RankEngine::builder().backend(layered).build()?;
    neutral.rank(&graph)?;

    // Site-layer personalization: 60% of teleport mass on the favorite site.
    let site_vector = PersonalizationBuilder::new(graph.n_sites())
        .baseline(0.4)
        .boost(favorite_site.index(), 1.0)
        .build()?;
    let mut site_personalized = RankEngine::builder()
        .backend(layered)
        .site_personalization(site_vector)
        .build()?;
    site_personalized.rank(&graph)?;

    // Document-layer personalization inside the favorite site: prefer its
    // last ten pages (say, the news section).
    let size = graph.site_size(favorite_site);
    let mut builder = PersonalizationBuilder::new(size).baseline(0.3);
    for local in size - 10..size {
        builder = builder.boost(local, 1.0);
    }
    let mut local_personalized = RankEngine::builder()
        .backend(layered)
        .local_personalization(favorite_site, builder.build()?)
        .build()?;
    local_personalized.rank(&graph)?;

    println!(
        "{:<34} {:>12} {:>12} {:>12}",
        "metric", "neutral", "site-pers.", "doc-pers."
    );
    let site_score = |e: &RankEngine| -> Result<f64, EngineError> {
        Ok(e.site_score(favorite_site)?
            .expect("layered has a site layer"))
    };
    println!(
        "{:<34} {:>12.4} {:>12.4} {:>12.4}",
        "SiteRank(favorite)",
        site_score(&neutral)?,
        site_score(&site_personalized)?,
        site_score(&local_personalized)?,
    );
    let mass = |e: &RankEngine| -> Result<f64, EngineError> {
        graph
            .docs_of_site(favorite_site)
            .iter()
            .map(|d| e.score(*d))
            .sum()
    };
    println!(
        "{:<34} {:>12.4} {:>12.4} {:>12.4}",
        "rank mass of favorite site",
        mass(&neutral)?,
        mass(&site_personalized)?,
        mass(&local_personalized)?,
    );
    println!(
        "{:<34} {:>12} {:>12.3} {:>12.3}",
        "Kendall tau vs neutral",
        "1.000",
        metrics::kendall_tau(
            &neutral.outcome()?.ranking,
            &site_personalized.outcome()?.ranking
        ),
        metrics::kendall_tau(
            &neutral.outcome()?.ranking,
            &local_personalized.outcome()?.ranking
        ),
    );

    println!("\nTop 5 under site-layer personalization (served from the cache):");
    for (doc, score) in site_personalized.top_k(5)? {
        println!("  {score:.5}  {}", graph.url(doc));
    }
    println!("\nTop 3 of the favorite site under document-layer personalization:");
    for (doc, score) in local_personalized.top_k_for_site(favorite_site, 3)? {
        println!("  {score:.6}  {}", graph.url(doc));
    }
    Ok(())
}
