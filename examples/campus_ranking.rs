//! Campus-web ranking: a miniature of the paper's Section 3.3 evaluation,
//! through the unified `RankEngine`.
//!
//! Generates a synthetic campus web (the stand-in for the EPFL crawl),
//! ranks it with the flat-PageRank backend (Figure 3's method) and the
//! layered backend (Figure 4's method), and prints both top-10 lists side
//! by side — watch the `Webdriver?` and `~mirror` spam URLs dominate the
//! flat list and vanish from the layered one.
//!
//! Run with: `cargo run --release --example campus_ranking`

use lmm::graph::stats::summarize;
use lmm::prelude::*;
use lmm::rank::metrics;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = CampusWebConfig::small();
    let graph = cfg.generate()?;
    println!("Synthetic campus web:\n{}\n", summarize(&graph));

    let mut flat = RankEngine::builder()
        .backend(BackendSpec::FlatPageRank)
        .damping(0.85)
        .tolerance(1e-10)
        .build()?;
    flat.rank(&graph)?;

    let mut layered = RankEngine::builder()
        .backend(BackendSpec::Layered {
            site_layer: SiteLayerMethod::PageRank,
        })
        .damping(0.85)
        .tolerance(1e-10)
        .build()?;
    layered.rank(&graph)?;

    let spam = graph.spam_labels();
    let k = 10;
    for (title, engine) in [
        ("flat PageRank (the paper's Figure 3 analogue)", &flat),
        (
            "the Layered Method (the paper's Figure 4 analogue)",
            &layered,
        ),
    ] {
        println!("--- Top {k} by {title} ---");
        for (doc, score) in engine.top_k(k)? {
            let marker = if spam[doc.index()] { "SPAM" } else { "    " };
            println!("  {marker}  {score:.6}  {}", graph.url(doc));
        }
        println!();
    }

    let flat_outcome = flat.outcome()?;
    let layered_outcome = layered.outcome()?;
    println!(
        "spam share in top-15:  PageRank {:.0}%   Layered {:.0}%",
        100.0 * metrics::labeled_share_at_k(&flat_outcome.ranking, &spam, 15),
        100.0 * metrics::labeled_share_at_k(&layered_outcome.ranking, &spam, 15),
    );
    let cmp = layered.compare(flat_outcome, 15)?;
    println!("ranking agreement: {cmp}");
    Ok(())
}
