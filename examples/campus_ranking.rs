//! Campus-web ranking: a miniature of the paper's Section 3.3 evaluation.
//!
//! Generates a synthetic campus web (the stand-in for the EPFL crawl),
//! ranks it with flat PageRank (Figure 3's method) and with the layered
//! method (Figure 4's method), and prints both top-10 lists side by side —
//! watch the `Webdriver?` and `~mirror` spam URLs dominate the flat list
//! and vanish from the layered one.
//!
//! Run with: `cargo run --release --example campus_ranking`

use lmm::core::siterank::{flat_pagerank, layered_doc_rank, LayeredRankConfig};
use lmm::graph::generator::CampusWebConfig;
use lmm::graph::stats::summarize;
use lmm::graph::DocId;
use lmm::linalg::PowerOptions;
use lmm::rank::metrics;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = CampusWebConfig::small();
    let graph = cfg.generate()?;
    println!("Synthetic campus web:\n{}\n", summarize(&graph));

    let flat = flat_pagerank(&graph, 0.85, &PowerOptions::with_tol(1e-10))?;
    let layered = layered_doc_rank(&graph, &LayeredRankConfig::default())?;

    let k = 10;
    println!("--- Top {k} by flat PageRank (the paper's Figure 3 analogue) ---");
    for doc in flat.ranking.top_k(k) {
        let d = DocId(doc);
        let marker = if graph.spam_labels()[doc] { "SPAM" } else { "    " };
        println!("  {marker}  {:.6}  {}", flat.ranking.score(doc), graph.url(d));
    }

    println!("\n--- Top {k} by the Layered Method (the paper's Figure 4 analogue) ---");
    for doc in layered.global.top_k(k) {
        let d = DocId(doc);
        let marker = if graph.spam_labels()[doc] { "SPAM" } else { "    " };
        println!("  {marker}  {:.6}  {}", layered.global.score(doc), graph.url(d));
    }

    let spam = graph.spam_labels();
    println!(
        "\nspam share in top-15:  PageRank {:.0}%   Layered {:.0}%",
        100.0 * metrics::labeled_share_at_k(&flat.ranking, &spam, 15),
        100.0 * metrics::labeled_share_at_k(&layered.global, &spam, 15),
    );
    println!(
        "Kendall tau between the two rankings: {:.3}",
        metrics::kendall_tau(&flat.ranking, &layered.global)
    );
    Ok(())
}
