//! Quickstart: the four ranking approaches through the unified
//! `RankEngine`, plus the paper's Section 2.3 worked example.
//!
//! Every approach is one pluggable backend behind one builder; the engine
//! caches the ranking and serves queries without recomputation. The
//! Partition Theorem (Approach 2 ≡ Approach 4) is checked twice: through
//! the engine on a campus web, and on the paper's 12-state model.
//!
//! Run with: `cargo run --example quickstart`

use lmm::core::approaches::{LmmParams, RankApproach};
use lmm::core::{verify_partition_theorem, worked_example};
use lmm::linalg::vec_ops;
use lmm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: the unified engine on a synthetic campus web. ---
    let mut cfg = CampusWebConfig::small();
    cfg.total_docs = 600;
    cfg.n_sites = 12;
    cfg.spam_farms.clear();
    let graph = cfg.generate()?;
    println!(
        "campus web: {} docs, {} sites, {} links\n",
        graph.n_docs(),
        graph.n_sites(),
        graph.n_links()
    );

    println!(
        "{:<26} {:>10} {:>12} {:>10}",
        "backend", "site iters", "residual", "top doc"
    );
    let mut outcomes: Vec<RankOutcome> = Vec::new();
    for approach in RankApproach::ALL {
        let mut engine = RankEngine::builder()
            .approach(approach)
            .damping(0.85)
            .tolerance(1e-12)
            .build()?;
        engine.rank(&graph)?;
        let (top_doc, _) = engine.top_k(1)?[0];
        let outcome = engine.outcome()?.clone();
        println!(
            "{:<26} {:>10} {:>12.2e} {:>10}",
            outcome.backend,
            outcome.telemetry.site_iterations,
            outcome.telemetry.residual,
            top_doc.index(),
        );
        outcomes.push(outcome);
    }

    // Partition Theorem through the engine: Approach 2 (index 1) must equal
    // Approach 4 (index 3).
    let cmp = outcomes[1].compare(&outcomes[3], 10)?;
    println!("\nPartition Theorem through the engine: {cmp}");
    assert!(cmp.linf < 1e-9, "Theorem 2 violated?!");

    // --- Part 2: the paper's 12-state worked example (Figures 1-2). ---
    let model = worked_example::paper_model()?;
    let alpha = worked_example::PAPER_ALPHA;
    let a4 = model.layered_method(alpha)?;
    println!(
        "\nworked example: {} phases, {} states; top three states (paper: (2,3), (3,1), (2,2)):",
        model.n_phases(),
        model.total_states()
    );
    for (rank, state) in a4.order_states().iter().take(3).enumerate() {
        println!(
            "  #{} {}  score {:.4}",
            rank + 1,
            state,
            a4.score_state(*state)
        );
    }
    let check = verify_partition_theorem(&model, &LmmParams::with_factor(alpha))?;
    println!("Partition Theorem on the worked example: {check}");
    assert!(check.linf < 1e-9);

    let paper_diff = vec_ops::linf_diff(a4.scores(), &worked_example::PAPER_PI_W_TILDE);
    println!("max |ours - paper printed| = {paper_diff:.2e} (printing tolerance 5e-5)");
    Ok(())
}
