//! Quickstart: the paper's worked example (Section 2.3 / Figures 1-2).
//!
//! Builds the 3-phase, 12-sub-state Layered Markov Model, runs all four
//! ranking approaches, prints a Figure-2-style table, and checks the
//! Partition Theorem numerically.
//!
//! Run with: `cargo run --example quickstart`

use lmm::core::approaches::LmmParams;
use lmm::core::{verify_partition_theorem, worked_example};
use lmm::linalg::vec_ops;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = worked_example::paper_model()?;
    println!(
        "Layered Markov Model: {} phases, {} global states\n",
        model.n_phases(),
        model.total_states()
    );

    let alpha = worked_example::PAPER_ALPHA;
    let a1 = model.pagerank_of_global(alpha)?;
    let a2 = model.stationary_of_global(alpha)?;
    let a3 = model.layered_with_pagerank_site(alpha)?;
    let a4 = model.layered_method(alpha)?;

    // Figure 2, extended with all four approaches.
    println!("state    pi_W(A1)  order   pi~_W(A2)  order   A3        A4        paper pi~_W");
    let a2_pos = a2.ranking().positions();
    let a1_pos = a1.ranking().positions();
    for idx in 0..model.total_states() {
        let state = model.state_of(idx);
        println!(
            "{:>6}   {:.4}    {:>3}     {:.4}     {:>3}    {:.4}    {:.4}    {:.4}",
            state.to_string(),
            a1.scores()[idx],
            a1_pos[idx] + 1,
            a2.scores()[idx],
            a2_pos[idx] + 1,
            a3.scores()[idx],
            a4.scores()[idx],
            worked_example::PAPER_PI_W_TILDE[idx],
        );
    }

    println!("\nTop three states (paper: (2,3), (3,1), (2,2)):");
    for (rank, state) in a4.order_states().iter().take(3).enumerate() {
        println!("  #{} {}  score {:.4}", rank + 1, state, a4.score_state(*state));
    }

    let check = verify_partition_theorem(&model, &LmmParams::with_factor(alpha))?;
    println!("\nPartition Theorem (Approach 2 vs Approach 4): {check}");
    assert!(check.linf < 1e-9, "Theorem 2 violated?!");

    let paper_diff = vec_ops::linf_diff(a4.scores(), &worked_example::PAPER_PI_W_TILDE);
    println!("max |ours - paper printed| = {paper_diff:.2e} (printing tolerance 5e-5)");

    println!("\nAll four approaches agree with the paper's Figure 2.");
    Ok(())
}
