//! Distributed deployment comparison through the unified `RankEngine`:
//! flat P2P, super-peers, hybrid, and the centralized baseline, with and
//! without message loss — traffic read from engine telemetry.
//!
//! Run with: `cargo run --release --example p2p_simulation`

use std::sync::Arc;

use lmm::linalg::vec_ops;
use lmm::p2p::FaultConfig;
use lmm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = CampusWebConfig::small();
    cfg.total_docs = 1_200;
    cfg.n_sites = 24;
    let graph = cfg.generate()?;
    println!(
        "graph: {} docs, {} sites, {} links\n",
        graph.n_docs(),
        graph.n_sites(),
        graph.n_links()
    );

    let architectures = [
        Architecture::Flat,
        Architecture::SuperPeer { n_groups: 6 },
        Architecture::Hybrid,
        Architecture::Centralized,
    ];

    println!(
        "{:<38} {:>10} {:>14} {:>8} {:>12}",
        "backend", "messages", "bytes", "rounds", "wall"
    );
    let sink = Arc::new(MemorySink::new());
    let mut flat_outcome: Option<RankOutcome> = None;
    for architecture in architectures {
        let mut engine = RankEngine::builder()
            .backend(BackendSpec::Distributed { architecture })
            .damping(0.85)
            .tolerance(1e-10)
            .telemetry(sink.clone())
            .build()?;
        let outcome = engine.rank(&graph)?.clone();
        let t = &outcome.telemetry;
        println!(
            "{:<38} {:>10} {:>14} {:>8} {:>12.3?}",
            outcome.backend, t.messages, t.bytes, t.site_iterations, t.wall
        );
        match architecture {
            Architecture::Flat => flat_outcome = Some(outcome),
            Architecture::SuperPeer { .. } | Architecture::Hybrid => {
                let reference = flat_outcome.as_ref().expect("flat ran first");
                let cmp = outcome.compare(reference, 15)?;
                assert!(cmp.l1 < 1e-6, "layered architectures must agree: {cmp}");
            }
            Architecture::Centralized => {} // different semantics (flat PageRank)
        }
    }
    println!("\n{} runs recorded by the telemetry sink", sink.len());

    // Failure injection: same answer, more traffic.
    println!("\nwith 20% message loss (flat architecture):");
    let mut lossy_engine = RankEngine::builder()
        .backend(BackendSpec::Distributed {
            architecture: Architecture::Flat,
        })
        .damping(0.85)
        .tolerance(1e-10)
        .fault(FaultConfig {
            drop_prob: 0.2,
            seed: 1,
        })
        .build()?;
    let lossy = lossy_engine.rank(&graph)?;
    let clean = flat_outcome.as_ref().expect("flat ran first");
    println!(
        "  result drift vs clean run: {:.2e}",
        vec_ops::l1_diff(lossy.ranking.scores(), clean.ranking.scores())
    );
    println!(
        "  traffic: {} msgs ({} retransmissions) vs {} clean",
        lossy.telemetry.messages, lossy.telemetry.retransmissions, clean.telemetry.messages
    );
    Ok(())
}
