//! Distributed deployment comparison: flat P2P, super-peers, hybrid, and
//! the centralized baseline, with and without message loss.
//!
//! Run with: `cargo run --release --example p2p_simulation`

use lmm::graph::generator::CampusWebConfig;
use lmm::linalg::vec_ops;
use lmm::p2p::runner::{run_distributed, Architecture, DistributedConfig};
use lmm::p2p::FaultConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = CampusWebConfig::small();
    cfg.total_docs = 1_200;
    cfg.n_sites = 24;
    let graph = cfg.generate()?;
    println!(
        "graph: {} docs, {} sites, {} links\n",
        graph.n_docs(),
        graph.n_sites(),
        graph.n_links()
    );

    let architectures = [
        Architecture::Flat,
        Architecture::SuperPeer { n_groups: 6 },
        Architecture::Hybrid,
        Architecture::Centralized,
    ];

    println!(
        "{:<28} {:>10} {:>14} {:>8} {:>12}",
        "architecture", "messages", "bytes", "rounds", "wall"
    );
    let mut flat_scores: Option<Vec<f64>> = None;
    for arch in architectures {
        let outcome = run_distributed(
            &graph,
            &DistributedConfig::default().with_architecture(arch),
        )?;
        let total = outcome.stats.total();
        println!(
            "{:<28} {:>10} {:>14} {:>8} {:>12.3?}",
            arch.to_string(),
            total.messages,
            total.bytes,
            outcome.siterank_rounds,
            outcome.stats.total_wall()
        );
        match arch {
            Architecture::Flat => flat_scores = Some(outcome.global.scores().to_vec()),
            Architecture::SuperPeer { .. } | Architecture::Hybrid => {
                let diff = vec_ops::l1_diff(
                    flat_scores.as_deref().expect("flat ran first"),
                    outcome.global.scores(),
                );
                assert!(diff < 1e-6, "layered architectures must agree: {diff}");
            }
            Architecture::Centralized => {} // different semantics (flat PageRank)
        }
    }

    // Failure injection: same answer, more traffic.
    println!("\nwith 20% message loss (flat architecture):");
    let lossy_cfg = DistributedConfig {
        fault: Some(FaultConfig {
            drop_prob: 0.2,
            seed: 1,
        }),
        ..DistributedConfig::default()
    };
    let lossy = run_distributed(&graph, &lossy_cfg)?;
    let clean = run_distributed(&graph, &DistributedConfig::default())?;
    println!(
        "  result drift vs clean run: {:.2e}",
        vec_ops::l1_diff(lossy.global.scores(), clean.global.scores())
    );
    println!(
        "  traffic: {} msgs ({} retransmissions) vs {} clean",
        lossy.stats.total().messages,
        lossy.stats.total().retransmissions,
        clean.stats.total().messages
    );
    println!("\nPer-phase breakdown (flat):\n{}", clean.stats);
    Ok(())
}
