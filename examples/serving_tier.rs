//! The sharded serving tier end to end: rank a campus web, shard it by
//! site, serve epoch-consistent queries from worker threads, then mutate
//! the graph live and hot-swap the new snapshot — watching which shards
//! rebuild and which merely re-pin.
//!
//! Run with: `cargo run --release --example serving_tier`

use lmm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = CampusWebConfig::small();
    cfg.spam_farms.clear();
    let graph = cfg.generate()?;
    println!(
        "graph: {} docs, {} sites, {} links",
        graph.n_docs(),
        graph.n_sites(),
        graph.n_links()
    );

    // The incremental backend maintains state so deltas re-rank locally.
    let mut engine = RankEngine::builder()
        .backend(BackendSpec::Incremental)
        .damping(0.85)
        .tolerance(1e-10)
        .build()?;
    engine.rank(&graph)?;

    // Shard by site (document-balanced contiguous site ranges) and start
    // one worker per shard.
    let map = ShardMap::balanced(&graph, 4)?;
    for shard in 0..map.n_shards() {
        let sites = map.sites_of_shard(shard);
        let docs: usize = sites.clone().map(|s| graph.site_size(SiteId(s))).sum();
        println!("shard {shard}: sites {sites:?} ({docs} docs)");
    }
    let server = ShardedServer::start(map, &engine.snapshot()?, ServeConfig::default())?;

    let (epoch, top) = server.top_k(5)?;
    println!("\nepoch {epoch} top-5 (bitwise equal to the engine cache):");
    for (doc, score) in &top {
        println!("  {score:.6}  {}", graph.url(*doc));
    }
    assert_eq!(top, engine.top_k(5)?);

    // Point lookups batch per shard; compares are epoch-consistent pairs.
    let (_, scores) = server.score_batch(&[DocId(0), DocId(7), DocId(42)])?;
    println!("batched scores: {scores:?}");
    let (_, order) = server.compare(DocId(0), DocId(42))?;
    println!("doc 0 vs doc 42: {order:?}");

    // Live mutation: rewire one site internally. Only that site's shard
    // rebuilds its heaps — the other shards re-pin their stores.
    let site = SiteId(3);
    let docs = graph.docs_of_site(site);
    let mut delta = GraphDelta::for_graph(&graph);
    delta.remove_link(docs[0], docs[1])?;
    delta.add_link(docs[1], docs[0])?;
    engine.apply_delta(&delta)?;
    let report = server.publish(&engine.snapshot()?)?;
    println!(
        "\npublished epoch {}: {} shard(s) rebuilt, {} re-pinned",
        report.epoch, report.shards_rebuilt, report.shards_repinned
    );
    assert_eq!(report.shards_rebuilt, 1);

    let (epoch, top) = server.top_k(5)?;
    assert_eq!(epoch, engine.epoch());
    assert_eq!(top, engine.top_k(5)?);
    println!("epoch {epoch} serves the mutated ranking, still bitwise-exact");
    Ok(())
}
