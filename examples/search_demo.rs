//! Combined query-based + link-based ranking — the paper's stated future
//! work ("work of combining query-based ranking and link-based ranking will
//! also be carried out", Section 4).
//!
//! A toy search engine over the synthetic campus web: a term index with
//! tf-idf-style query scores, blended with either flat PageRank or the
//! layered DocRank. The spam farm loads its pages with popular terms, so
//! content-only and content+PageRank retrieval surface farm pages, while
//! content+LMM keeps them out — the paper's Figure 3/4 contrast carried
//! into retrieval.
//!
//! Run with: `cargo run --release --example search_demo`

use std::collections::HashMap;

use lmm::graph::docgraph::PageKind;
use lmm::prelude::*;

/// Deterministically assigns topical terms to every page: a site-flavored
/// topic, generic campus terms, and spam-bait terms on farm pages.
fn synthesize_terms(graph: &DocGraph) -> Vec<Vec<&'static str>> {
    const TOPICS: [&str; 8] = [
        "research",
        "students",
        "physics",
        "library",
        "sports",
        "java",
        "news",
        "admissions",
    ];
    (0..graph.n_docs())
        .map(|d| {
            let doc = DocId(d);
            let site = graph.site_of(doc).index();
            let mut terms = vec!["campus", TOPICS[site % TOPICS.len()]];
            match graph.kind(doc) {
                PageKind::SiteRoot => terms.push("home"),
                // The farm stuffs crowd-pulling keywords — here the ones a
                // student would actually search for.
                PageKind::SpamFarm => terms.extend(["java", "research", "download"]),
                PageKind::Regular => {
                    if d % 3 == 0 {
                        terms.push("java");
                    }
                    if d % 5 == 0 {
                        terms.push("research");
                    }
                }
            }
            terms
        })
        .collect()
}

/// tf-idf-lite: score(query, d) = Σ_{t in query ∩ d} idf(t).
fn query_scores(graph: &DocGraph, terms: &[Vec<&'static str>], query: &[&str]) -> Vec<f64> {
    let n = graph.n_docs() as f64;
    let mut doc_freq: HashMap<&str, usize> = HashMap::new();
    for doc_terms in terms {
        for t in doc_terms {
            *doc_freq.entry(t).or_insert(0) += 1;
        }
    }
    (0..graph.n_docs())
        .map(|d| {
            query
                .iter()
                .filter(|q| terms[d].contains(q))
                .map(|q| (n / (1.0 + doc_freq.get(*q).copied().unwrap_or(0) as f64)).ln())
                .sum()
        })
        .collect()
}

/// Blends content and link scores: `score = content · link^beta` (a simple
/// rank-fusion; link scores are rescaled by their max so beta is unitless).
fn blend(content: &[f64], link: &[f64], beta: f64) -> Vec<f64> {
    let max_link = link.iter().cloned().fold(f64::MIN, f64::max).max(1e-300);
    content
        .iter()
        .zip(link)
        .map(|(&c, &l)| c * (l / max_link).powf(beta))
        .collect()
}

fn print_results(graph: &DocGraph, label: &str, scores: &[f64], k: usize) {
    println!("  {label}:");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("finite")
            .then(a.cmp(&b))
    });
    for &d in order.iter().take(k) {
        if scores[d] <= 0.0 {
            break;
        }
        let marker = if graph.spam_labels()[d] {
            "SPAM"
        } else {
            "    "
        };
        println!("    {marker} {:9.5}  {}", scores[d], graph.url(DocId(d)));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = CampusWebConfig::small().generate()?;
    let terms = synthesize_terms(&graph);
    let mut flat_engine = RankEngine::builder()
        .backend(BackendSpec::FlatPageRank)
        .damping(0.85)
        .tolerance(1e-10)
        .build()?;
    let pagerank = flat_engine.rank(&graph)?.clone();
    let mut layered_engine = RankEngine::builder()
        .backend(BackendSpec::Layered {
            site_layer: SiteLayerMethod::PageRank,
        })
        .damping(0.85)
        .tolerance(1e-10)
        .build()?;
    let layered = layered_engine.rank(&graph)?.clone();

    for query in [vec!["java", "research"], vec!["physics", "campus"]] {
        println!("\nquery: {query:?}");
        let content = query_scores(&graph, &terms, &query);
        print_results(&graph, "content only", &content, 5);
        print_results(
            &graph,
            "content + PageRank",
            &blend(&content, pagerank.ranking.scores(), 0.35),
            5,
        );
        print_results(
            &graph,
            "content + layered LMM",
            &blend(&content, layered.ranking.scores(), 0.35),
            5,
        );
    }

    // Quantify at k = 10 for the spam-bait query.
    let content = query_scores(&graph, &terms, &["java", "research"]);
    let spam = graph.spam_labels();
    let spam_at = |scores: &[f64]| {
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite"));
        order.iter().take(10).filter(|&&d| spam[d]).count()
    };
    println!(
        "\nspam results in top-10 for the bait query: content {} | +PageRank {} | +LMM {}",
        spam_at(&content),
        spam_at(&blend(&content, pagerank.ranking.scores(), 0.35)),
        spam_at(&blend(&content, layered.ranking.scores(), 0.35)),
    );
    Ok(())
}
