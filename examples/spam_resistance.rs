//! Link-spam resistance sweep: how farm size affects flat PageRank vs the
//! layered method (the mechanism behind the paper's Figures 3 and 4), both
//! through the unified `RankEngine`.
//!
//! Run with: `cargo run --release --example spam_resistance`

use lmm::prelude::*;
use lmm::rank::metrics;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("spam-farm size sweep (one farm; synthetic campus web; k = 15)\n");
    println!(
        "{:>10} {:>18} {:>18} {:>14}",
        "farm pages", "PageRank spam@15", "Layered spam@15", "tau(PR,LMM)"
    );

    for farm_pages in [0usize, 100, 200, 400, 800] {
        let mut cfg = CampusWebConfig::small();
        cfg.spam_farms.truncate(1);
        if farm_pages == 0 {
            cfg.spam_farms.clear();
        } else {
            cfg.spam_farms[0].n_pages = farm_pages;
            // Bigger farms afford more hub pages — each hub is another
            // top-k slot the farm can capture under flat PageRank.
            cfg.spam_farms[0].n_targets = (farm_pages / 80).clamp(2, 10);
        }
        let graph = cfg.generate()?;
        let spam = graph.spam_labels();

        let mut flat = RankEngine::builder()
            .backend(BackendSpec::FlatPageRank)
            .damping(0.85)
            .tolerance(1e-10)
            .build()?;
        let flat_outcome = flat.rank(&graph)?.clone();
        let mut layered = RankEngine::builder()
            .backend(BackendSpec::Layered {
                site_layer: SiteLayerMethod::PageRank,
            })
            .damping(0.85)
            .tolerance(1e-10)
            .build()?;
        let layered_outcome = layered.rank(&graph)?;

        println!(
            "{:>10} {:>17.0}% {:>17.0}% {:>14.3}",
            farm_pages,
            100.0 * metrics::labeled_share_at_k(&flat_outcome.ranking, &spam, 15),
            100.0 * metrics::labeled_share_at_k(&layered_outcome.ranking, &spam, 15),
            metrics::kendall_tau(&flat_outcome.ranking, &layered_outcome.ranking),
        );
    }

    println!(
        "\nThe farm hijacks flat PageRank as it grows, while the layered method \
         caps its host site's influence through the SiteRank factor."
    );
    Ok(())
}
