//! Property tests of the graph snapshot format: every generated graph
//! survives a write/read round trip bit-for-bit, and rankings computed on
//! the reloaded graph are identical.

use lmm::core::siterank::{layered_doc_rank, LayeredRankConfig};
use lmm::graph::generator::{random_web, CampusWebConfig};
use lmm::graph::io::{read_snapshot, write_snapshot};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_webs_roundtrip(
        n_docs in 20usize..300,
        n_sites in 2usize..15,
        links in 1usize..6,
        seed in any::<u64>(),
    ) {
        prop_assume!(n_sites <= n_docs);
        let graph = random_web(n_docs, n_sites, links, seed).expect("random web");
        let mut buf = Vec::new();
        write_snapshot(&graph, &mut buf).expect("write");
        let reloaded = read_snapshot(buf.as_slice()).expect("read");
        prop_assert_eq!(graph, reloaded);
    }

    #[test]
    fn campus_webs_roundtrip(seed in any::<u64>()) {
        let mut cfg = CampusWebConfig::small();
        cfg.total_docs = 300;
        cfg.n_sites = 8;
        cfg.spam_farms.truncate(1);
        cfg.spam_farms[0].host_site = 3;
        cfg.spam_farms[0].n_pages = 40;
        cfg.seed = seed;
        let graph = cfg.generate().expect("campus web");
        let mut buf = Vec::new();
        write_snapshot(&graph, &mut buf).expect("write");
        let reloaded = read_snapshot(buf.as_slice()).expect("read");
        prop_assert_eq!(&graph, &reloaded);
        // Semantics preserved: rankings agree exactly.
        let a = layered_doc_rank(&graph, &LayeredRankConfig::default()).expect("rank");
        let b = layered_doc_rank(&reloaded, &LayeredRankConfig::default()).expect("rank");
        prop_assert_eq!(a.global.scores(), b.global.scores());
    }
}

#[test]
fn snapshot_format_is_stable_text() {
    // A regression anchor for the documented format: the header lines are
    // exactly as specified in lmm_graph::io.
    let graph = random_web(10, 2, 2, 7).expect("random web");
    let mut buf = Vec::new();
    write_snapshot(&graph, &mut buf).expect("write");
    let text = String::from_utf8(buf).expect("utf8");
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("lmm-graph v1"));
    assert_eq!(lines.next(), Some("sites 2"));
}
