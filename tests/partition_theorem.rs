//! Property-based verification of the Partition Theorem (Theorem 2) and
//! the cross-layer consistency of the multi-layer extension.

use lmm::core::approaches::LmmParams;
use lmm::core::multilayer::{from_two_layer, TopLevelMethod};
use lmm::core::synth::random_model;
use lmm::core::verify_partition_theorem;
use lmm::linalg::vec_ops;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Approach 2 == Approach 4 on random primitive models, for any mixing
    /// factor — the paper's central theorem.
    #[test]
    fn partition_theorem_holds(
        n_phases in 2usize..7,
        max_sub in 2usize..8,
        alpha in 0.05f64..0.99,
        seed in any::<u64>(),
    ) {
        let model = random_model(n_phases, 1, max_sub, seed);
        let check = verify_partition_theorem(&model, &LmmParams::with_factor(alpha))
            .expect("positive random models are primitive");
        prop_assert!(check.linf < 1e-9, "{check}");
    }

    /// The ranking is always a probability distribution (Theorem 1).
    #[test]
    fn layered_ranking_is_distribution(
        n_phases in 1usize..6,
        max_sub in 1usize..9,
        seed in any::<u64>(),
    ) {
        let model = random_model(n_phases, 1, max_sub, seed);
        let ranking = model.layered_method(0.85).expect("layered method runs");
        let total: f64 = ranking.scores().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(ranking.scores().iter().all(|&s| s >= 0.0));
        prop_assert_eq!(ranking.len(), model.total_states());
    }

    /// The multi-layer generalization agrees with the two-layer Layered
    /// Method on depth-2 hierarchies.
    #[test]
    fn multilayer_consistent_with_two_layer(
        n_phases in 2usize..6,
        max_sub in 2usize..6,
        seed in any::<u64>(),
    ) {
        let model = random_model(n_phases, 1, max_sub, seed);
        let two_layer = model.layered_method(0.85).expect("layered");
        let hier = from_two_layer(&model);
        let multi = hier.rank(0.85, TopLevelMethod::Stationary).expect("hierarchy");
        prop_assert!(
            vec_ops::linf_diff(two_layer.scores(), multi.scores()) < 1e-9
        );
    }

    /// Approach 1 and Approach 3 also produce valid distributions over the
    /// same states (they differ from A2/A4 numerically but never break the
    /// distribution property).
    #[test]
    fn centralized_pagerank_is_distribution(
        n_phases in 2usize..5,
        max_sub in 2usize..6,
        seed in any::<u64>(),
    ) {
        let model = random_model(n_phases, 1, max_sub, seed);
        let a1 = model.pagerank_of_global(0.85).expect("A1");
        let a3 = model.layered_with_pagerank_site(0.85).expect("A3");
        for r in [a1, a3] {
            let total: f64 = r.scores().iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }
}
