//! Cross-crate guarantees of the distributed simulator (experiment E7's
//! acceptance criteria): every layered architecture computes the same
//! ranking as the single-process pipeline, with and without failures.

use lmm::core::siterank::{flat_pagerank, layered_doc_rank, LayeredRankConfig};
use lmm::graph::generator::CampusWebConfig;
use lmm::linalg::{vec_ops, PowerOptions};
use lmm::p2p::runner::{run_distributed, Architecture, DistributedConfig};
use lmm::p2p::FaultConfig;

fn campus() -> lmm::graph::DocGraph {
    let mut cfg = CampusWebConfig::small();
    cfg.total_docs = 1_000;
    cfg.n_sites = 20;
    cfg.spam_farms.truncate(1);
    cfg.spam_farms[0].host_site = 7;
    cfg.spam_farms[0].n_pages = 100;
    cfg.generate().expect("campus web")
}

#[test]
fn every_layered_architecture_matches_the_reference_pipeline() {
    let graph = campus();
    let reference = layered_doc_rank(&graph, &LayeredRankConfig::default()).expect("reference");
    for arch in [
        Architecture::Flat,
        Architecture::SuperPeer { n_groups: 4 },
        Architecture::SuperPeer { n_groups: 20 }, // degenerate: flat
        Architecture::Hybrid,
    ] {
        let outcome = run_distributed(
            &graph,
            &DistributedConfig::default().with_architecture(arch),
        )
        .expect("distributed run");
        assert!(
            vec_ops::l1_diff(outcome.global.scores(), reference.global.scores()) < 1e-6,
            "{arch} diverged from the reference pipeline"
        );
        assert!(
            vec_ops::l1_diff(outcome.site_rank.scores(), reference.site_rank.scores()) < 1e-6,
            "{arch} site rank diverged"
        );
    }
}

#[test]
fn centralized_baseline_equals_flat_pagerank() {
    let graph = campus();
    let outcome = run_distributed(
        &graph,
        &DistributedConfig::default().with_architecture(Architecture::Centralized),
    )
    .expect("centralized run");
    let flat = flat_pagerank(&graph, 0.85, &PowerOptions::with_tol(1e-10), 0).expect("flat");
    assert!(vec_ops::l1_diff(outcome.global.scores(), flat.ranking.scores()) < 1e-8);
}

#[test]
fn message_loss_never_changes_the_answer() {
    let graph = campus();
    let clean = run_distributed(&graph, &DistributedConfig::default()).expect("clean");
    for drop_prob in [0.05, 0.25, 0.5] {
        let cfg = DistributedConfig {
            fault: Some(FaultConfig {
                drop_prob,
                seed: 99,
            }),
            ..DistributedConfig::default()
        };
        let lossy = run_distributed(&graph, &cfg).expect("lossy run");
        assert!(
            vec_ops::l1_diff(clean.global.scores(), lossy.global.scores()) < 1e-9,
            "loss rate {drop_prob} changed the ranking"
        );
        assert!(lossy.stats.total().retransmissions > 0);
    }
}

#[test]
fn traffic_ordering_across_architectures() {
    let graph = campus();
    let flat = run_distributed(&graph, &DistributedConfig::default()).expect("flat");
    let superpeer = run_distributed(
        &graph,
        &DistributedConfig::default().with_architecture(Architecture::SuperPeer { n_groups: 4 }),
    )
    .expect("superpeer");
    let hybrid = run_distributed(
        &graph,
        &DistributedConfig::default().with_architecture(Architecture::Hybrid),
    )
    .expect("hybrid");
    // Message counts: batching and central siterank each cut traffic.
    assert!(superpeer.stats.total().messages < flat.stats.total().messages);
    assert!(hybrid.stats.total().messages < superpeer.stats.total().messages);
}

#[test]
fn rounds_match_central_iteration_count_closely() {
    // The distributed siterank is the same Jacobi iteration as the central
    // power method; rounds should be within a couple of iterations (the
    // stop decision lags one round).
    let graph = campus();
    let outcome = run_distributed(&graph, &DistributedConfig::default()).expect("flat");
    let reference = layered_doc_rank(&graph, &LayeredRankConfig::default()).expect("reference");
    let central_iters = reference.site_report.iterations as i64;
    let rounds = i64::from(outcome.siterank_rounds);
    assert!(
        (rounds - central_iters).abs() <= 3,
        "rounds {rounds} vs central iterations {central_iters}"
    );
}

#[test]
fn outcome_reports_all_phases() {
    let graph = campus();
    let outcome = run_distributed(&graph, &DistributedConfig::default()).expect("flat");
    let names: Vec<&str> = outcome.stats.phases.iter().map(|p| p.name).collect();
    assert_eq!(
        names,
        vec![
            "sitegraph",
            "siterank rounds",
            "local docranks",
            "aggregation"
        ]
    );
    // Local docranks are compute-only.
    assert_eq!(outcome.stats.phases[2].traffic.messages, 0);
    assert!(outcome.stats.total_wall().as_nanos() > 0);
}
