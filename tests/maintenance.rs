//! End-to-end tests of the "living web" features through the facade:
//! incremental rank maintenance and crawl-based partial ranking.

use lmm::core::incremental::{diff_sites, refresh};
use lmm::core::siterank::{layered_doc_rank, LayeredRankConfig};
use lmm::graph::crawler::{crawl, CrawlConfig};
use lmm::graph::docgraph::DocGraphBuilder;
use lmm::graph::generator::CampusWebConfig;
use lmm::graph::{DocId, SiteId};
use lmm::linalg::vec_ops;
use lmm::rank::metrics;

fn campus() -> lmm::graph::DocGraph {
    let mut cfg = CampusWebConfig::small();
    cfg.total_docs = 800;
    cfg.n_sites = 16;
    cfg.spam_farms.truncate(1);
    cfg.spam_farms[0].host_site = 9;
    cfg.spam_farms[0].n_pages = 120;
    cfg.generate().expect("campus web")
}

#[test]
fn repeated_incremental_edits_stay_exact() {
    // Apply a chain of edits, refreshing incrementally each time; the final
    // state must equal a from-scratch computation on the final graph.
    let cfg = LayeredRankConfig::default();
    let mut graph = campus();
    let mut rank = layered_doc_rank(&graph, &cfg).expect("initial");
    for step in 0..4 {
        let site = (3 + 4 * step) % graph.n_sites();
        let docs: Vec<DocId> = graph.docs_of_site(SiteId(site)).to_vec();
        let mut builder = DocGraphBuilder::from_graph(&graph);
        builder
            .add_link(docs[step % docs.len()], docs[(step + 2) % docs.len()])
            .expect("valid docs");
        let new_graph = builder.build();
        let (updated, stats) = refresh(&rank, &graph, &new_graph, &cfg).expect("refresh");
        assert!(stats.sites_recomputed <= 1, "step {step}");
        graph = new_graph;
        rank = updated;
    }
    let full = layered_doc_rank(&graph, &cfg).expect("full recompute");
    assert!(
        vec_ops::l1_diff(rank.global.scores(), full.global.scores()) < 1e-7,
        "incremental chain diverged"
    );
}

#[test]
fn incremental_is_cheaper_than_full() {
    let cfg = LayeredRankConfig::default();
    let graph = campus();
    let base = layered_doc_rank(&graph, &cfg).expect("initial");
    let docs = graph.docs_of_site(SiteId(2));
    let mut builder = DocGraphBuilder::from_graph(&graph);
    builder.add_link(docs[1], docs[3]).expect("valid");
    let new_graph = builder.build();
    let delta = diff_sites(&graph, &new_graph).expect("same shape");
    assert_eq!(delta.changed_sites, vec![2]);
    let (updated, stats) = refresh(&base, &graph, &new_graph, &cfg).expect("refresh");
    // One warm-started site vs all sites from scratch.
    assert_eq!(stats.sites_recomputed, 1);
    assert!(updated.total_local_iterations < base.total_local_iterations / 4);
}

#[test]
fn partial_crawl_ranking_correlates_with_full() {
    let graph = campus();
    let cfg = LayeredRankConfig::default();
    let full = layered_doc_rank(&graph, &cfg).expect("full");
    let result = crawl(
        &graph,
        &CrawlConfig::from_seed(DocId(0), graph.n_docs() / 2),
    )
    .expect("crawl");
    let partial = layered_doc_rank(&result.graph, &cfg).expect("partial");
    // Restrict the full ranking to the crawled pages and compare orders.
    let restricted = lmm::rank::Ranking::from_weights(
        result
            .visited
            .iter()
            .map(|d| full.global.score(d.index()))
            .collect(),
    )
    .expect("positive");
    let tau = metrics::kendall_tau(&partial.global, &restricted);
    assert!(tau > 0.4, "partial view too dissimilar: tau = {tau}");
}

#[test]
fn crawl_then_rank_keeps_spam_resistance() {
    let graph = campus();
    let result = crawl(&graph, &CrawlConfig::from_seed(DocId(0), graph.n_docs())).expect("crawl");
    let partial = layered_doc_rank(&result.graph, &LayeredRankConfig::default()).expect("partial");
    let spam = result.graph.spam_labels();
    if spam.iter().any(|&s| s) {
        let share = metrics::labeled_share_at_k(&partial.global, &spam, 15);
        assert_eq!(share, 0.0, "layered ranking must stay spam-free on crawls");
    }
}
