//! Baseline algorithms (HITS, BlockRank) against the layered method on the
//! campus web — the comparisons behind experiment E8.

use lmm::core::siterank::{flat_pagerank, layered_doc_rank, LayeredRankConfig};
use lmm::graph::generator::CampusWebConfig;
use lmm::linalg::{vec_ops, PowerOptions};
use lmm::rank::blockrank::blockrank;
use lmm::rank::hits::{hits, HitsConfig};
use lmm::rank::metrics;
use lmm::rank::pagerank::PageRankConfig;

fn campus() -> lmm::graph::DocGraph {
    let mut cfg = CampusWebConfig::small();
    cfg.total_docs = 1_200;
    cfg.n_sites = 24;
    cfg.generate().expect("campus web")
}

#[test]
fn blockrank_refinement_recovers_flat_pagerank() {
    // BlockRank is an acceleration of flat PageRank: its warm-started
    // refinement must land on the same fixed point.
    let graph = campus();
    let labels: Vec<usize> = graph.site_assignments().iter().map(|s| s.index()).collect();
    let block = blockrank(
        graph.adjacency(),
        &labels,
        graph.n_sites(),
        &PageRankConfig::default(),
    )
    .expect("blockrank");
    let flat = flat_pagerank(&graph, 0.85, &PowerOptions::with_tol(1e-12), 0).expect("flat");
    assert!(vec_ops::l1_diff(block.refined.ranking.scores(), flat.ranking.scores()) < 1e-8);
}

#[test]
fn blockrank_approximation_correlates_with_layered() {
    // Both aggregate at site granularity, so the stage-3 approximation
    // should correlate positively with the layered ranking.
    let graph = campus();
    let labels: Vec<usize> = graph.site_assignments().iter().map(|s| s.index()).collect();
    let block = blockrank(
        graph.adjacency(),
        &labels,
        graph.n_sites(),
        &PageRankConfig::default(),
    )
    .expect("blockrank");
    let layered = layered_doc_rank(&graph, &LayeredRankConfig::default()).expect("layered");
    let tau = metrics::kendall_tau(&block.approximation, &layered.global);
    assert!(tau > 0.2, "tau = {tau}");
}

#[test]
fn hits_authorities_are_hijacked_by_the_farm() {
    // The tightly-knit-community effect: HITS falls for the densely
    // interlinked farm even harder than PageRank — the instability the
    // paper cites when dismissing HITS.
    let graph = campus();
    let h = hits(graph.adjacency(), &HitsConfig::default()).expect("hits");
    let spam_share = metrics::labeled_share_at_k(&h.authorities, &graph.spam_labels(), 15);
    let flat = flat_pagerank(&graph, 0.85, &PowerOptions::with_tol(1e-10), 0).expect("flat");
    let pr_share = metrics::labeled_share_at_k(&flat.ranking, &graph.spam_labels(), 15);
    assert!(
        spam_share >= pr_share,
        "HITS spam share {spam_share} should be at least PageRank's {pr_share}"
    );
}

#[test]
fn layered_beats_all_baselines_on_spam_resistance() {
    let graph = campus();
    let spam = graph.spam_labels();
    let labels: Vec<usize> = graph.site_assignments().iter().map(|s| s.index()).collect();
    let k = 15;

    let layered = layered_doc_rank(&graph, &LayeredRankConfig::default()).expect("layered");
    let flat = flat_pagerank(&graph, 0.85, &PowerOptions::with_tol(1e-10), 0).expect("flat");
    let h = hits(graph.adjacency(), &HitsConfig::default()).expect("hits");
    let block = blockrank(
        graph.adjacency(),
        &labels,
        graph.n_sites(),
        &PageRankConfig::default(),
    )
    .expect("blockrank");

    let layered_share = metrics::labeled_share_at_k(&layered.global, &spam, k);
    for (name, share) in [
        (
            "pagerank",
            metrics::labeled_share_at_k(&flat.ranking, &spam, k),
        ),
        (
            "hits",
            metrics::labeled_share_at_k(&h.authorities, &spam, k),
        ),
        (
            "blockrank refined",
            metrics::labeled_share_at_k(&block.refined.ranking, &spam, k),
        ),
    ] {
        assert!(
            layered_share <= share,
            "{name}: layered {layered_share} should not exceed {share}"
        );
    }
}
