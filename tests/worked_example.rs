//! End-to-end reproduction of the paper's Section 2.3 worked example
//! through the facade crate (experiment E2's acceptance test).

use lmm::core::approaches::{LmmParams, RankApproach};
use lmm::core::model::GlobalState;
use lmm::core::{verify_partition_theorem, worked_example as we};
use lmm::linalg::vec_ops;

const PRINT_TOL: f64 = 7e-4;

#[test]
fn full_figure2_reproduction() {
    let model = we::paper_model().expect("paper model builds");
    let a1 = model.pagerank_of_global(we::PAPER_ALPHA).expect("A1");
    let a2 = model.stationary_of_global(we::PAPER_ALPHA).expect("A2");
    assert!(vec_ops::linf_diff(a1.scores(), &we::PAPER_PI_W) < PRINT_TOL);
    assert!(vec_ops::linf_diff(a2.scores(), &we::PAPER_PI_W_TILDE) < PRINT_TOL);
}

#[test]
fn approaches_1_2_4_rank_identically_on_paper_model() {
    // Figure 2's observation: "the two results rank all system states in an
    // identical order" — pi_W and pi~_W agree, and the Layered Method
    // reproduces pi~_W exactly. Approach 3 swaps two near-tied states
    // ((1,4) and (3,5) differ by ~3e-4), so it is checked by rank
    // correlation instead.
    let model = we::paper_model().expect("paper model builds");
    let params = LmmParams::with_factor(we::PAPER_ALPHA);
    let order = |a: RankApproach| -> Vec<GlobalState> {
        model.rank(a, &params).expect("ranks").order_states()
    };
    let a1 = order(RankApproach::PageRankOnGlobal);
    let a2 = order(RankApproach::StationaryOfGlobal);
    let a4 = order(RankApproach::Layered);
    assert_eq!(a1, a2);
    assert_eq!(a2, a4);

    let a2_ranking = model
        .rank(RankApproach::StationaryOfGlobal, &params)
        .expect("A2");
    let a3_ranking = model
        .rank(RankApproach::LayeredWithPageRankSite, &params)
        .expect("A3");
    let tau = lmm::rank::metrics::kendall_tau(a2_ranking.ranking(), a3_ranking.ranking());
    assert!(tau > 0.9, "A3 should stay strongly correlated, tau = {tau}");
}

#[test]
fn partition_theorem_verified_through_facade() {
    let model = we::paper_model().expect("paper model builds");
    let check = verify_partition_theorem(&model, &LmmParams::with_factor(0.85))
        .expect("both approaches run");
    assert!(check.linf < 1e-9, "{check}");
    assert!(check.same_order);
    assert_eq!(check.states, 12);
}

#[test]
fn paper_equation_five_composition() {
    // pi~(I, i) = pi~_Y(I) * pi_G^I(i), checked entry-wise against the
    // published per-layer vectors.
    let model = we::paper_model().expect("paper model builds");
    let a4 = model.layered_method(we::PAPER_ALPHA).expect("A4");
    let g = [
        &we::PAPER_PI_G1[..],
        &we::PAPER_PI_G2[..],
        &we::PAPER_PI_G3[..],
    ];
    for idx in 0..model.total_states() {
        let s = model.state_of(idx);
        let expected = we::PAPER_PI_Y_TILDE[s.phase] * g[s.phase][s.sub];
        assert!(
            (a4.scores()[idx] - expected).abs() < 2e-3,
            "state {s}: {} vs composed {expected}",
            a4.scores()[idx]
        );
    }
}
