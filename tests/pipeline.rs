//! End-to-end layered DocRank pipeline tests on the synthetic campus web
//! (experiments E3/E4's acceptance criteria).

use lmm::core::siterank::{flat_pagerank, layered_doc_rank, LayeredRankConfig};
use lmm::graph::generator::CampusWebConfig;
use lmm::graph::{DocId, SiteId};
use lmm::linalg::PowerOptions;
use lmm::rank::metrics;

fn campus() -> lmm::graph::DocGraph {
    CampusWebConfig::small().generate().expect("campus web")
}

#[test]
fn figure3_flat_pagerank_is_spam_dominated() {
    let graph = campus();
    let flat = flat_pagerank(&graph, 0.85, &PowerOptions::with_tol(1e-10), 0).expect("flat");
    let spam_share = metrics::labeled_share_at_k(&flat.ranking, &graph.spam_labels(), 15);
    assert!(
        spam_share >= 0.3,
        "flat PageRank top-15 should be dominated by farm pages, got {spam_share}"
    );
}

#[test]
fn figure4_layered_method_is_spam_free() {
    let graph = campus();
    let layered = layered_doc_rank(&graph, &LayeredRankConfig::default()).expect("layered");
    let spam_share = metrics::labeled_share_at_k(&layered.global, &graph.spam_labels(), 15);
    assert_eq!(
        spam_share, 0.0,
        "the layered top-15 should contain no farm pages"
    );
}

#[test]
fn layered_top15_is_authoritative_roots() {
    // Figure 4's qualitative reading: the layered list surfaces site roots
    // (home pages) rather than deep pages.
    let graph = campus();
    let layered = layered_doc_rank(&graph, &LayeredRankConfig::default()).expect("layered");
    let roots_in_top15 = layered
        .top_k(15)
        .into_iter()
        .filter(|&d| graph.url(d).ends_with('/'))
        .count();
    assert!(
        roots_in_top15 >= 10,
        "expected mostly root pages in the layered top-15, got {roots_in_top15}"
    );
}

#[test]
fn portal_root_ranks_first_under_both_methods() {
    let graph = campus();
    let root = graph.docs_of_site(SiteId(0))[0];
    let flat = flat_pagerank(&graph, 0.85, &PowerOptions::with_tol(1e-10), 0).expect("flat");
    let layered = layered_doc_rank(&graph, &LayeredRankConfig::default()).expect("layered");
    assert_eq!(flat.ranking.order()[0], root.index());
    assert_eq!(layered.global.order()[0], root.index());
}

#[test]
fn rankings_correlate_but_differ() {
    let graph = campus();
    let flat = flat_pagerank(&graph, 0.85, &PowerOptions::with_tol(1e-10), 0).expect("flat");
    let layered = layered_doc_rank(&graph, &LayeredRankConfig::default()).expect("layered");
    let tau = metrics::kendall_tau(&flat.ranking, &layered.global);
    assert!(
        tau > 0.2 && tau < 0.95,
        "methods should correlate without coinciding, tau = {tau}"
    );
}

#[test]
fn pipeline_is_deterministic() {
    let g1 = campus();
    let g2 = campus();
    assert_eq!(g1, g2);
    let r1 = layered_doc_rank(&g1, &LayeredRankConfig::default()).expect("run 1");
    let r2 = layered_doc_rank(&g2, &LayeredRankConfig::default()).expect("run 2");
    assert_eq!(r1.global.scores(), r2.global.scores());
}

#[test]
fn clean_web_keeps_methods_closer() {
    // Removing the farms increases agreement between flat and layered —
    // the divergence in the spam case is driven by the farms.
    let spammy = campus();
    let clean = CampusWebConfig::small()
        .without_spam()
        .generate()
        .expect("clean web");
    let power = PowerOptions::with_tol(1e-10);
    let tau_spammy = metrics::kendall_tau(
        &flat_pagerank(&spammy, 0.85, &power, 0)
            .expect("flat")
            .ranking,
        &layered_doc_rank(&spammy, &LayeredRankConfig::default())
            .expect("layered")
            .global,
    );
    let tau_clean = metrics::kendall_tau(
        &flat_pagerank(&clean, 0.85, &power, 0)
            .expect("flat")
            .ranking,
        &layered_doc_rank(&clean, &LayeredRankConfig::default())
            .expect("layered")
            .global,
    );
    assert!(
        tau_clean > tau_spammy,
        "clean tau {tau_clean} should exceed spammy tau {tau_spammy}"
    );
}

#[test]
fn site_mass_equals_site_rank() {
    // Sum of a site's document scores equals its SiteRank entry — the
    // conservation property behind Theorem 1.
    let graph = campus();
    let layered = layered_doc_rank(&graph, &LayeredRankConfig::default()).expect("layered");
    for s in 0..graph.n_sites() {
        let mass: f64 = graph
            .docs_of_site(SiteId(s))
            .iter()
            .map(|d| layered.score(*d))
            .sum();
        assert!(
            (mass - layered.site_rank.score(s)).abs() < 1e-9,
            "site {s}: mass {mass} vs site rank {}",
            layered.site_rank.score(s)
        );
    }
}

#[test]
fn every_document_is_ranked() {
    let graph = campus();
    let layered = layered_doc_rank(&graph, &LayeredRankConfig::default()).expect("layered");
    assert_eq!(layered.global.len(), graph.n_docs());
    // Teleportation guarantees strictly positive scores everywhere.
    for d in 0..graph.n_docs() {
        assert!(layered.global.score(d) > 0.0, "doc {d} has zero score");
    }
    let _ = DocId(0); // exercise the id type in the integration context
}
