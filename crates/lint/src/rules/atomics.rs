//! Rule `relaxed`: atomic-ordering audit.
//!
//! `Ordering::Relaxed` is correct for monotonic telemetry counters and
//! claim cursors, and quietly wrong for anything a thread *decides* on —
//! epoch watermarks, shutdown flags, publish gates. PR 7's burnt-epoch
//! bug was exactly a consistency-bearing counter treated as telemetry.
//! This pass allows `Relaxed` when some identifier in the statement is on
//! the counter allowlist (exact names or `*_count`-style suffixes from
//! [`crate::config`]); every other use needs
//! `// lint: allow(relaxed, "reason")` or a stronger ordering.

use crate::config::LintConfig;
use crate::lexer::MaskedFile;
use crate::report::Violation;
use crate::rules::{idents, token_positions};

const RULE: &str = "relaxed";

pub fn check(file: &MaskedFile, path: &str, cfg: &LintConfig) -> Vec<Violation> {
    let mut out = Vec::new();
    for at in token_positions(&file.masked, "Ordering::Relaxed") {
        if file.in_test(at) {
            continue;
        }
        let line = file.line_of(at);
        if file.allowed(RULE, line) {
            continue;
        }
        // The statement the use sits in: back to the nearest `;`/`{`/`}`.
        let stmt_start = file.masked[..at]
            .rfind([';', '{', '}'])
            .map_or(0, |p| p + 1);
        let allowlisted = idents(&file.masked[stmt_start..at]).iter().any(|id| {
            cfg.relaxed_names.contains(id) || cfg.relaxed_suffixes.iter().any(|s| id.ends_with(s))
        });
        if allowlisted {
            continue;
        }
        out.push(Violation::new(
            RULE,
            path,
            line,
            "`Ordering::Relaxed` on a non-allowlisted atomic; use SeqCst/Acquire-Release \
             for anything control flow depends on, or annotate \
             `lint: allow(relaxed, \"…\")` if this really is a counter",
        ));
    }
    out
}
