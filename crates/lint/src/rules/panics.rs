//! Rule `panic`: panic-freedom tiers for hot-path modules.
//!
//! Files listed in [`crate::config::LintConfig::hot_path`] serve queries
//! or move publish epochs; a panic there takes down a worker thread or
//! poisons a lock mid-publish. Unannotated `.unwrap()`, `.expect(…)`,
//! `panic!`, `unreachable!`, `todo!`, and `unimplemented!` are violations
//! outside `#[cfg(test)]`. Intentional sites (invariants the type system
//! cannot carry) take `// lint: allow(panic, "reason")`.

use crate::lexer::MaskedFile;
use crate::report::Violation;
use crate::rules::token_positions;

const RULE: &str = "panic";

/// Tokens that introduce a panic. `.expect(` will not match
/// `.expect_err(` and `.unwrap()` will not match `.unwrap_or*` because
/// the trailing delimiter is part of the token.
const TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

pub fn check(file: &MaskedFile, path: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for token in TOKENS {
        for at in token_positions(&file.masked, token) {
            if file.in_test(at) {
                continue;
            }
            let line = file.line_of(at);
            if file.allowed(RULE, line) {
                continue;
            }
            let shown = token.trim_end_matches('(');
            out.push(Violation::new(
                RULE,
                path,
                line,
                format!(
                    "hot-path module uses `{shown}` without a `lint: allow(panic, \"…\")` \
                     annotation; return a typed error or justify the invariant"
                ),
            ));
        }
    }
    out.sort_by_key(|v| v.line);
    out
}
