//! Rule `wire_tags`: wire-tag registry stability.
//!
//! The cluster protocol identifies messages by a hand-assigned tag byte.
//! Tag numbering is load-bearing: a mixed-version cluster mid-rollout
//! decodes frames by these bytes, so renumbering a variant, reusing a
//! tag, or dropping a decode arm silently corrupts cross-version
//! traffic. This pass extracts the `variant -> tag` map from both
//! `Message::tag()` (encode) and `decode_message` (decode), checks
//!
//! * every tag is unique on each side,
//! * the two sides agree exactly (no encode-only or decode-only tags),
//! * the map matches the committed golden registry byte-for-byte.
//!
//! Adding a message is legal: take the next free tag, add both arms, and
//! append the line to `crates/cluster/wire_tags.golden` (or run
//! `cargo run -p lmm-lint -- --update-golden`). Changing an existing
//! line is a wire-compat break and should be treated as one.

use crate::lexer::MaskedFile;
use crate::report::Violation;

const RULE: &str = "wire_tags";

/// `(tag, variant)` pairs extracted from one side of the codec.
pub type TagMap = Vec<(u64, String)>;

/// Extracts the encode map from the `fn tag` match arms
/// (`Message::Variant { .. } => N`).
#[must_use]
pub fn encode_tags(file: &MaskedFile) -> TagMap {
    let Some(body) = file.fns.iter().find(|f| f.name == "tag").map(|f| &f.body) else {
        return Vec::new();
    };
    let text = &file.masked[body.clone()];
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(off) = text[from..].find("Message::") {
        let at = from + off + "Message::".len();
        from = at;
        let variant: String = text[at..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if variant.is_empty() {
            continue;
        }
        // The arm's `=> N` follows, before the next `Message::`.
        let rest_end = text[at..].find("Message::").map_or(text.len(), |o| at + o);
        let rest = &text[at..rest_end];
        if let Some(arrow) = rest.find("=>") {
            let num: String = rest[arrow + 2..]
                .trim_start()
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            if let Ok(tag) = num.parse::<u64>() {
                out.push((tag, variant));
            }
        }
    }
    out
}

/// Extracts the decode map from the first `match` in `decode_message`:
/// numeric arms at the top level of the match (`N => … Message::Variant`).
#[must_use]
pub fn decode_tags(file: &MaskedFile) -> TagMap {
    let Some(body) = file
        .fns
        .iter()
        .find(|f| f.name == "decode_message")
        .map(|f| &f.body)
    else {
        return Vec::new();
    };
    let text = &file.masked[body.clone()];
    let bytes = text.as_bytes();
    let Some(match_at) = text.find("match ") else {
        return Vec::new();
    };
    let Some(open_off) = text[match_at..].find('{') else {
        return Vec::new();
    };
    let open = match_at + open_off;

    // Numeric arm heads at brace depth 1 relative to the match's `{`
    // (arms of nested matches sit deeper and are skipped).
    let mut heads: Vec<(usize, u64)> = Vec::new();
    let mut depth = 0i32;
    let mut k = open;
    while k < bytes.len() {
        match bytes[k] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            b'0'..=b'9' if depth == 1 => {
                let start = k;
                let prev = bytes[..k].iter().rev().find(|b| !b.is_ascii_whitespace());
                let at_arm_head = matches!(prev, Some(b'{' | b',' | b'}'));
                while k < bytes.len() && bytes[k].is_ascii_digit() {
                    k += 1;
                }
                let after = text[k..].trim_start();
                if at_arm_head && after.starts_with("=>") {
                    if let Ok(tag) = text[start..k].parse::<u64>() {
                        heads.push((start, tag));
                    }
                }
                continue;
            }
            _ => {}
        }
        k += 1;
    }

    let mut out = Vec::new();
    for (i, &(start, tag)) in heads.iter().enumerate() {
        let arm_end = heads.get(i + 1).map_or(text.len(), |&(next, _)| next);
        let arm = &text[start..arm_end];
        if let Some(off) = arm.find("Message::") {
            let variant: String = arm[off + "Message::".len()..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !variant.is_empty() {
                out.push((tag, variant));
            }
        }
    }
    out
}

/// Renders a `TagMap` in golden-registry format.
#[must_use]
pub fn render_golden(encode: &TagMap) -> String {
    let mut sorted = encode.clone();
    sorted.sort_by_key(|&(tag, _)| tag);
    let mut out = String::from(
        "# lmm wire-tag registry — extracted from cluster/src/wire.rs by lmm-lint.\n\
         # One line per message: `<tag> <variant>`. Tags are wire-compat\n\
         # critical: append for new messages, never renumber or reuse.\n",
    );
    for (tag, variant) in &sorted {
        out.push_str(&format!("{tag} {variant}\n"));
    }
    out
}

/// Parses a golden registry file into a `TagMap`.
#[must_use]
pub fn parse_golden(text: &str) -> TagMap {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(tag), Some(variant)) = (parts.next(), parts.next()) {
            if let Ok(tag) = tag.parse::<u64>() {
                out.push((tag, variant.to_string()));
            }
        }
    }
    out
}

/// Runs the full wire-tag check: uniqueness, encode/decode symmetry, and
/// golden-registry agreement. `golden` is `None` when the registry file
/// is missing.
pub fn check(
    file: &MaskedFile,
    path: &str,
    golden: Option<&str>,
    golden_path: &str,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let encode = encode_tags(file);
    let decode = decode_tags(file);

    if encode.is_empty() {
        out.push(Violation::new(
            RULE,
            path,
            0,
            "could not extract any tags from `fn tag` — the codec moved; update lmm-lint",
        ));
        return out;
    }

    for (name, map) in [("encode (fn tag)", &encode), ("decode_message", &decode)] {
        let mut seen: std::collections::BTreeMap<u64, &str> = std::collections::BTreeMap::new();
        for (tag, variant) in map {
            if let Some(first) = seen.insert(*tag, variant) {
                out.push(Violation::new(
                    RULE,
                    path,
                    0,
                    format!(
                        "duplicate tag {tag} in {name}: claimed by both `{first}` and \
                         `{variant}` — a mixed-version peer cannot tell them apart"
                    ),
                ));
            }
        }
    }

    let sorted = |m: &TagMap| {
        let mut s = m.clone();
        s.sort();
        s
    };
    let (enc_sorted, dec_sorted) = (sorted(&encode), sorted(&decode));
    if enc_sorted != dec_sorted {
        for (tag, variant) in &enc_sorted {
            if !dec_sorted.contains(&(*tag, variant.clone())) {
                out.push(Violation::new(
                    RULE,
                    path,
                    0,
                    format!(
                        "`{variant}` encodes as tag {tag} but decode_message has no matching \
                         arm — frames of this type will be rejected as BadTag"
                    ),
                ));
            }
        }
        for (tag, variant) in &dec_sorted {
            if !enc_sorted.contains(&(*tag, variant.clone())) {
                out.push(Violation::new(
                    RULE,
                    path,
                    0,
                    format!(
                        "decode_message accepts tag {tag} as `{variant}` but nothing encodes \
                         it — dead arm or a renumbered variant"
                    ),
                ));
            }
        }
    }

    match golden {
        None => out.push(Violation::new(
            RULE,
            golden_path,
            0,
            "golden wire-tag registry is missing; run `cargo run -p lmm-lint -- \
             --update-golden` and commit it",
        )),
        Some(text) => {
            let golden_map = sorted(&parse_golden(text));
            if golden_map != enc_sorted {
                for (tag, variant) in &enc_sorted {
                    if !golden_map.contains(&(*tag, variant.clone())) {
                        out.push(Violation::new(
                            RULE,
                            golden_path,
                            0,
                            format!(
                                "wire.rs assigns tag {tag} to `{variant}` but the golden \
                                 registry does not; if this is a new message, append it — \
                                 if an old tag moved, that is a wire-compat break"
                            ),
                        ));
                    }
                }
                for (tag, variant) in &golden_map {
                    if !enc_sorted.contains(&(*tag, variant.clone())) {
                        out.push(Violation::new(
                            RULE,
                            golden_path,
                            0,
                            format!(
                                "golden registry lists tag {tag} `{variant}` but wire.rs no \
                                 longer does — removing a message retires its tag forever; \
                                 do not reuse it"
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}
