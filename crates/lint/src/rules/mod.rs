//! The rule passes. Each pass takes a lexed [`MaskedFile`] (and the
//! policy from [`crate::config`]) and returns [`Violation`]s.

pub mod atomics;
pub mod det;
pub mod locks;
pub mod panics;
pub mod wire;

/// Yields every occurrence of `token` in `masked` that starts at an
/// identifier boundary (so `unreachable!` does not match inside
/// `not_unreachable!`).
pub(crate) fn token_positions<'a>(
    masked: &'a str,
    token: &'a str,
) -> impl Iterator<Item = usize> + 'a {
    let bytes = masked.as_bytes();
    // Only tokens that *start* with an ident char need a left boundary;
    // `.unwrap()` legitimately follows its receiver's last character.
    let needs_boundary = token
        .as_bytes()
        .first()
        .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
    let mut from = 0usize;
    std::iter::from_fn(move || {
        while let Some(off) = masked[from..].find(token) {
            let at = from + off;
            from = at + token.len();
            let boundary = !needs_boundary
                || at == 0
                || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
            if boundary {
                return Some(at);
            }
        }
        None
    })
}

/// Identifiers appearing in `text`, in order.
pub(crate) fn idents(text: &str) -> Vec<&str> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(&text[start..i]);
        } else {
            i += 1;
        }
    }
    out
}
