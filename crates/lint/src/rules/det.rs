//! Rule `nondet`: determinism fence.
//!
//! The ranking kernels (`core`, `linalg`, `rank`, `graph::delta`) claim
//! bitwise-identical output at any thread count, and the benches assert
//! it. Wall-clock reads (`Instant::now`, `SystemTime`) and randomized
//! hashing (`RandomState`, the `HashMap::new` default) inside those
//! crates either leak into results or into iteration order. Any use must
//! carry `// lint: allow(nondet, "reason")` — e.g. a coarse progress
//! log that provably never feeds the math.

use crate::config::LintConfig;
use crate::lexer::MaskedFile;
use crate::report::Violation;
use crate::rules::token_positions;

const RULE: &str = "nondet";

pub fn check(file: &MaskedFile, path: &str, cfg: &LintConfig) -> Vec<Violation> {
    let mut out = Vec::new();
    for token in cfg.det_banned {
        for at in token_positions(&file.masked, token) {
            if file.in_test(at) {
                continue;
            }
            let line = file.line_of(at);
            if file.allowed(RULE, line) {
                continue;
            }
            out.push(Violation::new(
                RULE,
                path,
                line,
                format!(
                    "`{token}` inside the deterministic kernel fence; these crates promise \
                     bitwise-reproducible output — thread timing or hash seeds must not \
                     reach them (annotate `lint: allow(nondet, \"…\")` if it provably \
                     cannot affect results)"
                ),
            ));
        }
    }
    out.sort_by_key(|v| v.line);
    out
}
