//! Rule `lock_order`: lock acquisition discipline.
//!
//! For each file with a declared order (see [`crate::config`]), this pass
//! walks every `fn` body, finds `.lock()` / `.read()` / `.write()` calls
//! on the named locks, works out how long each guard lives, and flags any
//! acquisition of a lower-tier lock while a higher-tier guard is held —
//! the classic AB/BA deadlock shape.
//!
//! Guard lifetime heuristic (no type information, so approximate — it
//! over-approximates `let`-bound guards to the end of the enclosing
//! block, and treats guards consumed by non-poison adapters like
//! `.clone()` as transient):
//!
//! * `let g = x.lock().unwrap();` — held to the end of the innermost
//!   enclosing block (poison adapters `unwrap`/`expect`/`map_err`/
//!   `unwrap_or_else` plus `?` return the guard itself);
//! * `match x.lock() { … }` / `if let Ok(g) = x.lock() { … }` — the
//!   scrutinee temporary is held to the end of that block;
//! * anything else (`x.lock().unwrap().field`, `drop(x.lock())`,
//!   `*x.write().unwrap() = v;`) — transient: dropped within the
//!   statement, but still checked against guards already held.
//!
//! Unknown receivers (`reader.read()` on an io stream) are ignored; only
//! names declared in a tier participate.
//!
//! This module also hosts the sibling rule `lock_free` (see
//! [`check_lock_free`]): for functions declared lock-free in
//! [`crate::config`], *any* blocking-synchronization token is a
//! violation — no receiver allowlist, no ordering to get right.

use crate::config::{LockFreePath, LockOrder};
use crate::lexer::MaskedFile;
use crate::report::Violation;
use crate::rules::token_positions;

const RULE: &str = "lock_order";
const LOCK_FREE_RULE: &str = "lock_free";

const ACQUIRE_TOKENS: &[&str] = &[".lock()", ".read()", ".write()"];

/// Poison/result adapters that return the guard itself; any other
/// chained call consumes it.
const GUARD_ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else", "map_err"];

struct Acquisition {
    /// Offset of the `.lock()` token.
    at: usize,
    /// Alias name the lock was acquired through.
    name: String,
    /// Tier index in the declared order (0 = must come first).
    rank: usize,
    /// Offset past which the guard is no longer held.
    held_until: usize,
}

pub fn check(file: &MaskedFile, path: &str, order: &LockOrder) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &file.fns {
        if file.in_test(f.body.start) {
            continue;
        }
        check_fn(file, path, order, f.body.clone(), &mut out);
    }
    out.sort_by_key(|v| v.line);
    out
}

fn check_fn(
    file: &MaskedFile,
    path: &str,
    order: &LockOrder,
    body: std::ops::Range<usize>,
    out: &mut Vec<Violation>,
) {
    let masked = &file.masked;
    let mut acqs: Vec<Acquisition> = Vec::new();
    for token in ACQUIRE_TOKENS {
        let mut from = body.start;
        while let Some(off) = masked[from..body.end].find(token) {
            let at = from + off;
            from = at + token.len();
            let Some(name) = receiver_name(masked, at) else {
                continue;
            };
            let Some(rank) = order
                .tiers
                .iter()
                .position(|aliases| aliases.contains(&name.as_str()))
            else {
                continue;
            };
            let held_until = guard_extent(masked, at + token.len(), at, body.clone());
            acqs.push(Acquisition {
                at,
                name,
                rank,
                held_until,
            });
        }
    }
    acqs.sort_by_key(|a| a.at);

    let mut held: Vec<&Acquisition> = Vec::new();
    for a in &acqs {
        held.retain(|h| h.held_until > a.at);
        let line = file.line_of(a.at);
        if !file.allowed(RULE, line) {
            for h in &held {
                if a.rank < h.rank {
                    out.push(Violation::new(
                        RULE,
                        path,
                        line,
                        format!(
                            "`{}` acquired while `{}` (held since line {}) is still held; \
                             the declared order for this file puts `{}` first — release it \
                             or re-tier the locks in crates/lint/src/config.rs",
                            a.name,
                            h.name,
                            file.line_of(h.at),
                            a.name,
                        ),
                    ));
                    break;
                }
            }
        }
        if a.held_until > a.at {
            held.push(a);
        }
    }
}

/// Tokens whose appearance inside a declared lock-free function is a
/// violation: guard-producing calls plus the lock type names themselves
/// (a local `Mutex::new` is just as blocking as a field).
const BLOCKING_TOKENS: &[&str] = &[".lock()", ".read()", ".write()", "Mutex", "RwLock"];

/// Rule `lock_free`: the functions named in `policy` must contain no
/// blocking synchronization at all. Unlike [`check`], there is no
/// receiver filter — on a declared lock-free path even an io-looking
/// `.read()` is flagged, because the cost of a false positive (rename or
/// annotate) is tiny next to the cost of a mutex quietly returning to
/// the serve read path.
pub fn check_lock_free(file: &MaskedFile, path: &str, policy: &LockFreePath) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &file.fns {
        if file.in_test(f.body.start) || !policy.fns.contains(&f.name.as_str()) {
            continue;
        }
        for token in BLOCKING_TOKENS {
            for off in token_positions(&file.masked[f.body.clone()], token) {
                let at = f.body.start + off;
                let line = file.line_of(at);
                if file.allowed(LOCK_FREE_RULE, line) {
                    continue;
                }
                out.push(Violation::new(
                    LOCK_FREE_RULE,
                    path,
                    line,
                    format!(
                        "`{}` inside `{}`, which is declared lock-free: point reads must \
                         complete while a publisher holds (or has poisoned) the gate — go \
                         through the ArcCell snapshot instead, or remove `{}` from the \
                         lock_free list in crates/lint/src/config.rs",
                        token, f.name, f.name,
                    ),
                ));
            }
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

/// The field/binding name the call is made on: the last path segment
/// before the `.` of `.lock()` (so `self.inner.gate.lock()` -> `gate`).
fn receiver_name(masked: &str, dot_at: usize) -> Option<String> {
    let bytes = masked.as_bytes();
    let mut j = dot_at;
    let mut end = dot_at;
    while j > 0 {
        let b = bytes[j - 1];
        if b.is_ascii_alphanumeric() || b == b'_' {
            j -= 1;
        } else {
            break;
        }
    }
    if j == end {
        return None;
    }
    std::mem::swap(&mut j, &mut end);
    Some(masked[end..j].to_string())
}

/// How long the guard produced at `after` (the offset just past the
/// acquire token at `acq_at`) stays alive. Returns `acq_at` when the
/// guard is transient.
fn guard_extent(
    masked: &str,
    mut after: usize,
    acq_at: usize,
    body: std::ops::Range<usize>,
) -> usize {
    let bytes = masked.as_bytes();
    // Consume the adapter chain: `?` and `.adapter( … )` repeatedly.
    loop {
        while after < body.end && bytes[after].is_ascii_whitespace() {
            after += 1;
        }
        if after >= body.end {
            return acq_at;
        }
        match bytes[after] {
            b'?' => after += 1,
            b'.' => {
                let mut k = after + 1;
                while k < body.end && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                let name_start = k;
                while k < body.end && (bytes[k].is_ascii_alphanumeric() || bytes[k] == b'_') {
                    k += 1;
                }
                let name = &masked[name_start..k];
                if !GUARD_ADAPTERS.contains(&name) {
                    return acq_at; // consumed by a non-guard method
                }
                while k < body.end && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                if k >= body.end || bytes[k] != b'(' {
                    return acq_at;
                }
                let mut depth = 0i32;
                while k < body.end {
                    match bytes[k] {
                        b'(' => depth += 1,
                        b')' => {
                            depth -= 1;
                            if depth == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                after = k;
            }
            _ => break,
        }
    }
    match bytes[after] {
        b';' => {
            // Held only when the guard is bound: `let g = x.lock()…;`.
            let stmt_start = masked[body.start..acq_at]
                .rfind([';', '{', '}'])
                .map_or(body.start, |p| body.start + p + 1);
            let stmt = masked[stmt_start..acq_at].trim_start();
            if stmt.starts_with("let ") || stmt.starts_with("let\t") {
                enclosing_block_end(bytes, acq_at, body)
            } else {
                acq_at
            }
        }
        // Scrutinee of `match`/`if let`/`while let`: the temporary lives
        // to the end of the block that follows.
        b'{' => matching_close(bytes, after, body.end),
        _ => acq_at,
    }
}

/// End offset of the innermost `{ … }` block containing `pos`.
fn enclosing_block_end(bytes: &[u8], pos: usize, body: std::ops::Range<usize>) -> usize {
    let mut stack: Vec<usize> = Vec::new();
    let mut innermost_close = body.end;
    let mut k = body.start;
    while k < body.end {
        match bytes[k] {
            b'{' => stack.push(k),
            b'}' => {
                if let Some(open) = stack.pop() {
                    if open <= pos && pos < k {
                        innermost_close = k;
                        break;
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
    innermost_close
}

/// Offset just past the `}` matching the `{` at `open`.
fn matching_close(bytes: &[u8], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < end {
        match bytes[k] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
        k += 1;
    }
    end
}
