//! The workspace's lint policy: which files are hot-path, which lock
//! acquisition orders are legal, which atomics may be `Relaxed`, and
//! where the determinism fence runs.
//!
//! Everything here is data. The rule passes in [`crate::rules`] consume
//! it, so policy changes (a new hot-path module, a new lock) are one-line
//! edits to this file, not lexer surgery. Paths are workspace-relative
//! with forward slashes.

/// A declared lock acquisition order for one file: tiers of lock names,
/// earlier tiers must be acquired before later ones. A tier may list
/// aliases for the same logical lock (e.g. a field and the local names
/// it is borrowed under).
#[derive(Debug, Clone)]
pub struct LockOrder {
    /// Workspace-relative path of the file the order governs.
    pub file: &'static str,
    /// Tiers in required acquisition order; each tier is a set of
    /// receiver-name aliases for one logical lock.
    pub tiers: &'static [&'static [&'static str]],
}

/// A declared lock-free read path: functions in `file` that must never
/// block — no `.lock()`/`.read()`/`.write()`, no `Mutex`/`RwLock` at
/// all. This is the inverse of [`LockOrder`]: instead of constraining
/// how locks nest, it bans them outright, so a refactor that quietly
/// reintroduces a mutex on a latency-critical path fails the lint
/// before it fails the benchmark.
#[derive(Debug, Clone)]
pub struct LockFreePath {
    /// Workspace-relative path of the file the policy governs.
    pub file: &'static str,
    /// Function names (as written after `fn`) that must stay lock-free.
    pub fns: &'static [&'static str],
}

/// The full lint policy for this workspace.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Directories scanned for sources, relative to the workspace root.
    pub scan_roots: &'static [&'static str],
    /// Path prefixes excluded from every rule (vendored shims never
    /// follow product policy; `target/` is build output).
    pub skip_prefixes: &'static [&'static str],
    /// Path substrings excluded from every rule: integration-test and
    /// bench-harness trees are test code even without `#[cfg(test)]`.
    pub skip_contains: &'static [&'static str],
    /// Hot-path files: unannotated `unwrap`/`expect`/`panic!`-family
    /// macros are violations here (tests exempt).
    pub hot_path: &'static [&'static str],
    /// Declared lock orders, one per file that nests acquisitions.
    pub lock_orders: &'static [LockOrder],
    /// Declared lock-free read paths: named functions where any blocking
    /// synchronization token is a violation.
    pub lock_free: &'static [LockFreePath],
    /// Exact identifier names allowed to use `Ordering::Relaxed`
    /// (monotonic counters and claim cursors whose readers tolerate
    /// staleness).
    pub relaxed_names: &'static [&'static str],
    /// Identifier suffixes allowed to use `Ordering::Relaxed` (the
    /// telemetry counter naming convention).
    pub relaxed_suffixes: &'static [&'static str],
    /// Path prefixes exempt from the atomic-ordering audit: bench
    /// drivers measure, they do not serve.
    pub relaxed_exempt_prefixes: &'static [&'static str],
    /// Path prefixes inside the determinism fence: wall-clock time and
    /// randomized hashing are banned (benches assert bitwise
    /// reproducibility of these kernels).
    pub det_prefixes: &'static [&'static str],
    /// Tokens banned inside the fence.
    pub det_banned: &'static [&'static str],
    /// The wire codec source whose tag registry is extracted.
    pub wire_file: &'static str,
    /// The committed golden tag registry compared against it.
    pub wire_golden: &'static str,
}

/// The policy for this workspace.
#[must_use]
pub fn workspace() -> LintConfig {
    LintConfig {
        scan_roots: &["crates", "src"],
        skip_prefixes: &["crates/shims/", "target/", "crates/lint/tests/fixtures/"],
        skip_contains: &["/tests/", "/benches/", "/examples/"],
        hot_path: &[
            "crates/serve/src/router.rs",
            "crates/serve/src/shard.rs",
            "crates/cluster/src/node.rs",
            "crates/cluster/src/client.rs",
            "crates/cluster/src/transport.rs",
            "crates/cluster/src/wire.rs",
            "crates/cluster/src/retry.rs",
            "crates/par/src/lib.rs",
        ],
        lock_orders: &[
            LockOrder {
                // The publish gate is the router's only mutex since the
                // lock-free read path landed: shard cells and the routing
                // snapshot are `ArcCell`s now, so there is nothing left
                // to nest under it. The single tier keeps the file under
                // the rule's watch — a second mutex added here must also
                // declare its tier or fail review.
                file: "crates/serve/src/router.rs",
                tiers: &[&["gate"]],
            },
            LockOrder {
                // One publish at a time, then the control state, then
                // connection/auxiliary thread registries.
                file: "crates/cluster/src/controller.rs",
                tiers: &[&["publish_gate"], &["state"], &["conns"], &["aux"]],
            },
            LockOrder {
                // Commit swaps serving while consuming the staged set.
                file: "crates/cluster/src/node.rs",
                tiers: &[&["serving"], &["staged"], &["conns"]],
            },
            LockOrder {
                file: "crates/cluster/src/client.rs",
                tiers: &[&["state"], &["pool"]],
            },
            LockOrder {
                // The scope latch signals while the panic slot is free.
                file: "crates/par/src/lib.rs",
                tiers: &[&["pending"], &["panic"]],
            },
        ],
        lock_free: &[LockFreePath {
            // The serve read path: single-shard point queries answer on
            // the caller's thread through `ArcCell` snapshots, so they
            // must complete even while a publisher holds (or has
            // poisoned) the gate. `epoch`, `publish_paced`, `request`,
            // and `consistent_gather` legitimately block and stay off
            // this list.
            file: "crates/serve/src/router.rs",
            fns: &[
                "score",
                "score_batch",
                "score_batch_inner",
                "top_k_for_site",
                "compare",
                "load_coherent",
                "doc_score_to_result",
                "shard_of_doc",
                "shard_of_doc_in",
                "finish_direct",
                "finish_fanout",
                "stats",
                "routing_epoch",
                "shard_epoch",
            ],
        }],
        relaxed_names: &[
            // byte/frame counters
            "sent",
            "recv",
            "frames",
            "counter",
            // claim cursors: contended index handout where only
            // uniqueness matters, not ordering
            "next",
            "next_conn",
            "next_op",
            "next_site",
            // telemetry counters without the suffix convention
            "queries",
            "buckets",
            "publishes",
            "evictions",
            "failovers",
            "rejoins",
            "reconnects",
            "commits",
            "aborted",
        ],
        relaxed_suffixes: &[
            "_count",
            "_counts",
            "_queries",
            "_retries",
            "_escalations",
            "_failures",
            "_refreshes",
            "_evictions",
            "_rejections",
            "_rejected",
            "_aborts",
            "_expired",
            "_heartbeats",
        ],
        relaxed_exempt_prefixes: &["crates/bench/"],
        det_prefixes: &[
            "crates/core/src/",
            "crates/linalg/src/",
            "crates/rank/src/",
            "crates/graph/src/delta.rs",
        ],
        det_banned: &["Instant::now", "SystemTime", "RandomState"],
        wire_file: "crates/cluster/src/wire.rs",
        wire_golden: "crates/cluster/wire_tags.golden",
    }
}
