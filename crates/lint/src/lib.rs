//! `lmm-lint` — a workspace invariant checker for the lmm crates.
//!
//! The repo's value proposition is its correctness claims: bitwise
//! determinism at any thread count, epoch-consistent serving, a total
//! wire decoder, zero wrong-epoch responses under chaos. Tests exercise
//! those claims; this crate makes the *source-level disciplines behind
//! them* machine-checked, with no dependency on `syn` or crates.io — a
//! hand-rolled lexer ([`lexer::MaskedFile`]) blanks comments and string
//! literals so rule passes can scan for tokens without false positives,
//! and tracks `fn` spans, `#[cfg(test)]` regions, and
//! `// lint: allow(rule, "reason")` annotations.
//!
//! # Rules
//!
//! | key | pass | enforces |
//! |-----|------|----------|
//! | `panic` | [`rules::panics`] | hot-path modules (`serve/{router,shard}`, `cluster/{node,client,transport,wire,retry}`, `par`) contain no unannotated `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` |
//! | `wire_tags` | [`rules::wire`] | tag bytes in `cluster/src/wire.rs` are unique, encode/decode arms agree, and both match the committed golden registry |
//! | `lock_order` | [`rules::locks`] | nested `.lock()`/`.read()`/`.write()` acquisitions follow the declared per-file partial order (no deadlock-shaped inversions) |
//! | `lock_free` | [`rules::locks`] | the declared serve read-path functions (`serve/router.rs` point reads) contain no blocking synchronization at all — no `.lock()`/`.read()`/`.write()`, no `Mutex`/`RwLock` |
//! | `relaxed` | [`rules::atomics`] | `Ordering::Relaxed` only on allowlisted counter names; epochs, flags, and shutdown bits need a stronger ordering or a reasoned annotation |
//! | `nondet` | [`rules::det`] | the deterministic kernels (`core`, `linalg`, `rank`, `graph::delta`) never touch `Instant::now`/`SystemTime`/`RandomState` |
//!
//! Every rule exempts `#[cfg(test)]` regions, and every rule honors
//! `// lint: allow(<key>, "reason")` on the offending line or on the
//! comment block directly above it. The reason string is mandatory — an
//! allow without one does not count.
//!
//! # Entry points
//!
//! * `cargo run -p lmm-lint` — check the workspace, exit non-zero on any
//!   violation (`-- --update-golden` regenerates the wire-tag registry).
//! * `cargo test -p lmm-lint` — fixture tests for each rule plus a
//!   `workspace_is_clean` test that runs the full pass, so plain
//!   `cargo test` catches violations locally before CI does.

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

use config::LintConfig;
use lexer::MaskedFile;
use report::Violation;

/// Recursively collects `.rs` files under the configured scan roots,
/// returning workspace-relative forward-slash paths, sorted.
#[must_use]
pub fn collect_files(root: &Path, cfg: &LintConfig) -> Vec<String> {
    let mut files = Vec::new();
    for scan in cfg.scan_roots {
        walk(&root.join(scan), root, &mut files);
    }
    files.retain(|f| {
        !cfg.skip_prefixes.iter().any(|p| f.starts_with(p))
            && !cfg.skip_contains.iter().any(|s| f.contains(s))
    });
    files.sort();
    files
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

/// Runs every rule over one already-lexed file. `golden` is the wire
/// registry contents when `rel` is the wire file.
#[must_use]
pub fn check_file(
    file: &MaskedFile,
    rel: &str,
    cfg: &LintConfig,
    golden: Option<&str>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if cfg.hot_path.contains(&rel) {
        out.extend(rules::panics::check(file, rel));
    }
    if let Some(order) = cfg.lock_orders.iter().find(|o| o.file == rel) {
        out.extend(rules::locks::check(file, rel, order));
    }
    if let Some(policy) = cfg.lock_free.iter().find(|p| p.file == rel) {
        out.extend(rules::locks::check_lock_free(file, rel, policy));
    }
    if !cfg
        .relaxed_exempt_prefixes
        .iter()
        .any(|p| rel.starts_with(p))
    {
        out.extend(rules::atomics::check(file, rel, cfg));
    }
    if cfg.det_prefixes.iter().any(|p| rel.starts_with(p)) {
        out.extend(rules::det::check(file, rel, cfg));
    }
    if rel == cfg.wire_file {
        out.extend(rules::wire::check(file, rel, golden, cfg.wire_golden));
    }
    out
}

/// Runs the full pass over the workspace at `root`. Violations come back
/// sorted by file then line.
#[must_use]
pub fn run_workspace(root: &Path, cfg: &LintConfig) -> Vec<Violation> {
    let golden = std::fs::read_to_string(root.join(cfg.wire_golden)).ok();
    let mut out = Vec::new();
    for rel in collect_files(root, cfg) {
        let Ok(source) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        let file = MaskedFile::new(&source);
        out.extend(check_file(&file, &rel, cfg, golden.as_deref()));
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// Regenerates the golden wire-tag registry from the current codec.
/// Returns the path written.
///
/// # Errors
/// Propagates io errors from reading the codec or writing the registry.
pub fn update_golden(root: &Path, cfg: &LintConfig) -> std::io::Result<PathBuf> {
    let source = std::fs::read_to_string(root.join(cfg.wire_file))?;
    let file = MaskedFile::new(&source);
    let golden = rules::wire::render_golden(&rules::wire::encode_tags(&file));
    let path = root.join(cfg.wire_golden);
    std::fs::write(&path, golden)?;
    Ok(path)
}

/// The workspace root, resolved from this crate's own manifest dir so
/// the bin and tests work from any cwd.
#[must_use]
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}
