//! A hand-rolled Rust source lexer, just deep enough for invariant
//! linting — no `syn`, no crates.io, no real parse tree.
//!
//! The lexer produces a [`MaskedFile`]: a copy of the source in which
//! every comment, string literal body, raw-string body, and char literal
//! body is blanked to spaces **at the same byte offsets** (newlines are
//! preserved), so rule passes can scan for tokens like `.unwrap()` or
//! `Ordering::Relaxed` with plain substring searches and never trip over
//! a commented-out `panic!` or a raw string that happens to contain
//! `unwrap()`. On top of the mask it extracts:
//!
//! * a line index (`byte offset -> 1-based line`),
//! * `fn` item spans with their body brace ranges (for per-function lock
//!   analysis and match-arm extraction),
//! * `#[cfg(test)]` item spans (test modules are exempt from every rule),
//! * `// lint: allow(rule, "reason")` annotations per line.

use std::ops::Range;

/// One `fn` item: its name and the byte range of its `{ ... }` body
/// (delimiters included).
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's identifier.
    pub name: String,
    /// Byte range of the body, including both braces.
    pub body: Range<usize>,
}

/// One `// lint: allow(rule, "reason")` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule key being allowed (e.g. `panic`, `relaxed`).
    pub rule: String,
    /// The justification string; empty when the author left it off,
    /// which is itself a violation.
    pub reason: String,
    /// 1-based line the annotation sits on.
    pub line: usize,
}

/// A lexed source file: original text, comment/string-masked text, and
/// the structural indexes rule passes work from.
#[derive(Debug)]
pub struct MaskedFile {
    /// The original source.
    pub source: String,
    /// Same length as `source`, with comment and literal bodies blanked.
    pub masked: String,
    /// Byte offset of the start of each line (index 0 = line 1).
    pub line_starts: Vec<usize>,
    /// Every `fn` item found, in source order (nested fns included).
    pub fns: Vec<FnSpan>,
    /// Byte ranges of `#[cfg(test)]` items (usually `mod tests`).
    pub test_spans: Vec<Range<usize>>,
    /// All `lint: allow` annotations, in source order.
    pub allows: Vec<Allow>,
}

impl MaskedFile {
    /// Lexes `source` into a masked view plus structural indexes.
    #[must_use]
    pub fn new(source: &str) -> Self {
        let masked = mask(source);
        let line_starts = line_starts(source);
        let fns = fn_spans(&masked);
        let test_spans = cfg_test_spans(&masked);
        let allows = parse_allows(source, &line_starts);
        Self {
            source: source.to_string(),
            masked,
            line_starts,
            fns,
            test_spans,
            allows,
        }
    }

    /// 1-based line number of a byte offset.
    #[must_use]
    pub fn line_of(&self, pos: usize) -> usize {
        match self.line_starts.binary_search(&pos) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// `true` when `pos` falls inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn in_test(&self, pos: usize) -> bool {
        self.test_spans.iter().any(|r| r.contains(&pos))
    }

    /// The innermost `fn` whose body contains `pos`.
    #[must_use]
    pub fn fn_at(&self, pos: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body.contains(&pos))
            .min_by_key(|f| f.body.end - f.body.start)
    }

    /// Whether a violation of `rule` at 1-based `line` is covered by a
    /// reasoned `lint: allow` — on the same line, or on a contiguous run
    /// of comment-only lines directly above it.
    #[must_use]
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        let covered = |l: usize| {
            self.allows
                .iter()
                .any(|a| a.line == l && a.rule == rule && !a.reason.is_empty())
        };
        if covered(line) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            let text = self.line_text(l).trim_start();
            if !text.starts_with("//") {
                return false;
            }
            if covered(l) {
                return true;
            }
        }
        false
    }

    /// The original text of 1-based line `line`.
    #[must_use]
    pub fn line_text(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(self.source.len());
        self.source[start..end].trim_end_matches('\n')
    }
}

fn line_starts(source: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in source.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Blanks comments and literal bodies to spaces, preserving newlines and
/// byte offsets. Handles line/nested-block comments, string and raw
/// string literals (including `b"..."` / `br#"..."#`), and char/byte
/// literals, and keeps lifetimes (`'a`) out of the char-literal state.
fn mask(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out: Vec<u8> = bytes.to_vec();
    let mut i = 0usize;
    let blank = |out: &mut [u8], range: Range<usize>| {
        for b in &mut out[range] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    while i < bytes.len() {
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let end = source[i..].find('\n').map_or(bytes.len(), |off| i + off);
                blank(&mut out, i..end);
                i = end;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && j + 1 < bytes.len() && bytes[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && j + 1 < bytes.len() && bytes[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i..j);
                i = j;
            }
            b'r' | b'b' if starts_raw_string(bytes, i) => {
                let (hash_at, hashes) = raw_string_hashes(bytes, i);
                // hash_at points at the opening quote.
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                let body_start = hash_at + 1;
                let end = find_subslice(bytes, &closer, body_start).unwrap_or(bytes.len());
                blank(&mut out, body_start..end);
                i = (end + closer.len()).min(bytes.len());
            }
            b'b' if i + 1 < bytes.len() && (bytes[i + 1] == b'"' || bytes[i + 1] == b'\'') => {
                // Byte string/char: defer to the quote handling below.
                i += 1;
            }
            b'"' => {
                let end = scan_string(bytes, i + 1, b'"');
                blank(&mut out, i + 1..end.saturating_sub(1).max(i + 1));
                i = end;
            }
            b'\'' => {
                if is_char_literal(bytes, i) {
                    let end = scan_string(bytes, i + 1, b'\'');
                    blank(&mut out, i + 1..end.saturating_sub(1).max(i + 1));
                    i = end;
                } else {
                    // A lifetime (or a label): leave it alone.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    // SAFETY-free reconstruction: we only wrote ASCII spaces over bytes,
    // but a multi-byte UTF-8 char partially blanked would corrupt the
    // string. Blanking always covers whole literal/comment bodies, so we
    // re-validate and fall back to lossy only if something slipped.
    String::from_utf8(out).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

/// `r"`, `r#"`, `br"`, `br#"` openers.
fn starts_raw_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'r' {
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"' && !prev_is_ident(bytes, i)
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

/// Returns (offset of the opening quote, number of hashes).
fn raw_string_hashes(bytes: &[u8], i: usize) -> (usize, usize) {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    (j, hashes)
}

fn find_subslice(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() || from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|off| from + off)
}

/// Scans an escaped literal body from `start` to just past the closing
/// delimiter; returns the offset one past the delimiter.
fn scan_string(bytes: &[u8], start: usize, delim: u8) -> usize {
    let mut j = start;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b if b == delim => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// `'x'` / `'\n'` are char literals; `'a` in `<'a>` is a lifetime. A char
/// literal always closes within a few bytes; a lifetime never has a
/// closing quote before a non-ident char.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    let j = i + 1;
    if j >= bytes.len() {
        return false;
    }
    if bytes[j] == b'\\' {
        return true;
    }
    // `'X'` for any single char (multi-byte UTF-8 chars included: scan to
    // the next quote within 6 bytes).
    let limit = (j + 6).min(bytes.len());
    (j + 1..limit).any(|k| bytes[k] == b'\'' && k > j)
        && !(bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
        || (j + 1 < bytes.len() && bytes[j + 1] == b'\'')
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds every `fn name` item in the masked source and the brace range of
/// its body. Bodiless declarations (trait methods ending in `;`) are
/// skipped.
fn fn_spans(masked: &str) -> Vec<FnSpan> {
    let bytes = masked.as_bytes();
    let mut spans = Vec::new();
    let mut i = 0usize;
    while let Some(off) = masked[i..].find("fn ") {
        let at = i + off;
        i = at + 3;
        if prev_is_ident(bytes, at) {
            continue; // e.g. `some_fn ` or `often `
        }
        // The identifier after `fn`.
        let mut j = at + 3;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < bytes.len() && is_ident_byte(bytes[j]) {
            j += 1;
        }
        if j == name_start {
            continue;
        }
        let name = masked[name_start..j].to_string();
        // Body: the first `{` before any `;` at paren/bracket depth zero.
        let mut depth = 0i32;
        let mut body_start = None;
        while j < bytes.len() {
            match bytes[j] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    body_start = Some(j);
                    break;
                }
                b';' if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(start) = body_start else { continue };
        if let Some(end) = matching_brace(bytes, start) {
            spans.push(FnSpan {
                name,
                body: start..end + 1,
            });
        }
    }
    spans
}

/// The offset of the `}` matching the `{` at `open`.
fn matching_brace(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Byte ranges of items annotated `#[cfg(test)]`.
fn cfg_test_spans(masked: &str) -> Vec<Range<usize>> {
    let bytes = masked.as_bytes();
    let mut spans = Vec::new();
    let mut i = 0usize;
    while let Some(off) = masked[i..].find("#[cfg(test)]") {
        let at = i + off;
        i = at + "#[cfg(test)]".len();
        // Skip whitespace and any further attributes, then find the
        // item's body brace (or a `;` for bodiless items).
        let mut j = i;
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'#' {
                // Another attribute: skip its bracket group.
                let mut depth = 0i32;
                while j < bytes.len() {
                    match bytes[j] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            } else {
                break;
            }
        }
        while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' {
            j += 1;
        }
        if j < bytes.len() && bytes[j] == b'{' {
            if let Some(end) = matching_brace(bytes, j) {
                spans.push(at..end + 1);
                i = end + 1;
            }
        }
    }
    spans
}

/// Extracts `lint: allow(rule, "reason")` annotations from the original
/// source (they live in comments, which the mask blanks).
fn parse_allows(source: &str, line_starts: &[usize]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (idx, &start) in line_starts.iter().enumerate() {
        let end = line_starts.get(idx + 1).copied().unwrap_or(source.len());
        let text = &source[start..end];
        let Some(comment_at) = text.find("//") else {
            continue;
        };
        let comment = &text[comment_at..];
        let Some(key_at) = comment.find("lint: allow(") else {
            continue;
        };
        let rest = &comment[key_at + "lint: allow(".len()..];
        let rule: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let after_rule = &rest[rule.len()..];
        let reason = after_rule
            .find('"')
            .and_then(|q| {
                let body = &after_rule[q + 1..];
                body.find('"').map(|close| body[..close].to_string())
            })
            .unwrap_or_default();
        allows.push(Allow {
            rule,
            reason,
            line: idx + 1,
        });
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = r##"
let a = "panic!(inside a string)";
// a commented-out panic!("x")
let raw = r#"unwrap() in a raw string"#;
let c = '"'; // a quote char literal
let real = x.unwrap();
"##;
        let m = MaskedFile::new(src);
        assert!(!m.masked.contains("panic!"));
        assert!(m.masked.contains(".unwrap()"));
        assert_eq!(m.masked.len(), src.len());
        // Newlines survive so line numbers stay true.
        assert_eq!(m.masked.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x.trim() }\nlet y = q.unwrap();";
        let m = MaskedFile::new(src);
        assert!(m.masked.contains(".unwrap()"));
        assert!(m.masked.contains("'a"));
    }

    #[test]
    fn fn_spans_nest_and_name() {
        let src = "fn outer() { fn inner() { x(); } inner(); }";
        let m = MaskedFile::new(src);
        assert_eq!(m.fns.len(), 2);
        let inner_call = src.find("x();").unwrap();
        assert_eq!(m.fn_at(inner_call).unwrap().name, "inner");
    }

    #[test]
    fn cfg_test_regions_are_found() {
        let src = "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { b.unwrap(); } }";
        let m = MaskedFile::new(src);
        let live = src.find("a.unwrap").unwrap();
        let test = src.find("b.unwrap").unwrap();
        assert!(!m.in_test(live));
        assert!(m.in_test(test));
    }

    #[test]
    fn allow_annotations_parse_and_require_reasons() {
        let src = "// lint: allow(panic, \"poisoning is unreachable here\")\nx.unwrap();\ny.unwrap(); // lint: allow(panic, \"same line\")\nz.unwrap(); // lint: allow(panic)\n";
        let m = MaskedFile::new(src);
        assert!(m.allowed("panic", 2));
        assert!(m.allowed("panic", 3));
        assert!(!m.allowed("panic", 4), "reasonless allow must not count");
        assert!(!m.allowed("relaxed", 2), "rule keys must match");
    }

    #[test]
    fn allow_blocks_stop_at_code_lines() {
        let src = "// lint: allow(panic, \"r\")\nlet a = 1;\nx.unwrap();\n";
        let m = MaskedFile::new(src);
        assert!(!m.allowed("panic", 3), "a code line breaks the comment run");
    }
}
