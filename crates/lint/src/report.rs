//! Violation records and report rendering.

use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule key (`panic`, `wire_tags`, `lock_order`, `relaxed`,
    /// `nondet`) — also the key an annotation must use to allow it.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line, or 0 when the violation is file-level (e.g. a
    /// missing golden registry).
    pub line: usize,
    /// Human-readable description with enough context to act on.
    pub message: String,
}

impl Violation {
    pub fn new(rule: &'static str, file: &str, line: usize, message: impl Into<String>) -> Self {
        Self {
            rule,
            file: file.to_string(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// Renders a report and returns the number of violations.
pub fn render(violations: &[Violation], out: &mut impl fmt::Write) -> usize {
    for v in violations {
        let _ = writeln!(out, "{v}");
    }
    if !violations.is_empty() {
        let _ = writeln!(
            out,
            "lmm-lint: {} violation(s). Annotate intentional sites with \
             `// lint: allow(<rule>, \"reason\")` or fix them.",
            violations.len()
        );
    }
    violations.len()
}
