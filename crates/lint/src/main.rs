//! `lmm-lint` bin: check the workspace, exit 1 on violations.
//!
//! Usage:
//! * `cargo run -p lmm-lint` — run every rule, print violations.
//! * `cargo run -p lmm-lint -- --update-golden` — regenerate
//!   `crates/cluster/wire_tags.golden` from the current codec, then run.

use std::process::ExitCode;

fn main() -> ExitCode {
    let cfg = lmm_lint::config::workspace();
    let root = lmm_lint::workspace_root();

    if std::env::args().any(|a| a == "--update-golden") {
        match lmm_lint::update_golden(&root, &cfg) {
            Ok(path) => println!("lmm-lint: wrote {}", path.display()),
            Err(e) => {
                eprintln!("lmm-lint: failed to update golden registry: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let violations = lmm_lint::run_workspace(&root, &cfg);
    let mut rendered = String::new();
    let count = lmm_lint::report::render(&violations, &mut rendered);
    print!("{rendered}");
    if count == 0 {
        println!(
            "lmm-lint: ok — {} files clean across {} rules",
            lmm_lint::collect_files(&root, &cfg).len(),
            6
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
