//! Positive fixture: `Relaxed` on consistency-bearing atomics.

fn flags(shutdown: &AtomicBool, epoch: &AtomicU64) {
    shutdown.store(true, Ordering::Relaxed);
    let _e = epoch.load(Ordering::Relaxed);
}
