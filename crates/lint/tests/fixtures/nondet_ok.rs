//! Negative fixture: deterministic code, annotated timing, tests.

fn kernel(x: &mut [f64]) {
    // Mentions of Instant::now in comments don't count.
    let s = "neither does SystemTime in a string";
    let _ = s;
    for v in x.iter_mut() {
        *v *= 0.85;
    }
    // lint: allow(nondet, "fixture: progress log only, never feeds results")
    let _t = Instant::now();
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_allowed_in_tests() {
        let _t = Instant::now();
    }
}
