//! Positive fixture: blocking synchronization inside functions the
//! policy declares lock-free (`score`, `compare`, `top_k_for_site`,
//! `stats`). `publish` is off the list and may lock freely.

fn score(s: &S) -> u64 {
    let state = s.cell.lock().unwrap(); // flagged: .lock()
    *state
}

fn compare(s: &S) -> bool {
    let snap = s.routing.read().unwrap(); // flagged: .read()
    snap.ok
}

fn top_k_for_site(s: &S) -> u64 {
    let local = std::sync::Mutex::new(0u64); // flagged: Mutex
    *local.lock().unwrap() // flagged: .lock()
}

fn stats(s: &S) -> u64 {
    // lint: allow(lock_free, "runs once at startup before any worker spawns")
    *s.boot.lock().unwrap()
}

fn publish(s: &S) {
    let _gate = s.gate.lock().unwrap();
}
