//! Positive fixture: every panic site here must be flagged.

fn hot_path(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a > b {
        panic!("impossible");
    }
    match a {
        0 => todo!(),
        1 => unreachable!("one"),
        _ => a,
    }
}
