//! Negative fixture: nothing here may be flagged — panics live in
//! strings, comments, tests, or under reasoned allows.

fn hot_path(x: Option<u32>) -> u32 {
    // A commented-out panic!("boom") and x.unwrap() must not count.
    let s = "a string containing panic! and x.unwrap() text";
    let raw = r#"raw string with .unwrap() and unreachable!('x')"#;
    let _quote = '"';
    let _ = (s, raw);
    // lint: allow(panic, "fixture: justified invariant")
    let a = x.unwrap();
    let b = x.expect("present"); // lint: allow(panic, "same-line allow")
    a + b
}

fn nested_braces(x: Option<u32>) -> u32 {
    {
        {
            // lint: allow(panic, "allow inside nested-brace fn scope")
            x.unwrap()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        v.expect("tests are exempt");
        if false {
            panic!("fine in tests");
        }
    }
}
