//! Positive fixture: wall-clock and random hashing in a kernel.

fn timed_kernel(x: &mut [f64]) {
    let start = Instant::now();
    let _stamp = SystemTime::now();
    let mut seen: HashMap<u64, u64, RandomState> = HashMap::default();
    seen.insert(0, 0);
    x[0] += start.elapsed().as_secs_f64();
}
