//! Negative fixture: acquisitions in declared order (gate before cell),
//! sequential (non-nested) acquisitions, and transient guards.

fn ordered(s: &S) {
    let gate = s.gate.lock().unwrap();
    let cell = s.cell.lock().unwrap();
    drop((gate, cell));
}

fn sequential(s: &S) {
    {
        let cell = s.cell.lock().unwrap();
        drop(cell);
    }
    let gate = s.gate.lock().unwrap();
    drop(gate);
}

fn transient_guard(s: &S) -> u64 {
    // The guard is consumed by `.clone()` within the statement, so the
    // later gate acquisition is not nested inside it.
    let snapshot = s.cell.lock().unwrap().clone();
    let gate = s.gate.lock().unwrap();
    drop(gate);
    snapshot
}
