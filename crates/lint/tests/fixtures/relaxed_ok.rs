//! Negative fixture: allowlisted counters, annotated sites, and tests.

fn counters(s: &Stats) {
    s.queries.fetch_add(1, Ordering::Relaxed);
    s.retry_count.fetch_add(1, Ordering::Relaxed);
    s.staged_expired.load(Ordering::Relaxed);
    // lint: allow(relaxed, "fixture: justified non-counter use")
    s.epoch.load(Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    #[test]
    fn relaxed_is_fine_in_tests() {
        FLAG.store(true, Ordering::Relaxed);
    }
}
