//! Negative fixture: the same read-path functions, answering purely
//! through atomic snapshot loads — nothing blocks, nothing is flagged.

fn score(s: &S) -> u64 {
    let state = s.cell.load();
    state.value
}

fn compare(s: &S) -> bool {
    s.routing.load().epoch >= s.cell.load().epoch
}

fn top_k_for_site(s: &S) -> u64 {
    s.cell.load().top.first().copied().unwrap_or(0)
}

fn publish(s: &S) {
    let _gate = s.gate.lock().unwrap();
}
