//! Negative fixture: unique tags, symmetric arms, nested-match decode
//! bodies whose inner numeric arms must not be mistaken for tags.

impl Message {
    fn tag(&self) -> u8 {
        match self {
            Message::Register { .. } => 1,
            Message::Registered { .. } => 2,
            Message::Stage { .. } => 3,
        }
    }
}

pub fn decode_message(payload: &[u8]) -> Result<Message, WireError> {
    let tag = payload[0];
    let msg = match tag {
        1 => Message::Register { addr: r.str()? },
        2 => Message::Registered { node: r.u64()? },
        3 => {
            let segment = match r.u8()? {
                0 => None,
                1 => Some(take_segment(&mut r)?),
                b => return Err(WireError::Malformed { detail: format!("{b}") }),
            };
            Message::Stage { segment }
        }
        tag => return Err(WireError::BadTag { tag }),
    };
    Ok(msg)
}
