//! Positive fixture: a lock-order inversion (order: gate before cell).

fn inverted(s: &S) {
    let cell = s.cell.lock().unwrap();
    let gate = s.gate.lock().unwrap();
    drop((cell, gate));
}

fn inverted_scrutinee(s: &S) {
    match s.cell.lock() {
        Ok(_c) => {
            let _g = s.gate.lock().unwrap();
        }
        Err(_) => {}
    }
}
