//! Positive fixture: tag 2 is claimed twice in encode, tag 3 decodes to
//! the wrong variant, and tag 4 has no decode arm.

impl Message {
    fn tag(&self) -> u8 {
        match self {
            Message::Register { .. } => 1,
            Message::Registered { .. } => 2,
            Message::Ping { .. } => 2,
            Message::Pong { .. } => 3,
            Message::Abort { .. } => 4,
        }
    }
}

pub fn decode_message(payload: &[u8]) -> Result<Message, WireError> {
    let tag = payload[0];
    let msg = match tag {
        1 => Message::Register { addr: r.str()? },
        2 => Message::Registered { node: r.u64()? },
        3 => Message::Ping { seq: r.u64()? },
        tag => return Err(WireError::BadTag { tag }),
    };
    Ok(msg)
}
