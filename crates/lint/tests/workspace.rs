//! Runs the full lint pass over the real workspace, so a plain
//! `cargo test` fails locally on any new violation before CI does.

#[test]
fn workspace_is_clean() {
    let cfg = lmm_lint::config::workspace();
    let root = lmm_lint::workspace_root();
    let violations = lmm_lint::run_workspace(&root, &cfg);
    let mut rendered = String::new();
    lmm_lint::report::render(&violations, &mut rendered);
    assert!(violations.is_empty(), "\n{rendered}");
}

#[test]
fn workspace_scan_covers_the_product_crates() {
    let cfg = lmm_lint::config::workspace();
    let root = lmm_lint::workspace_root();
    let files = lmm_lint::collect_files(&root, &cfg);
    for needle in [
        "crates/serve/src/router.rs",
        "crates/cluster/src/wire.rs",
        "crates/par/src/lib.rs",
        "crates/rank/src/lib.rs",
    ] {
        assert!(files.iter().any(|f| f == needle), "missing {needle}");
    }
    assert!(
        files.iter().all(|f| !f.starts_with("crates/shims/")),
        "shims must not be scanned"
    );
}
