//! One positive + one negative fixture per rule: the positive fixture
//! must produce violations (so `cargo run -p lmm-lint` would exit
//! non-zero on such code), the negative must be clean.

use lmm_lint::config::{self, LockFreePath, LockOrder};
use lmm_lint::lexer::MaskedFile;
use lmm_lint::rules;

fn fixture(name: &str) -> MaskedFile {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    MaskedFile::new(&source)
}

const FIXTURE_ORDER: LockOrder = LockOrder {
    file: "lock fixture",
    tiers: &[&["gate"], &["cell"]],
};

#[test]
fn panic_positive_flags_every_site() {
    let v = rules::panics::check(&fixture("panic_bad.rs"), "panic_bad.rs");
    // unwrap, expect, panic!, todo!, unreachable! — five distinct sites.
    assert_eq!(v.len(), 5, "{v:#?}");
    assert!(v.iter().all(|v| v.rule == "panic"));
}

#[test]
fn panic_negative_is_clean() {
    let v = rules::panics::check(&fixture("panic_ok.rs"), "panic_ok.rs");
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn lock_positive_flags_inversions() {
    let v = rules::locks::check(&fixture("lock_bad.rs"), "lock_bad.rs", &FIXTURE_ORDER);
    assert_eq!(v.len(), 2, "{v:#?}");
    assert!(v.iter().all(|v| v.rule == "lock_order"));
    assert!(v[0].message.contains("`gate`"), "{}", v[0].message);
}

#[test]
fn lock_negative_is_clean() {
    let v = rules::locks::check(&fixture("lock_ok.rs"), "lock_ok.rs", &FIXTURE_ORDER);
    assert!(v.is_empty(), "{v:#?}");
}

const FIXTURE_LOCK_FREE: LockFreePath = LockFreePath {
    file: "lockfree fixture",
    fns: &["score", "compare", "top_k_for_site", "stats"],
};

#[test]
fn lock_free_positive_flags_every_blocking_token() {
    let v = rules::locks::check_lock_free(
        &fixture("lockfree_bad.rs"),
        "lockfree_bad.rs",
        &FIXTURE_LOCK_FREE,
    );
    // score: .lock(); compare: .read(); top_k_for_site: Mutex + .lock().
    // stats carries a reasoned allow; publish is off the policy list.
    assert_eq!(v.len(), 4, "{v:#?}");
    assert!(v.iter().all(|v| v.rule == "lock_free"));
    assert!(v.iter().any(|v| v.message.contains("`score`")), "{v:#?}");
    assert!(v.iter().any(|v| v.message.contains("`Mutex`")), "{v:#?}");
}

#[test]
fn lock_free_negative_is_clean() {
    let v = rules::locks::check_lock_free(
        &fixture("lockfree_ok.rs"),
        "lockfree_ok.rs",
        &FIXTURE_LOCK_FREE,
    );
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn relaxed_positive_flags_flags_and_epochs() {
    let cfg = config::workspace();
    let v = rules::atomics::check(&fixture("relaxed_bad.rs"), "relaxed_bad.rs", &cfg);
    assert_eq!(v.len(), 2, "{v:#?}");
    assert!(v.iter().all(|v| v.rule == "relaxed"));
}

#[test]
fn relaxed_negative_is_clean() {
    let cfg = config::workspace();
    let v = rules::atomics::check(&fixture("relaxed_ok.rs"), "relaxed_ok.rs", &cfg);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn nondet_positive_flags_clock_and_hash() {
    let cfg = config::workspace();
    let v = rules::det::check(&fixture("nondet_bad.rs"), "nondet_bad.rs", &cfg);
    // Instant::now, SystemTime, RandomState.
    assert_eq!(v.len(), 3, "{v:#?}");
    assert!(v.iter().all(|v| v.rule == "nondet"));
}

#[test]
fn nondet_negative_is_clean() {
    let cfg = config::workspace();
    let v = rules::det::check(&fixture("nondet_ok.rs"), "nondet_ok.rs", &cfg);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn wire_positive_flags_duplicates_and_asymmetry() {
    let file = fixture("wire_bad.rs");
    let golden = rules::wire::render_golden(&rules::wire::encode_tags(&file));
    let v = rules::wire::check(&file, "wire_bad.rs", Some(&golden), "wire.golden");
    // Duplicate tag 2 in encode; encode tag 3 = Pong vs decode tag 3 =
    // Ping (both directions flagged); encode tag 4 with no decode arm.
    assert!(v.len() >= 3, "{v:#?}");
    assert!(v.iter().any(|v| v.message.contains("duplicate tag 2")));
    assert!(
        v.iter().any(|v| v.message.contains("no matching")),
        "{v:#?}"
    );
}

#[test]
fn wire_negative_is_clean_and_nested_arms_are_ignored() {
    let file = fixture("wire_ok.rs");
    let encode = rules::wire::encode_tags(&file);
    let decode = rules::wire::decode_tags(&file);
    assert_eq!(encode.len(), 3);
    // The nested `match r.u8()?` arms (0/1) must not appear as tags.
    assert_eq!(decode.len(), 3, "{decode:#?}");
    let golden = rules::wire::render_golden(&encode);
    let v = rules::wire::check(&file, "wire_ok.rs", Some(&golden), "wire.golden");
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn wire_missing_golden_is_a_violation() {
    let file = fixture("wire_ok.rs");
    let v = rules::wire::check(&file, "wire_ok.rs", None, "wire.golden");
    assert_eq!(v.len(), 1);
    assert!(v[0].message.contains("missing"));
}

#[test]
fn wire_golden_drift_is_a_violation() {
    let file = fixture("wire_ok.rs");
    let golden = "1 Register\n2 Registered\n3 Renamed\n";
    let v = rules::wire::check(&file, "wire_ok.rs", Some(golden), "wire.golden");
    assert!(!v.is_empty());
}
