//! Property-based tests of the web-graph substrate: structural invariants
//! of generated graphs and consistency between DocGraph and SiteGraph
//! views.

use lmm_graph::generator::{random_web, CampusWebConfig, ZipfSampler};
use lmm_graph::sitegraph::{SiteGraph, SiteGraphOptions, SiteLinkWeighting};
use lmm_graph::{DocId, SiteId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_campus(seed: u64, n_sites: usize, total_docs: usize) -> lmm_graph::DocGraph {
    let mut cfg = CampusWebConfig::small();
    cfg.seed = seed;
    cfg.n_sites = n_sites;
    cfg.total_docs = total_docs;
    cfg.spam_farms.truncate(1);
    cfg.spam_farms[0].host_site = n_sites / 2;
    cfg.spam_farms[0].n_pages = 25;
    cfg.generate().expect("campus web")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Site membership partitions the documents: every doc belongs to
    /// exactly one site's member list, at its own index.
    #[test]
    fn site_membership_is_a_partition(seed in any::<u64>(), n_sites in 4usize..12) {
        let g = small_campus(seed, n_sites, 400);
        let mut seen = vec![false; g.n_docs()];
        for s in 0..g.n_sites() {
            for d in g.docs_of_site(SiteId(s)) {
                prop_assert!(!seen[d.index()], "doc {} in two sites", d);
                seen[d.index()] = true;
                prop_assert_eq!(g.site_of(*d), SiteId(s));
            }
        }
        prop_assert!(seen.into_iter().all(|x| x));
    }

    /// SiteGraph link-count weights tally exactly the cross-site doc links.
    #[test]
    fn sitegraph_weights_count_cross_links(seed in any::<u64>()) {
        let g = small_campus(seed, 8, 400);
        let s = SiteGraph::from_doc_graph(&g, &SiteGraphOptions::default());
        let total_weight: f64 = s.weights().iter().map(|(_, _, w)| w).sum();
        prop_assert_eq!(total_weight as usize, g.cross_site_links());
        // With self-loops the total covers every link.
        let s_all = SiteGraph::from_doc_graph(
            &g,
            &SiteGraphOptions { include_self_loops: true, ..SiteGraphOptions::default() },
        );
        let total_all: f64 = s_all.weights().iter().map(|(_, _, w)| w).sum();
        prop_assert_eq!(total_all as usize, g.n_links());
    }

    /// Site subgraphs contain exactly the intra-site edges.
    #[test]
    fn subgraph_edge_counts_are_consistent(seed in any::<u64>()) {
        let g = small_campus(seed, 8, 400);
        let intra_total: usize = (0..g.n_sites())
            .map(|s| g.site_subgraph(SiteId(s)).adjacency.nnz())
            .sum();
        prop_assert_eq!(intra_total, g.n_links() - g.cross_site_links());
    }

    /// Generation is a pure function of the configuration.
    #[test]
    fn generation_deterministic(seed in any::<u64>()) {
        let g1 = small_campus(seed, 6, 300);
        let g2 = small_campus(seed, 6, 300);
        prop_assert_eq!(g1, g2);
    }

    /// Uniform weighting never exceeds count weighting and log weighting
    /// sits in between for counts >= 1.
    #[test]
    fn weighting_orderings(seed in any::<u64>()) {
        let g = small_campus(seed, 8, 400);
        let count = SiteGraph::from_doc_graph(&g, &SiteGraphOptions::default());
        let uniform = SiteGraph::from_doc_graph(&g, &SiteGraphOptions {
            weighting: SiteLinkWeighting::Uniform, ..SiteGraphOptions::default()
        });
        let log = SiteGraph::from_doc_graph(&g, &SiteGraphOptions {
            weighting: SiteLinkWeighting::LogCount, ..SiteGraphOptions::default()
        });
        for (r, c, w) in count.weights().iter() {
            let u = uniform.weights().get(r, c);
            let l = log.weights().get(r, c);
            prop_assert_eq!(u, 1.0);
            prop_assert!(l <= w.max(1.0) + 1e-12);
            prop_assert!(l > 0.0);
        }
    }

    /// Random webs have the advertised shape and no self-loops.
    #[test]
    fn random_web_shape(
        n_docs in 10usize..200,
        n_sites in 1usize..10,
        links in 1usize..5,
        seed in any::<u64>(),
    ) {
        prop_assume!(n_sites <= n_docs);
        let g = random_web(n_docs, n_sites, links, seed).expect("random web");
        prop_assert_eq!(g.n_docs(), n_docs);
        prop_assert_eq!(g.n_sites(), n_sites);
        for (from, to) in g.links() {
            prop_assert_ne!(from, to, "self-loop generated");
        }
        // In/out degree sums both equal the edge count.
        let in_sum: usize = g.in_degrees().iter().sum();
        let out_sum: usize = (0..n_docs).map(|d| g.out_degree(DocId(d))).sum();
        prop_assert_eq!(in_sum, g.n_links());
        prop_assert_eq!(out_sum, g.n_links());
    }

    /// Compacting a merged delta log preserves both the mutated graph and
    /// the induced summary, while collapsing per-pair churn to one op.
    #[test]
    fn compact_log_equals_sequential_apply(seed in any::<u64>(), rounds in 2usize..6) {
        let g = small_campus(seed, 6, 200);
        let mut rng = seed | 1; // xorshift's zero state is absorbing
        let mut step = move |m: usize| -> usize {
            // xorshift64*: deterministic churn without pulling in rand.
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 33) as usize % m
        };
        // Build a churny log: several deltas, each with repeated add/remove
        // flips on a small pool of doc pairs plus occasional growth.
        let mut current = g.clone();
        let mut log: Option<lmm_graph::GraphDelta> = None;
        for round in 0..rounds {
            let mut d = lmm_graph::GraphDelta::for_graph(&current);
            for _ in 0..12 {
                let a = DocId(step(current.n_docs()));
                let b = DocId(step(current.n_docs()));
                if a == b {
                    continue;
                }
                if step(2) == 0 {
                    d.add_link(a, b).unwrap();
                } else {
                    d.remove_link(a, b).unwrap();
                }
            }
            if round % 2 == 1 {
                let site = SiteId(step(current.n_sites()));
                let p = d
                    .add_page(site, &format!("http://compact-{round}.page/"))
                    .unwrap();
                d.add_link(current.docs_of_site(site)[0], p).unwrap();
            }
            let (next, _) = current.apply(&d).unwrap();
            current = next;
            log = Some(match log {
                None => d,
                Some(mut merged) => {
                    merged.merge(d).unwrap();
                    merged
                }
            });
        }
        let log = log.expect("at least two rounds");
        let compacted = log.compact();
        prop_assert!(compacted.n_added_links() + compacted.n_removed_links()
            <= log.n_added_links() + log.n_removed_links());
        let (seq, seq_applied) = g.apply(&log).unwrap();
        let (one, one_applied) = g.apply(&compacted).unwrap();
        prop_assert_eq!(&current, &seq, "merge must equal sequential apply");
        prop_assert_eq!(&seq, &one, "compaction changed the mutated graph");
        prop_assert_eq!(seq_applied, one_applied, "compaction changed the summary");
    }

    /// Zipf samples stay in range and low indices dominate on average.
    #[test]
    fn zipf_sampler_in_range(n in 2usize..100, seed in any::<u64>()) {
        let z = ZipfSampler::new(n, 1.2).expect("valid");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut first_half = 0usize;
        for _ in 0..200 {
            let s = z.sample(&mut rng);
            prop_assert!(s < n);
            if s < n.div_ceil(2) {
                first_half += 1;
            }
        }
        prop_assert!(first_half >= 100, "only {} of 200 in the head", first_half);
    }
}
