//! A crawl simulator over document graphs.
//!
//! The paper's crawl methodology (Section 3.3): start from the university
//! home page, follow hyperlinks, and stop after a budget — "researchers
//! usually let the crawler run and then stop it after it has been running
//! for a period of time". [`crawl`] reproduces that process over a synthetic
//! web, producing the induced subgraph of the visited pages. The experiment
//! harness uses it to test the paper's Section 2.2 self-similarity claim:
//! rankings computed on partial crawls should already resemble the
//! full-graph ranking.

use std::collections::VecDeque;

use crate::docgraph::{DocGraph, DocGraphBuilder};
use crate::error::{GraphError, Result};
use crate::ids::DocId;

/// Frontier discipline of the crawler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrawlStrategy {
    /// Breadth-first (the typical polite-crawler order; what the paper's
    /// crawl approximates).
    #[default]
    BreadthFirst,
    /// Depth-first (explores deep paths early; used as a contrast case).
    DepthFirst,
}

/// Crawl parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawlConfig {
    /// Documents to start from (the paper starts from `www.epfl.ch`).
    pub seeds: Vec<DocId>,
    /// Stop after visiting this many pages.
    pub max_pages: usize,
    /// Frontier discipline.
    pub strategy: CrawlStrategy,
}

impl CrawlConfig {
    /// A breadth-first crawl from one seed with a page budget.
    #[must_use]
    pub fn from_seed(seed: DocId, max_pages: usize) -> Self {
        Self {
            seeds: vec![seed],
            max_pages,
            strategy: CrawlStrategy::BreadthFirst,
        }
    }
}

/// Result of a simulated crawl.
#[derive(Debug, Clone, PartialEq)]
pub struct CrawlResult {
    /// The induced subgraph over the visited pages, densely renumbered in
    /// visit order (`graph` doc `i` is `visited[i]` in the source graph).
    pub graph: DocGraph,
    /// Visited source-graph documents in visit order.
    pub visited: Vec<DocId>,
    /// `true` when the frontier emptied before the budget was reached (the
    /// reachable component is smaller than `max_pages`).
    pub frontier_exhausted: bool,
}

impl CrawlResult {
    /// Fraction of the source graph covered.
    #[must_use]
    pub fn coverage(&self, source: &DocGraph) -> f64 {
        self.visited.len() as f64 / source.n_docs() as f64
    }
}

/// Simulates a crawl of `source`, following links from the seeds until
/// `max_pages` pages have been fetched (or the frontier empties).
///
/// # Errors
/// Returns [`GraphError::InvalidConfig`] for an empty seed list, a zero
/// budget, or out-of-range seeds.
pub fn crawl(source: &DocGraph, config: &CrawlConfig) -> Result<CrawlResult> {
    if config.seeds.is_empty() {
        return Err(GraphError::InvalidConfig {
            reason: "crawl needs at least one seed".into(),
        });
    }
    if config.max_pages == 0 {
        return Err(GraphError::InvalidConfig {
            reason: "crawl budget must be positive".into(),
        });
    }
    for seed in &config.seeds {
        if seed.index() >= source.n_docs() {
            return Err(GraphError::InvalidConfig {
                reason: format!("seed {seed} out of range"),
            });
        }
    }

    let mut visited_mark = vec![false; source.n_docs()];
    let mut visited: Vec<DocId> = Vec::with_capacity(config.max_pages);
    let mut frontier: VecDeque<DocId> = VecDeque::new();
    for &seed in &config.seeds {
        if !visited_mark[seed.index()] {
            visited_mark[seed.index()] = true;
            frontier.push_back(seed);
        }
    }
    // `visited_mark` doubles as the "enqueued" marker, so the budget counts
    // fetched pages exactly once.
    while visited.len() < config.max_pages {
        let Some(doc) = (match config.strategy {
            CrawlStrategy::BreadthFirst => frontier.pop_front(),
            CrawlStrategy::DepthFirst => frontier.pop_back(),
        }) else {
            break;
        };
        visited.push(doc);
        let (cols, _) = source.adjacency().row(doc.index());
        for &dst in cols {
            if !visited_mark[dst] {
                visited_mark[dst] = true;
                frontier.push_back(DocId(dst));
            }
        }
    }
    let frontier_exhausted = frontier.is_empty();

    // Induced subgraph, renumbered in visit order.
    let mut new_id = vec![usize::MAX; source.n_docs()];
    for (i, d) in visited.iter().enumerate() {
        new_id[d.index()] = i;
    }
    let mut builder = DocGraphBuilder::with_capacity(visited.len(), visited.len() * 8);
    for d in &visited {
        builder.add_doc_with_kind(
            source.site_name(source.site_of(*d)),
            source.url(*d),
            source.kind(*d),
        );
    }
    for (i, d) in visited.iter().enumerate() {
        let (cols, _) = source.adjacency().row(d.index());
        for &dst in cols {
            if new_id[dst] != usize::MAX {
                builder
                    .add_link(DocId(i), DocId(new_id[dst]))
                    .expect("renumbered ids are dense");
            }
        }
    }
    Ok(CrawlResult {
        graph: builder.build(),
        visited,
        frontier_exhausted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CampusWebConfig;
    use crate::ids::SiteId;

    fn campus() -> DocGraph {
        let mut cfg = CampusWebConfig::small();
        cfg.total_docs = 500;
        cfg.n_sites = 10;
        cfg.spam_farms.truncate(1);
        cfg.spam_farms[0].host_site = 4;
        cfg.spam_farms[0].n_pages = 50;
        cfg.generate().unwrap()
    }

    #[test]
    fn budget_is_respected() {
        let g = campus();
        let r = crawl(&g, &CrawlConfig::from_seed(DocId(0), 100)).unwrap();
        assert_eq!(r.visited.len(), 100);
        assert_eq!(r.graph.n_docs(), 100);
        assert!(!r.frontier_exhausted);
        assert!((r.coverage(&g) - 100.0 / g.n_docs() as f64).abs() < 1e-12);
    }

    #[test]
    fn full_budget_covers_reachable_component() {
        let g = campus();
        let r = crawl(&g, &CrawlConfig::from_seed(DocId(0), g.n_docs() * 2)).unwrap();
        assert!(r.frontier_exhausted);
        // The campus web is built around a reachable core; the crawl from
        // the portal root should reach the vast majority of it.
        assert!(r.coverage(&g) > 0.9, "coverage {}", r.coverage(&g));
    }

    #[test]
    fn induced_subgraph_preserves_metadata_and_edges() {
        let g = campus();
        let r = crawl(&g, &CrawlConfig::from_seed(DocId(0), 200)).unwrap();
        for (new, old) in r.visited.iter().enumerate() {
            assert_eq!(r.graph.url(DocId(new)), g.url(*old));
            assert_eq!(r.graph.kind(DocId(new)), g.kind(*old));
            assert_eq!(
                r.graph.site_name(r.graph.site_of(DocId(new))),
                g.site_name(g.site_of(*old))
            );
        }
        // Every induced edge exists in the source graph.
        for (from, to) in r.graph.links() {
            let src = r.visited[from.index()];
            let dst = r.visited[to.index()];
            assert_eq!(g.adjacency().get(src.index(), dst.index()), 1.0);
        }
    }

    #[test]
    fn bfs_visits_in_level_order() {
        let g = campus();
        let r = crawl(&g, &CrawlConfig::from_seed(DocId(0), 50)).unwrap();
        assert_eq!(r.visited[0], DocId(0));
        // The root's direct out-neighbors come before anything else that is
        // not a neighbor (BFS level property for the first layer).
        let (neighbors, _) = g.adjacency().row(0);
        let first_after_root = r.visited[1];
        assert!(neighbors.contains(&first_after_root.index()));
    }

    #[test]
    fn dfs_differs_from_bfs() {
        let g = campus();
        let bfs = crawl(&g, &CrawlConfig::from_seed(DocId(0), 120)).unwrap();
        let dfs = crawl(
            &g,
            &CrawlConfig {
                strategy: CrawlStrategy::DepthFirst,
                ..CrawlConfig::from_seed(DocId(0), 120)
            },
        )
        .unwrap();
        assert_ne!(bfs.visited, dfs.visited);
    }

    #[test]
    fn multiple_seeds_union() {
        let g = campus();
        let far_seed = g.docs_of_site(SiteId(9))[0];
        let r = crawl(
            &g,
            &CrawlConfig {
                seeds: vec![DocId(0), far_seed],
                max_pages: 10,
                strategy: CrawlStrategy::BreadthFirst,
            },
        )
        .unwrap();
        assert!(r.visited.contains(&DocId(0)));
        assert!(r.visited.contains(&far_seed));
    }

    #[test]
    fn validation() {
        let g = campus();
        assert!(crawl(
            &g,
            &CrawlConfig {
                seeds: vec![],
                max_pages: 5,
                strategy: CrawlStrategy::BreadthFirst
            }
        )
        .is_err());
        assert!(crawl(&g, &CrawlConfig::from_seed(DocId(0), 0)).is_err());
        assert!(crawl(&g, &CrawlConfig::from_seed(DocId(999_999), 5)).is_err());
    }
}
