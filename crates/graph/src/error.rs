//! Error type for web-graph construction, generation and IO.

use std::error::Error as StdError;
use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors produced by graph construction, generation and IO.
#[derive(Debug)]
pub enum GraphError {
    /// An edge endpoint references a document that was never added.
    UnknownDoc {
        /// The offending document index.
        doc: usize,
        /// Number of documents known at the time.
        n_docs: usize,
    },
    /// A generator configuration parameter is invalid.
    InvalidConfig {
        /// Human-readable cause.
        reason: String,
    },
    /// A structural delta is malformed or does not fit the graph it is
    /// applied to.
    InvalidDelta {
        /// Human-readable cause.
        reason: String,
    },
    /// A site→shard map cannot be built from the requested counts.
    InvalidShardMap {
        /// Human-readable cause.
        reason: String,
    },
    /// A snapshot file is malformed.
    ParseSnapshot {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable cause.
        reason: String,
    },
    /// Underlying IO failure while reading or writing a snapshot.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownDoc { doc, n_docs } => {
                write!(f, "unknown document {doc} (graph has {n_docs} documents)")
            }
            GraphError::InvalidConfig { reason } => {
                write!(f, "invalid generator configuration: {reason}")
            }
            GraphError::InvalidDelta { reason } => {
                write!(f, "invalid graph delta: {reason}")
            }
            GraphError::InvalidShardMap { reason } => {
                write!(f, "invalid shard map: {reason}")
            }
            GraphError::ParseSnapshot { line, reason } => {
                write!(f, "malformed snapshot at line {line}: {reason}")
            }
            GraphError::Io(e) => write!(f, "snapshot io error: {e}"),
        }
    }
}

impl StdError for GraphError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = GraphError::UnknownDoc { doc: 9, n_docs: 3 };
        assert!(e.to_string().contains('9'));
        let e = GraphError::ParseSnapshot {
            line: 4,
            reason: "bad header".into(),
        };
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn io_source_preserved() {
        let e = GraphError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_bounds() {
        fn assert_bounds<E: StdError + Send + Sync + 'static>() {}
        assert_bounds::<GraphError>();
    }
}
