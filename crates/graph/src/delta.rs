//! Structural graph deltas: validated, composable mutations of a
//! [`DocGraph`] — growth **and** shrinkage.
//!
//! The paper's Section 1.2 motivates the layered decomposition with the
//! observation that centralized PageRank cannot keep up with Web churn —
//! and real crawls delete as much as they add. A [`GraphDelta`] records
//! every structural mutation against a fixed base graph:
//!
//! * link additions and removals (in order, so add/remove on the same pair
//!   compose like sequential edits);
//! * new pages joining an existing site;
//! * whole new sites (which must receive at least one page);
//! * **page removals** ([`GraphDelta::remove_page`]) and **whole-site
//!   removals** ([`GraphDelta::remove_site`]).
//!
//! [`DocGraph::apply`] replays a delta onto the base graph and returns the
//! mutated graph together with the induced [`AppliedDelta`] — the
//! site-granular summary the incremental ranking layer consumes: which
//! existing sites changed internally, which grew, which **shrank**, which
//! were **removed**, how many sites were appended, and whether any
//! cross-site link changed.
//!
//! Renumbering is *consistent*: every existing document and site keeps its
//! id; new documents get ids `n_docs..`, new sites get ids `n_sites..`, in
//! the order they were added to the delta. Removal is **tombstone-based**:
//! a removed document's slot stays (so surviving ids never shift under a
//! delta stream), its incident links are dropped, and it leaves its site's
//! member list. Densifying the id space is the *explicit*
//! [`DocGraph::compact_ids`] maintenance step, which returns the old→new
//! [`IdRemap`](crate::remap::IdRemap).
//!
//! Deltas **compose**: [`GraphDelta::merge`] appends a delta built against
//! the shape this delta produces, and applying the merged delta equals
//! applying the two in sequence.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use crate::docgraph::{DocGraph, PageKind};
use crate::error::{GraphError, Result};
use crate::ids::{DocId, SiteId};
use lmm_linalg::CsrMatrix;

/// One recorded link mutation. Ordered replay makes add/remove on the same
/// pair behave like sequential edits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkOp {
    Add(DocId, DocId),
    Remove(DocId, DocId),
}

/// A page added by a delta.
#[derive(Debug, Clone, PartialEq, Eq)]
struct NewPage {
    site: SiteId,
    url: String,
    kind: PageKind,
}

/// A validated, composable set of structural mutations against one base
/// graph shape.
///
/// Create one with [`GraphDelta::for_graph`]; ids handed out by
/// [`add_site`](GraphDelta::add_site) / [`add_page`](GraphDelta::add_page)
/// are the ids the mutated graph will use, so links to not-yet-applied
/// pages can be recorded immediately.
///
/// # Example
/// ```
/// use lmm_graph::docgraph::DocGraphBuilder;
/// use lmm_graph::delta::GraphDelta;
///
/// # fn main() -> Result<(), lmm_graph::GraphError> {
/// let mut b = DocGraphBuilder::new();
/// let home = b.add_doc("a.org", "http://a.org/");
/// let page = b.add_doc("a.org", "http://a.org/p");
/// b.add_link(home, page)?;
/// let graph = b.build();
///
/// let mut delta = GraphDelta::for_graph(&graph);
/// let site = delta.add_site("b.org");
/// let new_home = delta.add_page(site, "http://b.org/")?;
/// delta.add_link(page, new_home)?;
/// let (grown, applied) = graph.apply(&delta)?;
/// assert_eq!(grown.n_docs(), 3);
/// assert_eq!(grown.n_sites(), 2);
/// assert_eq!(applied.added_sites, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphDelta {
    base_docs: usize,
    base_sites: usize,
    new_sites: Vec<String>,
    new_pages: Vec<NewPage>,
    link_ops: Vec<LinkOp>,
    /// Documents to tombstone, in result-space indices (base documents or
    /// pages added by this delta).
    removed_pages: BTreeSet<usize>,
    /// Sites to tombstone, in result-space indices; removing a site
    /// implicitly removes all its pages.
    removed_sites: BTreeSet<usize>,
}

impl GraphDelta {
    /// Starts an empty delta against `graph`'s shape.
    #[must_use]
    pub fn for_graph(graph: &DocGraph) -> Self {
        Self::for_shape(graph.n_docs(), graph.n_sites())
    }

    /// Starts an empty delta against an explicit `(n_docs, n_sites)` base
    /// shape (useful when the base graph lives elsewhere, e.g. on a peer).
    #[must_use]
    pub fn for_shape(base_docs: usize, base_sites: usize) -> Self {
        Self {
            base_docs,
            base_sites,
            new_sites: Vec::new(),
            new_pages: Vec::new(),
            link_ops: Vec::new(),
            removed_pages: BTreeSet::new(),
            removed_sites: BTreeSet::new(),
        }
    }

    /// The base shape this delta must be applied to.
    #[must_use]
    pub fn base_shape(&self) -> (usize, usize) {
        (self.base_docs, self.base_sites)
    }

    /// Document slots in the graph this delta produces (tombstoned slots
    /// included — removal never shrinks the id space).
    #[must_use]
    pub fn result_docs(&self) -> usize {
        self.base_docs + self.new_pages.len()
    }

    /// Site slots in the graph this delta produces.
    #[must_use]
    pub fn result_sites(&self) -> usize {
        self.base_sites + self.new_sites.len()
    }

    /// `true` when the delta records no mutation at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.new_sites.is_empty()
            && self.new_pages.is_empty()
            && self.link_ops.is_empty()
            && self.removed_pages.is_empty()
            && self.removed_sites.is_empty()
    }

    /// Number of pages this delta adds.
    #[must_use]
    pub fn n_new_pages(&self) -> usize {
        self.new_pages.len()
    }

    /// Number of whole sites this delta adds.
    #[must_use]
    pub fn n_new_sites(&self) -> usize {
        self.new_sites.len()
    }

    /// Number of explicitly removed pages (pages of removed sites are
    /// implicit and not counted here).
    #[must_use]
    pub fn n_removed_pages(&self) -> usize {
        self.removed_pages.len()
    }

    /// Number of removed sites.
    #[must_use]
    pub fn n_removed_sites(&self) -> usize {
        self.removed_sites.len()
    }

    /// Number of recorded link additions.
    #[must_use]
    pub fn n_added_links(&self) -> usize {
        self.link_ops
            .iter()
            .filter(|op| matches!(op, LinkOp::Add(..)))
            .count()
    }

    /// Number of recorded link removals.
    #[must_use]
    pub fn n_removed_links(&self) -> usize {
        self.link_ops.len() - self.n_added_links()
    }

    /// Declares a new site, returning the id it will have after `apply`.
    /// The site must receive at least one page before the delta is applied.
    pub fn add_site(&mut self, name: &str) -> SiteId {
        let id = SiteId(self.result_sites());
        self.new_sites.push(name.to_string());
        id
    }

    /// Adds a regular page to `site` (existing or added by this delta),
    /// returning the id it will have after `apply`.
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidDelta`] for an unknown site.
    pub fn add_page(&mut self, site: SiteId, url: &str) -> Result<DocId> {
        self.add_page_with_kind(site, url, PageKind::Regular)
    }

    /// Adds a page with an explicit [`PageKind`] label.
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidDelta`] for an unknown site.
    pub fn add_page_with_kind(&mut self, site: SiteId, url: &str, kind: PageKind) -> Result<DocId> {
        if site.index() >= self.result_sites() {
            return Err(GraphError::InvalidDelta {
                reason: format!(
                    "add_page names site {} but only {} sites exist (including {} added)",
                    site.index(),
                    self.result_sites(),
                    self.new_sites.len()
                ),
            });
        }
        let id = DocId(self.result_docs());
        self.new_pages.push(NewPage {
            site,
            url: url.to_string(),
            kind,
        });
        Ok(id)
    }

    /// Tombstones a page (a base document or a page added by this delta).
    /// Its incident links are dropped at `apply`; its id slot stays dead.
    ///
    /// # Errors
    /// [`GraphError::UnknownDoc`] when the id is outside the delta's
    /// resulting range; [`GraphError::InvalidDelta`] when this delta
    /// already removed the page.
    pub fn remove_page(&mut self, doc: DocId) -> Result<()> {
        if doc.index() >= self.result_docs() {
            return Err(GraphError::UnknownDoc {
                doc: doc.index(),
                n_docs: self.result_docs(),
            });
        }
        if !self.removed_pages.insert(doc.index()) {
            return Err(GraphError::InvalidDelta {
                reason: format!("page {doc} is already removed by this delta"),
            });
        }
        Ok(())
    }

    /// Tombstones a whole site (a base site or one added by this delta),
    /// implicitly removing all its pages.
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidDelta`] for an unknown site, or when
    /// this delta already removed it.
    pub fn remove_site(&mut self, site: SiteId) -> Result<()> {
        if site.index() >= self.result_sites() {
            return Err(GraphError::InvalidDelta {
                reason: format!(
                    "remove_site names site {} but only {} sites exist",
                    site.index(),
                    self.result_sites()
                ),
            });
        }
        if !self.removed_sites.insert(site.index()) {
            return Err(GraphError::InvalidDelta {
                reason: format!("site {site} is already removed by this delta"),
            });
        }
        Ok(())
    }

    /// Records a link addition between two documents (existing or added by
    /// this delta). A link that already exists collapses at `apply` like
    /// every duplicate; a link to a removed document is dropped.
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownDoc`] when either endpoint is outside
    /// the delta's resulting document range.
    pub fn add_link(&mut self, from: DocId, to: DocId) -> Result<()> {
        self.check_endpoints(from, to)?;
        self.link_ops.push(LinkOp::Add(from, to));
        Ok(())
    }

    /// Records a (directed) link removal. Removing a link that does not
    /// exist is a no-op at `apply` time.
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownDoc`] when either endpoint is outside
    /// the delta's resulting document range.
    pub fn remove_link(&mut self, from: DocId, to: DocId) -> Result<()> {
        self.check_endpoints(from, to)?;
        self.link_ops.push(LinkOp::Remove(from, to));
        Ok(())
    }

    fn check_endpoints(&self, from: DocId, to: DocId) -> Result<()> {
        let n = self.result_docs();
        for d in [from, to] {
            if d.index() >= n {
                return Err(GraphError::UnknownDoc {
                    doc: d.index(),
                    n_docs: n,
                });
            }
        }
        Ok(())
    }

    /// Collapses churn:
    ///
    /// * for every `(from, to)` pair only the **last** recorded link op
    ///   survives (link ops have set semantics, so a pair's final presence
    ///   depends only on its last op);
    /// * link ops touching a removed page are dropped (the dead row/column
    ///   makes them no-ops);
    /// * **add-then-remove pairs cancel to nothing**: a page (or whole
    ///   site) that this delta both adds and removes is dropped from the
    ///   delta entirely, and later additions are renumbered down to fill
    ///   the gap.
    ///
    /// For deltas without cancelled additions this is exact bit for bit:
    /// `apply(compact())` equals `apply(self)`, induced summary included.
    /// When additions are cancelled, the compacted delta produces a graph
    /// without the short-lived dead slots, so equivalence holds *up to
    /// densification*: `apply(self).0.compact_ids().0 ==
    /// apply(compact()).0.compact_ids().0`, and every ranking-relevant
    /// summary set over pre-existing sites is identical.
    #[must_use]
    pub fn compact(&self) -> GraphDelta {
        // Cancelled additions: pages/sites this delta both adds and removes
        // (pages of cancelled sites are implicitly cancelled).
        let cancelled_sites: BTreeSet<usize> = self
            .removed_sites
            .iter()
            .copied()
            .filter(|&s| s >= self.base_sites)
            .collect();
        let mut cancelled_pages: BTreeSet<usize> = self
            .removed_pages
            .iter()
            .copied()
            .filter(|&d| d >= self.base_docs)
            .collect();
        for (k, page) in self.new_pages.iter().enumerate() {
            if cancelled_sites.contains(&page.site.index()) {
                cancelled_pages.insert(self.base_docs + k);
            }
        }

        // Renumber surviving additions down past the cancelled ones.
        let mut page_map: HashMap<usize, usize> = HashMap::new();
        let mut next_doc = self.base_docs;
        let mut new_pages = Vec::with_capacity(self.new_pages.len());
        let mut kept_pages: Vec<&NewPage> = Vec::new();
        for (k, page) in self.new_pages.iter().enumerate() {
            let old = self.base_docs + k;
            if cancelled_pages.contains(&old) {
                continue;
            }
            page_map.insert(old, next_doc);
            next_doc += 1;
            kept_pages.push(page);
        }
        let mut site_map: HashMap<usize, usize> = HashMap::new();
        let mut next_site = self.base_sites;
        let mut new_sites = Vec::with_capacity(self.new_sites.len());
        for (k, name) in self.new_sites.iter().enumerate() {
            let old = self.base_sites + k;
            if cancelled_sites.contains(&old) {
                continue;
            }
            site_map.insert(old, next_site);
            next_site += 1;
            new_sites.push(name.clone());
        }
        let map_doc = |d: DocId| -> DocId {
            if d.index() < self.base_docs {
                d
            } else {
                DocId(page_map[&d.index()])
            }
        };
        for page in kept_pages {
            let site = if page.site.index() < self.base_sites {
                page.site
            } else {
                SiteId(site_map[&page.site.index()])
            };
            new_pages.push(NewPage {
                site,
                url: page.url.clone(),
                kind: page.kind,
            });
        }

        // Drop ops on removed pages (no-ops on dead rows/columns), then keep
        // only the last op per pair — earlier ops are superseded.
        let dead_endpoint = |d: DocId| {
            cancelled_pages.contains(&d.index()) || self.removed_pages.contains(&d.index())
        };
        let kept_ops: Vec<LinkOp> = self
            .link_ops
            .iter()
            .filter(|op| {
                let (LinkOp::Add(from, to) | LinkOp::Remove(from, to)) = **op;
                !dead_endpoint(from) && !dead_endpoint(to)
            })
            .map(|op| match *op {
                LinkOp::Add(from, to) => LinkOp::Add(map_doc(from), map_doc(to)),
                LinkOp::Remove(from, to) => LinkOp::Remove(map_doc(from), map_doc(to)),
            })
            .collect();
        let mut last: HashMap<(DocId, DocId), usize> = HashMap::new();
        for (i, op) in kept_ops.iter().enumerate() {
            let (LinkOp::Add(from, to) | LinkOp::Remove(from, to)) = *op;
            last.insert((from, to), i);
        }
        let link_ops = kept_ops
            .iter()
            .enumerate()
            .filter(|(i, op)| {
                let (LinkOp::Add(from, to) | LinkOp::Remove(from, to)) = **op;
                last[&(from, to)] == *i
            })
            .map(|(_, op)| *op)
            .collect();

        GraphDelta {
            base_docs: self.base_docs,
            base_sites: self.base_sites,
            new_sites,
            new_pages,
            link_ops,
            removed_pages: self
                .removed_pages
                .iter()
                .copied()
                .filter(|&d| d < self.base_docs)
                .collect(),
            removed_sites: self
                .removed_sites
                .iter()
                .copied()
                .filter(|&s| s < self.base_sites)
                .collect(),
        }
    }

    /// Appends `next` — a delta built against the shape *this* delta
    /// produces — so that applying the merged delta equals applying the two
    /// in sequence.
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidDelta`] when `next`'s base shape does
    /// not match this delta's resulting shape, or when `next` removes a
    /// page or site this delta already removed (the sequential application
    /// would reject the double removal).
    pub fn merge(&mut self, next: GraphDelta) -> Result<()> {
        if next.base_docs != self.result_docs() || next.base_sites != self.result_sites() {
            return Err(GraphError::InvalidDelta {
                reason: format!(
                    "cannot merge: next delta expects base {}x{} (docs x sites), \
                     this delta produces {}x{}",
                    next.base_docs,
                    next.base_sites,
                    self.result_docs(),
                    self.result_sites()
                ),
            });
        }
        if let Some(&d) = next
            .removed_pages
            .iter()
            .find(|d| self.removed_pages.contains(d))
        {
            return Err(GraphError::InvalidDelta {
                reason: format!("cannot merge: page {d} is removed by both deltas"),
            });
        }
        if let Some(&s) = next
            .removed_sites
            .iter()
            .find(|s| self.removed_sites.contains(s))
        {
            return Err(GraphError::InvalidDelta {
                reason: format!("cannot merge: site {s} is removed by both deltas"),
            });
        }
        self.new_sites.extend(next.new_sites);
        self.new_pages.extend(next.new_pages);
        self.link_ops.extend(next.link_ops);
        self.removed_pages.extend(next.removed_pages);
        self.removed_sites.extend(next.removed_sites);
        Ok(())
    }

    /// Site of a document reference (existing or added by this delta),
    /// given the base graph.
    fn site_of_ref(&self, graph: &DocGraph, doc: DocId) -> SiteId {
        if doc.index() < self.base_docs {
            graph.site_of(doc)
        } else {
            self.new_pages[doc.index() - self.base_docs].site
        }
    }
}

/// The summary a [`DocGraph::apply`] call induces — the site-granular
/// staleness sets the incremental re-ranking layer consumes, plus the
/// **exact** edge diff the serving layer folds into delta-composed graph
/// fingerprints (and a future delta-gossip layer can ship to replicas).
///
/// `changed_sites`, `grown_sites`, `shrunk_sites`, and `removed_sites` are
/// pairwise disjoint, sorted, and deduplicated; all name *pre-existing*
/// sites. Appended site slots are counted by `added_sites` (their ids are
/// the trailing range of the mutated graph; a slot both added and removed
/// by the delta is appended dead). `links_added`/`links_removed` record
/// only *real* changes: no-op mutations (removing an absent link, re-adding
/// a present one, add+remove churn on one pair) never appear, while every
/// link dropped by a page or site removal does.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AppliedDelta {
    /// Pre-existing sites with unchanged membership whose intra-site link
    /// structure actually changed (a rank recomputation can warm-start from
    /// the previous vector).
    pub changed_sites: Vec<usize>,
    /// Pre-existing sites that gained pages and lost none (their local
    /// rank dimension changed — cold rebuild).
    pub grown_sites: Vec<usize>,
    /// Pre-existing sites that lost pages but survive (cold rebuild; they
    /// may have gained pages too).
    pub shrunk_sites: Vec<usize>,
    /// Pre-existing sites tombstoned by this delta (their pages all appear
    /// in `removed_docs`).
    pub removed_sites: Vec<usize>,
    /// Number of site slots appended (ids `old_n_sites..new_n_sites`).
    pub added_sites: usize,
    /// Whether the SiteRank is stale: any cross-site link count changed,
    /// or the live site set itself changed.
    pub cross_links_changed: bool,
    /// Every link present in the mutated graph but not the base graph
    /// (deterministic order: by source row, then destination).
    pub links_added: Vec<(DocId, DocId)>,
    /// Every link present in the base graph but not the mutated graph
    /// (same ordering as `links_added`) — including links dropped because
    /// an endpoint was removed.
    pub links_removed: Vec<(DocId, DocId)>,
    /// Site assignment of every appended document slot, in id order
    /// (`old_n_docs..new_n_docs`; slots cancelled by a same-delta removal
    /// included).
    pub new_doc_sites: Vec<SiteId>,
    /// Every document tombstoned by this delta, ascending — explicit page
    /// removals, members of removed sites, and same-delta cancelled
    /// additions.
    pub removed_docs: Vec<DocId>,
    /// Site assignment of each entry of `removed_docs` (parallel), so
    /// fingerprints can retire the assignment terms in O(delta).
    pub removed_doc_sites: Vec<SiteId>,
}

impl AppliedDelta {
    /// `true` when the delta induced no *ranking-relevant* change. A
    /// net-zero cross-site rewire keeps every layer fresh (SiteRank weights
    /// are counts) yet still reports its edge diff in
    /// `links_added`/`links_removed` — the graph changed even though the
    /// ranking did not.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.changed_sites.is_empty()
            && self.grown_sites.is_empty()
            && self.shrunk_sites.is_empty()
            && self.removed_sites.is_empty()
            && self.added_sites == 0
            && !self.cross_links_changed
    }
}

impl DocGraph {
    /// Applies a structural delta, returning the mutated graph and the
    /// induced [`AppliedDelta`].
    ///
    /// Renumbering is consistent: existing documents and sites keep their
    /// ids; new documents and sites are appended in delta order; removed
    /// documents and sites are **tombstoned** in place (see
    /// [`compact_ids`](DocGraph::compact_ids) for the explicit
    /// densification step).
    ///
    /// This is the hot path of live re-ranking, so it **patches** rather
    /// than rebuilds: untouched adjacency rows are copied wholesale, only
    /// rows named by the delta's link ops (or holding a link to a removed
    /// document) are edited, the URL/kind columns share their existing
    /// segments copy-on-write, and the induced summary falls out of the
    /// same pass — the per-row diffs between old and new edge sets. No-op
    /// mutations (removing an absent link, re-adding an existing one,
    /// net-zero cross rewires) therefore never mark a layer stale.
    /// Append-only deltas cost O(delta + sites); deltas that remove pages
    /// additionally scan the adjacency once to drop in-links of the dead.
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidDelta`] when the delta was built
    /// against a different shape, a new site name is empty / duplicates an
    /// existing or sibling name, a new site received no (surviving) pages,
    /// a removal names an already-tombstoned page or site, a page is added
    /// to an already-tombstoned site, or a removal empties a site that was
    /// not itself removed.
    #[allow(clippy::too_many_lines)]
    pub fn apply(&self, delta: &GraphDelta) -> Result<(DocGraph, AppliedDelta)> {
        if delta.base_docs != self.n_docs() || delta.base_sites != self.n_sites() {
            return Err(GraphError::InvalidDelta {
                reason: format!(
                    "delta expects base shape {}x{} (docs x sites), graph is {}x{}",
                    delta.base_docs,
                    delta.base_sites,
                    self.n_docs(),
                    self.n_sites()
                ),
            });
        }
        let n_base_docs = self.n_docs();
        let n_base_sites = self.n_sites();
        let mut names: HashSet<&str> = (0..n_base_sites)
            .map(|s| self.site_name(SiteId(s)))
            .collect();
        for name in &delta.new_sites {
            if name.is_empty() {
                return Err(GraphError::InvalidDelta {
                    reason: "new site name is empty".into(),
                });
            }
            if !names.insert(name) {
                return Err(GraphError::InvalidDelta {
                    reason: format!("new site name {name:?} already exists"),
                });
            }
        }

        // --- Removal validation and the newly-dead set. ---
        for &s in &delta.removed_sites {
            if s < n_base_sites && !self.is_live_site(SiteId(s)) {
                return Err(GraphError::InvalidDelta {
                    reason: format!("site {s} is already tombstoned"),
                });
            }
        }
        let mut dead_new: BTreeSet<usize> = BTreeSet::new();
        for &d in &delta.removed_pages {
            if d < n_base_docs {
                if !self.is_live_doc(DocId(d)) {
                    return Err(GraphError::InvalidDelta {
                        reason: format!("page {d} is already tombstoned"),
                    });
                }
                // Strict so merge ≡ sequential: removing a base page whose
                // whole site this delta also removes would succeed merged
                // but fail replayed (the site removal tombstones it first).
                let s = self.site_of(DocId(d)).index();
                if delta.removed_sites.contains(&s) {
                    return Err(GraphError::InvalidDelta {
                        reason: format!(
                            "page {d} belongs to site {s}, which this delta also \
                             removes — drop the redundant remove_page"
                        ),
                    });
                }
            }
            dead_new.insert(d);
        }
        for &s in &delta.removed_sites {
            if s < n_base_sites {
                for &d in self.docs_of_site(SiteId(s)) {
                    dead_new.insert(d.index());
                }
            }
        }
        for (k, page) in delta.new_pages.iter().enumerate() {
            // Adds to a base site this delta removes are rejected (they
            // would fail a sequential replay too); adds to a site the
            // delta itself created and then removed are the cancellation
            // path — the page materializes tombstoned.
            if page.site.index() < n_base_sites
                && (!self.is_live_site(page.site)
                    || delta.removed_sites.contains(&page.site.index()))
            {
                return Err(GraphError::InvalidDelta {
                    reason: format!(
                        "page {:?} added to tombstoned site {}",
                        page.url,
                        page.site.index()
                    ),
                });
            }
            if delta.removed_sites.contains(&page.site.index()) {
                dead_new.insert(n_base_docs + k);
            }
        }

        // --- Per-site membership accounting (live pages only). ---
        // `lost`: explicit page removals per pre-existing site (validated
        // above: such a site is never itself removed, so it survives).
        let mut lost: BTreeMap<usize, usize> = BTreeMap::new();
        for &d in &delta.removed_pages {
            if d < n_base_docs {
                *lost.entry(self.site_of(DocId(d)).index()).or_insert(0) += 1;
            }
        }
        // `appended`: surviving new pages per site slot, in id order.
        let mut appended: BTreeMap<usize, Vec<DocId>> = BTreeMap::new();
        for (k, page) in delta.new_pages.iter().enumerate() {
            let id = n_base_docs + k;
            if !dead_new.contains(&id) {
                appended
                    .entry(page.site.index())
                    .or_default()
                    .push(DocId(id));
            }
        }
        // Every surviving site must stay non-empty.
        for s in 0..n_base_sites {
            if !self.is_live_site(SiteId(s)) || delta.removed_sites.contains(&s) {
                continue;
            }
            let size = self.site_size(SiteId(s)) + appended.get(&s).map_or(0, Vec::len)
                - lost.get(&s).copied().unwrap_or(0);
            if size == 0 {
                return Err(GraphError::InvalidDelta {
                    reason: format!(
                        "removing every page of site {s} ({:?}) without removing the \
                         site — remove_site makes the intent explicit",
                        self.site_name(SiteId(s))
                    ),
                });
            }
        }
        for (k, name) in delta.new_sites.iter().enumerate() {
            let slot = n_base_sites + k;
            if !delta.removed_sites.contains(&slot) && appended.get(&slot).map_or(0, Vec::len) == 0
            {
                return Err(GraphError::InvalidDelta {
                    reason: format!("new site {name:?} has no pages"),
                });
            }
        }

        // --- Site classification (pre-existing, pairwise disjoint). ---
        let removed_sites: Vec<usize> = delta
            .removed_sites
            .iter()
            .copied()
            .filter(|&s| s < n_base_sites)
            .collect();
        let shrunk: BTreeSet<usize> = lost.keys().copied().collect();
        let grown: BTreeSet<usize> = appended
            .keys()
            .copied()
            .filter(|&s| s < n_base_sites && !shrunk.contains(&s))
            .collect();
        // Sites whose rank is already stale for membership reasons never
        // also land in `changed`.
        let mut cold: BTreeSet<usize> = shrunk.union(&grown).copied().collect();
        cold.extend(removed_sites.iter().copied());

        // Group link ops by source row, preserving replay order within a
        // row: a removal only erases links present *at that point*, so
        // add-then-remove deletes and remove-then-add restores — the same
        // result as sequential edits.
        let mut ops_by_src: HashMap<usize, Vec<(usize, bool)>> = HashMap::new();
        for op in &delta.link_ops {
            match *op {
                LinkOp::Add(from, to) => ops_by_src
                    .entry(from.index())
                    .or_default()
                    .push((to.index(), true)),
                LinkOp::Remove(from, to) => ops_by_src
                    .entry(from.index())
                    .or_default()
                    .push((to.index(), false)),
            }
        }

        let n_docs = delta.result_docs();
        let base = self.adjacency();
        let mut row_ptr = Vec::with_capacity(n_docs + 1);
        row_ptr.push(0usize);
        let mut col_idx: Vec<usize> = Vec::with_capacity(base.nnz() + delta.link_ops.len());

        let mut changed: BTreeSet<usize> = BTreeSet::new();
        // Net cross-link count change per ordered site pair: the SiteRank
        // depends on the *counts*, so a rewire that removes one s->t link
        // and adds another leaves it fresh — exactly like comparing the
        // derived SiteGraphs, at O(ops) instead of O(E).
        let mut cross_deltas: HashMap<(usize, usize), i64> = HashMap::new();
        let mut links_added: Vec<(DocId, DocId)> = Vec::new();
        let mut links_removed: Vec<(DocId, DocId)> = Vec::new();
        let mut record_change = |src: usize, dst: usize, sign: i64| {
            if sign > 0 {
                links_added.push((DocId(src), DocId(dst)));
            } else {
                links_removed.push((DocId(src), DocId(dst)));
            }
            let s = delta.site_of_ref(self, DocId(src)).index();
            let t = delta.site_of_ref(self, DocId(dst)).index();
            if s == t {
                if s < n_base_sites && !cold.contains(&s) {
                    changed.insert(s);
                }
            } else {
                *cross_deltas.entry((s, t)).or_insert(0) += sign;
            }
        };

        // A target is dead when tombstoned by this delta or already dead in
        // the base (live base rows never hold old-dead columns, but link
        // ops may name them).
        let is_dead = |d: usize| -> bool {
            dead_new.contains(&d) || (d < n_base_docs && !self.is_live_doc(DocId(d)))
        };
        for row in 0..n_docs {
            let base_cols: &[usize] = if row < n_base_docs {
                base.row(row).0
            } else {
                &[]
            };
            if is_dead(row) {
                // The whole row dies; every base link is a real removal.
                for &b in base_cols {
                    record_change(row, b, -1);
                }
                row_ptr.push(col_idx.len());
                continue;
            }
            let ops = ops_by_src.get(&row);
            let holds_dead =
                !dead_new.is_empty() && base_cols.iter().any(|&c| dead_new.contains(&c));
            if ops.is_none() && !holds_dead {
                col_idx.extend_from_slice(base_cols);
                row_ptr.push(col_idx.len());
                continue;
            }
            let mut set: BTreeSet<usize> = base_cols.iter().copied().collect();
            if let Some(ops) = ops {
                for &(dst, is_add) in ops {
                    if is_add {
                        set.insert(dst);
                    } else {
                        set.remove(&dst);
                    }
                }
            }
            set.retain(|&c| !is_dead(c));
            let final_cols: Vec<usize> = set.into_iter().collect();
            // Sorted merge-diff of base vs final edge sets — only *real*
            // changes feed the induced delta.
            let (mut i, mut j) = (0usize, 0usize);
            while i < base_cols.len() || j < final_cols.len() {
                match (base_cols.get(i), final_cols.get(j)) {
                    (Some(&b), Some(&f)) if b == f => {
                        i += 1;
                        j += 1;
                    }
                    (Some(&b), Some(&f)) if b < f => {
                        record_change(row, b, -1);
                        i += 1;
                    }
                    (Some(&b), None) => {
                        record_change(row, b, -1);
                        i += 1;
                    }
                    (_, Some(&f)) => {
                        record_change(row, f, 1);
                        j += 1;
                    }
                    (None, None) => unreachable!("loop condition"),
                }
            }
            col_idx.extend_from_slice(&final_cols);
            row_ptr.push(col_idx.len());
        }
        let values = vec![1.0f64; col_idx.len()];
        let adjacency = CsrMatrix::from_raw_parts(n_docs, n_docs, row_ptr, col_idx, values)
            .map_err(|e| GraphError::InvalidDelta {
                reason: format!("patched adjacency is inconsistent: {e}"),
            })?;

        // --- Columnar storage: copy-on-write extension + targeted member
        // rebuilds (existing entries keep their positions — that is the
        // renumbering guarantee). ---
        let urls = self
            .urls
            .append(delta.new_pages.iter().map(|p| p.url.clone()).collect());
        let kinds = self
            .kinds
            .append(delta.new_pages.iter().map(|p| p.kind).collect());
        let mut site_of = self.site_of.clone();
        site_of.extend(delta.new_pages.iter().map(|p| p.site));
        let mut site_names = self.site_names.clone();
        site_names.extend(delta.new_sites.iter().cloned());
        let mut site_members = self.site_members.clone();
        site_members.resize(site_names.len(), Arc::new(Vec::new()));
        let mut rebuild: BTreeSet<usize> = appended.keys().copied().collect();
        rebuild.extend(lost.keys().copied());
        rebuild.extend(removed_sites.iter().copied());
        for &s in &rebuild {
            let mut members: Vec<DocId> = if s < n_base_sites && !delta.removed_sites.contains(&s) {
                self.site_members[s]
                    .iter()
                    .copied()
                    .filter(|d| !dead_new.contains(&d.index()))
                    .collect()
            } else {
                Vec::new()
            };
            if !delta.removed_sites.contains(&s) {
                if let Some(adds) = appended.get(&s) {
                    members.extend_from_slice(adds);
                }
            }
            site_members[s] = Arc::new(members);
        }
        let mut dead_docs: Vec<DocId> = self.dead_docs.as_ref().clone();
        dead_docs.extend(dead_new.iter().map(|&d| DocId(d)));
        dead_docs.sort_unstable();
        let mut dead_sites: Vec<SiteId> = self.dead_sites.as_ref().clone();
        dead_sites.extend(delta.removed_sites.iter().map(|&s| SiteId(s)));
        dead_sites.sort_unstable();

        let removed_doc_sites: Vec<SiteId> = dead_new
            .iter()
            .map(|&d| {
                if d < n_base_docs {
                    self.site_of(DocId(d))
                } else {
                    delta.new_pages[d - n_base_docs].site
                }
            })
            .collect();
        let removed_docs: Vec<DocId> = dead_new.iter().map(|&d| DocId(d)).collect();

        let mutated = DocGraph {
            urls,
            kinds,
            site_of,
            site_names,
            site_members,
            dead_docs: Arc::new(dead_docs),
            dead_sites: Arc::new(dead_sites),
            adjacency,
        };

        let added_sites = delta.new_sites.len();
        let live_added = (0..added_sites)
            .filter(|k| !delta.removed_sites.contains(&(n_base_sites + k)))
            .count();
        let cross_links_changed = live_added > 0
            || !removed_sites.is_empty()
            || cross_deltas.values().any(|&net| net != 0);
        let applied = AppliedDelta {
            changed_sites: changed.into_iter().collect(),
            grown_sites: grown.into_iter().collect(),
            shrunk_sites: shrunk.into_iter().collect(),
            removed_sites,
            added_sites,
            cross_links_changed,
            links_added,
            links_removed,
            new_doc_sites: delta.new_pages.iter().map(|p| p.site).collect(),
            removed_docs,
            removed_doc_sites,
        };
        Ok((mutated, applied))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docgraph::DocGraphBuilder;

    fn base() -> DocGraph {
        let mut b = DocGraphBuilder::new();
        let a0 = b.add_doc_with_kind("a.org", "http://a.org/", PageKind::SiteRoot);
        let a1 = b.add_doc("a.org", "http://a.org/1");
        let a2 = b.add_doc("a.org", "http://a.org/2");
        let b0 = b.add_doc_with_kind("b.org", "http://b.org/", PageKind::SiteRoot);
        let b1 = b.add_doc("b.org", "http://b.org/1");
        b.add_link(a0, a1).unwrap();
        b.add_link(a1, a2).unwrap();
        b.add_link(a2, a0).unwrap();
        b.add_link(a2, b0).unwrap();
        b.add_link(b0, b1).unwrap();
        b.add_link(b1, a0).unwrap();
        b.build()
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = base();
        let delta = GraphDelta::for_graph(&g);
        assert!(delta.is_empty());
        let (h, applied) = g.apply(&delta).unwrap();
        assert_eq!(g, h);
        assert!(applied.is_empty());
    }

    #[test]
    fn grow_existing_site_renumbers_consistently() {
        let g = base();
        let mut delta = GraphDelta::for_graph(&g);
        let p = delta.add_page(SiteId(0), "http://a.org/new").unwrap();
        assert_eq!(p, DocId(5));
        delta.add_link(DocId(0), p).unwrap();
        let (h, applied) = g.apply(&delta).unwrap();
        assert_eq!(h.n_docs(), 6);
        assert_eq!(h.n_sites(), 2);
        // Existing ids untouched.
        for d in 0..5 {
            assert_eq!(h.url(DocId(d)), g.url(DocId(d)));
            assert_eq!(h.site_of(DocId(d)), g.site_of(DocId(d)));
        }
        assert_eq!(h.site_of(p), SiteId(0));
        assert_eq!(h.docs_of_site(SiteId(0)).len(), 4);
        assert_eq!(applied.grown_sites, vec![0]);
        assert_eq!(applied.added_sites, 0);
        // A root -> new-page link is intra-site only; cross counts kept.
        assert!(applied.changed_sites.is_empty());
        assert!(!applied.cross_links_changed);
    }

    #[test]
    fn add_whole_site_with_cross_links() {
        let g = base();
        let mut delta = GraphDelta::for_graph(&g);
        let s = delta.add_site("c.org");
        assert_eq!(s, SiteId(2));
        let c0 = delta
            .add_page_with_kind(s, "http://c.org/", PageKind::SiteRoot)
            .unwrap();
        let c1 = delta.add_page(s, "http://c.org/1").unwrap();
        delta.add_link(c0, c1).unwrap();
        delta.add_link(c1, c0).unwrap();
        delta.add_link(DocId(0), c0).unwrap();
        delta.add_link(c0, DocId(3)).unwrap();
        let (h, applied) = g.apply(&delta).unwrap();
        assert_eq!(h.n_sites(), 3);
        assert_eq!(h.site_name(s), "c.org");
        assert_eq!(h.docs_of_site(s), &[c0, c1]);
        assert_eq!(h.kind(c0), PageKind::SiteRoot);
        assert_eq!(applied.added_sites, 1);
        assert!(applied.cross_links_changed);
        assert!(applied.grown_sites.is_empty());
    }

    #[test]
    fn intra_rewire_reports_changed_site_only() {
        let g = base();
        let mut delta = GraphDelta::for_graph(&g);
        delta.remove_link(DocId(0), DocId(1)).unwrap();
        delta.add_link(DocId(1), DocId(0)).unwrap();
        let (h, applied) = g.apply(&delta).unwrap();
        assert_eq!(h.n_links(), g.n_links());
        assert_eq!(applied.changed_sites, vec![0]);
        assert!(applied.grown_sites.is_empty());
        assert!(!applied.cross_links_changed);
    }

    #[test]
    fn noop_mutations_do_not_mark_sites_stale() {
        let g = base();
        let mut delta = GraphDelta::for_graph(&g);
        // Remove a link that does not exist, re-add one that does.
        delta.remove_link(DocId(1), DocId(0)).unwrap();
        delta.add_link(DocId(0), DocId(1)).unwrap();
        let (h, applied) = g.apply(&delta).unwrap();
        assert_eq!(g, h);
        assert!(applied.is_empty());
    }

    #[test]
    fn link_ops_replay_in_order() {
        let g = base();
        // Add then remove: the link (and its base duplicate) is gone.
        let mut delta = GraphDelta::for_graph(&g);
        delta.add_link(DocId(0), DocId(1)).unwrap();
        delta.remove_link(DocId(0), DocId(1)).unwrap();
        let (h, _) = g.apply(&delta).unwrap();
        assert_eq!(h.adjacency().get(0, 1), 0.0);
        // Remove then add: the link survives.
        let mut delta = GraphDelta::for_graph(&g);
        delta.remove_link(DocId(0), DocId(1)).unwrap();
        delta.add_link(DocId(0), DocId(1)).unwrap();
        let (h, _) = g.apply(&delta).unwrap();
        assert_eq!(h.adjacency().get(0, 1), 1.0);
    }

    #[test]
    fn merge_equals_sequential_application() {
        let g = base();
        let mut d1 = GraphDelta::for_graph(&g);
        let p = d1.add_page(SiteId(1), "http://b.org/2").unwrap();
        d1.add_link(DocId(3), p).unwrap();
        let (mid, _) = g.apply(&d1).unwrap();

        let mut d2 = GraphDelta::for_graph(&mid);
        let s = d2.add_site("c.org");
        let c0 = d2.add_page(s, "http://c.org/").unwrap();
        d2.add_link(p, c0).unwrap();
        d2.add_link(c0, DocId(0)).unwrap();
        d2.remove_link(DocId(3), p).unwrap();
        let (seq, _) = mid.apply(&d2).unwrap();

        let mut merged = d1.clone();
        merged.merge(d2).unwrap();
        let (one_shot, _) = g.apply(&merged).unwrap();
        assert_eq!(seq, one_shot);
    }

    #[test]
    fn merge_rejects_shape_mismatch() {
        let g = base();
        let mut d1 = GraphDelta::for_graph(&g);
        d1.add_page(SiteId(0), "http://a.org/x").unwrap();
        // d2 built against the *base* shape, not d1's result shape.
        let d2 = GraphDelta::for_graph(&g);
        let mut merged = d1;
        assert!(matches!(
            merged.merge(d2),
            Err(GraphError::InvalidDelta { .. })
        ));
    }

    #[test]
    fn apply_rejects_wrong_base_shape() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        d.add_page(SiteId(0), "http://a.org/x").unwrap();
        let (grown, _) = g.apply(&d).unwrap();
        // The same delta cannot be applied to the already-grown graph.
        assert!(matches!(
            grown.apply(&d),
            Err(GraphError::InvalidDelta { .. })
        ));
    }

    #[test]
    fn apply_rejects_duplicate_and_empty_site_names() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        let s = d.add_site("a.org"); // collides with an existing site
        d.add_page(s, "http://a.org/dup").unwrap();
        assert!(matches!(g.apply(&d), Err(GraphError::InvalidDelta { .. })));

        let mut d = GraphDelta::for_graph(&g);
        let s = d.add_site("");
        d.add_page(s, "http://nameless/").unwrap();
        assert!(matches!(g.apply(&d), Err(GraphError::InvalidDelta { .. })));
    }

    #[test]
    fn apply_rejects_empty_new_site() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        d.add_site("c.org");
        assert!(matches!(g.apply(&d), Err(GraphError::InvalidDelta { .. })));
    }

    #[test]
    fn builder_rejects_out_of_range_references() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        assert!(d.add_page(SiteId(7), "http://nowhere/").is_err());
        assert!(d.add_link(DocId(0), DocId(99)).is_err());
        assert!(d.remove_link(DocId(99), DocId(0)).is_err());
        assert!(d.remove_page(DocId(99)).is_err());
        assert!(d.remove_site(SiteId(7)).is_err());
        // A link to a page added by the delta itself is fine.
        let p = d.add_page(SiteId(0), "http://a.org/x").unwrap();
        d.add_link(DocId(0), p).unwrap();
        assert_eq!(d.n_added_links(), 1);
        assert_eq!(d.n_removed_links(), 0);
        assert_eq!(d.n_new_pages(), 1);
        assert_eq!(d.n_new_sites(), 0);
    }

    #[test]
    fn applied_delta_reports_exact_edge_diffs() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        // One real removal, one real addition, one no-op removal (absent
        // link), one no-op re-add (present link).
        d.remove_link(DocId(0), DocId(1)).unwrap();
        d.add_link(DocId(1), DocId(0)).unwrap();
        d.remove_link(DocId(4), DocId(3)).unwrap();
        d.add_link(DocId(3), DocId(4)).unwrap();
        let (_, applied) = g.apply(&d).unwrap();
        assert_eq!(applied.links_added, vec![(DocId(1), DocId(0))]);
        assert_eq!(applied.links_removed, vec![(DocId(0), DocId(1))]);
        assert!(applied.new_doc_sites.is_empty());

        // Growth: appended docs report their site assignments in id order.
        let mut d = GraphDelta::for_graph(&g);
        let p = d.add_page(SiteId(1), "http://b.org/new").unwrap();
        let s = d.add_site("c.org");
        let c = d.add_page(s, "http://c.org/").unwrap();
        d.add_link(p, c).unwrap();
        let (_, applied) = g.apply(&d).unwrap();
        assert_eq!(applied.new_doc_sites, vec![SiteId(1), SiteId(2)]);
        assert_eq!(applied.links_added, vec![(p, c)]);
        assert!(applied.links_removed.is_empty());
    }

    #[test]
    fn net_zero_cross_rewire_reports_links_but_stays_rank_fresh() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        // Remove the one a->b cross link, add a different a->b cross link:
        // counts per site pair are unchanged, so no layer is stale — but
        // the graph itself changed and the diff must say so.
        d.remove_link(DocId(2), DocId(3)).unwrap();
        d.add_link(DocId(1), DocId(4)).unwrap();
        let (h, applied) = g.apply(&d).unwrap();
        assert_ne!(g, h);
        assert!(applied.is_empty(), "ranking-relevant summary is empty");
        assert_eq!(applied.links_added, vec![(DocId(1), DocId(4))]);
        assert_eq!(applied.links_removed, vec![(DocId(2), DocId(3))]);
    }

    #[test]
    fn compact_collapses_per_pair_churn() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        // Churn one pair five times (net: removed), flip another back and
        // forth (net: added), and keep an untouched single op.
        for _ in 0..2 {
            d.add_link(DocId(0), DocId(1)).unwrap();
            d.remove_link(DocId(0), DocId(1)).unwrap();
        }
        d.remove_link(DocId(0), DocId(1)).unwrap();
        d.remove_link(DocId(1), DocId(2)).unwrap();
        d.add_link(DocId(1), DocId(2)).unwrap();
        d.add_link(DocId(4), DocId(2)).unwrap();
        let compacted = d.compact();
        assert_eq!(compacted.link_ops.len(), 3, "one op per touched pair");
        let (seq, seq_applied) = g.apply(&d).unwrap();
        let (one, one_applied) = g.apply(&compacted).unwrap();
        assert_eq!(seq, one);
        assert_eq!(seq_applied, one_applied);
        // Pages/sites/ids are untouched by compaction.
        assert_eq!(compacted.base_shape(), d.base_shape());
        assert_eq!(compacted.n_new_pages(), d.n_new_pages());
    }

    #[test]
    fn compact_preserves_ids_of_added_pages() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        let p = d.add_page(SiteId(0), "http://a.org/p").unwrap();
        d.add_link(DocId(0), p).unwrap();
        d.remove_link(DocId(0), p).unwrap();
        d.add_link(DocId(0), p).unwrap();
        let s = d.add_site("c.org");
        let c = d.add_page(s, "http://c.org/").unwrap();
        d.add_link(p, c).unwrap();
        let compacted = d.compact();
        let (seq, _) = g.apply(&d).unwrap();
        let (one, _) = g.apply(&compacted).unwrap();
        assert_eq!(seq, one);
        assert_eq!(one.url(p), "http://a.org/p");
        assert_eq!(one.site_of(c), s);
    }

    #[test]
    fn mixed_delta_summary_is_exact() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        // Intra rewire in site 1, growth in site 0, one new site.
        d.remove_link(DocId(3), DocId(4)).unwrap();
        d.add_link(DocId(4), DocId(3)).unwrap();
        let p = d.add_page(SiteId(0), "http://a.org/x").unwrap();
        d.add_link(p, DocId(0)).unwrap();
        let s = d.add_site("c.org");
        let c = d.add_page(s, "http://c.org/").unwrap();
        d.add_link(c, c).unwrap();
        let (h, applied) = g.apply(&d).unwrap();
        assert_eq!(applied.changed_sites, vec![1]);
        assert_eq!(applied.grown_sites, vec![0]);
        assert_eq!(applied.added_sites, 1);
        assert!(applied.cross_links_changed);
        assert_eq!(h.n_docs(), 7);
        assert_eq!(h.n_sites(), 3);
    }

    // --- Removal ---

    #[test]
    fn remove_page_tombstones_in_place() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        d.remove_page(DocId(1)).unwrap();
        let (h, applied) = g.apply(&d).unwrap();
        // Slots unchanged; doc 1 is dead, its links dropped both ways.
        assert_eq!(h.n_docs(), 5);
        assert_eq!(h.n_live_docs(), 4);
        assert!(!h.is_live_doc(DocId(1)));
        assert!(h.is_live_doc(DocId(0)));
        assert_eq!(h.docs_of_site(SiteId(0)), &[DocId(0), DocId(2)]);
        assert_eq!(h.adjacency().get(0, 1), 0.0); // in-link dropped
        assert_eq!(h.out_degree(DocId(1)), 0); // out-links dropped
        assert_eq!(applied.shrunk_sites, vec![0]);
        assert!(applied.changed_sites.is_empty());
        assert!(applied.removed_sites.is_empty());
        assert_eq!(applied.removed_docs, vec![DocId(1)]);
        assert_eq!(applied.removed_doc_sites, vec![SiteId(0)]);
        assert_eq!(
            applied.links_removed,
            vec![(DocId(0), DocId(1)), (DocId(1), DocId(2))]
        );
        // Intra-only removal: cross counts are untouched.
        assert!(!applied.cross_links_changed);
        // Ids stay meaningful: surviving docs keep urls and sites.
        assert_eq!(h.url(DocId(2)), g.url(DocId(2)));
    }

    #[test]
    fn remove_site_tombstones_every_member() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        d.remove_site(SiteId(1)).unwrap();
        let (h, applied) = g.apply(&d).unwrap();
        assert_eq!(h.n_sites(), 2);
        assert_eq!(h.n_live_sites(), 1);
        assert!(!h.is_live_site(SiteId(1)));
        assert!(h.docs_of_site(SiteId(1)).is_empty());
        assert!(!h.is_live_doc(DocId(3)));
        assert!(!h.is_live_doc(DocId(4)));
        assert_eq!(applied.removed_sites, vec![1]);
        assert_eq!(applied.removed_docs, vec![DocId(3), DocId(4)]);
        assert!(applied.cross_links_changed);
        // The a2 -> b0 and b1 -> a0 cross links died with the site.
        assert!(applied.links_removed.contains(&(DocId(2), DocId(3))));
        assert!(applied.links_removed.contains(&(DocId(4), DocId(0))));
        // Site 0 lost no members: it is not shrunk (its cross row changed,
        // which the SiteRank recompute covers).
        assert!(applied.shrunk_sites.is_empty());
        assert_eq!(h.live_sites().collect::<Vec<_>>(), vec![SiteId(0)]);
    }

    #[test]
    fn double_removal_is_rejected() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        d.remove_page(DocId(1)).unwrap();
        assert!(d.remove_page(DocId(1)).is_err());
        d.remove_site(SiteId(1)).unwrap();
        assert!(d.remove_site(SiteId(1)).is_err());
        // Applying twice: the second apply sees already-dead slots.
        let (h, _) = g.apply(&d).unwrap();
        let mut again = GraphDelta::for_graph(&h);
        again.remove_page(DocId(1)).unwrap();
        assert!(matches!(
            h.apply(&again),
            Err(GraphError::InvalidDelta { .. })
        ));
        let mut again = GraphDelta::for_graph(&h);
        again.remove_site(SiteId(1)).unwrap();
        assert!(matches!(
            h.apply(&again),
            Err(GraphError::InvalidDelta { .. })
        ));
    }

    #[test]
    fn emptying_a_site_without_removing_it_is_rejected() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        d.remove_page(DocId(3)).unwrap();
        d.remove_page(DocId(4)).unwrap();
        assert!(matches!(g.apply(&d), Err(GraphError::InvalidDelta { .. })));
        // Replacing the membership keeps the site alive.
        let mut d = GraphDelta::for_graph(&g);
        d.remove_page(DocId(3)).unwrap();
        d.remove_page(DocId(4)).unwrap();
        let p = d.add_page(SiteId(1), "http://b.org/fresh").unwrap();
        d.add_link(p, DocId(0)).unwrap();
        let (h, applied) = g.apply(&d).unwrap();
        assert_eq!(h.docs_of_site(SiteId(1)), &[p]);
        // Lost and gained: classified shrunk (cold rebuild), not grown.
        assert_eq!(applied.shrunk_sites, vec![1]);
        assert!(applied.grown_sites.is_empty());
    }

    #[test]
    fn adding_to_a_tombstoned_site_is_rejected() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        d.remove_site(SiteId(1)).unwrap();
        let (h, _) = g.apply(&d).unwrap();
        let mut again = GraphDelta::for_graph(&h);
        again.add_page(SiteId(1), "http://b.org/zombie").unwrap();
        assert!(matches!(
            h.apply(&again),
            Err(GraphError::InvalidDelta { .. })
        ));
    }

    #[test]
    fn removal_then_growth_keeps_ids_stable_across_a_stream() {
        let g = base();
        let mut d1 = GraphDelta::for_graph(&g);
        d1.remove_page(DocId(1)).unwrap();
        let (h, _) = g.apply(&d1).unwrap();
        // The next delta's new page lands after the tombstoned slot.
        let mut d2 = GraphDelta::for_graph(&h);
        let p = d2.add_page(SiteId(0), "http://a.org/late").unwrap();
        assert_eq!(p, DocId(5));
        d2.add_link(DocId(0), p).unwrap();
        let (i, applied) = h.apply(&d2).unwrap();
        assert_eq!(i.docs_of_site(SiteId(0)), &[DocId(0), DocId(2), p]);
        assert!(!i.is_live_doc(DocId(1)));
        assert_eq!(applied.grown_sites, vec![0]);
        // Merge must equal the sequential application.
        let mut merged = d1.clone();
        merged.merge(d2).unwrap();
        let (one_shot, _) = g.apply(&merged).unwrap();
        assert_eq!(i, one_shot);
    }

    #[test]
    fn links_to_removed_docs_are_dropped_not_errors() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        d.remove_page(DocId(1)).unwrap();
        d.add_link(DocId(0), DocId(1)).unwrap(); // target dies
        d.add_link(DocId(1), DocId(2)).unwrap(); // source dies
        let (h, applied) = g.apply(&d).unwrap();
        assert_eq!(h.adjacency().get(0, 1), 0.0);
        assert_eq!(h.out_degree(DocId(1)), 0);
        // Neither op produced a link_added entry.
        assert!(applied.links_added.is_empty());
    }

    #[test]
    fn compact_cancels_add_then_remove_page_pairs() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        let doomed = d.add_page(SiteId(0), "http://a.org/doomed").unwrap();
        d.add_link(DocId(0), doomed).unwrap();
        let kept = d.add_page(SiteId(0), "http://a.org/kept").unwrap();
        d.add_link(DocId(0), kept).unwrap();
        d.remove_page(doomed).unwrap();
        let compacted = d.compact();
        // The cancelled page (and its link) is gone; `kept` renumbered down.
        assert_eq!(compacted.n_new_pages(), 1);
        assert!(compacted.removed_pages.is_empty());
        let (seq, seq_applied) = g.apply(&d).unwrap();
        let (one, one_applied) = g.apply(&compacted).unwrap();
        // Equivalent up to densification of the short-lived dead slot.
        assert_ne!(seq.n_docs(), one.n_docs());
        assert_eq!(seq.compact_ids().0, one.compact_ids().0);
        assert_eq!(seq_applied.grown_sites, one_applied.grown_sites);
        assert_eq!(seq_applied.changed_sites, one_applied.changed_sites);
        assert_eq!(seq_applied.shrunk_sites, one_applied.shrunk_sites);
        assert_eq!(
            seq_applied.cross_links_changed,
            one_applied.cross_links_changed
        );
    }

    #[test]
    fn compact_cancels_add_then_remove_site() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        let s = d.add_site("doomed.org");
        let q = d.add_page(s, "http://doomed.org/").unwrap();
        d.add_link(DocId(0), q).unwrap();
        let keep = d.add_site("kept.org");
        let k0 = d.add_page(keep, "http://kept.org/").unwrap();
        d.add_link(k0, DocId(0)).unwrap();
        d.remove_site(s).unwrap();
        let compacted = d.compact();
        assert_eq!(compacted.n_new_sites(), 1);
        assert_eq!(compacted.n_new_pages(), 1);
        assert!(compacted.removed_sites.is_empty());
        let (seq, _) = g.apply(&d).unwrap();
        let (one, _) = g.apply(&compacted).unwrap();
        assert_eq!(seq.compact_ids().0, one.compact_ids().0);
        // The cancelled site occupies a dead slot in the uncompacted replay.
        assert_eq!(seq.n_sites(), 4);
        assert_eq!(seq.n_live_sites(), 3);
        assert_eq!(one.n_sites(), 3);
    }

    #[test]
    fn compact_ids_densifies_after_removal() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        d.remove_page(DocId(1)).unwrap();
        let (h, _) = g.apply(&d).unwrap();
        let (dense, remap) = h.compact_ids();
        assert_eq!(dense.n_docs(), 4);
        assert!(!dense.has_tombstones());
        assert_eq!(remap.doc(DocId(0)), Some(DocId(0)));
        assert_eq!(remap.doc(DocId(1)), None);
        assert_eq!(remap.doc(DocId(2)), Some(DocId(1)));
        assert_eq!(remap.doc(DocId(4)), Some(DocId(3)));
        assert_eq!(dense.url(DocId(1)), g.url(DocId(2)));
        // Edges survive under the renumbering: a2 -> a0 becomes 1 -> 0.
        assert_eq!(dense.adjacency().get(1, 0), 1.0);
        // Site removal compacts the site axis too.
        let mut d2 = GraphDelta::for_graph(&h);
        d2.remove_site(SiteId(1)).unwrap();
        let (i, _) = h.apply(&d2).unwrap();
        let (dense2, remap2) = i.compact_ids();
        assert_eq!(dense2.n_sites(), 1);
        assert_eq!(remap2.site(SiteId(1)), None);
        assert_eq!(dense2.n_docs(), 2);
    }

    #[test]
    fn mixed_removal_delta_summary_is_exact() {
        // One removed site, one shrunk site, one grown site — the
        // acceptance shape at graph level — on a 4-site base.
        let mut b = DocGraphBuilder::new();
        let mut docs = Vec::new();
        for s in 0..4 {
            let name = format!("s{s}.org");
            let d0 = b.add_doc(&name, &format!("http://{name}/"));
            let d1 = b.add_doc(&name, &format!("http://{name}/1"));
            let d2 = b.add_doc(&name, &format!("http://{name}/2"));
            b.add_link(d0, d1).unwrap();
            b.add_link(d1, d2).unwrap();
            b.add_link(d2, d0).unwrap();
            docs.push((d0, d1, d2));
        }
        b.add_link(docs[0].2, docs[1].0).unwrap();
        b.add_link(docs[1].2, docs[2].0).unwrap();
        b.add_link(docs[3].0, docs[0].0).unwrap();
        let g = b.build();

        let mut d = GraphDelta::for_graph(&g);
        d.remove_site(SiteId(1)).unwrap();
        d.remove_page(docs[2].1).unwrap();
        let p = d.add_page(SiteId(3), "http://s3.org/new").unwrap();
        d.add_link(docs[3].0, p).unwrap();
        d.add_link(p, docs[3].0).unwrap();
        let (h, applied) = g.apply(&d).unwrap();
        assert_eq!(applied.removed_sites, vec![1]);
        assert_eq!(applied.shrunk_sites, vec![2]);
        assert_eq!(applied.grown_sites, vec![3]);
        assert!(applied.changed_sites.is_empty());
        assert!(applied.cross_links_changed);
        assert_eq!(h.n_live_sites(), 3);
        assert_eq!(h.site_size(SiteId(2)), 2);
        assert_eq!(h.site_size(SiteId(3)), 4);
        assert_eq!(applied.removed_docs.len(), 4);
    }
}
