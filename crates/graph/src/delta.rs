//! Structural graph deltas: validated, composable mutations of a
//! [`DocGraph`].
//!
//! The paper's Section 1.2 motivates the layered decomposition with the
//! observation that centralized PageRank cannot keep up with Web *growth* —
//! yet growth is exactly what a same-shape recrawl diff cannot express. A
//! [`GraphDelta`] records the missing mutations against a fixed base graph:
//!
//! * link additions and removals (in order, so add/remove on the same pair
//!   compose like sequential edits);
//! * new pages joining an existing site;
//! * whole new sites (which must receive at least one page).
//!
//! [`DocGraph::apply`] replays a delta onto the base graph and returns the
//! mutated graph together with the induced [`AppliedDelta`] — the
//! site-granular summary the incremental ranking layer consumes: which
//! existing sites changed internally, which grew, how many sites were
//! appended, and whether any cross-site link changed.
//!
//! Renumbering is *consistent*: every existing document and site keeps its
//! id; new documents get ids `n_docs..`, new sites get ids `n_sites..`, in
//! the order they were added to the delta. That stability is what lets the
//! incremental layer reuse per-site rank vectors by index.
//!
//! Deltas **compose**: [`GraphDelta::merge`] appends a delta built against
//! the shape this delta produces, and applying the merged delta equals
//! applying the two in sequence.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::docgraph::{DocGraph, PageKind};
use crate::error::{GraphError, Result};
use crate::ids::{DocId, SiteId};
use lmm_linalg::CsrMatrix;

/// One recorded link mutation. Ordered replay makes add/remove on the same
/// pair behave like sequential edits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkOp {
    Add(DocId, DocId),
    Remove(DocId, DocId),
}

/// A page added by a delta.
#[derive(Debug, Clone, PartialEq, Eq)]
struct NewPage {
    site: SiteId,
    url: String,
    kind: PageKind,
}

/// A validated, composable set of structural mutations against one base
/// graph shape.
///
/// Create one with [`GraphDelta::for_graph`]; ids handed out by
/// [`add_site`](GraphDelta::add_site) / [`add_page`](GraphDelta::add_page)
/// are the ids the mutated graph will use, so links to not-yet-applied
/// pages can be recorded immediately.
///
/// # Example
/// ```
/// use lmm_graph::docgraph::DocGraphBuilder;
/// use lmm_graph::delta::GraphDelta;
///
/// # fn main() -> Result<(), lmm_graph::GraphError> {
/// let mut b = DocGraphBuilder::new();
/// let home = b.add_doc("a.org", "http://a.org/");
/// let page = b.add_doc("a.org", "http://a.org/p");
/// b.add_link(home, page)?;
/// let graph = b.build();
///
/// let mut delta = GraphDelta::for_graph(&graph);
/// let site = delta.add_site("b.org");
/// let new_home = delta.add_page(site, "http://b.org/")?;
/// delta.add_link(page, new_home)?;
/// let (grown, applied) = graph.apply(&delta)?;
/// assert_eq!(grown.n_docs(), 3);
/// assert_eq!(grown.n_sites(), 2);
/// assert_eq!(applied.added_sites, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphDelta {
    base_docs: usize,
    base_sites: usize,
    new_sites: Vec<String>,
    new_pages: Vec<NewPage>,
    link_ops: Vec<LinkOp>,
}

impl GraphDelta {
    /// Starts an empty delta against `graph`'s shape.
    #[must_use]
    pub fn for_graph(graph: &DocGraph) -> Self {
        Self::for_shape(graph.n_docs(), graph.n_sites())
    }

    /// Starts an empty delta against an explicit `(n_docs, n_sites)` base
    /// shape (useful when the base graph lives elsewhere, e.g. on a peer).
    #[must_use]
    pub fn for_shape(base_docs: usize, base_sites: usize) -> Self {
        Self {
            base_docs,
            base_sites,
            new_sites: Vec::new(),
            new_pages: Vec::new(),
            link_ops: Vec::new(),
        }
    }

    /// The base shape this delta must be applied to.
    #[must_use]
    pub fn base_shape(&self) -> (usize, usize) {
        (self.base_docs, self.base_sites)
    }

    /// Documents in the graph this delta produces.
    #[must_use]
    pub fn result_docs(&self) -> usize {
        self.base_docs + self.new_pages.len()
    }

    /// Sites in the graph this delta produces.
    #[must_use]
    pub fn result_sites(&self) -> usize {
        self.base_sites + self.new_sites.len()
    }

    /// `true` when the delta records no mutation at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.new_sites.is_empty() && self.new_pages.is_empty() && self.link_ops.is_empty()
    }

    /// Number of pages this delta adds.
    #[must_use]
    pub fn n_new_pages(&self) -> usize {
        self.new_pages.len()
    }

    /// Number of whole sites this delta adds.
    #[must_use]
    pub fn n_new_sites(&self) -> usize {
        self.new_sites.len()
    }

    /// Number of recorded link additions.
    #[must_use]
    pub fn n_added_links(&self) -> usize {
        self.link_ops
            .iter()
            .filter(|op| matches!(op, LinkOp::Add(..)))
            .count()
    }

    /// Number of recorded link removals.
    #[must_use]
    pub fn n_removed_links(&self) -> usize {
        self.link_ops.len() - self.n_added_links()
    }

    /// Declares a new site, returning the id it will have after `apply`.
    /// The site must receive at least one page before the delta is applied.
    pub fn add_site(&mut self, name: &str) -> SiteId {
        let id = SiteId(self.result_sites());
        self.new_sites.push(name.to_string());
        id
    }

    /// Adds a regular page to `site` (existing or added by this delta),
    /// returning the id it will have after `apply`.
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidDelta`] for an unknown site.
    pub fn add_page(&mut self, site: SiteId, url: &str) -> Result<DocId> {
        self.add_page_with_kind(site, url, PageKind::Regular)
    }

    /// Adds a page with an explicit [`PageKind`] label.
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidDelta`] for an unknown site.
    pub fn add_page_with_kind(&mut self, site: SiteId, url: &str, kind: PageKind) -> Result<DocId> {
        if site.index() >= self.result_sites() {
            return Err(GraphError::InvalidDelta {
                reason: format!(
                    "add_page names site {} but only {} sites exist (including {} added)",
                    site.index(),
                    self.result_sites(),
                    self.new_sites.len()
                ),
            });
        }
        let id = DocId(self.result_docs());
        self.new_pages.push(NewPage {
            site,
            url: url.to_string(),
            kind,
        });
        Ok(id)
    }

    /// Records a link addition between two documents (existing or added by
    /// this delta). A link that already exists collapses at `apply` like
    /// every duplicate.
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownDoc`] when either endpoint is outside
    /// the delta's resulting document range.
    pub fn add_link(&mut self, from: DocId, to: DocId) -> Result<()> {
        self.check_endpoints(from, to)?;
        self.link_ops.push(LinkOp::Add(from, to));
        Ok(())
    }

    /// Records a (directed) link removal. Removing a link that does not
    /// exist is a no-op at `apply` time.
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownDoc`] when either endpoint is outside
    /// the delta's resulting document range.
    pub fn remove_link(&mut self, from: DocId, to: DocId) -> Result<()> {
        self.check_endpoints(from, to)?;
        self.link_ops.push(LinkOp::Remove(from, to));
        Ok(())
    }

    fn check_endpoints(&self, from: DocId, to: DocId) -> Result<()> {
        let n = self.result_docs();
        for d in [from, to] {
            if d.index() >= n {
                return Err(GraphError::UnknownDoc {
                    doc: d.index(),
                    n_docs: n,
                });
            }
        }
        Ok(())
    }

    /// Collapses add/remove churn: for every `(from, to)` pair only the
    /// **last** recorded link op survives, so replaying a long merged log
    /// onto a cold replica is O(final changes) instead of O(stream length).
    ///
    /// This is semantically exact, not a heuristic: link ops have set
    /// semantics (adding a present link and removing an absent one are
    /// no-ops), so the final presence of a pair depends only on its last
    /// op — whatever the base graph held. Ops on distinct pairs are
    /// independent, hence dropping the superseded prefix of each pair's
    /// history preserves [`DocGraph::apply`]'s result *and* its induced
    /// [`AppliedDelta`] bit for bit.
    ///
    /// Page and site additions are untouched: their ids are assigned by
    /// position (and link ops reference those ids), so they must stay in
    /// recording order — they are already O(final changes) per site, with
    /// [`DocGraph::apply`] folding the membership appends per site in one
    /// pass.
    #[must_use]
    pub fn compact(&self) -> GraphDelta {
        // Index of the last op per pair; earlier ops are superseded.
        let mut last: HashMap<(DocId, DocId), usize> = HashMap::new();
        for (i, op) in self.link_ops.iter().enumerate() {
            let (LinkOp::Add(from, to) | LinkOp::Remove(from, to)) = *op;
            last.insert((from, to), i);
        }
        let link_ops = self
            .link_ops
            .iter()
            .enumerate()
            .filter(|(i, op)| {
                let (LinkOp::Add(from, to) | LinkOp::Remove(from, to)) = **op;
                last[&(from, to)] == *i
            })
            .map(|(_, op)| *op)
            .collect();
        // Field-by-field (not `..self.clone()`): cloning `self` would copy
        // the full pre-compaction op log just to throw it away.
        GraphDelta {
            base_docs: self.base_docs,
            base_sites: self.base_sites,
            new_sites: self.new_sites.clone(),
            new_pages: self.new_pages.clone(),
            link_ops,
        }
    }

    /// Appends `next` — a delta built against the shape *this* delta
    /// produces — so that applying the merged delta equals applying the two
    /// in sequence.
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidDelta`] when `next`'s base shape does
    /// not match this delta's resulting shape.
    pub fn merge(&mut self, next: GraphDelta) -> Result<()> {
        if next.base_docs != self.result_docs() || next.base_sites != self.result_sites() {
            return Err(GraphError::InvalidDelta {
                reason: format!(
                    "cannot merge: next delta expects base {}x{} (docs x sites), \
                     this delta produces {}x{}",
                    next.base_docs,
                    next.base_sites,
                    self.result_docs(),
                    self.result_sites()
                ),
            });
        }
        self.new_sites.extend(next.new_sites);
        self.new_pages.extend(next.new_pages);
        self.link_ops.extend(next.link_ops);
        Ok(())
    }

    /// Site of a document reference (existing or added by this delta),
    /// given the base graph.
    fn site_of_ref(&self, graph: &DocGraph, doc: DocId) -> SiteId {
        if doc.index() < self.base_docs {
            graph.site_of(doc)
        } else {
            self.new_pages[doc.index() - self.base_docs].site
        }
    }
}

/// The summary a [`DocGraph::apply`] call induces — the site-granular
/// staleness sets the incremental re-ranking layer consumes, plus the
/// **exact** edge diff the serving layer folds into delta-composed graph
/// fingerprints (and a future delta-gossip layer can ship to replicas).
///
/// `changed_sites` and `grown_sites` are disjoint, sorted, and deduplicated;
/// both only name *pre-existing* sites. Appended sites are counted by
/// `added_sites` (their ids are the trailing range of the mutated graph).
/// `links_added`/`links_removed` record only *real* changes: no-op
/// mutations (removing an absent link, re-adding a present one, add+remove
/// churn on one pair) never appear.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AppliedDelta {
    /// Pre-existing sites with unchanged membership whose intra-site link
    /// structure actually changed (a rank recomputation can warm-start from
    /// the previous vector).
    pub changed_sites: Vec<usize>,
    /// Pre-existing sites that gained pages (their local rank dimension
    /// changed — cold rebuild).
    pub grown_sites: Vec<usize>,
    /// Number of whole sites appended (ids `old_n_sites..new_n_sites`).
    pub added_sites: usize,
    /// Whether any cross-site link (or the site count itself) changed, i.e.
    /// whether the SiteRank is stale.
    pub cross_links_changed: bool,
    /// Every link present in the mutated graph but not the base graph
    /// (deterministic order: by source row, then destination).
    pub links_added: Vec<(DocId, DocId)>,
    /// Every link present in the base graph but not the mutated graph
    /// (same ordering as `links_added`).
    pub links_removed: Vec<(DocId, DocId)>,
    /// Site assignment of every appended document, in id order
    /// (`old_n_docs..new_n_docs`).
    pub new_doc_sites: Vec<SiteId>,
}

impl AppliedDelta {
    /// `true` when the delta induced no *ranking-relevant* change. A
    /// net-zero cross-site rewire keeps every layer fresh (SiteRank weights
    /// are counts) yet still reports its edge diff in
    /// `links_added`/`links_removed` — the graph changed even though the
    /// ranking did not.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.changed_sites.is_empty()
            && self.grown_sites.is_empty()
            && self.added_sites == 0
            && !self.cross_links_changed
    }
}

impl DocGraph {
    /// Applies a structural delta, returning the mutated graph and the
    /// induced [`AppliedDelta`].
    ///
    /// Renumbering is consistent: existing documents and sites keep their
    /// ids; new documents and sites are appended in delta order.
    ///
    /// This is the hot path of live re-ranking, so it **patches** rather
    /// than rebuilds: untouched adjacency rows are copied wholesale, only
    /// rows named by the delta's link ops are edited, and the induced
    /// summary falls out of the same pass — the per-row diffs between old
    /// and new edge sets. No-op mutations (removing an absent link,
    /// re-adding an existing one, net-zero cross rewires) therefore never
    /// mark a layer stale.
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidDelta`] when the delta was built
    /// against a different shape, a new site name is empty / duplicates an
    /// existing or sibling name, or a new site received no pages.
    pub fn apply(&self, delta: &GraphDelta) -> Result<(DocGraph, AppliedDelta)> {
        if delta.base_docs != self.n_docs() || delta.base_sites != self.n_sites() {
            return Err(GraphError::InvalidDelta {
                reason: format!(
                    "delta expects base shape {}x{} (docs x sites), graph is {}x{}",
                    delta.base_docs,
                    delta.base_sites,
                    self.n_docs(),
                    self.n_sites()
                ),
            });
        }
        let mut names: HashSet<&str> = (0..self.n_sites())
            .map(|s| self.site_name(SiteId(s)))
            .collect();
        for name in &delta.new_sites {
            if name.is_empty() {
                return Err(GraphError::InvalidDelta {
                    reason: "new site name is empty".into(),
                });
            }
            if !names.insert(name) {
                return Err(GraphError::InvalidDelta {
                    reason: format!("new site name {name:?} already exists"),
                });
            }
        }
        // Every new site must end up non-empty: an empty site has no local
        // rank distribution and would poison the layered pipeline.
        let mut new_site_pages = vec![0usize; delta.new_sites.len()];
        for page in &delta.new_pages {
            if let Some(k) = page.site.index().checked_sub(self.n_sites()) {
                new_site_pages[k] += 1;
            }
        }
        if let Some(k) = new_site_pages.iter().position(|&c| c == 0) {
            return Err(GraphError::InvalidDelta {
                reason: format!("new site {:?} has no pages", delta.new_sites[k]),
            });
        }

        // Group link ops by source row, preserving replay order within a
        // row: a removal only erases links present *at that point*, so
        // add-then-remove deletes and remove-then-add restores — the same
        // result as sequential edits.
        let mut ops_by_src: HashMap<usize, Vec<(usize, bool)>> = HashMap::new();
        for op in &delta.link_ops {
            match *op {
                LinkOp::Add(from, to) => ops_by_src
                    .entry(from.index())
                    .or_default()
                    .push((to.index(), true)),
                LinkOp::Remove(from, to) => ops_by_src
                    .entry(from.index())
                    .or_default()
                    .push((to.index(), false)),
            }
        }

        let n_docs = delta.result_docs();
        let base = self.adjacency();
        let mut row_ptr = Vec::with_capacity(n_docs + 1);
        row_ptr.push(0usize);
        let mut col_idx: Vec<usize> = Vec::with_capacity(base.nnz() + delta.link_ops.len());

        // Induced-delta accumulators, filled from the per-row edge diffs.
        let grown: BTreeSet<usize> = delta
            .new_pages
            .iter()
            .filter(|p| p.site.index() < self.n_sites())
            .map(|p| p.site.index())
            .collect();
        let mut changed: BTreeSet<usize> = BTreeSet::new();
        // Net cross-link count change per ordered site pair: the SiteRank
        // depends on the *counts*, so a rewire that removes one s->t link
        // and adds another leaves it fresh — exactly like comparing the
        // derived SiteGraphs, at O(ops) instead of O(E).
        let mut cross_deltas: HashMap<(usize, usize), i64> = HashMap::new();
        let mut links_added: Vec<(DocId, DocId)> = Vec::new();
        let mut links_removed: Vec<(DocId, DocId)> = Vec::new();
        let mut record_change = |src: usize, dst: usize, sign: i64| {
            if sign > 0 {
                links_added.push((DocId(src), DocId(dst)));
            } else {
                links_removed.push((DocId(src), DocId(dst)));
            }
            let s = delta.site_of_ref(self, DocId(src)).index();
            let t = delta.site_of_ref(self, DocId(dst)).index();
            if s == t {
                if s < self.n_sites() && !grown.contains(&s) {
                    changed.insert(s);
                }
            } else {
                *cross_deltas.entry((s, t)).or_insert(0) += sign;
            }
        };

        for row in 0..n_docs {
            let base_cols: &[usize] = if row < self.n_docs() {
                base.row(row).0
            } else {
                &[]
            };
            match ops_by_src.get(&row) {
                None => col_idx.extend_from_slice(base_cols),
                Some(ops) => {
                    let mut set: BTreeSet<usize> = base_cols.iter().copied().collect();
                    for &(dst, is_add) in ops {
                        if is_add {
                            set.insert(dst);
                        } else {
                            set.remove(&dst);
                        }
                    }
                    let final_cols: Vec<usize> = set.into_iter().collect();
                    // Sorted merge-diff of base vs final edge sets — only
                    // *real* changes feed the induced delta.
                    let (mut i, mut j) = (0usize, 0usize);
                    while i < base_cols.len() || j < final_cols.len() {
                        match (base_cols.get(i), final_cols.get(j)) {
                            (Some(&b), Some(&f)) if b == f => {
                                i += 1;
                                j += 1;
                            }
                            (Some(&b), Some(&f)) if b < f => {
                                record_change(row, b, -1);
                                i += 1;
                            }
                            (Some(&b), None) => {
                                record_change(row, b, -1);
                                i += 1;
                            }
                            (_, Some(&f)) => {
                                record_change(row, f, 1);
                                j += 1;
                            }
                            (None, None) => unreachable!("loop condition"),
                        }
                    }
                    col_idx.extend_from_slice(&final_cols);
                }
            }
            row_ptr.push(col_idx.len());
        }
        let values = vec![1.0f64; col_idx.len()];
        let adjacency = CsrMatrix::from_raw_parts(n_docs, n_docs, row_ptr, col_idx, values)
            .map_err(|e| GraphError::InvalidDelta {
                reason: format!("patched adjacency is inconsistent: {e}"),
            })?;

        // Extend the columnar document/site storage (existing entries keep
        // their positions — that is the renumbering guarantee).
        let (urls, kinds, site_names, site_members) = self.parts();
        let mut urls = urls.to_vec();
        let mut kinds = kinds.to_vec();
        let mut site_of = self.site_assignments().to_vec();
        let mut site_names = site_names.to_vec();
        let mut site_members = site_members.to_vec();
        site_names.extend(delta.new_sites.iter().cloned());
        site_members.resize(site_names.len(), Vec::new());
        for (k, page) in delta.new_pages.iter().enumerate() {
            urls.push(page.url.clone());
            kinds.push(page.kind);
            site_of.push(page.site);
            site_members[page.site.index()].push(DocId(self.n_docs() + k));
        }
        let mutated = DocGraph::from_validated_parts(
            urls,
            kinds,
            site_of,
            site_names,
            site_members,
            adjacency,
        );

        let added_sites = delta.new_sites.len();
        let cross_links_changed = added_sites > 0 || cross_deltas.values().any(|&net| net != 0);
        let applied = AppliedDelta {
            changed_sites: changed.into_iter().collect(),
            grown_sites: grown.into_iter().collect(),
            added_sites,
            cross_links_changed,
            links_added,
            links_removed,
            new_doc_sites: delta.new_pages.iter().map(|p| p.site).collect(),
        };
        Ok((mutated, applied))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docgraph::DocGraphBuilder;

    fn base() -> DocGraph {
        let mut b = DocGraphBuilder::new();
        let a0 = b.add_doc_with_kind("a.org", "http://a.org/", PageKind::SiteRoot);
        let a1 = b.add_doc("a.org", "http://a.org/1");
        let a2 = b.add_doc("a.org", "http://a.org/2");
        let b0 = b.add_doc_with_kind("b.org", "http://b.org/", PageKind::SiteRoot);
        let b1 = b.add_doc("b.org", "http://b.org/1");
        b.add_link(a0, a1).unwrap();
        b.add_link(a1, a2).unwrap();
        b.add_link(a2, a0).unwrap();
        b.add_link(a2, b0).unwrap();
        b.add_link(b0, b1).unwrap();
        b.add_link(b1, a0).unwrap();
        b.build()
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = base();
        let delta = GraphDelta::for_graph(&g);
        assert!(delta.is_empty());
        let (h, applied) = g.apply(&delta).unwrap();
        assert_eq!(g, h);
        assert!(applied.is_empty());
    }

    #[test]
    fn grow_existing_site_renumbers_consistently() {
        let g = base();
        let mut delta = GraphDelta::for_graph(&g);
        let p = delta.add_page(SiteId(0), "http://a.org/new").unwrap();
        assert_eq!(p, DocId(5));
        delta.add_link(DocId(0), p).unwrap();
        let (h, applied) = g.apply(&delta).unwrap();
        assert_eq!(h.n_docs(), 6);
        assert_eq!(h.n_sites(), 2);
        // Existing ids untouched.
        for d in 0..5 {
            assert_eq!(h.url(DocId(d)), g.url(DocId(d)));
            assert_eq!(h.site_of(DocId(d)), g.site_of(DocId(d)));
        }
        assert_eq!(h.site_of(p), SiteId(0));
        assert_eq!(h.docs_of_site(SiteId(0)).len(), 4);
        assert_eq!(applied.grown_sites, vec![0]);
        assert_eq!(applied.added_sites, 0);
        // A root -> new-page link is intra-site only; cross counts kept.
        assert!(applied.changed_sites.is_empty());
        assert!(!applied.cross_links_changed);
    }

    #[test]
    fn add_whole_site_with_cross_links() {
        let g = base();
        let mut delta = GraphDelta::for_graph(&g);
        let s = delta.add_site("c.org");
        assert_eq!(s, SiteId(2));
        let c0 = delta
            .add_page_with_kind(s, "http://c.org/", PageKind::SiteRoot)
            .unwrap();
        let c1 = delta.add_page(s, "http://c.org/1").unwrap();
        delta.add_link(c0, c1).unwrap();
        delta.add_link(c1, c0).unwrap();
        delta.add_link(DocId(0), c0).unwrap();
        delta.add_link(c0, DocId(3)).unwrap();
        let (h, applied) = g.apply(&delta).unwrap();
        assert_eq!(h.n_sites(), 3);
        assert_eq!(h.site_name(s), "c.org");
        assert_eq!(h.docs_of_site(s), &[c0, c1]);
        assert_eq!(h.kind(c0), PageKind::SiteRoot);
        assert_eq!(applied.added_sites, 1);
        assert!(applied.cross_links_changed);
        assert!(applied.grown_sites.is_empty());
    }

    #[test]
    fn intra_rewire_reports_changed_site_only() {
        let g = base();
        let mut delta = GraphDelta::for_graph(&g);
        delta.remove_link(DocId(0), DocId(1)).unwrap();
        delta.add_link(DocId(1), DocId(0)).unwrap();
        let (h, applied) = g.apply(&delta).unwrap();
        assert_eq!(h.n_links(), g.n_links());
        assert_eq!(applied.changed_sites, vec![0]);
        assert!(applied.grown_sites.is_empty());
        assert!(!applied.cross_links_changed);
    }

    #[test]
    fn noop_mutations_do_not_mark_sites_stale() {
        let g = base();
        let mut delta = GraphDelta::for_graph(&g);
        // Remove a link that does not exist, re-add one that does.
        delta.remove_link(DocId(1), DocId(0)).unwrap();
        delta.add_link(DocId(0), DocId(1)).unwrap();
        let (h, applied) = g.apply(&delta).unwrap();
        assert_eq!(g, h);
        assert!(applied.is_empty());
    }

    #[test]
    fn link_ops_replay_in_order() {
        let g = base();
        // Add then remove: the link (and its base duplicate) is gone.
        let mut delta = GraphDelta::for_graph(&g);
        delta.add_link(DocId(0), DocId(1)).unwrap();
        delta.remove_link(DocId(0), DocId(1)).unwrap();
        let (h, _) = g.apply(&delta).unwrap();
        assert_eq!(h.adjacency().get(0, 1), 0.0);
        // Remove then add: the link survives.
        let mut delta = GraphDelta::for_graph(&g);
        delta.remove_link(DocId(0), DocId(1)).unwrap();
        delta.add_link(DocId(0), DocId(1)).unwrap();
        let (h, _) = g.apply(&delta).unwrap();
        assert_eq!(h.adjacency().get(0, 1), 1.0);
    }

    #[test]
    fn merge_equals_sequential_application() {
        let g = base();
        let mut d1 = GraphDelta::for_graph(&g);
        let p = d1.add_page(SiteId(1), "http://b.org/2").unwrap();
        d1.add_link(DocId(3), p).unwrap();
        let (mid, _) = g.apply(&d1).unwrap();

        let mut d2 = GraphDelta::for_graph(&mid);
        let s = d2.add_site("c.org");
        let c0 = d2.add_page(s, "http://c.org/").unwrap();
        d2.add_link(p, c0).unwrap();
        d2.add_link(c0, DocId(0)).unwrap();
        d2.remove_link(DocId(3), p).unwrap();
        let (seq, _) = mid.apply(&d2).unwrap();

        let mut merged = d1.clone();
        merged.merge(d2).unwrap();
        let (one_shot, _) = g.apply(&merged).unwrap();
        assert_eq!(seq, one_shot);
    }

    #[test]
    fn merge_rejects_shape_mismatch() {
        let g = base();
        let mut d1 = GraphDelta::for_graph(&g);
        d1.add_page(SiteId(0), "http://a.org/x").unwrap();
        // d2 built against the *base* shape, not d1's result shape.
        let d2 = GraphDelta::for_graph(&g);
        let mut merged = d1;
        assert!(matches!(
            merged.merge(d2),
            Err(GraphError::InvalidDelta { .. })
        ));
    }

    #[test]
    fn apply_rejects_wrong_base_shape() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        d.add_page(SiteId(0), "http://a.org/x").unwrap();
        let (grown, _) = g.apply(&d).unwrap();
        // The same delta cannot be applied to the already-grown graph.
        assert!(matches!(
            grown.apply(&d),
            Err(GraphError::InvalidDelta { .. })
        ));
    }

    #[test]
    fn apply_rejects_duplicate_and_empty_site_names() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        let s = d.add_site("a.org"); // collides with an existing site
        d.add_page(s, "http://a.org/dup").unwrap();
        assert!(matches!(g.apply(&d), Err(GraphError::InvalidDelta { .. })));

        let mut d = GraphDelta::for_graph(&g);
        let s = d.add_site("");
        d.add_page(s, "http://nameless/").unwrap();
        assert!(matches!(g.apply(&d), Err(GraphError::InvalidDelta { .. })));
    }

    #[test]
    fn apply_rejects_empty_new_site() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        d.add_site("c.org");
        assert!(matches!(g.apply(&d), Err(GraphError::InvalidDelta { .. })));
    }

    #[test]
    fn builder_rejects_out_of_range_references() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        assert!(d.add_page(SiteId(7), "http://nowhere/").is_err());
        assert!(d.add_link(DocId(0), DocId(99)).is_err());
        assert!(d.remove_link(DocId(99), DocId(0)).is_err());
        // A link to a page added by the delta itself is fine.
        let p = d.add_page(SiteId(0), "http://a.org/x").unwrap();
        d.add_link(DocId(0), p).unwrap();
        assert_eq!(d.n_added_links(), 1);
        assert_eq!(d.n_removed_links(), 0);
        assert_eq!(d.n_new_pages(), 1);
        assert_eq!(d.n_new_sites(), 0);
    }

    #[test]
    fn applied_delta_reports_exact_edge_diffs() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        // One real removal, one real addition, one no-op removal (absent
        // link), one no-op re-add (present link).
        d.remove_link(DocId(0), DocId(1)).unwrap();
        d.add_link(DocId(1), DocId(0)).unwrap();
        d.remove_link(DocId(4), DocId(3)).unwrap();
        d.add_link(DocId(3), DocId(4)).unwrap();
        let (_, applied) = g.apply(&d).unwrap();
        assert_eq!(applied.links_added, vec![(DocId(1), DocId(0))]);
        assert_eq!(applied.links_removed, vec![(DocId(0), DocId(1))]);
        assert!(applied.new_doc_sites.is_empty());

        // Growth: appended docs report their site assignments in id order.
        let mut d = GraphDelta::for_graph(&g);
        let p = d.add_page(SiteId(1), "http://b.org/new").unwrap();
        let s = d.add_site("c.org");
        let c = d.add_page(s, "http://c.org/").unwrap();
        d.add_link(p, c).unwrap();
        let (_, applied) = g.apply(&d).unwrap();
        assert_eq!(applied.new_doc_sites, vec![SiteId(1), SiteId(2)]);
        assert_eq!(applied.links_added, vec![(p, c)]);
        assert!(applied.links_removed.is_empty());
    }

    #[test]
    fn net_zero_cross_rewire_reports_links_but_stays_rank_fresh() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        // Remove the one a->b cross link, add a different a->b cross link:
        // counts per site pair are unchanged, so no layer is stale — but
        // the graph itself changed and the diff must say so.
        d.remove_link(DocId(2), DocId(3)).unwrap();
        d.add_link(DocId(1), DocId(4)).unwrap();
        let (h, applied) = g.apply(&d).unwrap();
        assert_ne!(g, h);
        assert!(applied.is_empty(), "ranking-relevant summary is empty");
        assert_eq!(applied.links_added, vec![(DocId(1), DocId(4))]);
        assert_eq!(applied.links_removed, vec![(DocId(2), DocId(3))]);
    }

    #[test]
    fn compact_collapses_per_pair_churn() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        // Churn one pair five times (net: removed), flip another back and
        // forth (net: added), and keep an untouched single op.
        for _ in 0..2 {
            d.add_link(DocId(0), DocId(1)).unwrap();
            d.remove_link(DocId(0), DocId(1)).unwrap();
        }
        d.remove_link(DocId(0), DocId(1)).unwrap();
        d.remove_link(DocId(1), DocId(2)).unwrap();
        d.add_link(DocId(1), DocId(2)).unwrap();
        d.add_link(DocId(4), DocId(2)).unwrap();
        let compacted = d.compact();
        assert_eq!(compacted.link_ops.len(), 3, "one op per touched pair");
        let (seq, seq_applied) = g.apply(&d).unwrap();
        let (one, one_applied) = g.apply(&compacted).unwrap();
        assert_eq!(seq, one);
        assert_eq!(seq_applied, one_applied);
        // Pages/sites/ids are untouched by compaction.
        assert_eq!(compacted.base_shape(), d.base_shape());
        assert_eq!(compacted.n_new_pages(), d.n_new_pages());
    }

    #[test]
    fn compact_preserves_ids_of_added_pages() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        let p = d.add_page(SiteId(0), "http://a.org/p").unwrap();
        d.add_link(DocId(0), p).unwrap();
        d.remove_link(DocId(0), p).unwrap();
        d.add_link(DocId(0), p).unwrap();
        let s = d.add_site("c.org");
        let c = d.add_page(s, "http://c.org/").unwrap();
        d.add_link(p, c).unwrap();
        let compacted = d.compact();
        let (seq, _) = g.apply(&d).unwrap();
        let (one, _) = g.apply(&compacted).unwrap();
        assert_eq!(seq, one);
        assert_eq!(one.url(p), "http://a.org/p");
        assert_eq!(one.site_of(c), s);
    }

    #[test]
    fn mixed_delta_summary_is_exact() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        // Intra rewire in site 1, growth in site 0, one new site.
        d.remove_link(DocId(3), DocId(4)).unwrap();
        d.add_link(DocId(4), DocId(3)).unwrap();
        let p = d.add_page(SiteId(0), "http://a.org/x").unwrap();
        d.add_link(p, DocId(0)).unwrap();
        let s = d.add_site("c.org");
        let c = d.add_page(s, "http://c.org/").unwrap();
        d.add_link(c, c).unwrap();
        let (h, applied) = g.apply(&d).unwrap();
        assert_eq!(applied.changed_sites, vec![1]);
        assert_eq!(applied.grown_sites, vec![0]);
        assert_eq!(applied.added_sites, 1);
        assert!(applied.cross_links_changed);
        assert_eq!(h.n_docs(), 7);
        assert_eq!(h.n_sites(), 3);
    }
}
