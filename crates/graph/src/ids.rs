//! Typed identifiers for documents and sites.
//!
//! [`DocId`] and [`SiteId`] are zero-cost newtypes over `usize` that keep
//! the two index spaces (documents in the DocGraph, sites in the SiteGraph)
//! statically distinct — mixing them up is a compile error rather than a
//! silently wrong ranking.

use std::fmt;

/// Identifier of a Web document (an index into a [`DocGraph`]).
///
/// [`DocGraph`]: crate::docgraph::DocGraph
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DocId(pub usize);

/// Identifier of a Web site (an index into a [`SiteGraph`]).
///
/// [`SiteGraph`]: crate::sitegraph::SiteGraph
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SiteId(pub usize);

impl DocId {
    /// The underlying index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl SiteId {
    /// The underlying index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<usize> for DocId {
    fn from(i: usize) -> Self {
        DocId(i)
    }
}

impl From<usize> for SiteId {
    fn from(i: usize) -> Self {
        SiteId(i)
    }
}

impl From<DocId> for usize {
    fn from(id: DocId) -> usize {
        id.0
    }
}

impl From<SiteId> for usize {
    fn from(id: SiteId) -> usize {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_distinguishes_spaces() {
        assert_eq!(DocId(3).to_string(), "d3");
        assert_eq!(SiteId(3).to_string(), "s3");
    }

    #[test]
    fn conversions_roundtrip() {
        let d: DocId = 7usize.into();
        let i: usize = d.into();
        assert_eq!(i, 7);
        assert_eq!(d.index(), 7);
        let s: SiteId = 9usize.into();
        assert_eq!(s.index(), 9);
    }

    #[test]
    fn ordering_by_index() {
        assert!(DocId(1) < DocId(2));
        assert!(SiteId(0) < SiteId(5));
    }
}
