//! Site→shard mapping for the sharded serving tier.
//!
//! The paper computes ranking at *site* granularity, and the web-aggregation
//! line of work (Ishii & Tempo's aggregated distributed PageRank, Suzuki &
//! Ishii's clustered variant) argues the same granularity is the right unit
//! of distribution. [`ShardMap`] carries that choice into serving: a shard
//! is a **contiguous range of site ids** (and therefore owns every document
//! of those sites), so the incremental layer's site-granular staleness sets
//! translate directly into shard invalidation sets — a delta that touched
//! sites `{3, 17}` stales exactly the shards covering sites 3 and 17.
//!
//! Contiguity also keeps the map tiny (one boundary per shard) and lets it
//! absorb growth: site ids are append-only under [`crate::delta::GraphDelta`]
//! renumbering, so sites appended after the map was built fall into the last
//! shard until the operator rebalances.

use crate::docgraph::DocGraph;
use crate::error::{GraphError, Result};
use crate::ids::SiteId;
use std::ops::Range;

/// A site-range partition: shard `i` covers sites
/// `starts[i]..starts[i + 1]`.
///
/// Build one with [`ShardMap::uniform`] (equal site counts) or
/// [`ShardMap::balanced`] (equal *document* counts — the load that actually
/// drives per-shard serving work).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// `n_shards + 1` ascending boundaries; first is 0, last is the mapped
    /// site count.
    starts: Vec<usize>,
}

impl ShardMap {
    /// Splits `n_sites` into `n_shards` contiguous ranges of near-equal
    /// site count.
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidShardMap`] when either count is zero or
    /// there are more shards than sites.
    pub fn uniform(n_sites: usize, n_shards: usize) -> Result<Self> {
        validate_counts(n_sites, n_shards)?;
        let base = n_sites / n_shards;
        let extra = n_sites % n_shards;
        let mut starts = Vec::with_capacity(n_shards + 1);
        let mut at = 0usize;
        starts.push(at);
        for shard in 0..n_shards {
            at += base + usize::from(shard < extra);
            starts.push(at);
        }
        Ok(Self { starts })
    }

    /// Splits the graph's sites into `n_shards` contiguous ranges balanced
    /// by **document count**: each range closes once it holds at least
    /// `n_docs / n_shards` documents (leaving one site per remaining
    /// shard), so Zipf-sized site distributions do not pile every large
    /// site into one shard's queue.
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidShardMap`] when the graph has no sites,
    /// `n_shards` is zero, or there are more shards than sites.
    pub fn balanced(graph: &DocGraph, n_shards: usize) -> Result<Self> {
        let n_sites = graph.n_sites();
        validate_counts(n_sites, n_shards)?;
        let target = graph.n_docs() as f64 / n_shards as f64;
        let mut starts = Vec::with_capacity(n_shards + 1);
        starts.push(0usize);
        let mut docs_here = 0usize;
        for site in 0..n_sites {
            docs_here += graph.site_size(SiteId(site));
            let shards_done = starts.len(); // including the open one
            let sites_left = n_sites - (site + 1);
            let shards_left = n_shards - shards_done;
            // Close the open shard when it met its target, but never leave
            // fewer sites than the remaining shards need.
            if shards_done < n_shards && (docs_here as f64 >= target || sites_left == shards_left) {
                starts.push(site + 1);
                docs_here = 0;
            }
        }
        starts.push(n_sites);
        debug_assert_eq!(starts.len(), n_shards + 1);
        Ok(Self { starts })
    }

    /// Number of shards.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// Number of sites the map was built over. Sites appended later (ids
    /// `n_sites()..`) are absorbed by the last shard.
    #[must_use]
    pub fn n_sites(&self) -> usize {
        *self.starts.last().expect("boundaries are non-empty")
    }

    /// The shard covering `site`. Sites beyond the mapped range (appended
    /// after the map was built) clamp into the last shard, so the map never
    /// orphans a growing graph.
    #[must_use]
    pub fn shard_of_site(&self, site: SiteId) -> usize {
        match self.starts.binary_search(&site.index()) {
            Ok(i) => i.min(self.n_shards() - 1),
            Err(i) => (i - 1).min(self.n_shards() - 1),
        }
    }

    /// The contiguous site-id range shard `shard` covers.
    ///
    /// # Panics
    /// Panics if `shard >= n_shards()`.
    #[must_use]
    pub fn sites_of_shard(&self, shard: usize) -> Range<usize> {
        assert!(shard < self.n_shards(), "shard {shard} out of range");
        self.starts[shard]..self.starts[shard + 1]
    }

    /// The raw shard boundaries (`n_shards + 1` ascending site ids) — the
    /// wire form of the map. A cluster placement reply carries these so a
    /// remote client can rebuild the identical map with
    /// [`ShardMap::from_boundaries`] and route site→shard locally.
    #[must_use]
    pub fn boundaries(&self) -> &[usize] {
        &self.starts
    }

    /// Rebuilds a map from boundaries produced by
    /// [`ShardMap::boundaries`] (e.g. received over the wire).
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidShardMap`] unless the boundaries are
    /// strictly ascending, start at 0, and describe at least one shard.
    pub fn from_boundaries(starts: Vec<usize>) -> Result<Self> {
        let ascending = starts.windows(2).all(|w| w[0] < w[1]);
        if starts.len() < 2 || starts[0] != 0 || !ascending {
            return Err(GraphError::InvalidShardMap {
                reason: format!(
                    "boundaries must be >= 2 strictly ascending values starting at 0, got {starts:?}"
                ),
            });
        }
        Ok(Self { starts })
    }

    /// Splits this map's shards contiguously across `n_owners` nodes of a
    /// cluster: owner `i` is responsible for the `i`-th returned range of
    /// *shard* indices (near-equal counts, remainder spread left). The
    /// controller's initial placement; failover reassigns individual
    /// shards off this baseline.
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidShardMap`] when `n_owners` is zero or
    /// exceeds the shard count.
    pub fn owner_ranges(&self, n_owners: usize) -> Result<Vec<Range<usize>>> {
        let n_shards = self.n_shards();
        if n_owners == 0 || n_owners > n_shards {
            return Err(GraphError::InvalidShardMap {
                reason: format!("cannot split {n_shards} shards across {n_owners} owners"),
            });
        }
        let base = n_shards / n_owners;
        let extra = n_shards % n_owners;
        let mut ranges = Vec::with_capacity(n_owners);
        let mut at = 0usize;
        for owner in 0..n_owners {
            let len = base + usize::from(owner < extra);
            ranges.push(at..at + len);
            at += len;
        }
        Ok(ranges)
    }

    /// Maps a set of stale site ids to the sorted, deduplicated set of
    /// shards they stale — the translation from an
    /// [`AppliedDelta`](crate::delta::AppliedDelta)'s site sets to a shard
    /// invalidation set.
    #[must_use]
    pub fn shards_of_sites<I: IntoIterator<Item = usize>>(&self, sites: I) -> Vec<usize> {
        let mut shards: Vec<usize> = sites
            .into_iter()
            .map(|s| self.shard_of_site(SiteId(s)))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }
}

fn validate_counts(n_sites: usize, n_shards: usize) -> Result<()> {
    if n_shards == 0 || n_sites == 0 || n_shards > n_sites {
        return Err(GraphError::InvalidShardMap {
            reason: format!("cannot split {n_sites} sites into {n_shards} shards"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docgraph::DocGraphBuilder;

    fn graph_with_site_sizes(sizes: &[usize]) -> DocGraph {
        let mut b = DocGraphBuilder::new();
        for (s, &size) in sizes.iter().enumerate() {
            for d in 0..size {
                b.add_doc(&format!("site{s}.org"), &format!("http://site{s}.org/{d}"));
            }
        }
        b.build()
    }

    #[test]
    fn uniform_covers_every_site_exactly_once() {
        let map = ShardMap::uniform(10, 3).unwrap();
        assert_eq!(map.n_shards(), 3);
        assert_eq!(map.n_sites(), 10);
        let mut seen = [0usize; 10];
        for shard in 0..map.n_shards() {
            for s in map.sites_of_shard(shard) {
                seen[s] += 1;
                assert_eq!(map.shard_of_site(SiteId(s)), shard);
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn uniform_spreads_the_remainder() {
        let map = ShardMap::uniform(10, 3).unwrap();
        let sizes: Vec<usize> = (0..3).map(|s| map.sites_of_shard(s).len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn balanced_evens_out_document_counts() {
        // One huge site, then many small ones: uniform would put ~all docs
        // in shard 0; balanced closes shard 0 right after the huge site.
        let g = graph_with_site_sizes(&[100, 5, 5, 5, 5, 5, 5, 5]);
        let map = ShardMap::balanced(&g, 3).unwrap();
        assert_eq!(map.sites_of_shard(0), 0..1);
        let docs_of = |shard: usize| -> usize {
            map.sites_of_shard(shard)
                .map(|s| g.site_size(SiteId(s)))
                .sum()
        };
        assert_eq!(docs_of(0) + docs_of(1) + docs_of(2), g.n_docs());
        assert!(docs_of(1) > 0 && docs_of(2) > 0);
    }

    #[test]
    fn balanced_never_leaves_a_shard_empty() {
        // Extreme skew with as many shards as sites: every shard must still
        // receive exactly one site.
        let g = graph_with_site_sizes(&[50, 1, 1, 1]);
        let map = ShardMap::balanced(&g, 4).unwrap();
        for shard in 0..4 {
            assert_eq!(map.sites_of_shard(shard).len(), 1);
        }
    }

    #[test]
    fn appended_sites_clamp_into_the_last_shard() {
        let map = ShardMap::uniform(8, 4).unwrap();
        assert_eq!(map.shard_of_site(SiteId(7)), 3);
        // Sites appended after the map was built.
        assert_eq!(map.shard_of_site(SiteId(8)), 3);
        assert_eq!(map.shard_of_site(SiteId(100)), 3);
    }

    #[test]
    fn shards_of_sites_dedups_and_sorts() {
        let map = ShardMap::uniform(8, 4).unwrap();
        // Sites 6, 7 share shard 3; site 0 is shard 0.
        assert_eq!(map.shards_of_sites([7, 0, 6]), vec![0, 3]);
        assert!(map.shards_of_sites(std::iter::empty()).is_empty());
    }

    #[test]
    fn boundaries_round_trip_over_the_wire_form() {
        let map = ShardMap::uniform(10, 3).unwrap();
        let rebuilt = ShardMap::from_boundaries(map.boundaries().to_vec()).unwrap();
        assert_eq!(rebuilt, map);
        assert!(ShardMap::from_boundaries(vec![]).is_err());
        assert!(ShardMap::from_boundaries(vec![0]).is_err());
        assert!(ShardMap::from_boundaries(vec![1, 4]).is_err());
        assert!(ShardMap::from_boundaries(vec![0, 4, 4]).is_err());
        assert!(ShardMap::from_boundaries(vec![0, 4, 2]).is_err());
    }

    #[test]
    fn owner_ranges_cover_every_shard_once() {
        let map = ShardMap::uniform(16, 8).unwrap();
        let ranges = map.owner_ranges(3).unwrap();
        assert_eq!(ranges.len(), 3);
        // 8 shards over 3 owners: 3, 3, 2 — remainder spread left.
        assert_eq!(ranges[0], 0..3);
        assert_eq!(ranges[1], 3..6);
        assert_eq!(ranges[2], 6..8);
        let covered: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, map.n_shards());
        assert!(map.owner_ranges(0).is_err());
        assert!(map.owner_ranges(9).is_err());
        // One owner per shard is the degenerate fine-grained placement.
        let fine = map.owner_ranges(8).unwrap();
        assert!(fine.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn invalid_counts_are_rejected() {
        assert!(ShardMap::uniform(0, 1).is_err());
        assert!(ShardMap::uniform(4, 0).is_err());
        assert!(ShardMap::uniform(3, 4).is_err());
        let g = graph_with_site_sizes(&[2, 2]);
        assert!(ShardMap::balanced(&g, 3).is_err());
    }
}
