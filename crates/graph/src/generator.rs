//! Deterministic synthetic web-graph generators.
//!
//! The paper's evaluation uses a late-2003 crawl of the EPFL campus web
//! (218 sites, 433,707 pages) that is not publicly available. The
//! [`CampusWebConfig`] generator substitutes a synthetic campus web that
//! reproduces the structural properties the evaluation depends on:
//!
//! * **Zipf-distributed site sizes** and site popularity (a few large
//!   central sites, a long tail of small labs and groups);
//! * **hierarchical intra-site structure**: a navigation-tree backbone with
//!   preferential attachment to early pages (site roots and hubs);
//! * **hub-concentrated inter-site links**: most cross-site links target
//!   the destination site's root page, as home pages do on real webs;
//! * **injected intra-site spam farms** ([`SpamFarmConfig`]) modeled on the
//!   two agglomerates the paper dissects in Figure 3 — a `Webdriver?`-style
//!   dynamic-page cluster and a javadoc-style mirror — i.e. thousands of
//!   densely interlinked pages inside a single site, giving their hub pages
//!   enormous *intra-site* in-degree.
//!
//! Flat PageRank is hijacked by those farms exactly as in the paper's
//! Figure 3; the layered method caps each site's influence through the
//! SiteRank factor, reproducing Figure 4. All generation is deterministic
//! given the seed.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::docgraph::{DocGraph, DocGraphBuilder, PageKind};
use crate::error::{GraphError, Result};
use crate::ids::DocId;

/// Samples indices `0..n` with probability proportional to `(i+1)^-exponent`
/// via an inverse-CDF table.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` outcomes.
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidConfig`] when `n == 0` or the exponent
    /// is negative or not finite.
    pub fn new(n: usize, exponent: f64) -> Result<Self> {
        if n == 0 {
            return Err(GraphError::InvalidConfig {
                reason: "zipf sampler needs at least one outcome".into(),
            });
        }
        if !exponent.is_finite() || exponent < 0.0 {
            return Err(GraphError::InvalidConfig {
                reason: format!("zipf exponent {exponent} must be finite and >= 0"),
            });
        }
        let mut cdf: Vec<f64> = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += ((i + 1) as f64).powf(-exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Self { cdf })
    }

    /// Draws one index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability weight of outcome `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn weight(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

/// Draws an index in `0..n` biased toward 0: `floor(n * u^strength)`.
/// `strength = 1` is uniform; larger values concentrate on early indices
/// (site roots and hubs).
fn biased_early<R: Rng>(rng: &mut R, n: usize, strength: f64) -> usize {
    debug_assert!(n > 0);
    let u: f64 = rng.random();
    ((n as f64 * u.powf(strength)) as usize).min(n - 1)
}

/// Visual style of an injected spam farm (affects URL naming only; the link
/// structure is the same dense agglomerate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpamStyle {
    /// Server-side script output, like the paper's
    /// `research.epfl.ch/research/Webdriver?...` cluster.
    #[default]
    DynamicScript,
    /// A mirrored documentation tree, like the paper's
    /// `lamp.epfl.ch/~linuxsoft/java/jdk1.4/docs/...` javadocs.
    MirroredDocs,
}

/// Configuration of one injected intra-site spam farm.
#[derive(Debug, Clone, PartialEq)]
pub struct SpamFarmConfig {
    /// Index of the site hosting the farm.
    pub host_site: usize,
    /// Number of farm pages.
    pub n_pages: usize,
    /// Number of heavily-targeted hub pages inside the farm (every farm
    /// page links to all of them).
    pub n_targets: usize,
    /// Additional random intra-farm links emitted per page.
    pub links_per_page: usize,
    /// Links from regular pages of the host site into the farm (crawl
    /// reachability).
    pub entry_links: usize,
    /// URL naming style.
    pub style: SpamStyle,
}

impl Default for SpamFarmConfig {
    fn default() -> Self {
        Self {
            host_site: 1,
            n_pages: 1_500,
            n_targets: 6,
            links_per_page: 12,
            entry_links: 4,
            style: SpamStyle::DynamicScript,
        }
    }
}

/// Configuration of the synthetic campus web.
///
/// # Example
/// ```
/// use lmm_graph::generator::CampusWebConfig;
/// # fn main() -> Result<(), lmm_graph::GraphError> {
/// let g = CampusWebConfig::small().generate()?;
/// assert!(g.n_docs() > 1_000);
/// assert!(g.spam_labels().iter().any(|&s| s));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CampusWebConfig {
    /// Number of sites (the paper's crawl has 218).
    pub n_sites: usize,
    /// Approximate number of regular (non-farm) documents.
    pub total_docs: usize,
    /// Zipf exponent of site sizes.
    pub site_size_exponent: f64,
    /// Minimum pages per site.
    pub min_site_size: usize,
    /// Expected extra intra-site links per document (beyond the navigation
    /// backbone).
    pub intra_links_per_doc: f64,
    /// Expected cross-site links emitted per document.
    pub inter_links_per_doc: f64,
    /// Zipf exponent of destination-site popularity for cross links.
    pub inter_site_exponent: f64,
    /// Probability that a cross-site link targets the destination site's
    /// root page.
    pub root_bias: f64,
    /// Injected spam farms.
    pub spam_farms: Vec<SpamFarmConfig>,
    /// RNG seed; equal seeds yield identical graphs.
    pub seed: u64,
}

impl Default for CampusWebConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

impl CampusWebConfig {
    /// A small configuration (≈2,000 pages, 40 sites) for tests and quick
    /// examples.
    #[must_use]
    pub fn small() -> Self {
        Self {
            n_sites: 40,
            total_docs: 2_000,
            site_size_exponent: 1.0,
            min_site_size: 8,
            intra_links_per_doc: 3.0,
            inter_links_per_doc: 0.35,
            inter_site_exponent: 1.1,
            root_bias: 0.65,
            spam_farms: vec![
                SpamFarmConfig {
                    host_site: 11,
                    n_pages: 400,
                    n_targets: 4,
                    links_per_page: 10,
                    entry_links: 3,
                    style: SpamStyle::DynamicScript,
                },
                SpamFarmConfig {
                    host_site: 23,
                    n_pages: 250,
                    n_targets: 3,
                    links_per_page: 8,
                    entry_links: 3,
                    style: SpamStyle::MirroredDocs,
                },
            ],
            seed: 42,
        }
    }

    /// The default experiment scale: 218 sites (as in the paper) and ≈50k
    /// pages — large enough for the Figure 3/4 phenomena, small enough for
    /// CI.
    #[must_use]
    pub fn paper_scale() -> Self {
        Self {
            n_sites: 218,
            total_docs: 50_000,
            site_size_exponent: 1.0,
            min_site_size: 20,
            intra_links_per_doc: 4.0,
            inter_links_per_doc: 0.30,
            inter_site_exponent: 1.1,
            root_bias: 0.65,
            // The farms sit on mid-tail sites (like the paper's
            // lamp.epfl.ch javadoc mirror): their page count — not their
            // host's importance — is what hijacks flat PageRank, while the
            // host's low SiteRank is what lets the layered method demote
            // them.
            spam_farms: vec![
                SpamFarmConfig {
                    host_site: 17,
                    n_pages: 4_000,
                    n_targets: 8,
                    links_per_page: 12,
                    entry_links: 6,
                    style: SpamStyle::DynamicScript,
                },
                SpamFarmConfig {
                    host_site: 23,
                    n_pages: 2_500,
                    n_targets: 5,
                    links_per_page: 10,
                    entry_links: 5,
                    style: SpamStyle::MirroredDocs,
                },
            ],
            seed: 20031115, // the crawl is from late 2003
        }
    }

    /// Approximates the full crawl scale (218 sites, ≈433k pages). Slower;
    /// used by the `--full` experiment presets.
    #[must_use]
    pub fn full_scale() -> Self {
        Self {
            total_docs: 430_000,
            min_site_size: 50,
            spam_farms: vec![
                SpamFarmConfig {
                    host_site: 17,
                    n_pages: 17_000,
                    n_targets: 8,
                    links_per_page: 16,
                    entry_links: 8,
                    style: SpamStyle::DynamicScript,
                },
                SpamFarmConfig {
                    host_site: 23,
                    n_pages: 6_400,
                    n_targets: 5,
                    links_per_page: 14,
                    entry_links: 6,
                    style: SpamStyle::MirroredDocs,
                },
            ],
            ..Self::paper_scale()
        }
    }

    /// Returns `self` with spam farms removed (the clean-web ablation).
    #[must_use]
    pub fn without_spam(mut self) -> Self {
        self.spam_farms.clear();
        self
    }

    /// Returns `self` with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        if self.n_sites == 0 {
            return Err(GraphError::InvalidConfig {
                reason: "n_sites must be positive".into(),
            });
        }
        if self.min_site_size == 0 {
            return Err(GraphError::InvalidConfig {
                reason: "min_site_size must be positive".into(),
            });
        }
        if self.total_docs < self.n_sites * self.min_site_size {
            return Err(GraphError::InvalidConfig {
                reason: format!(
                    "total_docs {} cannot fit {} sites of at least {} pages",
                    self.total_docs, self.n_sites, self.min_site_size
                ),
            });
        }
        if !(0.0..=1.0).contains(&self.root_bias) {
            return Err(GraphError::InvalidConfig {
                reason: format!("root_bias {} must lie in [0, 1]", self.root_bias),
            });
        }
        for (i, farm) in self.spam_farms.iter().enumerate() {
            if farm.host_site >= self.n_sites {
                return Err(GraphError::InvalidConfig {
                    reason: format!(
                        "spam farm {i} hosted on site {} but there are only {} sites",
                        farm.host_site, self.n_sites
                    ),
                });
            }
            if farm.n_targets == 0 || farm.n_targets > farm.n_pages {
                return Err(GraphError::InvalidConfig {
                    reason: format!(
                        "spam farm {i}: n_targets {} must lie in 1..={}",
                        farm.n_targets, farm.n_pages
                    ),
                });
            }
        }
        Ok(())
    }

    /// Generates the campus web.
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidConfig`] when [`validate`](Self::validate)
    /// fails.
    pub fn generate(&self) -> Result<DocGraph> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut builder = DocGraphBuilder::with_capacity(
            self.total_docs + self.spam_farms.iter().map(|f| f.n_pages).sum::<usize>(),
            self.total_docs * 6,
        );

        let site_names: Vec<String> = (0..self.n_sites).map(site_name).collect();
        let sizes = self.site_sizes();

        // Regular pages, site by site; doc 0 of each site is the root.
        let mut site_docs: Vec<Vec<DocId>> = Vec::with_capacity(self.n_sites);
        for (s, (&size, name)) in sizes.iter().zip(&site_names).enumerate() {
            let mut docs = Vec::with_capacity(size);
            for j in 0..size {
                let (url, kind) = if j == 0 {
                    (format!("http://{name}/"), PageKind::SiteRoot)
                } else {
                    (format!("http://{name}/page{j}.html"), PageKind::Regular)
                };
                docs.push(builder.add_doc_with_kind(name, &url, kind));
            }
            site_docs.push(docs);
            debug_assert_eq!(site_docs[s].len(), size);
        }

        // Intra-site structure: navigation backbone + extra hub-biased links.
        for docs in &site_docs {
            let n = docs.len();
            for j in 1..n {
                let parent = biased_early(&mut rng, j, 2.0);
                builder.add_link(docs[parent], docs[j])?;
                if rng.random::<f64>() < 0.35 {
                    builder.add_link(docs[j], docs[0])?; // "home" link
                }
                if rng.random::<f64>() < 0.30 {
                    builder.add_link(docs[j], docs[parent])?; // "up" link
                }
            }
            let extra = (self.intra_links_per_doc * n as f64).round() as usize;
            for _ in 0..extra {
                let src = rng.random_range(0..n);
                let dst = biased_early(&mut rng, n, 2.5);
                if src != dst {
                    builder.add_link(docs[src], docs[dst])?;
                }
            }
        }

        // Inter-site links: destination site ~ Zipf, destination page mostly
        // the root.
        let dest_sampler = ZipfSampler::new(self.n_sites, self.inter_site_exponent)?;
        for (s, docs) in site_docs.iter().enumerate() {
            let n = docs.len();
            let n_cross = ((self.inter_links_per_doc * n as f64).round() as usize).max(1);
            for _ in 0..n_cross {
                let src = biased_early(&mut rng, n, 1.5);
                let mut dst_site = dest_sampler.sample(&mut rng);
                let mut guard = 0;
                while dst_site == s && guard < 16 {
                    dst_site = dest_sampler.sample(&mut rng);
                    guard += 1;
                }
                if dst_site == s {
                    continue;
                }
                let dst_docs = &site_docs[dst_site];
                let dst = if rng.random::<f64>() < self.root_bias {
                    dst_docs[0]
                } else {
                    dst_docs[biased_early(&mut rng, dst_docs.len(), 2.0)]
                };
                builder.add_link(docs[src], dst)?;
            }
        }

        // Spam farms: dense intra-site agglomerates appended to their host
        // sites.
        for (f, farm) in self.spam_farms.iter().enumerate() {
            let host = &site_names[farm.host_site];
            let mut farm_docs = Vec::with_capacity(farm.n_pages);
            for j in 0..farm.n_pages {
                let url = match farm.style {
                    SpamStyle::DynamicScript => {
                        format!("http://{host}/app/Webdriver?LO=farm{f}&id={j}")
                    }
                    SpamStyle::MirroredDocs => {
                        format!("http://{host}/~mirror/docs/api/f{f}/p{j}.html")
                    }
                };
                farm_docs.push(builder.add_doc_with_kind(host, &url, PageKind::SpamFarm));
            }
            // Every farm page links to every target hub.
            for &p in &farm_docs {
                for &t in &farm_docs[..farm.n_targets] {
                    if p != t {
                        builder.add_link(p, t)?;
                    }
                }
                for _ in 0..farm.links_per_page {
                    let sibling = farm_docs[rng.random_range(0..farm.n_pages)];
                    if sibling != p {
                        builder.add_link(p, sibling)?;
                    }
                }
            }
            // Targets interlink (they are the cluster's navigation hubs).
            for (i, &t) in farm_docs[..farm.n_targets].iter().enumerate() {
                for (j, &u) in farm_docs[..farm.n_targets].iter().enumerate() {
                    if i != j {
                        builder.add_link(t, u)?;
                    }
                }
            }
            // Entry links from the host site's regular pages.
            let host_docs = &site_docs[farm.host_site];
            for _ in 0..farm.entry_links {
                let src = host_docs[biased_early(&mut rng, host_docs.len(), 1.5)];
                builder.add_link(src, farm_docs[0])?;
            }
        }

        Ok(builder.build())
    }

    /// The per-site regular page counts implied by the configuration
    /// (Zipf-distributed, clamped below by `min_site_size`).
    #[must_use]
    pub fn site_sizes(&self) -> Vec<usize> {
        let weights: Vec<f64> = (0..self.n_sites)
            .map(|i| ((i + 1) as f64).powf(-self.site_size_exponent))
            .collect();
        let total_w: f64 = weights.iter().sum();
        weights
            .iter()
            .map(|w| {
                ((self.total_docs as f64) * w / total_w)
                    .round()
                    .max(self.min_site_size as f64) as usize
            })
            .collect()
    }
}

/// Deterministic synthetic site host names: site 0 is the campus portal,
/// the next few are recognizable central services, the tail are numbered
/// departments. Mirrors the flavor of the paper's Figure 3/4 URL lists.
#[must_use]
pub fn site_name(index: usize) -> String {
    const NAMED: &[&str] = &[
        "www.campus.edu",
        "research.campus.edu",
        "news.campus.edu",
        "library.campus.edu",
        "students.campus.edu",
        "admissions.campus.edu",
        "events.campus.edu",
        "search.campus.edu",
        "alumni.campus.edu",
        "it.campus.edu",
        "physics.campus.edu",
        "biology.campus.edu",
        "cs.campus.edu",
        "math.campus.edu",
        "chemistry.campus.edu",
        "engineering.campus.edu",
        "arts.campus.edu",
        "lamp.campus.edu",
        "press.campus.edu",
        "sports.campus.edu",
    ];
    match NAMED.get(index) {
        Some(name) => (*name).to_string(),
        None => format!("dept{index:03}.campus.edu"),
    }
}

/// Generates a uniform random web: `n_docs` documents spread round-robin
/// over `n_sites` sites with `links_per_doc` uniformly random edges each.
/// Used by benchmarks and property tests that need unstructured graphs.
///
/// # Errors
/// Returns [`GraphError::InvalidConfig`] for zero docs/sites or
/// `n_sites > n_docs`.
pub fn random_web(
    n_docs: usize,
    n_sites: usize,
    links_per_doc: usize,
    seed: u64,
) -> Result<DocGraph> {
    if n_docs == 0 || n_sites == 0 || n_sites > n_docs {
        return Err(GraphError::InvalidConfig {
            reason: format!("invalid random web shape: {n_docs} docs over {n_sites} sites"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = DocGraphBuilder::with_capacity(n_docs, n_docs * links_per_doc);
    let mut docs = Vec::with_capacity(n_docs);
    for d in 0..n_docs {
        let site = d % n_sites;
        let name = format!("site{site:04}.random.net");
        let kind = if d < n_sites {
            PageKind::SiteRoot
        } else {
            PageKind::Regular
        };
        docs.push(builder.add_doc_with_kind(&name, &format!("http://{name}/d{d}"), kind));
    }
    for &src in &docs {
        for _ in 0..links_per_doc {
            let dst = docs[rng.random_range(0..n_docs)];
            if dst != src {
                builder.add_link(src, dst)?;
            }
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SiteId;

    #[test]
    fn zipf_sampler_prefers_low_indices() {
        let z = ZipfSampler::new(100, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_weights_sum_to_one() {
        let z = ZipfSampler::new(10, 0.8).unwrap();
        let total: f64 = (0..10).map(|i| z.weight(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_rejects_bad_inputs() {
        assert!(ZipfSampler::new(0, 1.0).is_err());
        assert!(ZipfSampler::new(5, -1.0).is_err());
        assert!(ZipfSampler::new(5, f64::NAN).is_err());
    }

    #[test]
    fn small_campus_generates_with_expected_shape() {
        let cfg = CampusWebConfig::small();
        let g = cfg.generate().unwrap();
        assert_eq!(g.n_sites(), cfg.n_sites);
        let farm_pages: usize = cfg.spam_farms.iter().map(|f| f.n_pages).sum();
        assert!(g.n_docs() >= cfg.total_docs / 2);
        assert!(g.n_docs() <= cfg.total_docs * 2 + farm_pages);
        assert!(g.n_links() > g.n_docs()); // well-connected
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = CampusWebConfig::small();
        let g1 = cfg.generate().unwrap();
        let g2 = cfg.generate().unwrap();
        assert_eq!(g1, g2);
        let g3 = cfg.clone().with_seed(43).generate().unwrap();
        assert_ne!(g1, g3);
    }

    #[test]
    fn roots_collect_cross_site_indegree() {
        let g = CampusWebConfig::small().generate().unwrap();
        let indeg = g.in_degrees();
        // The portal root (doc 0 of site 0) must be among the best-linked
        // non-spam pages.
        let root0 = g.docs_of_site(SiteId(0))[0];
        let max_regular = (0..g.n_docs())
            .filter(|&d| !g.spam_labels()[d])
            .map(|d| indeg[d])
            .max()
            .unwrap();
        assert!(indeg[root0.index()] as f64 >= max_regular as f64 * 0.3);
    }

    #[test]
    fn spam_targets_dominate_indegree() {
        let cfg = CampusWebConfig::small();
        let g = cfg.generate().unwrap();
        let indeg = g.in_degrees();
        let spam = g.spam_labels();
        let max_spam = (0..g.n_docs())
            .filter(|&d| spam[d])
            .map(|d| indeg[d])
            .max()
            .unwrap();
        let max_regular = (0..g.n_docs())
            .filter(|&d| !spam[d])
            .map(|d| indeg[d])
            .max()
            .unwrap();
        // The farm hubs out-collect every legitimate page — the precondition
        // for the Figure 3 phenomenon.
        assert!(
            max_spam > max_regular,
            "spam max in-degree {max_spam} vs regular {max_regular}"
        );
    }

    #[test]
    fn spam_pages_live_in_their_host_site() {
        let cfg = CampusWebConfig::small();
        let g = cfg.generate().unwrap();
        for (d, &is_spam) in g.spam_labels().iter().enumerate() {
            if is_spam {
                let site = g.site_of(DocId(d)).index();
                assert!(cfg.spam_farms.iter().any(|f| f.host_site == site));
            }
        }
    }

    #[test]
    fn without_spam_removes_farms() {
        let g = CampusWebConfig::small().without_spam().generate().unwrap();
        assert!(g.spam_labels().iter().all(|&s| !s));
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = CampusWebConfig::small();
        cfg.n_sites = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = CampusWebConfig::small();
        cfg.total_docs = 10;
        assert!(cfg.validate().is_err());

        let mut cfg = CampusWebConfig::small();
        cfg.root_bias = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = CampusWebConfig::small();
        cfg.spam_farms[0].host_site = 10_000;
        assert!(cfg.validate().is_err());

        let mut cfg = CampusWebConfig::small();
        cfg.spam_farms[0].n_targets = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn site_sizes_respect_minimum_and_order() {
        let cfg = CampusWebConfig::small();
        let sizes = cfg.site_sizes();
        assert_eq!(sizes.len(), cfg.n_sites);
        assert!(sizes.iter().all(|&s| s >= cfg.min_site_size));
        assert!(sizes[0] >= sizes[cfg.n_sites - 1]); // Zipf: site 0 largest
    }

    #[test]
    fn random_web_shape() {
        let g = random_web(500, 20, 5, 9).unwrap();
        assert_eq!(g.n_docs(), 500);
        assert_eq!(g.n_sites(), 20);
        assert!(g.n_links() > 1_000);
        assert!(random_web(5, 10, 2, 0).is_err());
    }

    #[test]
    fn site_names_unique_for_many_sites() {
        let names: std::collections::HashSet<String> = (0..500).map(site_name).collect();
        assert_eq!(names.len(), 500);
    }
}
