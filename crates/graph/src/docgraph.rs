//! The document-level web graph `G_D(V_D, E_D)` of Section 3.1.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{GraphError, Result};
use crate::ids::{DocId, SiteId};
use crate::remap::IdRemap;
use lmm_linalg::{CooMatrix, CsrMatrix};

/// Classification of a generated or crawled page, used as ground truth by
/// the evaluation harness (the paper's Figures 3/4 distinguish authoritative
/// root pages from spam-cluster pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageKind {
    /// An ordinary content page.
    #[default]
    Regular,
    /// The root / home page of its site (an "authoritative" page in the
    /// paper's qualitative reading of Figure 4).
    SiteRoot,
    /// A member of a densely self-linked agglomerate (the paper's javadoc /
    /// `Webdriver?` clusters) — the structures that hijack flat PageRank.
    SpamFarm,
}

impl PageKind {
    /// Single-character tag used by the snapshot format.
    #[must_use]
    pub fn tag(self) -> char {
        match self {
            PageKind::Regular => 'R',
            PageKind::SiteRoot => 'O',
            PageKind::SpamFarm => 'S',
        }
    }

    /// Parses the snapshot tag.
    #[must_use]
    pub fn from_tag(c: char) -> Option<Self> {
        match c {
            'R' => Some(PageKind::Regular),
            'O' => Some(PageKind::SiteRoot),
            'S' => Some(PageKind::SpamFarm),
            _ => None,
        }
    }
}

/// Append-friendly copy-on-write column: a sequence of immutable `Arc`
/// segments. [`DocGraph::apply`](crate::delta::GraphDelta) clones the
/// segment *pointers* and pushes one new segment per delta, so append-only
/// deltas pay O(delta + segments) instead of O(n_docs) per apply.
///
/// Lookups binary-search the (tiny) offset table; iteration chains the
/// segments in order.
#[derive(Debug)]
pub(crate) struct CowColumn<T> {
    segments: Vec<Arc<Vec<T>>>,
    /// Cumulative segment starts; `offsets.len() == segments.len() + 1`,
    /// first entry 0, last entry the column length.
    offsets: Vec<usize>,
}

impl<T> CowColumn<T> {
    pub(crate) fn from_vec(v: Vec<T>) -> Self {
        let len = v.len();
        if len == 0 {
            return Self {
                segments: Vec::new(),
                offsets: vec![0],
            };
        }
        Self {
            segments: vec![Arc::new(v)],
            offsets: vec![0, len],
        }
    }

    pub(crate) fn len(&self) -> usize {
        *self.offsets.last().expect("offsets are non-empty")
    }

    pub(crate) fn get(&self, i: usize) -> &T {
        let seg = self.offsets.partition_point(|&o| o <= i) - 1;
        &self.segments[seg][i - self.offsets[seg]]
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &T> {
        self.segments.iter().flat_map(|s| s.iter())
    }

    /// A new column sharing every existing segment plus `tail` appended.
    pub(crate) fn append(&self, tail: Vec<T>) -> Self {
        let mut col = self.clone();
        if !tail.is_empty() {
            col.offsets.push(col.len() + tail.len());
            col.segments.push(Arc::new(tail));
        }
        col
    }
}

// Manual impl: the derive would demand `T: Clone`, but cloning only copies
// the segment `Arc`s.
impl<T> Clone for CowColumn<T> {
    fn clone(&self) -> Self {
        Self {
            segments: self.segments.clone(),
            offsets: self.offsets.clone(),
        }
    }
}

impl<T: PartialEq> PartialEq for CowColumn<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

/// An immutable document-level web graph: documents with URLs, their owning
/// sites, and deduplicated hyperlink edges.
///
/// Build one with [`DocGraphBuilder`] or generate one with
/// [`crate::generator`].
///
/// # Tombstones
///
/// Structural deltas can **remove** pages and sites
/// ([`crate::delta::GraphDelta::remove_page`] /
/// [`remove_site`](crate::delta::GraphDelta::remove_site)). Removal is
/// tombstone-based: the slot stays (so every surviving id keeps meaning
/// across deltas — the stability serving caches and delta-composed
/// fingerprints rely on), but the document leaves its site's member list
/// and every incident link is dropped. [`DocGraph::compact_ids`] is the
/// explicit maintenance step that densifies the id space, returning the
/// old→new [`IdRemap`].
#[derive(Debug, Clone)]
pub struct DocGraph {
    pub(crate) urls: CowColumn<String>,
    pub(crate) kinds: CowColumn<PageKind>,
    pub(crate) site_of: Vec<SiteId>,
    pub(crate) site_names: Vec<String>,
    pub(crate) site_members: Vec<Arc<Vec<DocId>>>,
    /// Tombstoned document ids, ascending (usually empty).
    pub(crate) dead_docs: Arc<Vec<DocId>>,
    /// Tombstoned site ids, ascending (usually empty).
    pub(crate) dead_sites: Arc<Vec<SiteId>>,
    pub(crate) adjacency: CsrMatrix,
}

impl PartialEq for DocGraph {
    fn eq(&self, other: &Self) -> bool {
        self.urls == other.urls
            && self.kinds == other.kinds
            && self.site_of == other.site_of
            && self.site_names == other.site_names
            && self.site_members == other.site_members
            && self.dead_docs == other.dead_docs
            && self.dead_sites == other.dead_sites
            && self.adjacency == other.adjacency
    }
}

/// An intra-site subgraph `G_d^s = (V_d(s), E_d(s))`: only the documents of
/// one site and the links between them (Section 3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSubgraph {
    /// Intra-site adjacency; dimension equals the number of member docs.
    pub adjacency: CsrMatrix,
    /// `members[local] = global` document ids, ascending.
    pub members: Vec<DocId>,
}

impl DocGraph {
    /// Number of document slots `N_D` (tombstoned slots included; see
    /// [`n_live_docs`](Self::n_live_docs)).
    #[must_use]
    pub fn n_docs(&self) -> usize {
        self.urls.len()
    }

    /// Number of site slots `N_S` (tombstoned slots included; see
    /// [`n_live_sites`](Self::n_live_sites)).
    #[must_use]
    pub fn n_sites(&self) -> usize {
        self.site_names.len()
    }

    /// Number of live (non-tombstoned) documents.
    #[must_use]
    pub fn n_live_docs(&self) -> usize {
        self.n_docs() - self.dead_docs.len()
    }

    /// Number of live (non-tombstoned) sites.
    #[must_use]
    pub fn n_live_sites(&self) -> usize {
        self.n_sites() - self.dead_sites.len()
    }

    /// `true` when any document or site slot is tombstoned.
    #[must_use]
    pub fn has_tombstones(&self) -> bool {
        !self.dead_docs.is_empty() || !self.dead_sites.is_empty()
    }

    /// Tombstoned document ids, ascending.
    #[must_use]
    pub fn dead_docs(&self) -> &[DocId] {
        &self.dead_docs
    }

    /// Tombstoned site ids, ascending.
    #[must_use]
    pub fn dead_sites(&self) -> &[SiteId] {
        &self.dead_sites
    }

    /// `true` when `doc` is in range and not tombstoned.
    #[must_use]
    pub fn is_live_doc(&self, doc: DocId) -> bool {
        doc.index() < self.n_docs() && self.dead_docs.binary_search(&doc).is_err()
    }

    /// `true` when `site` is in range and not tombstoned.
    #[must_use]
    pub fn is_live_site(&self, site: SiteId) -> bool {
        site.index() < self.n_sites() && self.dead_sites.binary_search(&site).is_err()
    }

    /// Live site ids, ascending.
    pub fn live_sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        (0..self.n_sites())
            .map(SiteId)
            .filter(|&s| self.dead_sites.binary_search(&s).is_err())
    }

    /// Number of (deduplicated) hyperlink edges.
    #[must_use]
    pub fn n_links(&self) -> usize {
        self.adjacency.nnz()
    }

    /// URL of a document.
    ///
    /// # Panics
    /// Panics if the id is out of bounds.
    #[must_use]
    pub fn url(&self, doc: DocId) -> &str {
        self.urls.get(doc.index())
    }

    /// Page classification of a document.
    ///
    /// # Panics
    /// Panics if the id is out of bounds.
    #[must_use]
    pub fn kind(&self, doc: DocId) -> PageKind {
        *self.kinds.get(doc.index())
    }

    /// The owning site of a document (the paper's `site(d)`). Tombstoned
    /// documents keep their last site assignment, so removed ids still
    /// route (e.g. to the shard that must answer "gone").
    ///
    /// # Panics
    /// Panics if the id is out of bounds.
    #[must_use]
    pub fn site_of(&self, doc: DocId) -> SiteId {
        self.site_of[doc.index()]
    }

    /// Site assignments for all documents, indexed by document id.
    #[must_use]
    pub fn site_assignments(&self) -> &[SiteId] {
        &self.site_of
    }

    /// Host name of a site.
    ///
    /// # Panics
    /// Panics if the id is out of bounds.
    #[must_use]
    pub fn site_name(&self, site: SiteId) -> &str {
        &self.site_names[site.index()]
    }

    /// Live documents of a site (ascending ids) — the paper's `V_d(s)`.
    /// Empty for a tombstoned site.
    ///
    /// # Panics
    /// Panics if the id is out of bounds.
    #[must_use]
    pub fn docs_of_site(&self, site: SiteId) -> &[DocId] {
        &self.site_members[site.index()]
    }

    /// Size of a site, `size(s)` — live members only.
    ///
    /// # Panics
    /// Panics if the id is out of bounds.
    #[must_use]
    pub fn site_size(&self, site: SiteId) -> usize {
        self.site_members[site.index()].len()
    }

    /// The deduplicated 0/1 adjacency matrix of the DocGraph. Tombstoned
    /// documents have empty rows and appear in no column.
    #[must_use]
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adjacency
    }

    /// Out-degree of a document.
    ///
    /// # Panics
    /// Panics if the id is out of bounds.
    #[must_use]
    pub fn out_degree(&self, doc: DocId) -> usize {
        self.adjacency.row_nnz(doc.index())
    }

    /// In-degrees of all documents (one pass over the edges).
    #[must_use]
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n_docs()];
        for (_, dst, _) in self.adjacency.iter() {
            deg[dst] += 1;
        }
        deg
    }

    /// `true` for documents labeled as spam-farm members, indexed by doc id.
    #[must_use]
    pub fn spam_labels(&self) -> Vec<bool> {
        self.kinds
            .iter()
            .map(|&k| k == PageKind::SpamFarm)
            .collect()
    }

    /// Extracts the intra-site subgraph `G_d^s` of one site: member
    /// documents and the links whose both endpoints belong to the site.
    ///
    /// # Panics
    /// Panics if the id is out of bounds.
    #[must_use]
    pub fn site_subgraph(&self, site: SiteId) -> SiteSubgraph {
        let members: &[DocId] = &self.site_members[site.index()];
        let mut local_of: HashMap<usize, usize> = HashMap::with_capacity(members.len());
        for (local, d) in members.iter().enumerate() {
            local_of.insert(d.index(), local);
        }
        let mut coo = CooMatrix::new(members.len(), members.len());
        for (local, d) in members.iter().enumerate() {
            let (cols, vals) = self.adjacency.row(d.index());
            for (&dst, &w) in cols.iter().zip(vals) {
                if let Some(&dst_local) = local_of.get(&dst) {
                    coo.push(local, dst_local, w);
                }
            }
        }
        SiteSubgraph {
            adjacency: coo.to_csr(),
            members: members.to_vec(),
        }
    }

    /// Counts the links that cross site boundaries.
    #[must_use]
    pub fn cross_site_links(&self) -> usize {
        self.adjacency
            .iter()
            .filter(|&(src, dst, _)| self.site_of[src] != self.site_of[dst])
            .count()
    }

    /// Iterates over all `(from, to)` document links.
    pub fn links(&self) -> impl Iterator<Item = (DocId, DocId)> + '_ {
        self.adjacency
            .iter()
            .map(|(src, dst, _)| (DocId(src), DocId(dst)))
    }

    /// Densifies the id space: drops every tombstoned document and site
    /// slot, renumbering survivors in order, and returns the compacted
    /// graph together with the old→new [`IdRemap`].
    ///
    /// This is the explicit maintenance step that trades id stability for
    /// a dense graph (flat baselines, snapshots, and rebalancing want
    /// density; live delta streams want stability). On a graph without
    /// tombstones it returns a clone and the identity remap.
    #[must_use]
    pub fn compact_ids(&self) -> (DocGraph, IdRemap) {
        if !self.has_tombstones() {
            return (
                self.clone(),
                IdRemap::identity(self.n_docs(), self.n_sites()),
            );
        }
        let mut next = 0usize;
        let doc_map: Vec<Option<DocId>> = (0..self.n_docs())
            .map(|d| {
                self.is_live_doc(DocId(d)).then(|| {
                    let id = DocId(next);
                    next += 1;
                    id
                })
            })
            .collect();
        let mut next_site = 0usize;
        let site_map: Vec<Option<SiteId>> = (0..self.n_sites())
            .map(|s| {
                self.is_live_site(SiteId(s)).then(|| {
                    let id = SiteId(next_site);
                    next_site += 1;
                    id
                })
            })
            .collect();

        let mut urls = Vec::with_capacity(next);
        let mut kinds = Vec::with_capacity(next);
        let mut site_of = Vec::with_capacity(next);
        for (d, mapped) in doc_map.iter().enumerate() {
            if mapped.is_some() {
                urls.push(self.urls.get(d).clone());
                kinds.push(*self.kinds.get(d));
                site_of.push(
                    site_map[self.site_of[d].index()].expect(
                        "a live document always belongs to a live site (apply enforces it)",
                    ),
                );
            }
        }
        let mut site_names = Vec::with_capacity(next_site);
        let mut site_members = Vec::with_capacity(next_site);
        for (s, mapped) in site_map.iter().enumerate() {
            if mapped.is_some() {
                site_names.push(self.site_names[s].clone());
                site_members.push(Arc::new(
                    self.site_members[s]
                        .iter()
                        .map(|&d| doc_map[d.index()].expect("members are live"))
                        .collect::<Vec<_>>(),
                ));
            }
        }
        // Adjacency rows in old order restricted to live rows: survivors
        // keep their relative order, so the new CSR can be built directly.
        let mut row_ptr = Vec::with_capacity(next + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(self.adjacency.nnz());
        for (d, mapped) in doc_map.iter().enumerate() {
            if mapped.is_none() {
                continue;
            }
            let (cols, _) = self.adjacency.row(d);
            col_idx.extend(
                cols.iter()
                    .map(|&c| doc_map[c].expect("no live row links a dead column").index()),
            );
            row_ptr.push(col_idx.len());
        }
        let values = vec![1.0f64; col_idx.len()];
        let adjacency = CsrMatrix::from_raw_parts(next, next, row_ptr, col_idx, values)
            .expect("compacted adjacency is consistent by construction");
        let compacted = DocGraph {
            urls: CowColumn::from_vec(urls),
            kinds: CowColumn::from_vec(kinds),
            site_of,
            site_names,
            site_members,
            dead_docs: Arc::new(Vec::new()),
            dead_sites: Arc::new(Vec::new()),
            adjacency,
        };
        (compacted, IdRemap::new(doc_map, site_map))
    }
}

/// Incremental builder for [`DocGraph`].
///
/// Sites are interned by name on first use; duplicate links collapse to one
/// edge at [`DocGraphBuilder::build`] time (the standard web-graph
/// convention: multiple anchor tags between the same pair of pages count
/// once for PageRank, while the SiteGraph counts *distinct document pairs*).
///
/// # Example
/// ```
/// use lmm_graph::docgraph::DocGraphBuilder;
/// # fn main() -> Result<(), lmm_graph::GraphError> {
/// let mut b = DocGraphBuilder::new();
/// let home = b.add_doc("www.x.org", "http://www.x.org/");
/// let page = b.add_doc("www.x.org", "http://www.x.org/a.html");
/// b.add_link(home, page)?;
/// b.add_link(home, page)?; // duplicate, collapses
/// let g = b.build();
/// assert_eq!(g.n_links(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct DocGraphBuilder {
    urls: Vec<String>,
    kinds: Vec<PageKind>,
    site_of: Vec<SiteId>,
    site_names: Vec<String>,
    site_index: HashMap<String, SiteId>,
    edges: Vec<(DocId, DocId)>,
}

impl DocGraphBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with edge capacity preallocated.
    #[must_use]
    pub fn with_capacity(docs: usize, edges: usize) -> Self {
        Self {
            urls: Vec::with_capacity(docs),
            kinds: Vec::with_capacity(docs),
            site_of: Vec::with_capacity(docs),
            edges: Vec::with_capacity(edges),
            ..Self::default()
        }
    }

    /// Interns a site by name, returning its id.
    pub fn site(&mut self, name: &str) -> SiteId {
        if let Some(&id) = self.site_index.get(name) {
            return id;
        }
        let id = SiteId(self.site_names.len());
        self.site_names.push(name.to_string());
        self.site_index.insert(name.to_string(), id);
        id
    }

    /// Adds a regular document belonging to `site_name`.
    pub fn add_doc(&mut self, site_name: &str, url: &str) -> DocId {
        self.add_doc_with_kind(site_name, url, PageKind::Regular)
    }

    /// Adds a document with an explicit [`PageKind`] label.
    pub fn add_doc_with_kind(&mut self, site_name: &str, url: &str, kind: PageKind) -> DocId {
        let site = self.site(site_name);
        let id = DocId(self.urls.len());
        self.urls.push(url.to_string());
        self.kinds.push(kind);
        self.site_of.push(site);
        id
    }

    /// Adds a document, deriving its site from the URL's host
    /// (see [`crate::url::host_of`]).
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidConfig`] when the URL has no host.
    pub fn add_url(&mut self, url: &str) -> Result<DocId> {
        let host = crate::url::host_of(url).ok_or_else(|| GraphError::InvalidConfig {
            reason: format!("url {url:?} has no host"),
        })?;
        Ok(self.add_doc(&host, url))
    }

    /// Number of documents added so far.
    #[must_use]
    pub fn n_docs(&self) -> usize {
        self.urls.len()
    }

    /// Records a hyperlink between two previously added documents.
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownDoc`] when either endpoint was never
    /// added.
    pub fn add_link(&mut self, from: DocId, to: DocId) -> Result<()> {
        let n = self.urls.len();
        for d in [from, to] {
            if d.index() >= n {
                return Err(GraphError::UnknownDoc {
                    doc: d.index(),
                    n_docs: n,
                });
            }
        }
        self.edges.push((from, to));
        Ok(())
    }

    /// Reconstructs a builder from an existing graph, so callers can apply
    /// edits (recrawls, link additions/removals) and rebuild — the workflow
    /// behind incremental rank maintenance.
    ///
    /// # Panics
    /// Panics on a tombstoned graph: the builder's dense id space cannot
    /// represent dead slots — [`DocGraph::compact_ids`] first.
    #[must_use]
    pub fn from_graph(graph: &DocGraph) -> Self {
        assert!(
            !graph.has_tombstones(),
            "DocGraphBuilder::from_graph needs a dense graph; call compact_ids() first"
        );
        let mut builder = Self::with_capacity(graph.n_docs(), graph.n_links());
        // Intern sites in id order so ids are preserved.
        for s in 0..graph.n_sites() {
            builder.site(graph.site_name(SiteId(s)));
        }
        for d in 0..graph.n_docs() {
            let doc = DocId(d);
            builder.add_doc_with_kind(
                graph.site_name(graph.site_of(doc)),
                graph.url(doc),
                graph.kind(doc),
            );
        }
        builder.edges.extend(graph.links());
        builder
    }

    /// Removes every recorded link between `from` and `to` (directed).
    /// Returns the number of removed link records.
    pub fn remove_link(&mut self, from: DocId, to: DocId) -> usize {
        let before = self.edges.len();
        self.edges.retain(|&(f, t)| !(f == from && t == to));
        before - self.edges.len()
    }

    /// Finalizes the graph: deduplicates edges and freezes the site index.
    #[must_use]
    pub fn build(self) -> DocGraph {
        let n = self.urls.len();
        let mut coo = CooMatrix::with_capacity(n, n, self.edges.len());
        for (from, to) in &self.edges {
            coo.push(from.index(), to.index(), 1.0);
        }
        // Duplicate links collapse to weight 1.
        let adjacency = coo.to_csr().map_values(|_| 1.0);
        let mut site_members = vec![Vec::new(); self.site_names.len()];
        for (doc, site) in self.site_of.iter().enumerate() {
            site_members[site.index()].push(DocId(doc));
        }
        DocGraph {
            urls: CowColumn::from_vec(self.urls),
            kinds: CowColumn::from_vec(self.kinds),
            site_of: self.site_of,
            site_names: self.site_names,
            site_members: site_members.into_iter().map(Arc::new).collect(),
            dead_docs: Arc::new(Vec::new()),
            dead_sites: Arc::new(Vec::new()),
            adjacency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_site_graph() -> DocGraph {
        let mut b = DocGraphBuilder::new();
        let a0 = b.add_doc_with_kind("a.org", "http://a.org/", PageKind::SiteRoot);
        let a1 = b.add_doc("a.org", "http://a.org/1");
        let a2 = b.add_doc("a.org", "http://a.org/2");
        let b0 = b.add_doc_with_kind("b.org", "http://b.org/", PageKind::SiteRoot);
        let b1 = b.add_doc("b.org", "http://b.org/1");
        b.add_link(a0, a1).unwrap();
        b.add_link(a1, a2).unwrap();
        b.add_link(a2, a0).unwrap();
        b.add_link(a2, b0).unwrap();
        b.add_link(b0, b1).unwrap();
        b.add_link(b1, a0).unwrap();
        b.build()
    }

    #[test]
    fn counts() {
        let g = two_site_graph();
        assert_eq!(g.n_docs(), 5);
        assert_eq!(g.n_sites(), 2);
        assert_eq!(g.n_links(), 6);
        assert_eq!(g.cross_site_links(), 2);
        assert_eq!(g.n_live_docs(), 5);
        assert_eq!(g.n_live_sites(), 2);
        assert!(!g.has_tombstones());
    }

    #[test]
    fn site_interning_reuses_ids() {
        let mut b = DocGraphBuilder::new();
        let s1 = b.site("x.org");
        let s2 = b.site("x.org");
        assert_eq!(s1, s2);
        let d = b.add_doc("x.org", "http://x.org/");
        assert_eq!(b.n_docs(), 1);
        let g = b.build();
        assert_eq!(g.site_of(d), s1);
    }

    #[test]
    fn duplicate_links_collapse() {
        let mut b = DocGraphBuilder::new();
        let d0 = b.add_doc("x", "u0");
        let d1 = b.add_doc("x", "u1");
        b.add_link(d0, d1).unwrap();
        b.add_link(d0, d1).unwrap();
        b.add_link(d0, d1).unwrap();
        let g = b.build();
        assert_eq!(g.n_links(), 1);
        assert_eq!(g.adjacency().get(0, 1), 1.0);
    }

    #[test]
    fn unknown_doc_rejected() {
        let mut b = DocGraphBuilder::new();
        let d0 = b.add_doc("x", "u0");
        assert!(matches!(
            b.add_link(d0, DocId(5)),
            Err(GraphError::UnknownDoc { doc: 5, .. })
        ));
    }

    #[test]
    fn add_url_derives_site() {
        let mut b = DocGraphBuilder::new();
        let d = b.add_url("http://Sub.Host.org/page").unwrap();
        let g = b.build();
        assert_eq!(g.site_name(g.site_of(d)), "sub.host.org");
    }

    #[test]
    fn add_url_rejects_hostless() {
        let mut b = DocGraphBuilder::new();
        assert!(b.add_url("http://").is_err());
    }

    #[test]
    fn site_subgraph_restricts_edges() {
        let g = two_site_graph();
        let sub = g.site_subgraph(SiteId(0));
        assert_eq!(sub.members, vec![DocId(0), DocId(1), DocId(2)]);
        // Only the 3-cycle inside a.org survives; the a2 -> b0 edge is cut.
        assert_eq!(sub.adjacency.nnz(), 3);
        let sub_b = g.site_subgraph(SiteId(1));
        assert_eq!(sub_b.members, vec![DocId(3), DocId(4)]);
        assert_eq!(sub_b.adjacency.nnz(), 1);
    }

    #[test]
    fn degrees() {
        let g = two_site_graph();
        assert_eq!(g.out_degree(DocId(2)), 2);
        let indeg = g.in_degrees();
        assert_eq!(indeg[0], 2); // a0 <- a2, b1
        assert_eq!(indeg[3], 1); // b0 <- a2
    }

    #[test]
    fn spam_labels_default_false() {
        let g = two_site_graph();
        assert!(g.spam_labels().iter().all(|&s| !s));
        assert_eq!(g.kind(DocId(0)), PageKind::SiteRoot);
        assert_eq!(g.kind(DocId(1)), PageKind::Regular);
    }

    #[test]
    fn page_kind_tags_roundtrip() {
        for k in [PageKind::Regular, PageKind::SiteRoot, PageKind::SpamFarm] {
            assert_eq!(PageKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(PageKind::from_tag('x'), None);
    }

    #[test]
    fn docs_of_site_ascending() {
        let g = two_site_graph();
        let docs = g.docs_of_site(SiteId(0));
        assert!(docs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(g.site_size(SiteId(1)), 2);
    }

    #[test]
    fn links_iterator_matches_adjacency() {
        let g = two_site_graph();
        assert_eq!(g.links().count(), g.n_links());
    }

    #[test]
    fn from_graph_roundtrips() {
        let g = two_site_graph();
        let rebuilt = DocGraphBuilder::from_graph(&g).build();
        assert_eq!(g, rebuilt);
    }

    #[test]
    fn from_graph_allows_edits() {
        let g = two_site_graph();
        let mut b = DocGraphBuilder::from_graph(&g);
        let removed = b.remove_link(DocId(0), DocId(1));
        assert_eq!(removed, 1);
        b.add_link(DocId(1), DocId(0)).unwrap();
        let edited = b.build();
        assert_eq!(edited.n_links(), g.n_links()); // one removed, one added
        assert_eq!(edited.adjacency().get(0, 1), 0.0);
        assert_eq!(edited.adjacency().get(1, 0), 1.0);
        // Site structure is preserved.
        assert_eq!(edited.n_sites(), g.n_sites());
        assert_eq!(edited.site_name(SiteId(0)), g.site_name(SiteId(0)));
    }

    #[test]
    fn remove_link_missing_is_zero() {
        let g = two_site_graph();
        let mut b = DocGraphBuilder::from_graph(&g);
        assert_eq!(b.remove_link(DocId(4), DocId(4)), 0);
    }

    #[test]
    fn cow_column_appends_share_segments() {
        let base = CowColumn::from_vec(vec![1, 2, 3]);
        let grown = base.append(vec![4, 5]);
        assert_eq!(grown.len(), 5);
        assert_eq!(*grown.get(0), 1);
        assert_eq!(*grown.get(4), 5);
        assert_eq!(
            grown.iter().copied().collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        // The first segment is shared, not cloned.
        assert!(Arc::ptr_eq(&base.segments[0], &grown.segments[0]));
        // Empty appends add no segment.
        let same = base.append(Vec::new());
        assert_eq!(same.segments.len(), base.segments.len());
        assert_eq!(base, base.clone());
    }

    #[test]
    fn compact_ids_on_dense_graph_is_identity() {
        let g = two_site_graph();
        let (dense, remap) = g.compact_ids();
        assert_eq!(dense, g);
        assert!(remap.is_identity());
    }
}
