//! Extraction of the owning Web site from document URLs.
//!
//! The paper groups documents into sites by host name (`www.epfl.ch`,
//! `research.epfl.ch`, ...). [`host_of`] implements that grouping rule:
//! strip the scheme, credentials and port, lowercase the host, and treat
//! the result as the site key.

/// Extracts the host (site key) from a URL.
///
/// Accepts full URLs (`http://Host:8080/path`), scheme-relative URLs
/// (`//host/path`) and bare `host/path` strings. The host is lowercased and
/// the port and userinfo are stripped. Returns `None` for inputs with an
/// empty host.
///
/// # Example
/// ```
/// use lmm_graph::url::host_of;
/// assert_eq!(host_of("http://WWW.EPFL.CH/index.html"), Some("www.epfl.ch".to_string()));
/// assert_eq!(host_of("https://research.epfl.ch:8080/x?y=z"), Some("research.epfl.ch".to_string()));
/// assert_eq!(host_of("lamp.epfl.ch/~user/"), Some("lamp.epfl.ch".to_string()));
/// assert_eq!(host_of("http:///nohost"), None);
/// ```
#[must_use]
pub fn host_of(url: &str) -> Option<String> {
    let rest = if let Some(idx) = url.find("://") {
        &url[idx + 3..]
    } else if let Some(stripped) = url.strip_prefix("//") {
        stripped
    } else {
        url
    };
    // Authority ends at the first '/', '?' or '#'.
    let authority_end = rest.find(['/', '?', '#']).unwrap_or(rest.len());
    let mut authority = &rest[..authority_end];
    // Strip userinfo.
    if let Some(at) = authority.rfind('@') {
        authority = &authority[at + 1..];
    }
    // Strip port (but not IPv6 brackets, which we do not expect in crawls).
    if let Some(colon) = authority.rfind(':') {
        if authority[colon + 1..].chars().all(|c| c.is_ascii_digit()) {
            authority = &authority[..colon];
        }
    }
    if authority.is_empty() {
        None
    } else {
        Some(authority.to_ascii_lowercase())
    }
}

/// Returns `true` when `url` looks like a dynamically generated page
/// (contains a query string) — the paper notes its crawl deliberately
/// includes such pages.
#[must_use]
pub fn is_dynamic(url: &str) -> bool {
    url.contains('?')
}

/// Builds a canonical synthetic URL for generated graphs.
#[must_use]
pub fn synthetic_url(host: &str, path: &str) -> String {
    format!("http://{host}/{}", path.trim_start_matches('/'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_scheme_and_port() {
        assert_eq!(host_of("http://a.b.c/x"), Some("a.b.c".into()));
        assert_eq!(host_of("https://a.b.c:443/"), Some("a.b.c".into()));
        assert_eq!(host_of("ftp://a.b.c"), Some("a.b.c".into()));
    }

    #[test]
    fn lowercases() {
        assert_eq!(host_of("http://WwW.EPFL.ch"), Some("www.epfl.ch".into()));
    }

    #[test]
    fn handles_bare_and_scheme_relative() {
        assert_eq!(host_of("//cdn.x.org/lib.js"), Some("cdn.x.org".into()));
        assert_eq!(host_of("plain.host/path"), Some("plain.host".into()));
    }

    #[test]
    fn strips_userinfo() {
        assert_eq!(host_of("http://user:pw@h.o.st/x"), Some("h.o.st".into()));
    }

    #[test]
    fn query_and_fragment_terminate_authority() {
        assert_eq!(host_of("http://h.o.st?q=1"), Some("h.o.st".into()));
        assert_eq!(host_of("http://h.o.st#frag"), Some("h.o.st".into()));
    }

    #[test]
    fn empty_host_is_none() {
        assert_eq!(host_of("http://"), None);
        assert_eq!(host_of(""), None);
        assert_eq!(host_of("http:///path"), None);
    }

    #[test]
    fn dynamic_detection() {
        assert!(is_dynamic("http://x/y?a=b"));
        assert!(!is_dynamic("http://x/y.html"));
    }

    #[test]
    fn synthetic_urls() {
        assert_eq!(synthetic_url("h.o", "/a/b"), "http://h.o/a/b");
        assert_eq!(synthetic_url("h.o", "a/b"), "http://h.o/a/b");
    }
}
