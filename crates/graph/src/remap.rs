//! Old→new id tables produced when a tombstoned graph is densified.
//!
//! Removal keeps ids stable: [`DocGraph::apply`](crate::docgraph::DocGraph::apply)
//! tombstones removed documents and sites in place, so every surviving id
//! keeps meaning across deltas — the property the serving tier and the
//! delta-composed fingerprints rely on. Densifying is therefore an
//! **explicit maintenance step**:
//! [`DocGraph::compact_ids`](crate::docgraph::DocGraph::compact_ids) drops
//! the dead slots and returns the compacted graph together with an
//! [`IdRemap`] — the old→new table consumers use to carry state (previous
//! rank vectors, client-held ids, shard bookkeeping) across the
//! renumbering.

use crate::ids::{DocId, SiteId};

/// The old→new id tables of one [`compact_ids`] renumbering: surviving ids
/// map to their dense new ids, tombstoned ids map to `None`.
///
/// Survivors keep their relative order (the remap is monotone), so
/// per-site orderings and membership lists stay sorted after translation.
///
/// [`compact_ids`]: crate::docgraph::DocGraph::compact_ids
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdRemap {
    docs: Vec<Option<DocId>>,
    sites: Vec<Option<SiteId>>,
}

impl IdRemap {
    /// Assembles a remap from its tables (crate-internal: produced by
    /// `compact_ids`).
    pub(crate) fn new(docs: Vec<Option<DocId>>, sites: Vec<Option<SiteId>>) -> Self {
        Self { docs, sites }
    }

    /// The identity remap over a graph without tombstones.
    #[must_use]
    pub fn identity(n_docs: usize, n_sites: usize) -> Self {
        Self {
            docs: (0..n_docs).map(|d| Some(DocId(d))).collect(),
            sites: (0..n_sites).map(|s| Some(SiteId(s))).collect(),
        }
    }

    /// `true` when every id maps to itself (no slot was dropped).
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.docs
            .iter()
            .enumerate()
            .all(|(i, d)| *d == Some(DocId(i)))
            && self
                .sites
                .iter()
                .enumerate()
                .all(|(i, s)| *s == Some(SiteId(i)))
    }

    /// New id of an old document (`None`: tombstoned, or out of range).
    #[must_use]
    pub fn doc(&self, old: DocId) -> Option<DocId> {
        self.docs.get(old.index()).copied().flatten()
    }

    /// New id of an old site (`None`: tombstoned, or out of range).
    #[must_use]
    pub fn site(&self, old: SiteId) -> Option<SiteId> {
        self.sites.get(old.index()).copied().flatten()
    }

    /// Number of document slots (dead included) in the old graph.
    #[must_use]
    pub fn n_old_docs(&self) -> usize {
        self.docs.len()
    }

    /// Number of site slots (dead included) in the old graph.
    #[must_use]
    pub fn n_old_sites(&self) -> usize {
        self.sites.len()
    }

    /// Number of documents in the compacted graph.
    #[must_use]
    pub fn n_new_docs(&self) -> usize {
        self.docs.iter().flatten().count()
    }

    /// Number of sites in the compacted graph.
    #[must_use]
    pub fn n_new_sites(&self) -> usize {
        self.sites.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_every_id_to_itself() {
        let r = IdRemap::identity(3, 2);
        assert!(r.is_identity());
        assert_eq!(r.doc(DocId(2)), Some(DocId(2)));
        assert_eq!(r.site(SiteId(1)), Some(SiteId(1)));
        assert_eq!(r.doc(DocId(3)), None); // out of range
        assert_eq!(r.n_old_docs(), 3);
        assert_eq!(r.n_new_docs(), 3);
    }

    #[test]
    fn holes_map_to_none_and_survivors_stay_monotone() {
        let r = IdRemap::new(
            vec![Some(DocId(0)), None, Some(DocId(1)), Some(DocId(2))],
            vec![Some(SiteId(0)), None, Some(SiteId(1))],
        );
        assert!(!r.is_identity());
        assert_eq!(r.doc(DocId(1)), None);
        assert_eq!(r.doc(DocId(3)), Some(DocId(2)));
        assert_eq!(r.site(SiteId(2)), Some(SiteId(1)));
        assert_eq!(r.n_old_docs(), 4);
        assert_eq!(r.n_new_docs(), 3);
        assert_eq!(r.n_new_sites(), 2);
    }
}
