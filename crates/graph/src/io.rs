//! Plain-text snapshot format for document graphs.
//!
//! A hand-rolled line format (no serialization dependency) with a strict
//! reader and round-trip guarantees:
//!
//! ```text
//! lmm-graph v1
//! sites <n_sites>
//! <site_id> <host-name>            (n_sites lines)
//! docs <n_docs>
//! <doc_id> <site_id> <kind-tag> <url>   (n_docs lines)
//! links <n_links>
//! <from> <to>                      (n_links lines)
//! ```
//!
//! URLs must not contain whitespace (true of crawled and generated URLs).

use std::io::{BufRead, Write};

use crate::docgraph::{DocGraph, DocGraphBuilder, PageKind};
use crate::error::{GraphError, Result};
use crate::ids::{DocId, SiteId};

const MAGIC: &str = "lmm-graph v1";

/// Writes a snapshot of `graph` to `w`.
///
/// A mutable reference works as well: `write_snapshot(&g, &mut file)`.
///
/// # Errors
/// Propagates IO failures as [`GraphError::Io`], and rejects tombstoned
/// graphs with [`GraphError::InvalidConfig`] — the dense line format has no
/// dead-slot notion, so compact first.
pub fn write_snapshot<W: Write>(graph: &DocGraph, mut w: W) -> Result<()> {
    if graph.has_tombstones() {
        return Err(GraphError::InvalidConfig {
            reason: "cannot snapshot a tombstoned graph; call compact_ids() first".into(),
        });
    }
    writeln!(w, "{MAGIC}")?;
    writeln!(w, "sites {}", graph.n_sites())?;
    for s in 0..graph.n_sites() {
        writeln!(w, "{s} {}", graph.site_name(SiteId(s)))?;
    }
    writeln!(w, "docs {}", graph.n_docs())?;
    for d in 0..graph.n_docs() {
        let doc = DocId(d);
        writeln!(
            w,
            "{d} {} {} {}",
            graph.site_of(doc).index(),
            graph.kind(doc).tag(),
            graph.url(doc)
        )?;
    }
    writeln!(w, "links {}", graph.n_links())?;
    for (from, to) in graph.links() {
        writeln!(w, "{} {}", from.index(), to.index())?;
    }
    Ok(())
}

/// Reads a snapshot previously produced by [`write_snapshot`].
///
/// A mutable reference works as well: `read_snapshot(&mut reader)`.
///
/// # Errors
/// Returns [`GraphError::ParseSnapshot`] with the offending line number for
/// any structural violation, and [`GraphError::Io`] for IO failures.
pub fn read_snapshot<R: BufRead>(r: R) -> Result<DocGraph> {
    let mut lines = r.lines().enumerate();

    let mut next_line = |expected: &'static str| -> Result<(usize, String)> {
        match lines.next() {
            Some((idx, Ok(line))) => Ok((idx + 1, line)),
            Some((idx, Err(e))) => Err(GraphError::ParseSnapshot {
                line: idx + 1,
                reason: format!("io error: {e}"),
            }),
            None => Err(GraphError::ParseSnapshot {
                line: 0,
                reason: format!("unexpected end of file, expected {expected}"),
            }),
        }
    };

    let (line_no, magic) = next_line("magic header")?;
    if magic.trim() != MAGIC {
        return Err(GraphError::ParseSnapshot {
            line: line_no,
            reason: format!("bad magic {magic:?}, expected {MAGIC:?}"),
        });
    }

    let parse_count = |line_no: usize, line: &str, keyword: &str| -> Result<usize> {
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some(k), Some(n), None) if k == keyword => {
                n.parse().map_err(|_| GraphError::ParseSnapshot {
                    line: line_no,
                    reason: format!("bad count {n:?}"),
                })
            }
            _ => Err(GraphError::ParseSnapshot {
                line: line_no,
                reason: format!("expected {keyword:?} <count>, got {line:?}"),
            }),
        }
    };

    // Sites.
    let (line_no, header) = next_line("sites header")?;
    let n_sites = parse_count(line_no, &header, "sites")?;
    let mut site_names = Vec::with_capacity(n_sites);
    for expect in 0..n_sites {
        let (line_no, line) = next_line("site line")?;
        let mut parts = line.split_whitespace();
        let id: usize =
            parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| GraphError::ParseSnapshot {
                    line: line_no,
                    reason: "missing site id".into(),
                })?;
        let name = parts.next().ok_or_else(|| GraphError::ParseSnapshot {
            line: line_no,
            reason: "missing site name".into(),
        })?;
        if id != expect {
            return Err(GraphError::ParseSnapshot {
                line: line_no,
                reason: format!("site ids must be dense and ordered, got {id}, expected {expect}"),
            });
        }
        site_names.push(name.to_string());
    }

    // Docs.
    let (line_no, header) = next_line("docs header")?;
    let n_docs = parse_count(line_no, &header, "docs")?;
    let mut builder = DocGraphBuilder::with_capacity(n_docs, 0);
    for expect in 0..n_docs {
        let (line_no, line) = next_line("doc line")?;
        let mut parts = line.split_whitespace();
        let bad = |reason: String| GraphError::ParseSnapshot {
            line: line_no,
            reason,
        };
        let id: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("missing doc id".into()))?;
        let site: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("missing site id".into()))?;
        let kind = parts
            .next()
            .and_then(|t| t.chars().next())
            .and_then(PageKind::from_tag)
            .ok_or_else(|| bad("missing or unknown kind tag".into()))?;
        let url = parts.next().ok_or_else(|| bad("missing url".into()))?;
        if id != expect {
            return Err(bad(format!(
                "doc ids must be dense and ordered, got {id}, expected {expect}"
            )));
        }
        if site >= n_sites {
            return Err(bad(format!("doc {id} references unknown site {site}")));
        }
        builder.add_doc_with_kind(&site_names[site], url, kind);
    }

    // Links.
    let (line_no, header) = next_line("links header")?;
    let n_links = parse_count(line_no, &header, "links")?;
    for _ in 0..n_links {
        let (line_no, line) = next_line("link line")?;
        let mut parts = line.split_whitespace();
        let bad = |reason: String| GraphError::ParseSnapshot {
            line: line_no,
            reason,
        };
        let from: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("missing link source".into()))?;
        let to: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("missing link target".into()))?;
        builder
            .add_link(DocId(from), DocId(to))
            .map_err(|e| bad(e.to_string()))?;
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CampusWebConfig;

    fn sample_graph() -> DocGraph {
        let mut b = DocGraphBuilder::new();
        let a = b.add_doc_with_kind("a.org", "http://a.org/", PageKind::SiteRoot);
        let x = b.add_doc("a.org", "http://a.org/x");
        let c = b.add_doc_with_kind("c.org", "http://c.org/spam?1", PageKind::SpamFarm);
        b.add_link(a, x).unwrap();
        b.add_link(x, c).unwrap();
        b.add_link(c, a).unwrap();
        b.build()
    }

    fn roundtrip(g: &DocGraph) -> DocGraph {
        let mut buf = Vec::new();
        write_snapshot(g, &mut buf).unwrap();
        read_snapshot(buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = sample_graph();
        assert_eq!(roundtrip(&g), g);
    }

    #[test]
    fn roundtrip_generated_graph() {
        let mut cfg = CampusWebConfig::small();
        cfg.total_docs = 400;
        cfg.n_sites = 10;
        cfg.spam_farms.truncate(1);
        cfg.spam_farms[0].host_site = 2;
        cfg.spam_farms[0].n_pages = 30;
        let g = cfg.generate().unwrap();
        assert_eq!(roundtrip(&g), g);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_snapshot("not a snapshot\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::ParseSnapshot { line: 1, .. }));
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = Vec::new();
        write_snapshot(&sample_graph(), &mut buf).unwrap();
        // Drop the last line.
        let text = String::from_utf8(buf).unwrap();
        let truncated = &text[..text.trim_end().rfind('\n').unwrap()];
        assert!(read_snapshot(truncated.as_bytes()).is_err());
    }

    #[test]
    fn rejects_unknown_site_reference() {
        let text = "lmm-graph v1\nsites 1\n0 a.org\ndocs 1\n0 7 R http://a.org/\nlinks 0\n";
        let err = read_snapshot(text.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::ParseSnapshot { line: 5, .. }));
    }

    #[test]
    fn rejects_bad_kind_tag() {
        let text = "lmm-graph v1\nsites 1\n0 a.org\ndocs 1\n0 0 Z http://a.org/\nlinks 0\n";
        assert!(read_snapshot(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_link() {
        let text = "lmm-graph v1\nsites 1\n0 a.org\ndocs 1\n0 0 R http://a.org/\nlinks 1\n0 9\n";
        assert!(read_snapshot(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_non_dense_doc_ids() {
        let text = "lmm-graph v1\nsites 1\n0 a.org\ndocs 2\n0 0 R u0\n5 0 R u1\nlinks 0\n";
        assert!(read_snapshot(text.as_bytes()).is_err());
    }
}
