//! Descriptive statistics of document graphs, for experiment tables.

use crate::docgraph::{DocGraph, PageKind};
use crate::ids::{DocId, SiteId};

/// Five-number-ish summary of a degree (or size) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest value.
    pub min: usize,
    /// Largest value.
    pub max: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower median for even counts).
    pub median: usize,
}

impl DegreeStats {
    /// Computes the summary of a non-empty sample.
    ///
    /// Returns `None` for an empty sample.
    #[must_use]
    pub fn of(values: &[usize]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        Some(Self {
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            mean: sorted.iter().sum::<usize>() as f64 / sorted.len() as f64,
            median: sorted[(sorted.len() - 1) / 2],
        })
    }
}

impl std::fmt::Display for DegreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min={} median={} mean={:.1} max={}",
            self.min, self.median, self.mean, self.max
        )
    }
}

/// Whole-graph summary used by the experiment binaries to print a
/// crawl-statistics header comparable to the paper's Section 3.3 figures
/// (218 sites, 433,707 pages).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    /// Number of documents.
    pub n_docs: usize,
    /// Number of sites.
    pub n_sites: usize,
    /// Number of deduplicated links.
    pub n_links: usize,
    /// Links whose endpoints belong to different sites.
    pub cross_site_links: usize,
    /// Links within one site.
    pub intra_site_links: usize,
    /// Number of pages labeled as spam-farm members.
    pub n_spam_pages: usize,
    /// In-degree distribution summary.
    pub in_degree: DegreeStats,
    /// Out-degree distribution summary.
    pub out_degree: DegreeStats,
    /// Site-size distribution summary.
    pub site_size: DegreeStats,
}

impl std::fmt::Display for GraphSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} sites, {} pages, {} links ({} cross-site, {} intra-site), {} spam pages",
            self.n_sites,
            self.n_docs,
            self.n_links,
            self.cross_site_links,
            self.intra_site_links,
            self.n_spam_pages
        )?;
        writeln!(f, "  in-degree:  {}", self.in_degree)?;
        writeln!(f, "  out-degree: {}", self.out_degree)?;
        write!(f, "  site size:  {}", self.site_size)
    }
}

/// Summarizes a document graph.
///
/// # Panics
/// Panics if the graph has no documents or no sites (generated and built
/// graphs always have both).
#[must_use]
pub fn summarize(graph: &DocGraph) -> GraphSummary {
    let in_degrees = graph.in_degrees();
    let out_degrees: Vec<usize> = (0..graph.n_docs())
        .map(|d| graph.out_degree(DocId(d)))
        .collect();
    let site_sizes: Vec<usize> = (0..graph.n_sites())
        .map(|s| graph.site_size(SiteId(s)))
        .collect();
    let cross = graph.cross_site_links();
    let n_spam = (0..graph.n_docs())
        .filter(|&d| graph.kind(DocId(d)) == PageKind::SpamFarm)
        .count();
    GraphSummary {
        n_docs: graph.n_docs(),
        n_sites: graph.n_sites(),
        n_links: graph.n_links(),
        cross_site_links: cross,
        intra_site_links: graph.n_links() - cross,
        n_spam_pages: n_spam,
        in_degree: DegreeStats::of(&in_degrees).expect("graph has documents"),
        out_degree: DegreeStats::of(&out_degrees).expect("graph has documents"),
        site_size: DegreeStats::of(&site_sizes).expect("graph has sites"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docgraph::DocGraphBuilder;
    use crate::generator::CampusWebConfig;

    #[test]
    fn degree_stats_known_sample() {
        let s = DegreeStats::of(&[3, 1, 2, 10]).unwrap();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10);
        assert_eq!(s.median, 2);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!(s.to_string().contains("max=10"));
    }

    #[test]
    fn degree_stats_empty_is_none() {
        assert!(DegreeStats::of(&[]).is_none());
    }

    #[test]
    fn summary_of_small_graph() {
        let mut b = DocGraphBuilder::new();
        let a = b.add_doc("a.org", "u0");
        let x = b.add_doc("a.org", "u1");
        let c = b.add_doc("c.org", "u2");
        b.add_link(a, x).unwrap();
        b.add_link(x, c).unwrap();
        let g = b.build();
        let s = summarize(&g);
        assert_eq!(s.n_docs, 3);
        assert_eq!(s.n_sites, 2);
        assert_eq!(s.n_links, 2);
        assert_eq!(s.cross_site_links, 1);
        assert_eq!(s.intra_site_links, 1);
        assert_eq!(s.n_spam_pages, 0);
        assert!(s.to_string().contains("2 sites"));
    }

    #[test]
    fn summary_counts_spam() {
        let g = CampusWebConfig::small().generate().unwrap();
        let s = summarize(&g);
        let expected: usize = CampusWebConfig::small()
            .spam_farms
            .iter()
            .map(|f| f.n_pages)
            .sum();
        assert_eq!(s.n_spam_pages, expected);
    }
}
