//! Web-graph substrate for layered ranking.
//!
//! The paper's Section 3 works with two granularities of the Web:
//!
//! * the **DocGraph** `G_D(V_D, E_D)` — vertices are Web documents, edges
//!   are hyperlinks ([`docgraph::DocGraph`]);
//! * the **SiteGraph** `G_S(V_S, E_S)` — vertices are Web sites, and the
//!   weight of a SiteLink counts the document-level links between two sites
//!   ([`sitegraph::SiteGraph`]).
//!
//! This crate provides both, plus:
//!
//! * [`delta`] — validated, composable structural mutations
//!   ([`delta::GraphDelta`]) with consistent renumbering and
//!   tombstone-based removal under
//!   [`DocGraph::apply`](docgraph::DocGraph::apply) — the substrate of
//!   incremental re-ranking under Web churn — plus the explicit
//!   [`compact_ids`](docgraph::DocGraph::compact_ids) densification step
//!   and its [`remap::IdRemap`] table;
//! * [`url`] — extraction of the owning site from document URLs;
//! * [`generator`] — deterministic synthetic web-graph generators,
//!   including the **campus-web model** that substitutes for the paper's
//!   (unavailable) EPFL crawl: Zipf site sizes, hierarchical intra-site
//!   structure, hub-concentrated inter-site links, and injected intra-site
//!   spam farms modeled on the two structures the paper dissects;
//! * [`io`] — a hand-rolled plain-text snapshot format with round-trip
//!   guarantees;
//! * [`stats`] — degree and size statistics for experiment tables.
//!
//! # Example
//!
//! ```
//! use lmm_graph::docgraph::DocGraphBuilder;
//! use lmm_graph::sitegraph::{SiteGraph, SiteGraphOptions};
//!
//! # fn main() -> Result<(), lmm_graph::GraphError> {
//! let mut b = DocGraphBuilder::new();
//! let a = b.add_doc("www.a.edu", "http://www.a.edu/");
//! let a2 = b.add_doc("www.a.edu", "http://www.a.edu/x");
//! let c = b.add_doc("www.c.edu", "http://www.c.edu/");
//! b.add_link(a, a2)?;
//! b.add_link(a2, c)?;
//! let g = b.build();
//! let s = SiteGraph::from_doc_graph(&g, &SiteGraphOptions::default());
//! assert_eq!(g.n_docs(), 3);
//! assert_eq!(s.n_sites(), 2);
//! # Ok(())
//! # }
//! ```

pub mod crawler;
pub mod delta;
pub mod docgraph;
pub mod error;
pub mod generator;
pub mod ids;
pub mod io;
pub mod remap;
pub mod sharding;
pub mod sitegraph;
pub mod stats;
pub mod url;

pub use delta::{AppliedDelta, GraphDelta};
pub use docgraph::{DocGraph, DocGraphBuilder};
pub use error::{GraphError, Result};
pub use generator::CampusWebConfig;
pub use ids::{DocId, SiteId};
pub use remap::IdRemap;
pub use sharding::ShardMap;
pub use sitegraph::{ranking_site_graph, SiteGraph, SiteGraphOptions};
