//! The site-level web graph `G_S(V_S, E_S)` of Section 3.1.
//!
//! Nodes are Web sites; the weight of the SiteLink `(s, t)` counts the
//! document-level links from any page of `s` to any page of `t` — the
//! paper's rule: *"to count the number of Sitelinks between two sites, we
//! add the number of outgoing edges from any node in the first site to any
//! node in the second site."*
//!
//! Unlike BlockRank's block graph, these weights depend only on the link
//! counts, never on a prior local-rank computation, so SiteRank and the
//! local DocRanks can be computed **in parallel** (Section 3.2).

use crate::docgraph::DocGraph;
use crate::ids::SiteId;
use lmm_linalg::{CooMatrix, CsrMatrix, LinalgError, StochasticMatrix};

/// How SiteLink multiplicities map to edge weights.
///
/// `LinkCount` is the paper's definition; the others are ablations exercised
/// by the experiment harness (experiment E10 in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SiteLinkWeighting {
    /// Weight = number of document links between the two sites (the paper).
    #[default]
    LinkCount,
    /// Weight = 1 for any connected pair (ignores multiplicity).
    Uniform,
    /// Weight = ln(1 + count) — a damped multiplicity ablation.
    LogCount,
}

/// Options controlling SiteGraph derivation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SiteGraphOptions {
    /// Keep intra-site link totals as self-loop edges. The paper's SiteLink
    /// notion covers hyperlinks *among* (distinct) sites, so the default is
    /// `false`; the ablation harness flips it.
    pub include_self_loops: bool,
    /// Multiplicity-to-weight mapping.
    pub weighting: SiteLinkWeighting,
}

/// The aggregated site-level graph with weighted SiteLink edges.
///
/// # Example
/// ```
/// use lmm_graph::docgraph::DocGraphBuilder;
/// use lmm_graph::sitegraph::{SiteGraph, SiteGraphOptions};
///
/// # fn main() -> Result<(), lmm_graph::GraphError> {
/// let mut b = DocGraphBuilder::new();
/// let a = b.add_doc("a.org", "http://a.org/");
/// let c1 = b.add_doc("c.org", "http://c.org/1");
/// let c2 = b.add_doc("c.org", "http://c.org/2");
/// b.add_link(a, c1)?;
/// b.add_link(a, c2)?;
/// let g = b.build();
/// let s = SiteGraph::from_doc_graph(&g, &SiteGraphOptions::default());
/// assert_eq!(s.weight(0.into(), 1.into()), 2.0); // two doc links a.org -> c.org
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SiteGraph {
    weights: CsrMatrix,
    options: SiteGraphOptions,
}

impl SiteGraph {
    /// Derives the SiteGraph from a DocGraph (Section 3.2, step 2).
    #[must_use]
    pub fn from_doc_graph(doc_graph: &DocGraph, options: &SiteGraphOptions) -> Self {
        let ns = doc_graph.n_sites();
        let mut coo = CooMatrix::new(ns, ns);
        let site_of = doc_graph.site_assignments();
        for (src, dst, _) in doc_graph.adjacency().iter() {
            let (s, t) = (site_of[src], site_of[dst]);
            if s == t && !options.include_self_loops {
                continue;
            }
            coo.push(s.index(), t.index(), 1.0);
        }
        let counts = coo.to_csr();
        let weights = match options.weighting {
            SiteLinkWeighting::LinkCount => counts,
            SiteLinkWeighting::Uniform => counts.map_values(|_| 1.0),
            SiteLinkWeighting::LogCount => counts.map_values(|c| (1.0 + c).ln()),
        };
        Self {
            weights,
            options: *options,
        }
    }

    /// Number of sites.
    #[must_use]
    pub fn n_sites(&self) -> usize {
        self.weights.nrows()
    }

    /// Number of (directed) SiteLink edges.
    #[must_use]
    pub fn n_sitelinks(&self) -> usize {
        self.weights.nnz()
    }

    /// The weighted adjacency matrix over sites.
    #[must_use]
    pub fn weights(&self) -> &CsrMatrix {
        &self.weights
    }

    /// Consumes the graph, returning the owned weight matrix — for callers
    /// that only need the matrix and would otherwise clone O(nnz) storage.
    #[must_use]
    pub fn into_weights(self) -> CsrMatrix {
        self.weights
    }

    /// Weight of one SiteLink (0 when absent).
    ///
    /// # Panics
    /// Panics if either id is out of bounds.
    #[must_use]
    pub fn weight(&self, from: SiteId, to: SiteId) -> f64 {
        self.weights.get(from.index(), to.index())
    }

    /// The options this graph was derived with.
    #[must_use]
    pub fn options(&self) -> &SiteGraphOptions {
        &self.options
    }

    /// Row-normalizes the weights into the site transition matrix `M(G_S)`.
    ///
    /// # Errors
    /// Propagates [`LinalgError`] from validation (cannot occur for graphs
    /// built by [`SiteGraph::from_doc_graph`], which are square and
    /// non-negative by construction).
    pub fn to_stochastic(&self) -> Result<StochasticMatrix, LinalgError> {
        StochasticMatrix::from_adjacency(self.weights.clone())
    }
}

/// The one shared SiteGraph derivation used by every ranking pipeline — the
/// single-process Layered Method (`lmm-core::siterank`), incremental
/// maintenance, the distributed simulator (`lmm-p2p`), and the unified
/// `RankEngine`.
///
/// All pipelines MUST derive their site layer through this helper (rather
/// than calling [`SiteGraph::from_doc_graph`] with locally constructed
/// options) so that distributed and local computations provably rank the
/// same `Y`: a drift in derivation options between pipelines would silently
/// break the equivalence the Partition Theorem promises.
#[must_use]
pub fn ranking_site_graph(doc_graph: &DocGraph, options: &SiteGraphOptions) -> SiteGraph {
    SiteGraph::from_doc_graph(doc_graph, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docgraph::DocGraphBuilder;

    /// a.org: 3 docs with internal cycle; b.org: 2 docs.
    /// Cross links: a->b x3 (from distinct pairs), b->a x1.
    fn doc_graph() -> DocGraph {
        let mut b = DocGraphBuilder::new();
        let a0 = b.add_doc("a.org", "u0");
        let a1 = b.add_doc("a.org", "u1");
        let a2 = b.add_doc("a.org", "u2");
        let b0 = b.add_doc("b.org", "u3");
        let b1 = b.add_doc("b.org", "u4");
        b.add_link(a0, a1).unwrap();
        b.add_link(a1, a2).unwrap();
        b.add_link(a2, a0).unwrap();
        b.add_link(a0, b0).unwrap();
        b.add_link(a1, b0).unwrap();
        b.add_link(a2, b1).unwrap();
        b.add_link(b0, a0).unwrap();
        b.build()
    }

    #[test]
    fn link_count_weights() {
        let g = doc_graph();
        let s = SiteGraph::from_doc_graph(&g, &SiteGraphOptions::default());
        assert_eq!(s.n_sites(), 2);
        assert_eq!(s.weight(SiteId(0), SiteId(1)), 3.0);
        assert_eq!(s.weight(SiteId(1), SiteId(0)), 1.0);
        // Self loops excluded by default.
        assert_eq!(s.weight(SiteId(0), SiteId(0)), 0.0);
        assert_eq!(s.n_sitelinks(), 2);
    }

    #[test]
    fn self_loops_included_on_request() {
        let g = doc_graph();
        let s = SiteGraph::from_doc_graph(
            &g,
            &SiteGraphOptions {
                include_self_loops: true,
                ..SiteGraphOptions::default()
            },
        );
        assert_eq!(s.weight(SiteId(0), SiteId(0)), 3.0); // the internal cycle
        assert_eq!(s.n_sitelinks(), 3);
    }

    #[test]
    fn uniform_weighting_ignores_multiplicity() {
        let g = doc_graph();
        let s = SiteGraph::from_doc_graph(
            &g,
            &SiteGraphOptions {
                weighting: SiteLinkWeighting::Uniform,
                ..SiteGraphOptions::default()
            },
        );
        assert_eq!(s.weight(SiteId(0), SiteId(1)), 1.0);
        assert_eq!(s.weight(SiteId(1), SiteId(0)), 1.0);
    }

    #[test]
    fn log_weighting_damps_multiplicity() {
        let g = doc_graph();
        let s = SiteGraph::from_doc_graph(
            &g,
            &SiteGraphOptions {
                weighting: SiteLinkWeighting::LogCount,
                ..SiteGraphOptions::default()
            },
        );
        assert!((s.weight(SiteId(0), SiteId(1)) - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn to_stochastic_row_normalizes() {
        let g = doc_graph();
        let s = SiteGraph::from_doc_graph(&g, &SiteGraphOptions::default());
        let m = s.to_stochastic().unwrap();
        assert!((m.matrix().get(0, 1) - 1.0).abs() < 1e-12);
        assert!(m.is_fully_stochastic());
    }

    #[test]
    fn isolated_site_becomes_dangling() {
        let mut b = DocGraphBuilder::new();
        let a = b.add_doc("a.org", "u0");
        let _lonely = b.add_doc("c.org", "u1");
        let d = b.add_doc("b.org", "u2");
        b.add_link(a, d).unwrap();
        let g = b.build();
        let s = SiteGraph::from_doc_graph(&g, &SiteGraphOptions::default());
        let m = s.to_stochastic().unwrap();
        // c.org (site 1) and b.org (site 2) have no outgoing sitelinks.
        assert_eq!(m.dangling(), &[1, 2]);
    }
}
