//! Std-only scoped thread pool and data-parallel helpers.
//!
//! This crate is the workspace's parallel execution layer. The build
//! environment has no crates.io access, so instead of rayon it provides a
//! small, deliberately boring pool built only on `std::thread`,
//! `std::sync::mpsc`, and a condvar latch — sized from the engine's
//! `threads` knob (`0` = one worker per available core).
//!
//! # Design: persistent workers + scoped submission
//!
//! A [`ThreadPool`] spawns its workers **once** and parks them on a shared
//! job channel; ranking workloads execute thousands of short parallel
//! regions (one per power-iteration step), so per-region `thread::spawn`
//! would dominate the very kernels being accelerated. Jobs sent to a
//! persistent worker must be `'static`, yet every useful job borrows the
//! caller's buffers. [`ThreadPool::scope`] bridges the two the same way
//! crossbeam's scope does: a job's lifetime is erased when it is enqueued
//! (the one `unsafe` in this crate) and the scope **always joins every
//! spawned job before returning** — even when the scope body or a job
//! panics — so the borrow can never outlive the data. Panics inside jobs
//! are caught, carried across the latch, and resumed on the caller.
//!
//! A pool built with one thread (or on a single-core host) is a **serial
//! pool**: [`Scope::spawn`] runs the closure inline on the caller's stack.
//! The helpers below are written so that the arithmetic they perform is
//! *identical* for every pool size — see "Determinism".
//!
//! # Determinism
//!
//! Rankings must not depend on the thread count (`threads(1)` and
//! `threads(8)` have to produce bit-identical score vectors), so every
//! helper keeps floating-point evaluation order fixed:
//!
//! * [`ThreadPool::par_map`] writes each result into its own slot — output
//!   order is the input order no matter which worker claims which item;
//! * [`ThreadPool::par_chunks_mut`] gives each task a disjoint output
//!   range — elementwise kernels never race and never reorder;
//! * [`ThreadPool::par_reduce`] splits `0..len` on a **fixed chunk grid**
//!   (a function of `len` and `chunk` only, never of the worker count) and
//!   folds the partial values in ascending chunk order. The grouping of a
//!   floating-point sum is therefore a property of the call, not of the
//!   schedule.
//!
//! # Why gather beats scatter for `Mᵀx`
//!
//! The pool exists to parallelize the ranking hot path, `y = Mᵀ x`. The
//! seed implementation walked the rows of `M` and **scattered**
//! `y[col] += v · x[row]` — every thread would write every part of `y`,
//! which is a data race unless each output is atomic or privatized. The
//! parallel kernel in `lmm-linalg` instead materializes `Mᵀ` once and
//! **gathers**: row `r` of `Mᵀ` computes `y[r] = Σ v·x[col]`, so each
//! thread owns a disjoint slice of `y` (no synchronization on the output),
//! reads `Mᵀ`'s values sequentially (hardware prefetch works), and the
//! in-row accumulation order equals the serial scatter order (bit-identical
//! results). See `lmm_linalg::StationaryOperator` for the kernel itself.
//!
//! # Nesting
//!
//! Scopes must not be nested on the same parallel pool from inside a job:
//! the inner scope would wait for queue slots held by its own ancestors.
//! As a safety net every worker marks its thread, and [`Scope::spawn`]
//! called from a worker thread runs the job inline instead of enqueueing
//! it — nested parallelism degrades to serial execution instead of
//! deadlocking. Keep inner solvers (e.g. one site's PageRank) explicitly
//! serial; parallelize at the outermost independent level.
//!
//! # Example
//!
//! ```
//! use lmm_par::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.par_map(&[1, 2, 3, 4], |_, &v| v * v);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! let sum = pool
//!     .par_reduce(1_000, 64, |r| r.map(|i| i as f64).sum::<f64>(), |a, b| a + b)
//!     .unwrap();
//! assert_eq!(sum, 499_500.0);
//! ```

use std::any::Any;
use std::cell::Cell;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Locks a mutex, recovering the guard if a previous holder panicked.
/// Sound for every mutex in this crate: they protect a latch counter, a
/// panic payload slot, take-once task slots, and the pool registry — all
/// of which stay valid across any panic point (jobs themselves run under
/// `catch_unwind`, so a poisoned flag carries no extra information here).
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// Set while the current thread is a pool worker executing a job; used
    /// to run nested spawns inline instead of deadlocking the queue.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Resolves a `threads` knob to a concrete worker count: `0` means one per
/// available core (falling back to 1 when the parallelism is unknown).
#[must_use]
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
}

/// A fixed-size pool of persistent worker threads with scoped (borrowing)
/// job submission. See the crate docs for the design rationale.
pub struct ThreadPool {
    /// `None` for a serial pool: scoped jobs run inline on the caller.
    inner: Option<Inner>,
    threads: usize,
}

struct Inner {
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Closing the channel wakes every parked worker with `Err`.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (`0` = one per available
    /// core). One thread — or a single-core host — yields a serial pool
    /// that runs every scoped job inline, spawning nothing.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = resolve_threads(threads);
        if threads <= 1 {
            return Self {
                inner: None,
                threads: 1,
            };
        }
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                thread::Builder::new()
                    .name(format!("lmm-par-{i}"))
                    .spawn(move || {
                        IN_WORKER.with(|flag| flag.set(true));
                        loop {
                            // Take the lock only to dequeue, never while
                            // running a job.
                            let job = match receiver.lock() {
                                Ok(guard) => guard.recv(),
                                Err(_) => break,
                            };
                            match job {
                                Ok(job) => job(),
                                Err(_) => break,
                            }
                        }
                    })
                    // lint: allow(panic, "thread spawn fails only on resource exhaustion at pool construction; no query path reaches this")
                    .expect("failed to spawn lmm-par worker")
            })
            .collect();
        Self {
            inner: Some(Inner {
                sender: Some(sender),
                workers,
            }),
            threads,
        }
    }

    /// A serial pool: every scoped job runs inline on the caller's thread.
    /// Construction is free (no threads, no channel).
    #[must_use]
    pub fn serial() -> Self {
        Self {
            inner: None,
            threads: 1,
        }
    }

    /// Returns the process-wide shared pool for a `threads` knob value,
    /// creating it on first use. Pools are keyed by their *resolved* worker
    /// count, so `0` and an explicit `available_parallelism()` share one
    /// pool. Shared pools live for the life of the process; their parked
    /// workers cost nothing between parallel regions.
    #[must_use]
    pub fn shared(threads: usize) -> Arc<ThreadPool> {
        static REGISTRY: Mutex<Vec<(usize, Arc<ThreadPool>)>> = Mutex::new(Vec::new());
        let resolved = resolve_threads(threads);
        let mut registry = lock_clean(&REGISTRY);
        if let Some((_, pool)) = registry.iter().find(|(n, _)| *n == resolved) {
            return Arc::clone(pool);
        }
        let pool = Arc::new(ThreadPool::new(resolved));
        registry.push((resolved, Arc::clone(&pool)));
        pool
    }

    /// Number of workers (1 for a serial pool).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` when scoped jobs run inline on the caller's thread.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.inner.is_none()
    }

    /// Runs `f` with a [`Scope`] on which borrowing jobs can be spawned;
    /// returns after **all** spawned jobs have finished. The first panic
    /// from the body or any job is resumed on the caller once every job
    /// has completed.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: Mutex::new(0),
                done: Condvar::new(),
                panic: Mutex::new(None),
            }),
            _env: PhantomData,
        };
        let body = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Soundness: block until every enqueued job has run, even when the
        // body panicked — jobs still hold borrows into `'env`.
        let mut pending = lock_clean(&scope.state.pending);
        while *pending > 0 {
            pending = scope
                .state
                .done
                .wait(pending)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(pending);
        if let Some(payload) = lock_clean(&scope.state.panic).take() {
            resume_unwind(payload);
        }
        match body {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// The claiming primitive every fan-out here is built on: runs `f`
    /// once per task, with tasks handed **by value** to whichever worker
    /// claims them (an atomic cursor over take-once slots). Use this
    /// directly for owned work items (e.g. disjoint `&mut` sub-slices);
    /// prefer [`ThreadPool::par_map`] when results must come back in
    /// order.
    pub fn par_tasks<T, F>(&self, tasks: Vec<T>, f: F)
    where
        T: Send,
        F: Fn(T) + Sync,
    {
        if self.is_serial() || tasks.len() <= 1 {
            for task in tasks {
                f(task);
            }
            return;
        }
        let slots: Vec<Mutex<Option<T>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(slots.len());
        self.scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    let task = lock_clean(&slots[i])
                        .take()
                        // lint: allow(panic, "the atomic cursor hands each index to exactly one worker; a refilled slot is a lint-crate bug worth crashing on")
                        .expect("task claimed twice");
                    f(task);
                });
            }
        });
    }

    /// Applies `f` to every element of `items` (receiving the index and the
    /// element) and returns the results **in input order**. Items are
    /// claimed dynamically, so unevenly sized tasks (per-site solves)
    /// balance across workers.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        if self.is_serial() || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
        self.par_tasks(items.iter().enumerate().collect(), |(i, item)| {
            let value = f(i, item);
            *lock_clean(&slots[i]) = Some(value);
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    // lint: allow(panic, "scope() resumes any job panic before this runs, so every slot was filled by its claiming worker")
                    .expect("par_map slot unfilled")
            })
            .collect()
    }

    /// Splits `data` into chunks of `chunk` elements (the last may be
    /// shorter) and runs `f(offset, chunk)` on each, in parallel. Chunks
    /// are disjoint, so elementwise kernels are race-free and the result
    /// is identical for every pool size.
    ///
    /// # Panics
    /// Panics if `chunk == 0`.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        if self.is_serial() || data.len() <= chunk {
            for (i, piece) in data.chunks_mut(chunk).enumerate() {
                f(i * chunk, piece);
            }
            return;
        }
        let pieces: Vec<(usize, &mut [T])> = data
            .chunks_mut(chunk)
            .enumerate()
            .map(|(i, piece)| (i * chunk, piece))
            .collect();
        self.par_tasks(pieces, |(offset, piece)| f(offset, piece));
    }

    /// Parallel reduction over the index range `0..len`: `map` turns each
    /// chunk of the **fixed grid** `[0..chunk)`, `[chunk..2·chunk)`, …
    /// into a partial value; partials are folded in ascending chunk order.
    /// Because the grid depends only on `len` and `chunk`, the
    /// floating-point grouping — and therefore the result — is identical
    /// for every pool size, including the serial pool. Returns `None` when
    /// `len == 0`.
    ///
    /// # Panics
    /// Panics if `chunk == 0`.
    pub fn par_reduce<A, M, F>(&self, len: usize, chunk: usize, map: M, fold: F) -> Option<A>
    where
        A: Send,
        M: Fn(Range<usize>) -> A + Sync,
        F: FnMut(A, A) -> A,
    {
        assert!(chunk > 0, "chunk size must be positive");
        if len == 0 {
            return None;
        }
        let ranges: Vec<Range<usize>> = (0..len.div_ceil(chunk))
            .map(|i| i * chunk..((i + 1) * chunk).min(len))
            .collect();
        let partials = self.par_map(&ranges, |_, range| map(range.clone()));
        partials.into_iter().reduce(fold)
    }
}

struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// Handle for spawning borrowing jobs inside [`ThreadPool::scope`].
pub struct Scope<'pool, 'env> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Spawns a job that may borrow `'env` data. On a serial pool — or
    /// when called from inside a pool worker (nested parallelism) — the
    /// job runs inline on the current thread.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let Some(inner) = &self.pool.inner else {
            f();
            return;
        };
        if IN_WORKER.with(Cell::get) {
            f();
            return;
        }
        *lock_clean(&self.state.pending) += 1;
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            if let Err(payload) = result {
                let mut slot = lock_clean(&state.panic);
                slot.get_or_insert(payload);
            }
            let mut pending = lock_clean(&state.pending);
            *pending -= 1;
            if *pending == 0 {
                state.done.notify_all();
            }
        });
        // SAFETY: the job's only non-'static captures borrow `'env` data.
        // `ThreadPool::scope` blocks until `pending` reaches zero before it
        // returns (even on panic), so the job finishes — and drops the
        // closure — strictly before any `'env` borrow can expire. The
        // transmute only erases the lifetime; the vtable and layout of the
        // boxed closure are unchanged.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        inner
            .sender
            .as_ref()
            // lint: allow(panic, "the sender is only taken in Drop, which cannot run while this &self borrow is live")
            .expect("pool sender alive while pool is alive")
            .send(job)
            // lint: allow(panic, "workers only exit after the sender hangs up; send can fail only if a worker died to a resource error, which must not be silent")
            .expect("pool workers alive while pool is alive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn resolve_threads_semantics() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert!(pool.is_serial());
        assert_eq!(pool.threads(), 1);
        let caller = thread::current().id();
        pool.scope(|s| {
            s.spawn(|| assert_eq!(thread::current().id(), caller));
        });
    }

    #[test]
    fn scope_joins_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_returns_body_value() {
        let pool = ThreadPool::new(2);
        let value = pool.scope(|_| 42);
        assert_eq!(value, 42);
    }

    #[test]
    fn par_tasks_runs_each_task_once() {
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            pool.par_tasks((0..100).collect(), |i: usize| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn par_tasks_moves_owned_mutable_slices() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0usize; 30];
        let pieces: Vec<(usize, &mut [usize])> = data
            .chunks_mut(7)
            .enumerate()
            .map(|(i, c)| (i * 7, c))
            .collect();
        pool.par_tasks(pieces, |(offset, piece)| {
            for (i, v) in piece.iter_mut().enumerate() {
                *v = offset + i;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let items: Vec<usize> = (0..257).collect();
            let doubled = pool.par_map(&items, |i, &v| {
                assert_eq!(i, v);
                v * 2
            });
            assert_eq!(doubled, items.iter().map(|v| v * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_borrows_environment() {
        let pool = ThreadPool::new(4);
        let data = vec![1.0f64, 2.0, 3.0];
        let scale = 10.0;
        let out = pool.par_map(&data, |_, &v| v * scale);
        assert_eq!(out, vec![10.0, 20.0, 30.0]);
        // `data` still usable: the borrow ended with the call.
        assert_eq!(data.len(), 3);
    }

    #[test]
    fn par_chunks_mut_covers_all_chunks() {
        for threads in [1, 3] {
            let pool = ThreadPool::new(threads);
            let mut data = vec![0usize; 1000];
            pool.par_chunks_mut(&mut data, 64, |offset, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = offset + i;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i);
            }
        }
    }

    #[test]
    fn par_reduce_is_pool_size_independent() {
        // The fold grouping is fixed by the chunk grid, so wildly different
        // pool sizes must agree bit-for-bit on an ill-conditioned sum.
        let values: Vec<f64> = (0..10_000)
            .map(|i| {
                if i % 2 == 0 {
                    1e16
                } else {
                    1.0 + i as f64 * 1e-3
                }
            })
            .collect();
        let sum = |pool: &ThreadPool| {
            pool.par_reduce(
                values.len(),
                128,
                |r| values[r].iter().sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap()
        };
        let serial = sum(&ThreadPool::new(1));
        for threads in [2, 4, 7] {
            let parallel = sum(&ThreadPool::new(threads));
            assert_eq!(serial.to_bits(), parallel.to_bits(), "{threads} threads");
        }
    }

    #[test]
    fn par_reduce_empty_is_none() {
        let pool = ThreadPool::new(2);
        assert_eq!(pool.par_reduce(0, 8, |_| 1.0f64, |a, b| a + b), None);
    }

    #[test]
    fn job_panic_propagates_after_join() {
        let pool = ThreadPool::new(2);
        let finished = AtomicBool::new(false);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                s.spawn(|| {
                    finished.store(true, Ordering::SeqCst);
                });
            });
        }));
        assert!(result.is_err());
        // The sibling job still ran to completion before the panic resumed.
        assert!(finished.load(Ordering::SeqCst));
        // The pool survives a panicked scope.
        let ok = pool.par_map(&[1, 2, 3], |_, &v| v + 1);
        assert_eq!(ok, vec![2, 3, 4]);
    }

    #[test]
    fn par_map_panic_propagates() {
        let pool = ThreadPool::new(2);
        let items: Vec<usize> = (0..32).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&items, |_, &v| {
                assert!(v != 17, "poisoned item");
                v
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn nested_scope_degrades_to_inline() {
        // A job that opens another scope on the same pool must not
        // deadlock; the inner jobs run inline on the worker.
        let pool = ThreadPool::new(2);
        let total = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn shared_registry_reuses_pools() {
        let a = ThreadPool::shared(2);
        let b = ThreadPool::shared(2);
        assert!(Arc::ptr_eq(&a, &b));
        let c = ThreadPool::shared(3);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn uneven_workloads_balance() {
        let pool = ThreadPool::new(4);
        let sizes: Vec<usize> = (0..40).map(|i| (i % 7) * 1_000).collect();
        let sums = pool.par_map(&sizes, |_, &n| (0..n).map(|i| i as f64).sum::<f64>());
        for (n, s) in sizes.iter().zip(&sums) {
            let expected = (0..*n).map(|i| i as f64).sum::<f64>();
            assert_eq!(*s, expected);
        }
    }
}
