//! Strategy trait and combinators for the offline proptest stand-in.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty strategy range");
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
