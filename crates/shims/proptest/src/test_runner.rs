//! Deterministic case runner for the offline proptest stand-in.

/// Per-test configuration (case count only — this shim does not shrink).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Deterministic SplitMix64 generator, seeded from the test path and case
/// index so every property sees a reproducible but diverse input stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one `(test, case)` pair.
    #[must_use]
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = Self {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        };
        let _ = rng.next_u64();
        rng
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
