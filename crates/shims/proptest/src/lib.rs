//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the slice of the proptest API its test suites use: the [`proptest!`]
//! macro with an optional `#![proptest_config(...)]` header, range and
//! tuple strategies, `any::<T>()`, `prop::collection::vec`,
//! `prop_map`/`prop_flat_map` combinators, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! test shim: cases are drawn from a deterministic per-test RNG (seeded by
//! test name), and failing inputs are reported but **not shrunk**.

pub mod strategy;
pub mod test_runner;

/// `prop::...` paths used by test code (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a vector strategy: each case draws a length in `size`, then
    /// that many elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategy for arbitrary values of `T` (full value range).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Marker strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a full-range "arbitrary" distribution.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines deterministic property tests.
///
/// Accepts an optional `#![proptest_config(ProptestConfig::with_cases(n))]`
/// header followed by `#[test] fn name(arg in strategy, ...) { body }`
/// items. Each test runs `cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "property `{}` failed on case {}/{}:\n{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            message
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Fails the current case when both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  both: {:?}",
                ::std::format!($($fmt)+), l
            ));
        }
    }};
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            // A rejected precondition skips the case (no shrinking here).
            return ::std::result::Result::Ok(());
        }
    };
}
