//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the tiny slice of the `rand` API the code base uses:
//! [`rngs::StdRng`] (a deterministic SplitMix64 generator), the
//! [`SeedableRng`]/[`Rng`]/[`RngExt`] traits, `random::<T>()`, and
//! `random_range(..)` over integer and float ranges. Everything is
//! deterministic given the seed, which is all the repository's generators
//! and simulators require.

use std::ops::{Range, RangeInclusive};

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The core generator interface: a stream of 64-bit words.
pub trait Rng {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: Rng + ?Sized> RngExt for T {}

/// Types samplable from their "standard" distribution.
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, span)` without noticeable modulo bias for the
/// small spans used in this workspace.
fn uniform_u64<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling over the largest multiple of `span`.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(usize, u64, u32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator — the offline stand-in for
    /// `rand::rngs::StdRng`. Statistically strong enough for synthetic
    /// graph generation and fault injection; NOT cryptographic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-advance once so that seed 0 does not emit 0 first.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            rng
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(2usize..=5);
            assert!((2..=5).contains(&w));
            let f = rng.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
