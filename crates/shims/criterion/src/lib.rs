//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access. This shim keeps the
//! workspace's Criterion benches compiling and runnable: each benchmark
//! runs a short timed loop and prints mean wall time per iteration. It does
//! no statistical analysis, warm-up tuning, or HTML reporting.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing host handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One untimed call to populate caches, then a short timed loop.
        black_box(f());
        let iters = 10u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iterations += iters;
    }

    fn report(&self, label: &str) {
        if self.iterations == 0 {
            println!("{label}: no iterations");
        } else {
            let per_iter = self.elapsed / u32::try_from(self.iterations).unwrap_or(u32::MAX);
            println!("{label}: {per_iter:?}/iter ({} iters)", self.iterations);
        }
    }
}

/// Throughput annotation (recorded, echoed in the group header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the sample count (accepted for API compatibility; the shim's
    /// iteration count is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Records a throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&self.label(&id.to_string()));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&self.label(&id.to_string()));
        self
    }

    /// Ends the group (formatting separator only).
    pub fn finish(&mut self) {
        println!();
    }

    fn label(&self, id: &str) -> String {
        match self.throughput {
            Some(Throughput::Elements(n)) => format!("{}/{id} [{n} elems]", self.name),
            Some(Throughput::Bytes(n)) => format!("{}/{id} [{n} bytes]", self.name),
            None => format!("{}/{id}", self.name),
        }
    }
}

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            name,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&id.to_string());
        self
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
