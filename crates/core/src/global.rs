//! The global transition matrix `W` (eq. 3) — explicit and implicit forms.
//!
//! Under layer-decomposability, `w_(I,i)(J,j) = y_IJ · u_Gj^J`, so every row
//! of the block-row `I` is identical. Two representations exploit this:
//!
//! * [`global_transition_matrix`] materializes `W` as a CSR matrix — useful
//!   for small models (the paper's worked example) and for the centralized
//!   baselines the paper contrasts against;
//! * [`GlobalOperator`] applies `y = Wᵀ x` **without materializing `W`**, in
//!   `O(N_P + nnz(Y))` per step instead of `O(nnz(W))` — this factorization
//!   is precisely why the layered computation scales (Section 2.3.3).

use crate::error::Result;
use crate::model::LayeredMarkovModel;
use lmm_linalg::{CsrMatrix, LinalgError, LinearOperator, PowerOptions};
use lmm_rank::gatekeeper::gatekeeper_distribution;
use lmm_rank::Ranking;

/// Computes the gatekeeper out-distribution `u_G·^J` of every phase
/// (Section 2.3.2) with mixing parameter `alpha` and the phase's initial
/// distribution as the gatekeeper row.
///
/// These per-phase computations are independent — in the Web instantiation
/// each site computes its own (this is what [`lmm-p2p`](../lmm_p2p/index.html)
/// distributes across peers).
///
/// # Errors
/// Propagates gatekeeper/PageRank failures per phase.
pub fn phase_gatekeeper_distributions(
    model: &LayeredMarkovModel,
    alpha: f64,
    opts: &PowerOptions,
) -> Result<Vec<Ranking>> {
    phase_gatekeeper_distributions_pool(model, alpha, opts, &lmm_par::ThreadPool::serial())
}

/// [`phase_gatekeeper_distributions`] with the independent per-phase
/// solves fanned across `pool` (each phase's gatekeeper PageRank runs
/// serially in its own slot, so the result is identical for every pool
/// size — only wall time changes).
///
/// # Errors
/// Propagates gatekeeper/PageRank failures per phase.
pub fn phase_gatekeeper_distributions_pool(
    model: &LayeredMarkovModel,
    alpha: f64,
    opts: &PowerOptions,
    pool: &lmm_par::ThreadPool,
) -> Result<Vec<Ranking>> {
    let solved = pool.par_map(model.phases(), |_, phase| {
        gatekeeper_distribution(phase.transition(), alpha, Some(phase.initial()), opts)
    });
    solved.into_iter().map(|g| Ok(g?.distribution)).collect()
}

/// Materializes the global transition matrix `W` of eq. (3):
/// `w_(I,i)(J,j) = y_IJ · π_G^J(j)`.
///
/// `phase_dists[J]` must be the gatekeeper distribution of phase `J` (from
/// [`phase_gatekeeper_distributions`]). The result has `Σ_I n_I` rows; rows
/// within a block-row are identical, so the storage is
/// `O(total_states · Σ_{J reachable} n_J)` — the quadratic blow-up the
/// implicit operator avoids.
///
/// # Errors
/// Returns [`LinalgError::DimensionMismatch`] (wrapped) when
/// `phase_dists` does not match the model's phases.
pub fn global_transition_matrix(
    model: &LayeredMarkovModel,
    phase_dists: &[Ranking],
) -> Result<CsrMatrix> {
    check_dists(model, phase_dists)?;
    let n = model.total_states();
    let y = model.phase_matrix().matrix();
    let offsets = model.offsets();

    // Template row per phase I: concat over J (with y_IJ > 0) of
    // y_IJ * pi_G^J. Columns are naturally ascending because offsets are.
    let mut row_ptr = Vec::with_capacity(n + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for i_phase in 0..model.n_phases() {
        let (cols, vals) = y.row(i_phase);
        let mut template_cols: Vec<usize> = Vec::new();
        let mut template_vals: Vec<f64> = Vec::new();
        for (&j_phase, &y_ij) in cols.iter().zip(vals) {
            if y_ij == 0.0 {
                continue;
            }
            let dist = phase_dists[j_phase].scores();
            for (j, &p) in dist.iter().enumerate() {
                if p > 0.0 {
                    template_cols.push(offsets[j_phase] + j);
                    template_vals.push(y_ij * p);
                }
            }
        }
        let n_sub = model.phases()[i_phase].n_substates();
        for _ in 0..n_sub {
            col_idx.extend_from_slice(&template_cols);
            values.extend_from_slice(&template_vals);
            row_ptr.push(col_idx.len());
        }
    }
    Ok(CsrMatrix::from_raw_parts(n, n, row_ptr, col_idx, values)?)
}

/// Implicit `y = Wᵀ x` operator exploiting the factorization of eq. (3):
///
/// ```text
/// (Wᵀx)(J,j) = π_G^J(j) · Σ_I y_IJ · (Σ_i x_(I,i))
/// ```
///
/// One application costs a fold over `x` (`O(N_P)` states), one `Yᵀ`
/// product (`O(nnz(Y))`) and one scaled scatter (`O(N_P)` states) — versus
/// `O(nnz(W))` for the explicit matrix. This operator is the computational
/// heart of the scalability experiment (E6).
#[derive(Debug, Clone)]
pub struct GlobalOperator<'a> {
    model: &'a LayeredMarkovModel,
    phase_dists: &'a [Ranking],
}

impl<'a> GlobalOperator<'a> {
    /// Builds the operator over a model and its gatekeeper distributions.
    ///
    /// # Errors
    /// Returns a dimension error when `phase_dists` does not match the
    /// model's phases.
    pub fn new(model: &'a LayeredMarkovModel, phase_dists: &'a [Ranking]) -> Result<Self> {
        check_dists(model, phase_dists)?;
        Ok(Self { model, phase_dists })
    }

    /// Sum of `x` within each phase block: `s_I = Σ_i x_(I,i)`.
    fn phase_sums(&self, x: &[f64]) -> Vec<f64> {
        let offsets = self.model.offsets();
        (0..self.model.n_phases())
            .map(|i| x[offsets[i]..offsets[i + 1]].iter().sum())
            .collect()
    }
}

impl LinearOperator for GlobalOperator<'_> {
    fn dim(&self) -> usize {
        self.model.total_states()
    }

    fn apply_to(&self, x: &[f64], y: &mut [f64]) -> std::result::Result<(), LinalgError> {
        if x.len() != self.dim() || y.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch {
                operation: "GlobalOperator::apply_to",
                expected: self.dim(),
                found: if x.len() != self.dim() {
                    x.len()
                } else {
                    y.len()
                },
            });
        }
        let s = self.phase_sums(x);
        let t = self.model.phase_matrix().matrix().apply_transpose(&s)?;
        let offsets = self.model.offsets();
        for (j_phase, &tj) in t.iter().enumerate() {
            let dist = self.phase_dists[j_phase].scores();
            let out = &mut y[offsets[j_phase]..offsets[j_phase + 1]];
            for (o, &p) in out.iter_mut().zip(dist) {
                *o = tj * p;
            }
        }
        Ok(())
    }
}

fn check_dists(model: &LayeredMarkovModel, phase_dists: &[Ranking]) -> Result<()> {
    if phase_dists.len() != model.n_phases() {
        return Err(LinalgError::DimensionMismatch {
            operation: "global transition: phase distributions",
            expected: model.n_phases(),
            found: phase_dists.len(),
        }
        .into());
    }
    for (i, (dist, phase)) in phase_dists.iter().zip(model.phases()).enumerate() {
        if dist.len() != phase.n_substates() {
            return Err(LinalgError::DimensionMismatch {
                operation: "global transition: phase distribution length",
                expected: phase.n_substates(),
                found: dist.len(),
            }
            .into());
        }
        debug_assert!(i < model.n_phases());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PhaseModel;
    use lmm_linalg::{vec_ops, DenseMatrix, StochasticMatrix};

    fn stochastic(rows: &[Vec<f64>]) -> StochasticMatrix {
        StochasticMatrix::new(DenseMatrix::from_rows(rows).unwrap().to_csr()).unwrap()
    }

    fn model() -> LayeredMarkovModel {
        let y = stochastic(&[vec![0.1, 0.9], vec![0.6, 0.4]]);
        let p0 = PhaseModel::new(stochastic(&[vec![0.5, 0.5], vec![0.9, 0.1]]), None).unwrap();
        let p1 = PhaseModel::new(
            stochastic(&[
                vec![0.2, 0.3, 0.5],
                vec![0.1, 0.8, 0.1],
                vec![0.4, 0.4, 0.2],
            ]),
            None,
        )
        .unwrap();
        LayeredMarkovModel::new(y, None, vec![p0, p1]).unwrap()
    }

    #[test]
    fn w_is_row_stochastic() {
        let m = model();
        let dists = phase_gatekeeper_distributions(&m, 0.85, &PowerOptions::default()).unwrap();
        let w = global_transition_matrix(&m, &dists).unwrap();
        assert_eq!(w.nrows(), 5);
        for (r, s) in w.row_sums().iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-10, "row {r} sums to {s}");
        }
    }

    #[test]
    fn w_rows_constant_within_block() {
        let m = model();
        let dists = phase_gatekeeper_distributions(&m, 0.85, &PowerOptions::default()).unwrap();
        let w = global_transition_matrix(&m, &dists)
            .unwrap()
            .to_dense()
            .unwrap();
        // Rows 0 and 1 belong to phase 0 and must be identical (the paper:
        // "rows pertaining to a particular value I are constant").
        assert_eq!(w.row(0), w.row(1));
        assert_eq!(w.row(2), w.row(3));
        assert_eq!(w.row(3), w.row(4));
    }

    #[test]
    fn w_entries_match_formula() {
        let m = model();
        let dists = phase_gatekeeper_distributions(&m, 0.85, &PowerOptions::default()).unwrap();
        let w = global_transition_matrix(&m, &dists).unwrap();
        let y = m.phase_matrix().matrix();
        // w_(0,1)(1,2) = y_01 * pi_G^1(2); flat: row 1, col 2 + offset 2 = 4.
        let expected = y.get(0, 1) * dists[1].score(2);
        assert!((w.get(1, 4) - expected).abs() < 1e-12);
    }

    #[test]
    fn implicit_operator_matches_explicit_transpose_product() {
        let m = model();
        let dists = phase_gatekeeper_distributions(&m, 0.85, &PowerOptions::default()).unwrap();
        let w = global_transition_matrix(&m, &dists).unwrap();
        let op = GlobalOperator::new(&m, &dists).unwrap();
        let x = [0.1, 0.25, 0.2, 0.15, 0.3];
        let explicit = w.apply_transpose(&x).unwrap();
        let mut implicit = vec![0.0; 5];
        op.apply_to(&x, &mut implicit).unwrap();
        assert!(vec_ops::l1_diff(&explicit, &implicit) < 1e-12);
    }

    #[test]
    fn operator_dimension_checked() {
        let m = model();
        let dists = phase_gatekeeper_distributions(&m, 0.85, &PowerOptions::default()).unwrap();
        let op = GlobalOperator::new(&m, &dists).unwrap();
        let mut y = vec![0.0; 5];
        assert!(op.apply_to(&[0.5, 0.5], &mut y).is_err());
    }

    #[test]
    fn wrong_dist_count_rejected() {
        let m = model();
        let dists = phase_gatekeeper_distributions(&m, 0.85, &PowerOptions::default()).unwrap();
        assert!(global_transition_matrix(&m, &dists[..1]).is_err());
        assert!(GlobalOperator::new(&m, &dists[..1]).is_err());
    }

    #[test]
    fn gatekeeper_dists_use_phase_initials() {
        // A phase with a biased initial distribution shifts its gatekeeper
        // distribution relative to the uniform one.
        let y = stochastic(&[vec![1.0]]);
        let u = stochastic(&[vec![0.5, 0.5], vec![0.5, 0.5]]);
        let p_uniform = PhaseModel::new(u.clone(), None).unwrap();
        let p_biased = PhaseModel::new(u, Some(vec![0.95, 0.05])).unwrap();
        let m_uniform = LayeredMarkovModel::new(y.clone(), None, vec![p_uniform]).unwrap();
        let m_biased = LayeredMarkovModel::new(y, None, vec![p_biased]).unwrap();
        let d_u =
            phase_gatekeeper_distributions(&m_uniform, 0.85, &PowerOptions::default()).unwrap();
        let d_b =
            phase_gatekeeper_distributions(&m_biased, 0.85, &PowerOptions::default()).unwrap();
        assert!(d_b[0].score(0) > d_u[0].score(0));
    }
}
