//! The four ranking approaches of Section 2.3, over one engine.
//!
//! * **Approach 1** (centralized): PageRank — maximal irreducibility — on
//!   the global matrix `W`;
//! * **Approach 2** (centralized): the stationary distribution of `W`
//!   directly (requires a primitive `Y`);
//! * **Approach 3** (decentralized): `πY(I) · π_G^I(i)` with `πY` the
//!   PageRank of `Y`;
//! * **Approach 4** (decentralized): `π̃Y(I) · π_G^I(i)` with `π̃Y` the raw
//!   stationary vector of `Y` — **the Layered Method**, equivalent to
//!   Approach 2 by the Partition Theorem.
//!
//! Approaches 1 and 2 never materialize `W`: they run the power method on
//! the factored [`GlobalOperator`].

use crate::error::{LmmError, Result};
use crate::global::{phase_gatekeeper_distributions_pool, GlobalOperator};
use crate::model::{GlobalState, LayeredMarkovModel};
use lmm_linalg::{
    power_method_pool, structure, vec_ops, ConvergenceReport, LinalgError, LinearOperator,
    PowerOptions,
};
use lmm_par::ThreadPool;
use lmm_rank::pagerank::PageRank;
use lmm_rank::Ranking;

/// Which of the paper's four ranking approaches to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankApproach {
    /// Approach 1: PageRank (maximal irreducibility) on `W`.
    PageRankOnGlobal,
    /// Approach 2: stationary distribution of the primitive `W`.
    StationaryOfGlobal,
    /// Approach 3: layered composition with PageRank of `Y`.
    LayeredWithPageRankSite,
    /// Approach 4: the Layered Method (`π̃Y` composed with gatekeeper
    /// distributions).
    Layered,
}

impl RankApproach {
    /// All four approaches, in the paper's numbering order.
    pub const ALL: [RankApproach; 4] = [
        RankApproach::PageRankOnGlobal,
        RankApproach::StationaryOfGlobal,
        RankApproach::LayeredWithPageRankSite,
        RankApproach::Layered,
    ];

    /// Whether the approach requires materializing/iterating the global
    /// chain (`true`) or composes per-layer vectors (`false`).
    #[must_use]
    pub fn is_centralized(self) -> bool {
        matches!(
            self,
            RankApproach::PageRankOnGlobal | RankApproach::StationaryOfGlobal
        )
    }

    /// The paper's approach number (1–4).
    #[must_use]
    pub fn number(self) -> usize {
        match self {
            RankApproach::PageRankOnGlobal => 1,
            RankApproach::StationaryOfGlobal => 2,
            RankApproach::LayeredWithPageRankSite => 3,
            RankApproach::Layered => 4,
        }
    }
}

impl std::fmt::Display for RankApproach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            RankApproach::PageRankOnGlobal => "Approach 1 (PageRank on W)",
            RankApproach::StationaryOfGlobal => "Approach 2 (stationary of W)",
            RankApproach::LayeredWithPageRankSite => "Approach 3 (layered, PageRank Y)",
            RankApproach::Layered => "Approach 4 (Layered Method)",
        };
        f.write_str(name)
    }
}

/// Scalar parameters shared by the approaches.
#[derive(Debug, Clone, PartialEq)]
pub struct LmmParams {
    /// Gatekeeper mixing parameter `α` (Section 2.3.2) — the damping of the
    /// per-phase PageRank.
    pub alpha: f64,
    /// Damping used where a maximal-irreducibility adjustment applies
    /// (Approach 1 on `W`, Approach 3 on `Y`).
    pub damping: f64,
    /// Power-method budget for every stationary computation.
    pub power: PowerOptions,
    /// Worker threads for the per-phase fan-out and the global-chain
    /// vector passes (`0` = one per available core, the default). The
    /// ranking is identical for every value.
    pub threads: usize,
}

impl Default for LmmParams {
    fn default() -> Self {
        Self {
            alpha: 0.85,
            damping: 0.85,
            power: PowerOptions::default(),
            threads: 0,
        }
    }
}

impl LmmParams {
    /// Parameters with both mixing factors set to `f` (the common case —
    /// the paper uses 0.85 throughout).
    #[must_use]
    pub fn with_factor(f: f64) -> Self {
        Self {
            alpha: f,
            damping: f,
            ..Self::default()
        }
    }
}

/// A ranking over the global system states of a model, with the state
/// labeling needed to print Figure-2-style tables.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalRanking {
    ranking: Ranking,
    offsets: Vec<usize>,
    /// Convergence of the dominant stationary computation (the global chain
    /// for Approaches 1/2, the phase chain for 3/4).
    pub report: ConvergenceReport,
}

impl GlobalRanking {
    fn new(ranking: Ranking, offsets: Vec<usize>, report: ConvergenceReport) -> Self {
        Self {
            ranking,
            offsets,
            report,
        }
    }

    /// The underlying ranking (a probability distribution over all states).
    #[must_use]
    pub fn ranking(&self) -> &Ranking {
        &self.ranking
    }

    /// Scores in flat state order.
    #[must_use]
    pub fn scores(&self) -> &[f64] {
        self.ranking.scores()
    }

    /// Number of global states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ranking.len()
    }

    /// `true` when there are no states (not constructible via this crate).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ranking.is_empty()
    }

    /// Score of one `(phase, sub)` state.
    ///
    /// # Panics
    /// Panics if the state is out of range.
    #[must_use]
    pub fn score_state(&self, state: GlobalState) -> f64 {
        self.ranking.score(self.offsets[state.phase] + state.sub)
    }

    /// The `(phase, sub)` label of a flat index.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn state_of(&self, index: usize) -> GlobalState {
        assert!(index < self.len(), "state index out of range");
        let phase = self.offsets.partition_point(|&o| o <= index) - 1;
        GlobalState {
            phase,
            sub: index - self.offsets[phase],
        }
    }

    /// States in descending score order (Figure 2's right-hand columns).
    #[must_use]
    pub fn order_states(&self) -> Vec<GlobalState> {
        self.ranking
            .order()
            .into_iter()
            .map(|i| self.state_of(i))
            .collect()
    }
}

/// Damped (Google-style) wrapper over the factored global operator:
/// `y = d·(Wᵀx + dangling·u) + (1−d)·‖x‖₁·u` with uniform `u` — PageRank's
/// maximal irreducibility applied to `W` without materializing it.
struct DampedGlobalOperator<'a> {
    inner: GlobalOperator<'a>,
    model: &'a LayeredMarkovModel,
    damping: f64,
}

impl LinearOperator for DampedGlobalOperator<'_> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply_to(&self, x: &[f64], y: &mut [f64]) -> std::result::Result<(), LinalgError> {
        self.inner.apply_to(x, y)?;
        // Rows of W in a phase whose Y-row is dangling are all-zero;
        // redistribute that mass uniformly (standard dangling patch).
        let offsets = self.model.offsets();
        let dangling_mass: f64 = self
            .model
            .phase_matrix()
            .dangling()
            .iter()
            .map(|&i_phase| {
                x[offsets[i_phase]..offsets[i_phase + 1]]
                    .iter()
                    .sum::<f64>()
            })
            .sum();
        let n = self.dim() as f64;
        let sx: f64 = x.iter().sum();
        let teleport = (self.damping * dangling_mass + (1.0 - self.damping) * sx) / n;
        for yi in y.iter_mut() {
            *yi = self.damping * *yi + teleport;
        }
        Ok(())
    }
}

/// Runs one of the four approaches on a model.
///
/// # Errors
/// * [`LmmError::PhaseMatrixNotPrimitive`] for Approaches 2 and 4 when `Y`
///   is not primitive (the paper's precondition for Theorem 2);
/// * propagated gatekeeper/PageRank/power-method failures otherwise.
pub fn compute(
    model: &LayeredMarkovModel,
    approach: RankApproach,
    params: &LmmParams,
) -> Result<GlobalRanking> {
    let pool = ThreadPool::shared(params.threads);
    let dists = phase_gatekeeper_distributions_pool(model, params.alpha, &params.power, &pool)?;
    let offsets = model.offsets().to_vec();
    match approach {
        RankApproach::PageRankOnGlobal => {
            let op = DampedGlobalOperator {
                inner: GlobalOperator::new(model, &dists)?,
                model,
                damping: params.damping,
            };
            let x0 = vec_ops::uniform(model.total_states());
            let (scores, report) = power_method_pool(&op, &x0, &params.power, &pool)?;
            Ok(GlobalRanking::new(
                Ranking::from_scores(scores)?,
                offsets,
                report,
            ))
        }
        RankApproach::StationaryOfGlobal => {
            require_primitive_phase_matrix(model)?;
            let op = GlobalOperator::new(model, &dists)?;
            let x0 = vec_ops::uniform(model.total_states());
            let (scores, report) = power_method_pool(&op, &x0, &params.power, &pool)?;
            Ok(GlobalRanking::new(
                Ranking::from_scores(scores)?,
                offsets,
                report,
            ))
        }
        RankApproach::LayeredWithPageRankSite => {
            let mut pr = PageRank::new();
            pr.damping(params.damping)
                .tol(params.power.tol)
                .max_iters(params.power.max_iters);
            let site = pr.run(model.phase_matrix())?;
            Ok(GlobalRanking::new(
                compose(model, site.ranking.scores(), &dists)?,
                offsets,
                site.report,
            ))
        }
        RankApproach::Layered => {
            require_primitive_phase_matrix(model)?;
            let (site, report) = lmm_linalg::power::stationary_distribution(
                model.phase_matrix().matrix(),
                &params.power,
            )?;
            Ok(GlobalRanking::new(
                compose(model, &site, &dists)?,
                offsets,
                report,
            ))
        }
    }
}

/// Composes a phase-layer vector with per-phase gatekeeper distributions:
/// `π(I, i) = site(I) · π_G^I(i)` (eq. 5). The result is a probability
/// distribution (Theorem 1).
fn compose(model: &LayeredMarkovModel, site: &[f64], dists: &[Ranking]) -> Result<Ranking> {
    let mut scores = Vec::with_capacity(model.total_states());
    for (i_phase, dist) in dists.iter().enumerate() {
        let weight = site[i_phase];
        scores.extend(dist.scores().iter().map(|&p| weight * p));
    }
    Ok(Ranking::from_scores(scores)?)
}

fn require_primitive_phase_matrix(model: &LayeredMarkovModel) -> Result<()> {
    let report = structure::analyze(model.phase_matrix().matrix())?;
    if !report.primitive {
        return Err(LmmError::PhaseMatrixNotPrimitive {
            components: report.components,
            period: report.period.unwrap_or(0),
        });
    }
    Ok(())
}

impl LayeredMarkovModel {
    /// Runs one of the paper's four approaches with explicit parameters.
    ///
    /// # Errors
    /// See [`compute`].
    pub fn rank(&self, approach: RankApproach, params: &LmmParams) -> Result<GlobalRanking> {
        compute(self, approach, params)
    }

    /// **Approach 4 — the Layered Method** (decentralized): composes the
    /// stationary vector of `Y` with the per-phase gatekeeper distributions
    /// at mixing factor `alpha`.
    ///
    /// # Errors
    /// See [`compute`]; requires a primitive `Y`.
    pub fn layered_method(&self, alpha: f64) -> Result<GlobalRanking> {
        compute(self, RankApproach::Layered, &LmmParams::with_factor(alpha))
    }

    /// **Approach 2** (centralized): the stationary distribution of the
    /// global chain `W`, computed through the factored operator.
    ///
    /// # Errors
    /// See [`compute`]; requires a primitive `Y`.
    pub fn stationary_of_global(&self, alpha: f64) -> Result<GlobalRanking> {
        compute(
            self,
            RankApproach::StationaryOfGlobal,
            &LmmParams::with_factor(alpha),
        )
    }

    /// **Approach 1** (centralized): PageRank with maximal irreducibility
    /// applied to `W`, both mixing factors set to `alpha`.
    ///
    /// # Errors
    /// See [`compute`].
    pub fn pagerank_of_global(&self, alpha: f64) -> Result<GlobalRanking> {
        compute(
            self,
            RankApproach::PageRankOnGlobal,
            &LmmParams::with_factor(alpha),
        )
    }

    /// **Approach 3** (decentralized): composes the PageRank of `Y` with the
    /// gatekeeper distributions.
    ///
    /// # Errors
    /// See [`compute`].
    pub fn layered_with_pagerank_site(&self, alpha: f64) -> Result<GlobalRanking> {
        compute(
            self,
            RankApproach::LayeredWithPageRankSite,
            &LmmParams::with_factor(alpha),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PhaseModel;
    use lmm_linalg::{DenseMatrix, StochasticMatrix};

    fn stochastic(rows: &[Vec<f64>]) -> StochasticMatrix {
        StochasticMatrix::new(DenseMatrix::from_rows(rows).unwrap().to_csr()).unwrap()
    }

    fn model() -> LayeredMarkovModel {
        let y = stochastic(&[vec![0.1, 0.9], vec![0.6, 0.4]]);
        let p0 = PhaseModel::new(stochastic(&[vec![0.5, 0.5], vec![0.9, 0.1]]), None).unwrap();
        let p1 = PhaseModel::new(
            stochastic(&[
                vec![0.2, 0.3, 0.5],
                vec![0.1, 0.8, 0.1],
                vec![0.4, 0.4, 0.2],
            ]),
            None,
        )
        .unwrap();
        LayeredMarkovModel::new(y, None, vec![p0, p1]).unwrap()
    }

    #[test]
    fn all_approaches_produce_distributions() {
        let m = model();
        for approach in RankApproach::ALL {
            let r = m.rank(approach, &LmmParams::default()).unwrap();
            let total: f64 = r.scores().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{approach}");
            assert_eq!(r.len(), 5, "{approach}");
        }
    }

    #[test]
    fn partition_theorem_on_small_model() {
        let m = model();
        let a2 = m.stationary_of_global(0.85).unwrap();
        let a4 = m.layered_method(0.85).unwrap();
        assert!(vec_ops::linf_diff(a2.scores(), a4.scores()) < 1e-9);
        assert_eq!(a2.order_states(), a4.order_states());
    }

    #[test]
    fn approaches_one_and_three_close_but_distinct_from_two_and_four() {
        // With maximal irreducibility applied on top of an already primitive
        // chain, the vectors differ slightly (the paper's Figure 2 shows
        // this) but not wildly.
        let m = model();
        let a1 = m.pagerank_of_global(0.85).unwrap();
        let a2 = m.stationary_of_global(0.85).unwrap();
        let diff = vec_ops::linf_diff(a1.scores(), a2.scores());
        assert!(
            diff > 1e-6,
            "maximal irreducibility must perturb the vector"
        );
        assert!(diff < 0.1, "but only slightly");
    }

    #[test]
    fn a1_equals_a3_and_a2_equals_a4_pairwise() {
        // The paper's deeper claim: the *pairing* of adjustments matches.
        // A3 composes PageRank(Y); A1 applies PageRank to W. These are NOT
        // equal in general; only A2 == A4 is a theorem. Verify A3 != A2 to
        // guard against an implementation that conflates them.
        let m = model();
        let a2 = m.stationary_of_global(0.85).unwrap();
        let a3 = m.layered_with_pagerank_site(0.85).unwrap();
        assert!(vec_ops::linf_diff(a2.scores(), a3.scores()) > 1e-6);
    }

    #[test]
    fn non_primitive_y_rejected_for_a2_a4() {
        // Y = pure 2-cycle: irreducible but periodic, hence not primitive.
        let y = stochastic(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let p0 = PhaseModel::new(stochastic(&[vec![0.5, 0.5], vec![0.9, 0.1]]), None).unwrap();
        let p1 = PhaseModel::new(stochastic(&[vec![0.3, 0.7], vec![0.6, 0.4]]), None).unwrap();
        let m = LayeredMarkovModel::new(y, None, vec![p0, p1]).unwrap();
        assert!(matches!(
            m.layered_method(0.85),
            Err(LmmError::PhaseMatrixNotPrimitive { period: 2, .. })
        ));
        assert!(matches!(
            m.stationary_of_global(0.85),
            Err(LmmError::PhaseMatrixNotPrimitive { .. })
        ));
        // Approaches 1 and 3 still work (maximal irreducibility fixes Y/W).
        assert!(m.pagerank_of_global(0.85).is_ok());
        assert!(m.layered_with_pagerank_site(0.85).is_ok());
    }

    #[test]
    fn global_ranking_state_accessors() {
        let m = model();
        let r = m.layered_method(0.85).unwrap();
        let s = GlobalState::new(1, 2);
        let idx = m.state_index(s);
        assert_eq!(r.score_state(s), r.scores()[idx]);
        assert_eq!(r.state_of(idx), s);
        assert_eq!(r.order_states().len(), 5);
        assert!(!r.is_empty());
    }

    #[test]
    fn approach_metadata() {
        assert!(RankApproach::PageRankOnGlobal.is_centralized());
        assert!(!RankApproach::Layered.is_centralized());
        assert_eq!(RankApproach::Layered.number(), 4);
        assert!(RankApproach::Layered.to_string().contains("Layered"));
    }

    #[test]
    fn alpha_affects_result() {
        let m = model();
        let lo = m.layered_method(0.5).unwrap();
        let hi = m.layered_method(0.99).unwrap();
        assert!(vec_ops::l1_diff(lo.scores(), hi.scores()) > 1e-4);
    }
}
