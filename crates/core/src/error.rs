//! Error type for Layered Markov Model construction and ranking.

use std::error::Error as StdError;
use std::fmt;

use lmm_graph::GraphError;
use lmm_linalg::LinalgError;
use lmm_rank::RankError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, LmmError>;

/// Errors produced by LMM construction and rank computation.
#[derive(Debug)]
pub enum LmmError {
    /// The model structure is inconsistent (dimensions, empty phase list,
    /// malformed initial distributions, ...).
    InvalidModel {
        /// Human-readable cause.
        reason: String,
    },
    /// The phase matrix `Y` is not primitive, violating the precondition of
    /// Theorem 2 (Approaches 2 and 4 require it).
    PhaseMatrixNotPrimitive {
        /// Number of strongly connected components of `Y`.
        components: usize,
        /// Period of `Y` when irreducible (0 otherwise).
        period: usize,
    },
    /// A referenced phase index is out of range.
    PhaseOutOfRange {
        /// The offending index.
        phase: usize,
        /// Number of phases in the model.
        n_phases: usize,
    },
    /// Underlying linear-algebra failure.
    Linalg(LinalgError),
    /// Underlying ranking failure (PageRank / gatekeeper).
    Rank(RankError),
    /// Underlying graph failure (DocGraph / SiteGraph pipeline).
    Graph(GraphError),
}

impl fmt::Display for LmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LmmError::InvalidModel { reason } => write!(f, "invalid layered model: {reason}"),
            LmmError::PhaseMatrixNotPrimitive { components, period } => write!(
                f,
                "phase matrix Y is not primitive ({components} components, period {period}); \
                 Theorem 2 requires a primitive Y"
            ),
            LmmError::PhaseOutOfRange { phase, n_phases } => {
                write!(
                    f,
                    "phase {phase} out of range (model has {n_phases} phases)"
                )
            }
            LmmError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            LmmError::Rank(e) => write!(f, "ranking error: {e}"),
            LmmError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl StdError for LmmError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            LmmError::Linalg(e) => Some(e),
            LmmError::Rank(e) => Some(e),
            LmmError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for LmmError {
    fn from(e: LinalgError) -> Self {
        LmmError::Linalg(e)
    }
}

impl From<RankError> for LmmError {
    fn from(e: RankError) -> Self {
        LmmError::Rank(e)
    }
}

impl From<GraphError> for LmmError {
    fn from(e: GraphError) -> Self {
        LmmError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = LmmError::PhaseMatrixNotPrimitive {
            components: 3,
            period: 0,
        };
        assert!(e.to_string().contains("Theorem 2"));
        let e = LmmError::PhaseOutOfRange {
            phase: 9,
            n_phases: 2,
        };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn sources_preserved() {
        assert!(LmmError::from(LinalgError::Empty).source().is_some());
        assert!(LmmError::from(RankError::Empty).source().is_some());
    }

    #[test]
    fn error_bounds() {
        fn assert_bounds<E: StdError + Send + Sync + 'static>() {}
        assert_bounds::<LmmError>();
    }
}
