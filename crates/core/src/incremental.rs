//! Incremental maintenance of the layered DocRank under graph changes.
//!
//! The paper's Section 1.2 motivation: centralized PageRank has "a limited
//! potential of keeping up with the Web growth" because any change anywhere
//! invalidates the global computation. The layered decomposition localizes
//! change: if only site `s`'s internal pages/links changed, only `π_D(s)`
//! must be recomputed; the SiteRank is touched only when *cross-site* links
//! changed. [`incremental_update`] implements exactly that contract and the
//! tests verify it reproduces a from-scratch recomputation.

use crate::error::Result;
use crate::siterank::{layered_doc_rank, LayeredDocRank, LayeredRankConfig};
use lmm_graph::docgraph::DocGraph;
use lmm_graph::ids::SiteId;
use lmm_graph::sitegraph::ranking_site_graph;
use lmm_rank::pagerank::PageRank;
use lmm_rank::Ranking;

/// What changed between two versions of a document graph (same document
/// set and site partition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteDelta {
    /// Sites whose intra-site subgraph changed (local ranks stale).
    pub changed_sites: Vec<usize>,
    /// Whether any cross-site link changed (SiteRank stale).
    pub cross_links_changed: bool,
}

impl SiteDelta {
    /// `true` when nothing changed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.changed_sites.is_empty() && !self.cross_links_changed
    }
}

/// Cost accounting of one incremental update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateStats {
    /// Local DocRanks recomputed.
    pub sites_recomputed: usize,
    /// Local DocRanks reused untouched.
    pub sites_reused: usize,
    /// Whether the SiteRank power iteration ran.
    pub site_rank_recomputed: bool,
}

/// Compares two same-shape graphs and reports which layers are stale.
///
/// # Errors
/// Returns an error when the graphs have different document counts or site
/// partitions — incremental maintenance presumes an in-place recrawl, not a
/// re-discovery of the web. (Structural growth is handled by rebuilding the
/// affected site from scratch, which is what this delta would report
/// anyway.)
pub fn diff_sites(old: &DocGraph, new: &DocGraph) -> Result<SiteDelta> {
    if old.n_docs() != new.n_docs() || old.n_sites() != new.n_sites() {
        return Err(crate::error::LmmError::InvalidModel {
            reason: format!(
                "incremental diff needs matching shapes: {}x{} docs, {}x{} sites",
                old.n_docs(),
                new.n_docs(),
                old.n_sites(),
                new.n_sites()
            ),
        });
    }
    if old.site_assignments() != new.site_assignments() {
        return Err(crate::error::LmmError::InvalidModel {
            reason: "incremental diff needs an identical site partition".into(),
        });
    }
    let mut changed_sites = Vec::new();
    for s in 0..old.n_sites() {
        if old.site_subgraph(SiteId(s)) != new.site_subgraph(SiteId(s)) {
            changed_sites.push(s);
        }
    }
    // Cross-site links changed iff the full adjacency differs by more than
    // the intra-site differences — cheapest check: compare cross-link
    // multisets via the SiteGraphs (counts per ordered site pair).
    let opts = lmm_graph::sitegraph::SiteGraphOptions::default();
    let cross_links_changed =
        ranking_site_graph(old, &opts).weights() != ranking_site_graph(new, &opts).weights();
    Ok(SiteDelta {
        changed_sites,
        cross_links_changed,
    })
}

/// Applies an incremental update: recomputes only the stale layers of
/// `previous` against `new_graph` and recomposes the global ranking.
///
/// Local recomputations warm-start from the previous local vectors, so a
/// small intra-site edit converges in a handful of iterations.
///
/// # Errors
/// Propagates PageRank failures; delta/shape mismatches surface from
/// [`diff_sites`] (call it to obtain `delta`).
pub fn incremental_update(
    previous: &LayeredDocRank,
    new_graph: &DocGraph,
    delta: &SiteDelta,
    config: &LayeredRankConfig,
) -> Result<(LayeredDocRank, UpdateStats)> {
    let n_sites = new_graph.n_sites();
    let mut stats = UpdateStats::default();

    // SiteRank: reuse or recompute (warm-started from the previous vector).
    let (site_rank, site_report) = if delta.cross_links_changed {
        stats.site_rank_recomputed = true;
        let site_graph = ranking_site_graph(new_graph, &config.site_options);
        let mut pr = PageRank::new();
        pr.damping(config.site_damping)
            .tol(config.power.tol)
            .max_iters(config.power.max_iters)
            .initial(previous.site_rank.scores().to_vec());
        if let Some(v) = &config.site_personalization {
            pr.personalization(v.clone());
        }
        let result = pr.run(&site_graph.to_stochastic()?)?;
        (result.ranking, result.report)
    } else {
        (previous.site_rank.clone(), previous.site_report)
    };

    // Local ranks: recompute only the changed sites, fanned across the
    // shared pool — the stale sites are exactly as independent as the full
    // pipeline's per-site solves.
    let mut local_ranks = previous.local_ranks.clone();
    let mut total_local_iterations = 0usize;
    let mut max_local_iterations = 0usize;
    let pool = lmm_par::ThreadPool::shared(config.threads);
    let solved = pool.par_map(&delta.changed_sites, |_, &s| {
        let sub = new_graph.site_subgraph(SiteId(s));
        let mut pr = PageRank::new();
        pr.damping(config.local_damping)
            .tol(config.power.tol)
            .max_iters(config.power.max_iters);
        // Warm start only when the site kept its size (it always does under
        // the diff contract, but stay defensive).
        if previous.local_ranks[s].len() == sub.members.len() {
            pr.initial(previous.local_ranks[s].scores().to_vec());
        }
        if let Some(v) = config.local_personalization.get(&s) {
            pr.personalization(v.clone());
        }
        pr.run_adjacency(sub.adjacency)
    });
    for (&s, result) in delta.changed_sites.iter().zip(solved) {
        let result = result?;
        total_local_iterations += result.report.iterations;
        max_local_iterations = max_local_iterations.max(result.report.iterations);
        local_ranks[s] = result.ranking;
    }
    stats.sites_recomputed = delta.changed_sites.len();
    stats.sites_reused = n_sites - stats.sites_recomputed;

    // Recompose (O(N) — the Partition Theorem's aggregation step).
    let mut scores = vec![0.0f64; new_graph.n_docs()];
    for (s, ranks) in local_ranks.iter().enumerate() {
        let weight = site_rank.score(s);
        for (local, doc) in new_graph.docs_of_site(SiteId(s)).iter().enumerate() {
            scores[doc.index()] = weight * ranks.score(local);
        }
    }
    let global = Ranking::from_scores(scores)?;
    Ok((
        LayeredDocRank {
            site_rank,
            local_ranks,
            global,
            site_report,
            total_local_iterations,
            max_local_iterations,
        },
        stats,
    ))
}

/// Convenience: diff + update + (in debug builds) equivalence check against
/// a full recomputation.
///
/// # Errors
/// See [`diff_sites`] and [`incremental_update`].
pub fn refresh(
    previous: &LayeredDocRank,
    old_graph: &DocGraph,
    new_graph: &DocGraph,
    config: &LayeredRankConfig,
) -> Result<(LayeredDocRank, UpdateStats)> {
    let delta = diff_sites(old_graph, new_graph)?;
    if delta.is_empty() {
        return Ok((
            previous.clone(),
            UpdateStats {
                sites_reused: new_graph.n_sites(),
                ..UpdateStats::default()
            },
        ));
    }
    let (updated, stats) = incremental_update(previous, new_graph, &delta, config)?;
    debug_assert!(
        {
            let full = layered_doc_rank(new_graph, config)?;
            lmm_linalg::vec_ops::l1_diff(full.global.scores(), updated.global.scores()) < 1e-6
        },
        "incremental update diverged from full recomputation"
    );
    Ok((updated, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmm_graph::docgraph::DocGraphBuilder;
    use lmm_graph::generator::CampusWebConfig;
    use lmm_graph::DocId;
    use lmm_linalg::vec_ops;

    fn campus() -> DocGraph {
        let mut cfg = CampusWebConfig::small();
        cfg.total_docs = 600;
        cfg.n_sites = 12;
        cfg.spam_farms.clear();
        cfg.generate().unwrap()
    }

    /// Rewires one intra-site link inside `site` and returns the new graph.
    fn edit_intra_site(graph: &DocGraph, site: usize) -> DocGraph {
        let docs = graph.docs_of_site(SiteId(site));
        let (a, b, c) = (docs[0], docs[1], docs[docs.len() - 1]);
        let mut builder = DocGraphBuilder::from_graph(graph);
        builder.remove_link(a, b);
        builder.add_link(b, c).unwrap();
        builder.add_link(c, a).unwrap();
        builder.build()
    }

    #[test]
    fn diff_detects_local_change_only() {
        let old = campus();
        let new = edit_intra_site(&old, 3);
        let delta = diff_sites(&old, &new).unwrap();
        assert_eq!(delta.changed_sites, vec![3]);
        assert!(!delta.cross_links_changed);
        assert!(!delta.is_empty());
    }

    #[test]
    fn diff_detects_cross_change() {
        let old = campus();
        let src = old.docs_of_site(SiteId(2))[1];
        let dst = old.docs_of_site(SiteId(9))[0];
        let mut builder = DocGraphBuilder::from_graph(&old);
        builder.add_link(src, dst).unwrap();
        let new = builder.build();
        let delta = diff_sites(&old, &new).unwrap();
        assert!(delta.cross_links_changed);
        // The source doc's out-row changed but no intra-site subgraph did.
        assert!(delta.changed_sites.is_empty());
    }

    #[test]
    fn diff_rejects_shape_changes() {
        let old = campus();
        let mut builder = DocGraphBuilder::from_graph(&old);
        builder.add_doc("brand-new.site", "http://brand-new.site/");
        let new = builder.build();
        assert!(diff_sites(&old, &new).is_err());
    }

    #[test]
    fn incremental_equals_full_recompute_local_edit() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let new = edit_intra_site(&old, 5);
        let (updated, stats) = refresh(&base, &old, &new, &cfg).unwrap();
        let full = layered_doc_rank(&new, &cfg).unwrap();
        assert!(vec_ops::l1_diff(updated.global.scores(), full.global.scores()) < 1e-8);
        assert_eq!(stats.sites_recomputed, 1);
        assert_eq!(stats.sites_reused, new.n_sites() - 1);
        assert!(!stats.site_rank_recomputed);
    }

    #[test]
    fn incremental_equals_full_recompute_cross_edit() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let src = old.docs_of_site(SiteId(1))[2];
        let dst = old.docs_of_site(SiteId(7))[0];
        let mut builder = DocGraphBuilder::from_graph(&old);
        builder.add_link(src, dst).unwrap();
        let new = builder.build();
        let (updated, stats) = refresh(&base, &old, &new, &cfg).unwrap();
        let full = layered_doc_rank(&new, &cfg).unwrap();
        assert!(vec_ops::l1_diff(updated.global.scores(), full.global.scores()) < 1e-8);
        assert!(stats.site_rank_recomputed);
        assert_eq!(stats.sites_recomputed, 0);
    }

    #[test]
    fn no_change_reuses_everything() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let (same, stats) = refresh(&base, &old, &old.clone(), &cfg).unwrap();
        assert_eq!(same.global.scores(), base.global.scores());
        assert_eq!(stats.sites_recomputed, 0);
        assert_eq!(stats.sites_reused, old.n_sites());
        assert!(!stats.site_rank_recomputed);
    }

    #[test]
    fn warm_start_converges_quickly() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let new = edit_intra_site(&old, 5);
        let delta = diff_sites(&old, &new).unwrap();
        let (updated, _) = incremental_update(&base, &new, &delta, &cfg).unwrap();
        // The single changed site should converge from the warm start in
        // far fewer iterations than the cold full pipeline's worst site.
        assert!(updated.max_local_iterations <= base.max_local_iterations);
        let _ = DocId(0);
    }
}
