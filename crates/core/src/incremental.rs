//! Incremental maintenance of the layered DocRank under graph changes —
//! structural growth **and** removal.
//!
//! The paper's Section 1.2 motivation: centralized PageRank has "a limited
//! potential of keeping up with the Web growth" because any change anywhere
//! invalidates the global computation. The layered decomposition localizes
//! change: if only site `s`'s internal pages/links changed, only `π_D(s)`
//! must be recomputed; the SiteRank is touched only when *cross-site* links
//! (or the live site set itself) changed. [`incremental_update`] implements
//! that contract for five kinds of staleness:
//!
//! * **changed** sites (same membership, different intra-site links) are
//!   recomputed *warm* — the previous local vector seeds the power method;
//! * **grown** sites (new pages joined) are rebuilt *cold* — their rank
//!   dimension changed, so no previous vector fits;
//! * **shrunk** sites (pages tombstoned, possibly also gained) are rebuilt
//!   cold for the same reason;
//! * **removed** sites are dropped: their slot keeps zero rank and an
//!   empty local vector, and their rank mass is redistributed over the
//!   survivors **dangling-style** — proportionally to the surviving
//!   SiteRank scores, the same rule the stochastic-complement semantics
//!   applies to a state excised from a chain — before the warm-started
//!   power iteration re-converges;
//! * **added** sites (appended by a [`lmm_graph::delta::GraphDelta`]) are
//!   computed cold, and the SiteRank warm-starts from the previous vector
//!   padded with the teleport mass of the new sites.
//!
//! [`diff_sites`] derives a [`SiteDelta`] from two graph snapshots
//! (tolerating growth and tombstone-based removal, rejecting slot
//! shrinkage, resurrection, and re-partitions), and [`SiteDelta::from`]
//! converts the [`lmm_graph::delta::AppliedDelta`] summary that
//! [`lmm_graph::DocGraph::apply`] reports — the zero-diff path used by the
//! engine's `apply_delta`. [`remap_result`] carries a layered result
//! across an explicit [`DocGraph::compact_ids`] densification, so
//! surviving sites warm-start straight through the
//! [`IdRemap`](lmm_graph::remap::IdRemap). The tests verify every pipeline
//! reproduces a from-scratch recomputation.

use std::sync::Arc;

use crate::error::{LmmError, Result};
use crate::siterank::{
    layered_doc_rank, live_site_chain, reject_personalization_on_tombstones, LayeredDocRank,
    LayeredRankConfig, SiteLayerMethod,
};
use lmm_graph::delta::AppliedDelta;
use lmm_graph::docgraph::DocGraph;
use lmm_graph::ids::SiteId;
use lmm_graph::remap::IdRemap;
use lmm_linalg::{power_method_pool, vec_ops, StationaryOperator, StochasticMatrix};
use lmm_par::ThreadPool;
use lmm_rank::pagerank::PageRank;
use lmm_rank::Ranking;

/// What changed between two versions of a document graph whose common
/// prefix of documents kept its site partition (growth appends documents
/// and sites, removal tombstones them in place; ids never renumber).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SiteDelta {
    /// Sites whose intra-site subgraph changed with unchanged membership
    /// (local ranks stale, warm-startable).
    pub changed_sites: Vec<usize>,
    /// Pre-existing sites that gained pages and lost none (local rank
    /// dimension changed — cold rebuild).
    pub grown_sites: Vec<usize>,
    /// Pre-existing sites that lost pages but survive (cold rebuild).
    pub shrunk_sites: Vec<usize>,
    /// Pre-existing sites tombstoned outright (their rank mass is
    /// redistributed over the survivors).
    pub removed_sites: Vec<usize>,
    /// Number of site slots appended at the end of the site range (slots
    /// both appended and tombstoned by the same delta included).
    pub added_sites: usize,
    /// Whether any cross-site link count (or the live site set) changed
    /// (SiteRank stale).
    pub cross_links_changed: bool,
}

impl SiteDelta {
    /// `true` when nothing changed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.changed_sites.is_empty()
            && self.grown_sites.is_empty()
            && self.shrunk_sites.is_empty()
            && self.removed_sites.is_empty()
            && self.added_sites == 0
            && !self.cross_links_changed
    }
}

impl From<&AppliedDelta> for SiteDelta {
    fn from(applied: &AppliedDelta) -> Self {
        Self {
            changed_sites: applied.changed_sites.clone(),
            grown_sites: applied.grown_sites.clone(),
            shrunk_sites: applied.shrunk_sites.clone(),
            removed_sites: applied.removed_sites.clone(),
            added_sites: applied.added_sites,
            cross_links_changed: applied.cross_links_changed,
        }
    }
}

/// Cost accounting of one incremental update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateStats {
    /// Local DocRanks recomputed (changed + grown + shrunk + added).
    pub sites_recomputed: usize,
    /// Of those, pre-existing sites rebuilt cold because they grew.
    pub sites_grown: usize,
    /// Of those, pre-existing sites rebuilt cold because they lost pages.
    pub sites_shrunk: usize,
    /// Of those, brand-new (live) sites computed for the first time.
    pub sites_added: usize,
    /// Pre-existing sites tombstoned by this update (no local rank
    /// computed — their mass was redistributed).
    pub sites_removed: usize,
    /// Local DocRanks reused untouched (live surviving sites only).
    pub sites_reused: usize,
    /// Whether the SiteRank power iteration ran.
    pub site_rank_recomputed: bool,
}

/// Compares two graph snapshots and reports which layers are stale.
///
/// The new graph may have **grown** (documents appended to existing sites,
/// whole sites appended after the old range) and **shrunk by tombstoning**
/// (documents or sites dead in `new` that were live in `old`). The common
/// document prefix must keep its site partition, the slot counts must not
/// shrink (removal tombstones, it never renumbers), and tombstones are
/// permanent — a dead slot never comes back to life.
///
/// # Errors
/// Returns [`LmmError::InvalidModel`] when the new graph lost id slots or
/// resurrected a tombstoned one (re-discovery of the web, not a recrawl),
/// when any pre-existing document moved to a different site, or when an
/// appended live site is empty.
pub fn diff_sites(old: &DocGraph, new: &DocGraph) -> Result<SiteDelta> {
    if new.n_docs() < old.n_docs() || new.n_sites() < old.n_sites() {
        return Err(LmmError::InvalidModel {
            reason: format!(
                "incremental diff never renumbers: id slots shrank from {}x{} \
                 to {}x{} (docs x sites) — removal tombstones in place",
                old.n_docs(),
                old.n_sites(),
                new.n_docs(),
                new.n_sites()
            ),
        });
    }
    if old.site_assignments() != &new.site_assignments()[..old.n_docs()] {
        return Err(LmmError::InvalidModel {
            reason: "incremental diff needs an identical site partition over the \
                     common document prefix"
                .into(),
        });
    }
    if let Some(&d) = old.dead_docs().iter().find(|&&d| new.is_live_doc(d)) {
        return Err(LmmError::InvalidModel {
            reason: format!("tombstoned document {d} came back to life"),
        });
    }
    if let Some(&s) = old.dead_sites().iter().find(|&&s| new.is_live_site(s)) {
        return Err(LmmError::InvalidModel {
            reason: format!("tombstoned site {s} came back to life"),
        });
    }
    let mut changed_sites = Vec::new();
    let mut grown_sites = Vec::new();
    let mut shrunk_sites = Vec::new();
    let mut removed_sites = Vec::new();
    for s in 0..old.n_sites() {
        let site = SiteId(s);
        if !old.is_live_site(site) {
            continue; // stays dead (resurrection rejected above)
        }
        if !new.is_live_site(site) {
            removed_sites.push(s);
            continue;
        }
        let lost = old.docs_of_site(site).iter().any(|&d| !new.is_live_doc(d));
        // Members are ascending, so an appended member shows at the tail.
        let gained = new
            .docs_of_site(site)
            .last()
            .is_some_and(|d| d.index() >= old.n_docs());
        if lost {
            shrunk_sites.push(s);
        } else if gained {
            grown_sites.push(s);
        } else if old.site_subgraph(site) != new.site_subgraph(site) {
            changed_sites.push(s);
        }
    }
    let added_sites = new.n_sites() - old.n_sites();
    let mut live_added = 0usize;
    for s in old.n_sites()..new.n_sites() {
        if !new.is_live_site(SiteId(s)) {
            continue;
        }
        live_added += 1;
        if new.site_size(SiteId(s)) == 0 {
            return Err(LmmError::InvalidModel {
                reason: format!(
                    "appended site {s} ({:?}) has no documents — empty sites have \
                     no local rank distribution",
                    new.site_name(SiteId(s))
                ),
            });
        }
    }
    // Cross-site links changed iff the live-restricted cross-link
    // multisets differ (counts per ordered live site pair); a changed live
    // site set stales the SiteRank unconditionally because its dimension
    // changed. Intra-site count changes can also stale the SiteRank, but
    // only under self-loop SiteGraphs — [`incremental_update`] handles
    // that from the config, since the delta itself is options-agnostic.
    let opts = lmm_graph::sitegraph::SiteGraphOptions::default();
    let cross_links_changed = live_added > 0
        || !removed_sites.is_empty()
        || live_site_chain(old, &opts).1 != live_site_chain(new, &opts).1;
    Ok(SiteDelta {
        changed_sites,
        grown_sites,
        shrunk_sites,
        removed_sites,
        added_sites,
        cross_links_changed,
    })
}

/// A [`SiteDelta`] checked and normalized against the previous result and
/// the new graph: sorted, deduplicated, bounds-validated, size-coherent.
struct ValidDelta {
    changed: Vec<usize>,
    grown: Vec<usize>,
    shrunk: Vec<usize>,
    removed: Vec<usize>,
    added_sites: usize,
    cross_links_changed: bool,
}

/// Dedups and bounds-validates a caller-supplied delta so malformed input
/// surfaces as [`LmmError::InvalidModel`] instead of a panic or — worse — a
/// silently misaligned recomposition.
fn validate_delta(
    previous: &LayeredDocRank,
    new_graph: &DocGraph,
    delta: &SiteDelta,
) -> Result<ValidDelta> {
    let n_sites = new_graph.n_sites();
    let n_old = previous.local_ranks.len();
    if previous.site_rank.len() != n_old {
        return Err(LmmError::InvalidModel {
            reason: format!(
                "previous result is inconsistent: {} local ranks but a SiteRank \
                 over {} sites",
                n_old,
                previous.site_rank.len()
            ),
        });
    }
    if n_old + delta.added_sites != n_sites {
        return Err(LmmError::InvalidModel {
            reason: format!(
                "delta reports {} added sites but the graph went from {} to {} sites",
                delta.added_sites, n_old, n_sites
            ),
        });
    }
    let normalize = |list: &[usize], label: &str| -> Result<Vec<usize>> {
        let mut sorted = list.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if let Some(&s) = sorted.iter().find(|&&s| s >= n_old) {
            return Err(LmmError::InvalidModel {
                reason: format!(
                    "delta lists {label} site {s}, but only sites 0..{n_old} pre-exist"
                ),
            });
        }
        Ok(sorted)
    };
    let changed = normalize(&delta.changed_sites, "changed")?;
    let grown = normalize(&delta.grown_sites, "grown")?;
    let shrunk = normalize(&delta.shrunk_sites, "shrunk")?;
    let removed = normalize(&delta.removed_sites, "removed")?;
    let classes: [(&str, &[usize]); 4] = [
        ("changed", &changed),
        ("grown", &grown),
        ("shrunk", &shrunk),
        ("removed", &removed),
    ];
    for (i, (label_a, a)) in classes.iter().enumerate() {
        for (label_b, b) in &classes[i + 1..] {
            if let Some(&s) = a.iter().find(|s| b.binary_search(s).is_ok()) {
                return Err(LmmError::InvalidModel {
                    reason: format!("delta lists site {s} as both {label_a} and {label_b}"),
                });
            }
        }
    }
    // Size / liveness coherence: a "changed" or untouched site must have
    // kept its size and liveness — a mismatch means the delta
    // under-reports growth, shrinkage, or removal, and the recomposition
    // below would silently misalign local vectors.
    for s in 0..n_old {
        let site = SiteId(s);
        let size = new_graph.site_size(site);
        let prev = previous.local_ranks[s].len();
        let live = new_graph.is_live_site(site);
        if removed.binary_search(&s).is_ok() {
            if live {
                return Err(LmmError::InvalidModel {
                    reason: format!("delta reports site {s} removed but it is live"),
                });
            }
            if prev == 0 {
                return Err(LmmError::InvalidModel {
                    reason: format!("removed site {s} was already tombstoned"),
                });
            }
        } else if !live {
            if prev > 0 {
                return Err(LmmError::InvalidModel {
                    reason: format!(
                        "site {s} was tombstoned but the delta does not report it \
                         as removed"
                    ),
                });
            }
            if classes[..3]
                .iter()
                .any(|(_, list)| list.binary_search(&s).is_ok())
            {
                return Err(LmmError::InvalidModel {
                    reason: format!("delta lists tombstoned site {s} as stale"),
                });
            }
        } else if grown.binary_search(&s).is_ok() || shrunk.binary_search(&s).is_ok() {
            if size == 0 {
                return Err(LmmError::InvalidModel {
                    reason: format!("grown/shrunk site {s} has no documents"),
                });
            }
        } else if size != prev {
            return Err(LmmError::InvalidModel {
                reason: format!(
                    "site {s} went from {prev} to {size} documents but the delta \
                     does not report it as grown or shrunk"
                ),
            });
        }
    }
    for s in n_old..n_sites {
        if new_graph.is_live_site(SiteId(s)) && new_graph.site_size(SiteId(s)) == 0 {
            return Err(LmmError::InvalidModel {
                reason: format!("added site {s} has no documents"),
            });
        }
    }
    Ok(ValidDelta {
        changed,
        grown,
        shrunk,
        removed,
        added_sites: delta.added_sites,
        cross_links_changed: delta.cross_links_changed,
    })
}

/// Recomputes the SiteRank, warm-started from the previous vector. When
/// sites were appended, the previous vector is padded with each new site's
/// teleport mass (`(1-f)·v(s)` under PageRank, uniform mass under the raw
/// stationary method) and renormalized — the cheapest consistent prior for
/// a site nobody has linked long enough to rank. When sites were
/// tombstoned, the computation runs over the live restriction: the dead
/// slots' previous mass is dropped and the L1 renormalization spreads it
/// **proportionally over the survivors** (the dangling-node rule), the
/// warm start the power iteration then converges from.
fn recompute_site_rank(
    previous: &LayeredDocRank,
    new_graph: &DocGraph,
    config: &LayeredRankConfig,
) -> Result<(Ranking, lmm_linalg::ConvergenceReport)> {
    let n_sites = new_graph.n_sites();
    let n_old = previous.site_rank.len();
    if !new_graph.dead_sites().is_empty() {
        let (live, chain) = live_site_chain(new_graph, &config.site_options);
        if live.is_empty() {
            return Err(LmmError::InvalidModel {
                reason: "every site is tombstoned — nothing to rank".into(),
            });
        }
        let k = live.len();
        let pad = match config.site_method {
            SiteLayerMethod::PageRank => (1.0 - config.site_damping) / k as f64,
            SiteLayerMethod::Stationary => 1.0 / k as f64,
        };
        let mut warm: Vec<f64> = live
            .iter()
            .map(|&s| {
                if s < n_old {
                    previous.site_rank.score(s)
                } else {
                    pad
                }
            })
            .collect();
        if warm.iter().sum::<f64>() <= 0.0 {
            warm = vec![1.0 / k as f64; k];
        }
        vec_ops::normalize_l1(&mut warm)?;
        let stochastic = StochasticMatrix::from_adjacency(chain)?;
        let (pi, report) = match config.site_method {
            SiteLayerMethod::PageRank => {
                let mut pr = PageRank::new();
                pr.damping(config.site_damping)
                    .tol(config.power.tol)
                    .max_iters(config.power.max_iters)
                    .initial(warm);
                let result = pr.run(&stochastic)?;
                (result.ranking.into_scores(), result.report)
            }
            SiteLayerMethod::Stationary => {
                let pool = ThreadPool::shared(config.threads);
                let op = StationaryOperator::new(stochastic.matrix(), Arc::clone(&pool))?;
                power_method_pool(&op, &warm, &config.power, &pool)?
            }
        };
        let mut scores = vec![0.0f64; n_sites];
        for (j, &s) in live.iter().enumerate() {
            scores[s] = pi[j];
        }
        return Ok((Ranking::from_scores(scores)?, report));
    }
    let site_graph = lmm_graph::sitegraph::ranking_site_graph(new_graph, &config.site_options);
    let mut warm = previous.site_rank.scores().to_vec();
    match config.site_method {
        SiteLayerMethod::PageRank => {
            for s in n_old..n_sites {
                // The caller validated the personalization vector against
                // the updated site count, so `v[s]` covers the new sites.
                let teleport = match &config.site_personalization {
                    Some(v) => v[s],
                    None => 1.0 / n_sites as f64,
                };
                warm.push((1.0 - config.site_damping) * teleport);
            }
            vec_ops::normalize_l1(&mut warm)?;
            let mut pr = PageRank::new();
            pr.damping(config.site_damping)
                .tol(config.power.tol)
                .max_iters(config.power.max_iters)
                .initial(warm);
            if let Some(v) = &config.site_personalization {
                pr.personalization(v.clone());
            }
            let result = pr.run(&site_graph.to_stochastic()?)?;
            Ok((result.ranking, result.report))
        }
        SiteLayerMethod::Stationary => {
            if config.site_personalization.is_some() {
                return Err(LmmError::InvalidModel {
                    reason: "site-layer personalization requires SiteLayerMethod::PageRank \
                             (the un-damped stationary chain has no teleport vector)"
                        .into(),
                });
            }
            warm.extend(std::iter::repeat_n(1.0 / n_sites as f64, n_sites - n_old));
            vec_ops::normalize_l1(&mut warm)?;
            let stochastic = site_graph.to_stochastic()?;
            let pool = ThreadPool::shared(config.threads);
            let op = StationaryOperator::new(stochastic.matrix(), Arc::clone(&pool))?;
            let (pi, report) = power_method_pool(&op, &warm, &config.power, &pool)?;
            Ok((Ranking::from_scores(pi)?, report))
        }
    }
}

/// Applies an incremental update: recomputes only the stale layers of
/// `previous` against `new_graph` and recomposes the global ranking.
///
/// Changed sites warm-start from the previous local vectors, so a small
/// intra-site edit converges in a handful of iterations; grown and added
/// sites are rebuilt cold. When the site set or any cross-site link
/// changed, the SiteRank reruns warm-started from the (padded) previous
/// vector.
///
/// # Errors
/// Returns [`LmmError::InvalidModel`] for a delta that is out of range,
/// inconsistent with the graphs' shapes, or under-reports growth;
/// propagates PageRank failures. Obtain a coherent `delta` from
/// [`diff_sites`] or from [`lmm_graph::DocGraph::apply`]'s summary.
pub fn incremental_update(
    previous: &LayeredDocRank,
    new_graph: &DocGraph,
    delta: &SiteDelta,
    config: &LayeredRankConfig,
) -> Result<(LayeredDocRank, UpdateStats)> {
    let delta = validate_delta(previous, new_graph, delta)?;
    let n_sites = new_graph.n_sites();
    let n_old = n_sites - delta.added_sites;
    // Personalization must fit the *new* graph: a site vector of the old
    // length (or a per-site vector of a grown site's old size) would fail
    // deep inside PageRank with an opaque message — or worse, silently
    // skew a recomposed ranking the caller believes personalized. On a
    // graph with tombstoned sites, slot-indexed vectors are rejected
    // outright.
    if !new_graph.dead_sites().is_empty() {
        reject_personalization_on_tombstones(new_graph, config)?;
    }
    if let Some(v) = &config.site_personalization {
        if v.len() != n_sites {
            return Err(LmmError::InvalidModel {
                reason: format!(
                    "site personalization has length {}, the updated graph has {} \
                     sites — supply a vector covering the added sites",
                    v.len(),
                    n_sites
                ),
            });
        }
    }
    for (&s, v) in &config.local_personalization {
        if s >= n_sites || v.len() != new_graph.site_size(SiteId(s)) {
            return Err(LmmError::InvalidModel {
                reason: format!(
                    "document personalization for site {s} has length {}, the \
                     updated graph's site has {} documents",
                    v.len(),
                    if s < n_sites {
                        new_graph.site_size(SiteId(s))
                    } else {
                        0
                    }
                ),
            });
        }
    }
    // Appended slots a same-delta removal already tombstoned never compute.
    let added_live: Vec<usize> = (n_old..n_sites)
        .filter(|&s| new_graph.is_live_site(SiteId(s)))
        .collect();
    let mut stats = UpdateStats {
        sites_grown: delta.grown.len(),
        sites_shrunk: delta.shrunk.len(),
        sites_added: added_live.len(),
        sites_removed: delta.removed.len(),
        ..UpdateStats::default()
    };

    // SiteRank: reuse, or recompute warm-started (padded when sites were
    // appended, redistributed when sites were removed — either way the
    // dimension changed, so reuse is impossible). Under a self-loop
    // SiteGraph, intra-site count changes also move the site weights, so
    // any changed/grown/shrunk site stales the SiteRank too (the warm
    // start makes a spurious recompute converge immediately).
    let self_loops_stale = config.site_options.include_self_loops
        && !(delta.changed.is_empty() && delta.grown.is_empty() && delta.shrunk.is_empty());
    let (site_rank, site_report) = if delta.cross_links_changed
        || delta.added_sites > 0
        || !delta.removed.is_empty()
        || self_loops_stale
    {
        stats.site_rank_recomputed = true;
        recompute_site_rank(previous, new_graph, config)?
    } else {
        (previous.site_rank.clone(), previous.site_report)
    };

    // Local ranks: recompute only the stale sites, fanned across the shared
    // pool — changed sites warm, grown/shrunk/added sites cold; removed
    // sites drop to an empty placeholder. Each solve is independent and
    // fills only its own slot, so the fan-out stays deterministic at any
    // thread count.
    let jobs: Vec<(usize, bool)> = delta
        .changed
        .iter()
        .map(|&s| (s, true))
        .chain(delta.grown.iter().map(|&s| (s, false)))
        .chain(delta.shrunk.iter().map(|&s| (s, false)))
        .chain(added_live.iter().map(|&s| (s, false)))
        .collect();
    let mut local_ranks: Vec<Option<Ranking>> =
        previous.local_ranks.iter().cloned().map(Some).collect();
    local_ranks.resize(n_sites, None);
    // Dead slots (removed now, or appended dead) hold the empty ranking —
    // zero weight, zero members, nothing to compute.
    for (s, slot) in local_ranks.iter_mut().enumerate() {
        if !new_graph.is_live_site(SiteId(s)) {
            *slot = Some(Ranking::empty());
        }
    }
    let mut total_local_iterations = 0usize;
    let mut max_local_iterations = 0usize;
    let pool = ThreadPool::shared(config.threads);
    let solved = pool.par_map(&jobs, |_, &(s, warm)| {
        let sub = new_graph.site_subgraph(SiteId(s));
        let mut pr = PageRank::new();
        pr.damping(config.local_damping)
            .tol(config.power.tol)
            .max_iters(config.power.max_iters);
        if warm {
            // Validated above: a changed site kept its size.
            pr.initial(previous.local_ranks[s].scores().to_vec());
        }
        if let Some(v) = config.local_personalization.get(&s) {
            pr.personalization(v.clone());
        }
        pr.run_adjacency(sub.adjacency)
    });
    for (&(s, _), result) in jobs.iter().zip(solved) {
        let result = result?;
        total_local_iterations += result.report.iterations;
        max_local_iterations = max_local_iterations.max(result.report.iterations);
        local_ranks[s] = Some(result.ranking);
    }
    stats.sites_recomputed = jobs.len();
    stats.sites_reused = new_graph.n_live_sites() - stats.sites_recomputed;

    // Recompose (O(N) — the Partition Theorem's aggregation step), with an
    // explicit size check so an inconsistent state can never silently
    // misalign scores.
    let mut scores = vec![0.0f64; new_graph.n_docs()];
    for (s, ranks) in local_ranks.iter().enumerate() {
        let ranks = ranks.as_ref().ok_or_else(|| LmmError::InvalidModel {
            reason: format!("no local rank computed or reused for site {s}"),
        })?;
        let members = new_graph.docs_of_site(SiteId(s));
        if ranks.len() != members.len() {
            return Err(LmmError::InvalidModel {
                reason: format!(
                    "local rank for site {s} covers {} documents, site has {}",
                    ranks.len(),
                    members.len()
                ),
            });
        }
        let weight = site_rank.score(s);
        for (local, doc) in members.iter().enumerate() {
            scores[doc.index()] = weight * ranks.score(local);
        }
    }
    let global = Ranking::from_scores(scores)?;
    let local_ranks: Vec<Ranking> = local_ranks.into_iter().flatten().collect();
    Ok((
        LayeredDocRank {
            site_rank,
            local_ranks,
            global,
            site_report,
            total_local_iterations,
            max_local_iterations,
        },
        stats,
    ))
}

/// Convenience: diff + update + (in debug builds) equivalence check against
/// a full recomputation.
///
/// # Errors
/// See [`diff_sites`] and [`incremental_update`].
pub fn refresh(
    previous: &LayeredDocRank,
    old_graph: &DocGraph,
    new_graph: &DocGraph,
    config: &LayeredRankConfig,
) -> Result<(LayeredDocRank, UpdateStats)> {
    let delta = diff_sites(old_graph, new_graph)?;
    if delta.is_empty() {
        return Ok((
            previous.clone(),
            UpdateStats {
                sites_reused: new_graph.n_sites(),
                ..UpdateStats::default()
            },
        ));
    }
    let (updated, stats) = incremental_update(previous, new_graph, &delta, config)?;
    debug_assert!(
        {
            let full = layered_doc_rank(new_graph, config)?;
            lmm_linalg::vec_ops::l1_diff(full.global.scores(), updated.global.scores()) < 1e-6
        },
        "incremental update diverged from full recomputation"
    );
    Ok((updated, stats))
}

/// Carries a layered result across an explicit
/// [`DocGraph::compact_ids`] densification: surviving sites keep their
/// local vectors verbatim (the monotone remap preserves member order
/// within a site), while the SiteRank and global vectors drop their dead
/// slots — which held zero mass, so both stay exact distributions.
///
/// The returned result ranks the **compacted** graph: feeding it to
/// [`diff_sites`]/[`incremental_update`] against that graph sees an empty
/// delta, so compaction never forces a recompute — every surviving site
/// warm-starts straight through the remap.
///
/// # Errors
/// Returns [`LmmError::InvalidModel`] when the remap's old shape does not
/// match `previous`, or when a dropped slot still carried rank mass (the
/// remap belongs to a different graph state).
pub fn remap_result(previous: &LayeredDocRank, remap: &IdRemap) -> Result<LayeredDocRank> {
    if previous.site_rank.len() != remap.n_old_sites()
        || previous.global.len() != remap.n_old_docs()
    {
        return Err(LmmError::InvalidModel {
            reason: format!(
                "remap covers {}x{} slots (docs x sites), previous result ranks {}x{}",
                remap.n_old_docs(),
                remap.n_old_sites(),
                previous.global.len(),
                previous.site_rank.len()
            ),
        });
    }
    let mut site_scores = Vec::with_capacity(remap.n_new_sites());
    let mut local_ranks = Vec::with_capacity(remap.n_new_sites());
    for s in 0..remap.n_old_sites() {
        if remap.site(SiteId(s)).is_some() {
            site_scores.push(previous.site_rank.score(s));
            local_ranks.push(previous.local_ranks[s].clone());
        } else if previous.site_rank.score(s) != 0.0 {
            return Err(LmmError::InvalidModel {
                reason: format!(
                    "remap drops site {s}, which still carries rank mass — the \
                     remap does not belong to this result's graph"
                ),
            });
        }
    }
    let mut global = Vec::with_capacity(remap.n_new_docs());
    for d in 0..remap.n_old_docs() {
        if remap.doc(lmm_graph::DocId(d)).is_some() {
            global.push(previous.global.score(d));
        } else if previous.global.score(d) != 0.0 {
            return Err(LmmError::InvalidModel {
                reason: format!(
                    "remap drops document {d}, which still carries rank mass — \
                     the remap does not belong to this result's graph"
                ),
            });
        }
    }
    Ok(LayeredDocRank {
        site_rank: Ranking::from_scores(site_scores)?,
        local_ranks,
        global: Ranking::from_scores(global)?,
        site_report: previous.site_report,
        total_local_iterations: previous.total_local_iterations,
        max_local_iterations: previous.max_local_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmm_graph::delta::GraphDelta;
    use lmm_graph::docgraph::DocGraphBuilder;
    use lmm_graph::generator::CampusWebConfig;
    use lmm_graph::DocId;
    use lmm_linalg::vec_ops;

    fn campus() -> DocGraph {
        let mut cfg = CampusWebConfig::small();
        cfg.total_docs = 600;
        cfg.n_sites = 12;
        cfg.spam_farms.clear();
        cfg.generate().unwrap()
    }

    /// Rewires one intra-site link inside `site` and returns the new graph.
    fn edit_intra_site(graph: &DocGraph, site: usize) -> DocGraph {
        let docs = graph.docs_of_site(SiteId(site));
        let (a, b, c) = (docs[0], docs[1], docs[docs.len() - 1]);
        let mut builder = DocGraphBuilder::from_graph(graph);
        builder.remove_link(a, b);
        builder.add_link(b, c).unwrap();
        builder.add_link(c, a).unwrap();
        builder.build()
    }

    #[test]
    fn diff_detects_local_change_only() {
        let old = campus();
        let new = edit_intra_site(&old, 3);
        let delta = diff_sites(&old, &new).unwrap();
        assert_eq!(delta.changed_sites, vec![3]);
        assert!(delta.grown_sites.is_empty());
        assert_eq!(delta.added_sites, 0);
        assert!(!delta.cross_links_changed);
        assert!(!delta.is_empty());
    }

    #[test]
    fn diff_detects_cross_change() {
        let old = campus();
        let src = old.docs_of_site(SiteId(2))[1];
        let dst = old.docs_of_site(SiteId(9))[0];
        let mut builder = DocGraphBuilder::from_graph(&old);
        builder.add_link(src, dst).unwrap();
        let new = builder.build();
        let delta = diff_sites(&old, &new).unwrap();
        assert!(delta.cross_links_changed);
        // The source doc's out-row changed but no intra-site subgraph did.
        assert!(delta.changed_sites.is_empty());
    }

    #[test]
    fn diff_detects_growth() {
        let old = campus();
        let mut gd = GraphDelta::for_graph(&old);
        let root = old.docs_of_site(SiteId(4))[0];
        let p = gd.add_page(SiteId(4), "http://grown.example/p").unwrap();
        gd.add_link(root, p).unwrap();
        gd.add_link(p, root).unwrap();
        let s = gd.add_site("appended.example");
        let q = gd.add_page(s, "http://appended.example/").unwrap();
        gd.add_link(q, root).unwrap();
        let (new, applied) = old.apply(&gd).unwrap();
        let delta = diff_sites(&old, &new).unwrap();
        assert_eq!(delta.grown_sites, vec![4]);
        assert_eq!(delta.added_sites, 1);
        assert!(delta.cross_links_changed);
        // The apply-time summary and the two-snapshot diff must agree.
        assert_eq!(delta, SiteDelta::from(&applied));
    }

    #[test]
    fn diff_rejects_shrinkage_and_repartition() {
        let old = campus();
        // Shrinkage: diff the other way around.
        let mut gd = GraphDelta::for_graph(&old);
        gd.add_page(SiteId(0), "http://x/p").unwrap();
        let (grown, _) = old.apply(&gd).unwrap();
        assert!(diff_sites(&grown, &old).is_err());
        // Re-partition: same doc count, one doc moved to another site.
        let mut builder = DocGraphBuilder::new();
        for d in 0..old.n_docs() {
            let doc = DocId(d);
            let site = if d == 0 {
                old.site_name(SiteId(1)).to_string()
            } else {
                old.site_name(old.site_of(doc)).to_string()
            };
            builder.add_doc(&site, old.url(doc));
        }
        let repartitioned = builder.build();
        assert!(diff_sites(&old, &repartitioned).is_err());
    }

    #[test]
    fn incremental_equals_full_recompute_local_edit() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let new = edit_intra_site(&old, 5);
        let (updated, stats) = refresh(&base, &old, &new, &cfg).unwrap();
        let full = layered_doc_rank(&new, &cfg).unwrap();
        assert!(vec_ops::l1_diff(updated.global.scores(), full.global.scores()) < 1e-8);
        assert_eq!(stats.sites_recomputed, 1);
        assert_eq!(stats.sites_reused, new.n_sites() - 1);
        assert!(!stats.site_rank_recomputed);
    }

    #[test]
    fn incremental_equals_full_recompute_cross_edit() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let src = old.docs_of_site(SiteId(1))[2];
        let dst = old.docs_of_site(SiteId(7))[0];
        let mut builder = DocGraphBuilder::from_graph(&old);
        builder.add_link(src, dst).unwrap();
        let new = builder.build();
        let (updated, stats) = refresh(&base, &old, &new, &cfg).unwrap();
        let full = layered_doc_rank(&new, &cfg).unwrap();
        assert!(vec_ops::l1_diff(updated.global.scores(), full.global.scores()) < 1e-8);
        assert!(stats.site_rank_recomputed);
        assert_eq!(stats.sites_recomputed, 0);
    }

    #[test]
    fn incremental_handles_growth_end_to_end() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let mut gd = GraphDelta::for_graph(&old);
        // Grow site 2 by two pages and append a small new site with links
        // in both directions.
        let root = old.docs_of_site(SiteId(2))[0];
        let p1 = gd.add_page(SiteId(2), "http://grown/1").unwrap();
        let p2 = gd.add_page(SiteId(2), "http://grown/2").unwrap();
        gd.add_link(root, p1).unwrap();
        gd.add_link(p1, p2).unwrap();
        gd.add_link(p2, root).unwrap();
        let s = gd.add_site("new-site.example");
        let q0 = gd.add_page(s, "http://new-site.example/").unwrap();
        let q1 = gd.add_page(s, "http://new-site.example/1").unwrap();
        gd.add_link(q0, q1).unwrap();
        gd.add_link(q1, q0).unwrap();
        gd.add_link(root, q0).unwrap();
        gd.add_link(q0, old.docs_of_site(SiteId(8))[0]).unwrap();
        let (new, applied) = old.apply(&gd).unwrap();

        let delta = SiteDelta::from(&applied);
        let (updated, stats) = incremental_update(&base, &new, &delta, &cfg).unwrap();
        let full = layered_doc_rank(&new, &cfg).unwrap();
        assert!(vec_ops::l1_diff(updated.global.scores(), full.global.scores()) < 1e-8);
        assert_eq!(stats.sites_grown, 1);
        assert_eq!(stats.sites_added, 1);
        assert_eq!(stats.sites_recomputed, 2);
        assert_eq!(stats.sites_reused, new.n_sites() - 2);
        assert!(stats.site_rank_recomputed);
        assert_eq!(updated.local_ranks.len(), new.n_sites());
        assert_eq!(updated.site_rank.len(), new.n_sites());
    }

    #[test]
    fn growth_works_with_stationary_site_layer() {
        let old = campus();
        let cfg = LayeredRankConfig {
            site_method: SiteLayerMethod::Stationary,
            ..LayeredRankConfig::default()
        };
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let mut gd = GraphDelta::for_graph(&old);
        let s = gd.add_site("stationary-new.example");
        let q = gd.add_page(s, "http://stationary-new.example/").unwrap();
        let root = old.docs_of_site(SiteId(0))[0];
        gd.add_link(root, q).unwrap();
        gd.add_link(q, root).unwrap();
        let (new, applied) = old.apply(&gd).unwrap();
        let (updated, _) =
            incremental_update(&base, &new, &SiteDelta::from(&applied), &cfg).unwrap();
        let full = layered_doc_rank(&new, &cfg).unwrap();
        assert!(vec_ops::l1_diff(updated.global.scores(), full.global.scores()) < 1e-7);
    }

    #[test]
    fn no_change_reuses_everything() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let (same, stats) = refresh(&base, &old, &old.clone(), &cfg).unwrap();
        assert_eq!(same.global.scores(), base.global.scores());
        assert_eq!(stats.sites_recomputed, 0);
        assert_eq!(stats.sites_reused, old.n_sites());
        assert!(!stats.site_rank_recomputed);
    }

    #[test]
    fn warm_start_converges_quickly() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let new = edit_intra_site(&old, 5);
        let delta = diff_sites(&old, &new).unwrap();
        let (updated, _) = incremental_update(&base, &new, &delta, &cfg).unwrap();
        // The single changed site should converge from the warm start in
        // far fewer iterations than the cold full pipeline's worst site.
        assert!(updated.max_local_iterations <= base.max_local_iterations);
        let _ = DocId(0);
    }

    #[test]
    fn duplicate_delta_entries_are_deduped() {
        // Regression: duplicate entries used to inflate `sites_recomputed`
        // past `n_sites`, underflowing the `sites_reused` subtraction.
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let new = edit_intra_site(&old, 5);
        let delta = SiteDelta {
            changed_sites: vec![5, 5, 5, 5],
            ..SiteDelta::default()
        };
        let (updated, stats) = incremental_update(&base, &new, &delta, &cfg).unwrap();
        assert_eq!(stats.sites_recomputed, 1);
        assert_eq!(stats.sites_reused, new.n_sites() - 1);
        let full = layered_doc_rank(&new, &cfg).unwrap();
        assert!(vec_ops::l1_diff(updated.global.scores(), full.global.scores()) < 1e-8);
    }

    #[test]
    fn out_of_range_delta_is_an_error_not_a_panic() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let delta = SiteDelta {
            changed_sites: vec![0, old.n_sites() + 3],
            ..SiteDelta::default()
        };
        let err = incremental_update(&base, &old, &delta, &cfg).unwrap_err();
        assert!(matches!(err, LmmError::InvalidModel { .. }));
    }

    #[test]
    fn under_reported_growth_is_an_explicit_error() {
        // Regression: a size mismatch used to silently skip the warm start
        // while the recomposition still assumed the old dimensions.
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let mut gd = GraphDelta::for_graph(&old);
        let root = old.docs_of_site(SiteId(3))[0];
        let p = gd.add_page(SiteId(3), "http://grown/x").unwrap();
        gd.add_link(root, p).unwrap();
        let (new, _) = old.apply(&gd).unwrap();
        // Lie: claim site 3 merely "changed" (or say nothing at all).
        for delta in [
            SiteDelta {
                changed_sites: vec![3],
                ..SiteDelta::default()
            },
            SiteDelta::default(),
        ] {
            let err = incremental_update(&base, &new, &delta, &cfg).unwrap_err();
            assert!(matches!(err, LmmError::InvalidModel { .. }), "{err}");
        }
    }

    #[test]
    fn self_loop_site_graph_stays_fresh_under_intra_edits() {
        // Regression: with include_self_loops the SiteRank depends on
        // intra-site link *counts*, so an intra edit that changes a count
        // must recompute it — reusing the old vector serves stale ranks.
        let old = campus();
        let cfg = LayeredRankConfig {
            site_options: lmm_graph::sitegraph::SiteGraphOptions {
                include_self_loops: true,
                ..Default::default()
            },
            ..LayeredRankConfig::default()
        };
        let base = layered_doc_rank(&old, &cfg).unwrap();
        // Add a brand-new intra-site link (count +1, not a rewire): find a
        // doc pair inside site 4 that the generator did not already link.
        let docs = old.docs_of_site(SiteId(4));
        let adj = old.adjacency();
        let (a, b) = docs
            .iter()
            .flat_map(|&a| docs.iter().map(move |&b| (a, b)))
            .find(|&(a, b)| a != b && adj.get(a.index(), b.index()) == 0.0)
            .expect("site 4 is not a complete digraph");
        let mut gd = GraphDelta::for_graph(&old);
        gd.add_link(a, b).unwrap();
        let (new, applied) = old.apply(&gd).unwrap();
        assert_eq!(applied.changed_sites, vec![4]);
        assert!(!applied.cross_links_changed);
        let (updated, stats) =
            incremental_update(&base, &new, &SiteDelta::from(&applied), &cfg).unwrap();
        assert!(stats.site_rank_recomputed);
        let full = layered_doc_rank(&new, &cfg).unwrap();
        assert!(vec_ops::l1_diff(updated.global.scores(), full.global.scores()) < 1e-8);
    }

    #[test]
    fn personalization_must_cover_the_grown_graph() {
        let old = campus();
        let mut gd = GraphDelta::for_graph(&old);
        let s = gd.add_site("personalized-new.example");
        let q = gd.add_page(s, "http://personalized-new.example/").unwrap();
        let root = old.docs_of_site(SiteId(0))[0];
        gd.add_link(root, q).unwrap();
        gd.add_link(q, root).unwrap();
        let (new, applied) = old.apply(&gd).unwrap();
        let delta = SiteDelta::from(&applied);

        // Stale vector (old site count): a clear error, not a deep rank
        // failure or a silently skewed recomposition.
        let mut stale = vec![1.0 / old.n_sites() as f64; old.n_sites()];
        stale[3] += 0.1;
        vec_ops::normalize_l1(&mut stale).unwrap();
        let stale_cfg = LayeredRankConfig {
            site_personalization: Some(stale),
            ..LayeredRankConfig::default()
        };
        let base = layered_doc_rank(&old, &stale_cfg).unwrap();
        let err = incremental_update(&base, &new, &delta, &stale_cfg).unwrap_err();
        assert!(matches!(err, LmmError::InvalidModel { .. }), "{err}");

        // An updated vector covering the added site flows through and
        // matches a scratch run under the same configuration.
        let mut v = vec![1.0 / new.n_sites() as f64; new.n_sites()];
        v[3] += 0.1;
        vec_ops::normalize_l1(&mut v).unwrap();
        let new_cfg = LayeredRankConfig {
            site_personalization: Some(v),
            ..LayeredRankConfig::default()
        };
        let (updated, _) = incremental_update(&base, &new, &delta, &new_cfg).unwrap();
        let full = layered_doc_rank(&new, &new_cfg).unwrap();
        assert!(vec_ops::l1_diff(updated.global.scores(), full.global.scores()) < 1e-7);

        // A stale per-site document vector on a grown site errors too.
        let mut gd = GraphDelta::for_graph(&old);
        let p = gd.add_page(SiteId(2), "http://grown-doc/").unwrap();
        gd.add_link(root, p).unwrap();
        let (grown, applied) = old.apply(&gd).unwrap();
        let mut local_cfg = LayeredRankConfig::default();
        let size = old.site_size(SiteId(2));
        let mut lv = vec![0.0; size];
        lv[0] = 1.0;
        local_cfg.local_personalization.insert(2, lv);
        let base = layered_doc_rank(&old, &local_cfg).unwrap();
        let err =
            incremental_update(&base, &grown, &SiteDelta::from(&applied), &local_cfg).unwrap_err();
        assert!(matches!(err, LmmError::InvalidModel { .. }), "{err}");
    }

    /// L1 distance between a result on the tombstoned graph and a scratch
    /// result on its compacted twin, compared over surviving docs through
    /// the remap.
    fn drift_vs_compacted(updated: &LayeredDocRank, tombstoned: &DocGraph) -> f64 {
        let (dense, remap) = tombstoned.compact_ids();
        let cfg = LayeredRankConfig::default();
        let scratch = layered_doc_rank(&dense, &cfg).unwrap();
        let carried = remap_result(updated, &remap).unwrap();
        vec_ops::l1_diff(carried.global.scores(), scratch.global.scores())
    }

    #[test]
    fn incremental_handles_page_removal() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let mut gd = GraphDelta::for_graph(&old);
        let victim = old.docs_of_site(SiteId(3))[2];
        gd.remove_page(victim).unwrap();
        let (new, applied) = old.apply(&gd).unwrap();
        let delta = SiteDelta::from(&applied);
        assert_eq!(delta, diff_sites(&old, &new).unwrap());
        assert_eq!(delta.shrunk_sites, vec![3]);

        let (updated, stats) = incremental_update(&base, &new, &delta, &cfg).unwrap();
        assert_eq!(stats.sites_shrunk, 1);
        assert_eq!(stats.sites_removed, 0);
        assert!(stats.sites_recomputed >= 1);
        // Mass is conserved exactly (a distribution by construction).
        let total: f64 = updated.global.scores().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass leaked: {total}");
        // The dead slot scores zero; survivors match a compacted scratch.
        assert_eq!(updated.global.score(victim.index()), 0.0);
        assert!(drift_vs_compacted(&updated, &new) < 1e-7);
    }

    #[test]
    fn incremental_handles_site_removal_with_redistribution() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let mut gd = GraphDelta::for_graph(&old);
        gd.remove_site(SiteId(6)).unwrap();
        let (new, applied) = old.apply(&gd).unwrap();
        let delta = SiteDelta::from(&applied);
        assert_eq!(delta, diff_sites(&old, &new).unwrap());
        assert_eq!(delta.removed_sites, vec![6]);
        assert!(delta.cross_links_changed);

        let (updated, stats) = incremental_update(&base, &new, &delta, &cfg).unwrap();
        assert!(stats.site_rank_recomputed);
        assert_eq!(stats.sites_removed, 1);
        // The removed site's mass was redistributed: the survivors still
        // sum to one and the dead slot holds none of it.
        let total: f64 = updated.global.scores().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass leaked: {total}");
        assert_eq!(updated.site_rank.score(6), 0.0);
        assert!(updated.local_ranks[6].is_empty());
        for &d in old.docs_of_site(SiteId(6)) {
            assert_eq!(updated.global.score(d.index()), 0.0);
        }
        assert!(drift_vs_compacted(&updated, &new) < 1e-7);
    }

    #[test]
    fn mixed_remove_shrink_grow_matches_compacted_scratch() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let mut gd = GraphDelta::for_graph(&old);
        gd.remove_site(SiteId(1)).unwrap();
        gd.remove_page(old.docs_of_site(SiteId(5))[1]).unwrap();
        let root = old.docs_of_site(SiteId(8))[0];
        let p = gd
            .add_page(SiteId(8), "http://mixed-grow.example/")
            .unwrap();
        gd.add_link(root, p).unwrap();
        gd.add_link(p, root).unwrap();
        let (new, applied) = old.apply(&gd).unwrap();
        let delta = SiteDelta::from(&applied);
        assert_eq!(delta, diff_sites(&old, &new).unwrap());
        assert_eq!(delta.removed_sites, vec![1]);
        assert_eq!(delta.shrunk_sites, vec![5]);
        assert_eq!(delta.grown_sites, vec![8]);

        let (updated, stats) = incremental_update(&base, &new, &delta, &cfg).unwrap();
        assert_eq!(stats.sites_recomputed, 2); // shrunk + grown
        assert_eq!(stats.sites_reused, new.n_live_sites() - 2);
        let total: f64 = updated.global.scores().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(drift_vs_compacted(&updated, &new) < 1e-7);
    }

    #[test]
    fn remap_result_seeds_the_compacted_graph() {
        // Compaction is a free warm start: the carried result diffs empty
        // against the dense graph and every site is reused.
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let mut gd = GraphDelta::for_graph(&old);
        gd.remove_site(SiteId(2)).unwrap();
        let (new, applied) = old.apply(&gd).unwrap();
        let (updated, _) =
            incremental_update(&base, &new, &SiteDelta::from(&applied), &cfg).unwrap();
        let (dense, remap) = new.compact_ids();
        let carried = remap_result(&updated, &remap).unwrap();
        assert_eq!(carried.local_ranks.len(), dense.n_sites());
        let (same, stats) = refresh(&carried, &dense, &dense, &cfg).unwrap();
        assert_eq!(stats.sites_recomputed, 0);
        assert_eq!(stats.sites_reused, dense.n_sites());
        assert_eq!(same.global.scores(), carried.global.scores());
        // A shape-mismatched remap is an error, not a silent misalignment.
        assert!(remap_result(&base, &remap).is_err());
    }

    #[test]
    fn under_reported_removal_is_an_explicit_error() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let mut gd = GraphDelta::for_graph(&old);
        gd.remove_site(SiteId(4)).unwrap();
        let (new, _) = old.apply(&gd).unwrap();
        // Lie: claim nothing was removed (or that the site merely changed).
        for delta in [
            SiteDelta {
                cross_links_changed: true,
                ..SiteDelta::default()
            },
            SiteDelta {
                changed_sites: vec![4],
                cross_links_changed: true,
                ..SiteDelta::default()
            },
        ] {
            let err = incremental_update(&base, &new, &delta, &cfg).unwrap_err();
            assert!(matches!(err, LmmError::InvalidModel { .. }), "{err}");
        }
    }

    #[test]
    fn diff_rejects_resurrection() {
        let old = campus();
        let mut gd = GraphDelta::for_graph(&old);
        gd.remove_page(old.docs_of_site(SiteId(0))[1]).unwrap();
        let (dead, _) = old.apply(&gd).unwrap();
        // Old had the doc live; diffing backwards would resurrect it.
        assert!(diff_sites(&dead, &old).is_err());
    }

    #[test]
    fn site_removal_works_with_stationary_site_layer() {
        let old = campus();
        let cfg = LayeredRankConfig {
            site_method: SiteLayerMethod::Stationary,
            ..LayeredRankConfig::default()
        };
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let mut gd = GraphDelta::for_graph(&old);
        gd.remove_site(SiteId(7)).unwrap();
        let (new, applied) = old.apply(&gd).unwrap();
        let (updated, _) =
            incremental_update(&base, &new, &SiteDelta::from(&applied), &cfg).unwrap();
        let full = layered_doc_rank(&new, &cfg).unwrap();
        assert!(vec_ops::l1_diff(updated.global.scores(), full.global.scores()) < 1e-7);
        let total: f64 = updated.global.scores().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn personalization_is_rejected_on_tombstoned_sites() {
        let old = campus();
        let mut gd = GraphDelta::for_graph(&old);
        gd.remove_site(SiteId(9)).unwrap();
        let (new, applied) = old.apply(&gd).unwrap();
        let mut v = vec![1.0 / old.n_sites() as f64; old.n_sites()];
        v[0] += 0.1;
        vec_ops::normalize_l1(&mut v).unwrap();
        let cfg = LayeredRankConfig {
            site_personalization: Some(v),
            ..LayeredRankConfig::default()
        };
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let err = incremental_update(&base, &new, &SiteDelta::from(&applied), &cfg).unwrap_err();
        assert!(matches!(err, LmmError::InvalidModel { .. }), "{err}");
    }

    #[test]
    fn conflicting_changed_and_grown_rejected() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let delta = SiteDelta {
            changed_sites: vec![2],
            grown_sites: vec![2],
            ..SiteDelta::default()
        };
        assert!(incremental_update(&base, &old, &delta, &cfg).is_err());
    }

    #[test]
    fn wrong_added_count_rejected() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let delta = SiteDelta {
            added_sites: 2,
            cross_links_changed: true,
            ..SiteDelta::default()
        };
        assert!(incremental_update(&base, &old, &delta, &cfg).is_err());
    }
}
