//! Incremental maintenance of the layered DocRank under graph changes —
//! including structural growth.
//!
//! The paper's Section 1.2 motivation: centralized PageRank has "a limited
//! potential of keeping up with the Web growth" because any change anywhere
//! invalidates the global computation. The layered decomposition localizes
//! change: if only site `s`'s internal pages/links changed, only `π_D(s)`
//! must be recomputed; the SiteRank is touched only when *cross-site* links
//! (or the site set itself) changed. [`incremental_update`] implements that
//! contract for three kinds of staleness:
//!
//! * **changed** sites (same membership, different intra-site links) are
//!   recomputed *warm* — the previous local vector seeds the power method;
//! * **grown** sites (new pages joined) are rebuilt *cold* — their rank
//!   dimension changed, so no previous vector fits;
//! * **added** sites (appended by a [`lmm_graph::delta::GraphDelta`]) are
//!   computed cold, and the SiteRank warm-starts from the previous vector
//!   padded with the teleport mass of the new sites.
//!
//! [`diff_sites`] derives a [`SiteDelta`] from two graph snapshots
//! (tolerating growth, rejecting shrinkage and re-partitions), and
//! [`SiteDelta::from`] converts the [`lmm_graph::delta::AppliedDelta`]
//! summary that [`lmm_graph::DocGraph::apply`] reports — the zero-diff path
//! used by the engine's `apply_delta`. The tests verify both pipelines
//! reproduce a from-scratch recomputation.

use std::sync::Arc;

use crate::error::{LmmError, Result};
use crate::siterank::{layered_doc_rank, LayeredDocRank, LayeredRankConfig, SiteLayerMethod};
use lmm_graph::delta::AppliedDelta;
use lmm_graph::docgraph::DocGraph;
use lmm_graph::ids::SiteId;
use lmm_graph::sitegraph::ranking_site_graph;
use lmm_linalg::{power_method_pool, vec_ops, StationaryOperator};
use lmm_par::ThreadPool;
use lmm_rank::pagerank::PageRank;
use lmm_rank::Ranking;

/// What changed between two versions of a document graph whose common
/// prefix of documents kept its site partition (growth appends documents
/// and sites; it never renumbers).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SiteDelta {
    /// Sites whose intra-site subgraph changed with unchanged membership
    /// (local ranks stale, warm-startable).
    pub changed_sites: Vec<usize>,
    /// Pre-existing sites that gained pages (local rank dimension changed —
    /// cold rebuild).
    pub grown_sites: Vec<usize>,
    /// Number of whole sites appended at the end of the site range.
    pub added_sites: usize,
    /// Whether any cross-site link (or the site count) changed (SiteRank
    /// stale).
    pub cross_links_changed: bool,
}

impl SiteDelta {
    /// `true` when nothing changed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.changed_sites.is_empty()
            && self.grown_sites.is_empty()
            && self.added_sites == 0
            && !self.cross_links_changed
    }
}

impl From<&AppliedDelta> for SiteDelta {
    fn from(applied: &AppliedDelta) -> Self {
        Self {
            changed_sites: applied.changed_sites.clone(),
            grown_sites: applied.grown_sites.clone(),
            added_sites: applied.added_sites,
            cross_links_changed: applied.cross_links_changed,
        }
    }
}

/// Cost accounting of one incremental update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateStats {
    /// Local DocRanks recomputed (changed + grown + added).
    pub sites_recomputed: usize,
    /// Of those, pre-existing sites rebuilt cold because they grew.
    pub sites_grown: usize,
    /// Of those, brand-new sites computed for the first time.
    pub sites_added: usize,
    /// Local DocRanks reused untouched.
    pub sites_reused: usize,
    /// Whether the SiteRank power iteration ran.
    pub site_rank_recomputed: bool,
}

/// Compares two graph snapshots and reports which layers are stale.
///
/// The new graph may have **grown**: documents appended to existing sites
/// and whole sites appended after the old range. The common document prefix
/// must keep its site partition.
///
/// # Errors
/// Returns [`LmmError::InvalidModel`] when the new graph shrank (documents
/// or sites removed — re-discovery of the web, not a recrawl), when any
/// pre-existing document moved to a different site, or when an appended
/// site is empty.
pub fn diff_sites(old: &DocGraph, new: &DocGraph) -> Result<SiteDelta> {
    if new.n_docs() < old.n_docs() || new.n_sites() < old.n_sites() {
        return Err(LmmError::InvalidModel {
            reason: format!(
                "incremental diff supports growth only: graph shrank from {}x{} \
                 to {}x{} (docs x sites)",
                old.n_docs(),
                old.n_sites(),
                new.n_docs(),
                new.n_sites()
            ),
        });
    }
    if old.site_assignments() != &new.site_assignments()[..old.n_docs()] {
        return Err(LmmError::InvalidModel {
            reason: "incremental diff needs an identical site partition over the \
                     common document prefix"
                .into(),
        });
    }
    let mut changed_sites = Vec::new();
    let mut grown_sites = Vec::new();
    for s in 0..old.n_sites() {
        if new.site_size(SiteId(s)) != old.site_size(SiteId(s)) {
            // With the prefix partition fixed, membership can only gain
            // appended documents.
            grown_sites.push(s);
        } else if old.site_subgraph(SiteId(s)) != new.site_subgraph(SiteId(s)) {
            changed_sites.push(s);
        }
    }
    let added_sites = new.n_sites() - old.n_sites();
    for s in old.n_sites()..new.n_sites() {
        if new.site_size(SiteId(s)) == 0 {
            return Err(LmmError::InvalidModel {
                reason: format!(
                    "appended site {s} ({:?}) has no documents — empty sites have \
                     no local rank distribution",
                    new.site_name(SiteId(s))
                ),
            });
        }
    }
    // Cross-site links changed iff the cross-link multisets differ (counts
    // per ordered site pair); a changed site count stales the SiteRank
    // unconditionally because its dimension changed. Intra-site count
    // changes can also stale the SiteRank, but only under self-loop
    // SiteGraphs — [`incremental_update`] handles that from the config,
    // since the delta itself is options-agnostic.
    let opts = lmm_graph::sitegraph::SiteGraphOptions::default();
    let cross_links_changed = added_sites > 0
        || ranking_site_graph(old, &opts).weights() != ranking_site_graph(new, &opts).weights();
    Ok(SiteDelta {
        changed_sites,
        grown_sites,
        added_sites,
        cross_links_changed,
    })
}

/// A [`SiteDelta`] checked and normalized against the previous result and
/// the new graph: sorted, deduplicated, bounds-validated, size-coherent.
struct ValidDelta {
    changed: Vec<usize>,
    grown: Vec<usize>,
    added_sites: usize,
    cross_links_changed: bool,
}

/// Dedups and bounds-validates a caller-supplied delta so malformed input
/// surfaces as [`LmmError::InvalidModel`] instead of a panic or — worse — a
/// silently misaligned recomposition.
fn validate_delta(
    previous: &LayeredDocRank,
    new_graph: &DocGraph,
    delta: &SiteDelta,
) -> Result<ValidDelta> {
    let n_sites = new_graph.n_sites();
    let n_old = previous.local_ranks.len();
    if previous.site_rank.len() != n_old {
        return Err(LmmError::InvalidModel {
            reason: format!(
                "previous result is inconsistent: {} local ranks but a SiteRank \
                 over {} sites",
                n_old,
                previous.site_rank.len()
            ),
        });
    }
    if n_old + delta.added_sites != n_sites {
        return Err(LmmError::InvalidModel {
            reason: format!(
                "delta reports {} added sites but the graph went from {} to {} sites",
                delta.added_sites, n_old, n_sites
            ),
        });
    }
    let normalize = |list: &[usize], label: &str| -> Result<Vec<usize>> {
        let mut sorted = list.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if let Some(&s) = sorted.iter().find(|&&s| s >= n_old) {
            return Err(LmmError::InvalidModel {
                reason: format!(
                    "delta lists {label} site {s}, but only sites 0..{n_old} pre-exist"
                ),
            });
        }
        Ok(sorted)
    };
    let changed = normalize(&delta.changed_sites, "changed")?;
    let grown = normalize(&delta.grown_sites, "grown")?;
    if let Some(&s) = changed.iter().find(|s| grown.binary_search(s).is_ok()) {
        return Err(LmmError::InvalidModel {
            reason: format!("delta lists site {s} as both changed and grown"),
        });
    }
    // Size coherence: a "changed" or untouched site must have kept its
    // size — a mismatch means the delta under-reports growth, and the
    // recomposition below would silently misalign local vectors.
    for s in 0..n_old {
        let size = new_graph.site_size(SiteId(s));
        let prev = previous.local_ranks[s].len();
        if grown.binary_search(&s).is_ok() {
            if size == 0 {
                return Err(LmmError::InvalidModel {
                    reason: format!("grown site {s} has no documents"),
                });
            }
        } else if size != prev {
            return Err(LmmError::InvalidModel {
                reason: format!(
                    "site {s} went from {prev} to {size} documents but the delta \
                     does not report it as grown"
                ),
            });
        }
    }
    for s in n_old..n_sites {
        if new_graph.site_size(SiteId(s)) == 0 {
            return Err(LmmError::InvalidModel {
                reason: format!("added site {s} has no documents"),
            });
        }
    }
    Ok(ValidDelta {
        changed,
        grown,
        added_sites: delta.added_sites,
        cross_links_changed: delta.cross_links_changed,
    })
}

/// Recomputes the SiteRank, warm-started from the previous vector. When
/// sites were appended, the previous vector is padded with each new site's
/// teleport mass (`(1-f)·v(s)` under PageRank, uniform mass under the raw
/// stationary method) and renormalized — the cheapest consistent prior for
/// a site nobody has linked long enough to rank.
fn recompute_site_rank(
    previous: &LayeredDocRank,
    new_graph: &DocGraph,
    config: &LayeredRankConfig,
) -> Result<(Ranking, lmm_linalg::ConvergenceReport)> {
    let site_graph = ranking_site_graph(new_graph, &config.site_options);
    let n_sites = new_graph.n_sites();
    let n_old = previous.site_rank.len();
    let mut warm = previous.site_rank.scores().to_vec();
    match config.site_method {
        SiteLayerMethod::PageRank => {
            for s in n_old..n_sites {
                // The caller validated the personalization vector against
                // the updated site count, so `v[s]` covers the new sites.
                let teleport = match &config.site_personalization {
                    Some(v) => v[s],
                    None => 1.0 / n_sites as f64,
                };
                warm.push((1.0 - config.site_damping) * teleport);
            }
            vec_ops::normalize_l1(&mut warm)?;
            let mut pr = PageRank::new();
            pr.damping(config.site_damping)
                .tol(config.power.tol)
                .max_iters(config.power.max_iters)
                .initial(warm);
            if let Some(v) = &config.site_personalization {
                pr.personalization(v.clone());
            }
            let result = pr.run(&site_graph.to_stochastic()?)?;
            Ok((result.ranking, result.report))
        }
        SiteLayerMethod::Stationary => {
            if config.site_personalization.is_some() {
                return Err(LmmError::InvalidModel {
                    reason: "site-layer personalization requires SiteLayerMethod::PageRank \
                             (the un-damped stationary chain has no teleport vector)"
                        .into(),
                });
            }
            warm.extend(std::iter::repeat_n(1.0 / n_sites as f64, n_sites - n_old));
            vec_ops::normalize_l1(&mut warm)?;
            let stochastic = site_graph.to_stochastic()?;
            let pool = ThreadPool::shared(config.threads);
            let op = StationaryOperator::new(stochastic.matrix(), Arc::clone(&pool))?;
            let (pi, report) = power_method_pool(&op, &warm, &config.power, &pool)?;
            Ok((Ranking::from_scores(pi)?, report))
        }
    }
}

/// Applies an incremental update: recomputes only the stale layers of
/// `previous` against `new_graph` and recomposes the global ranking.
///
/// Changed sites warm-start from the previous local vectors, so a small
/// intra-site edit converges in a handful of iterations; grown and added
/// sites are rebuilt cold. When the site set or any cross-site link
/// changed, the SiteRank reruns warm-started from the (padded) previous
/// vector.
///
/// # Errors
/// Returns [`LmmError::InvalidModel`] for a delta that is out of range,
/// inconsistent with the graphs' shapes, or under-reports growth;
/// propagates PageRank failures. Obtain a coherent `delta` from
/// [`diff_sites`] or from [`lmm_graph::DocGraph::apply`]'s summary.
pub fn incremental_update(
    previous: &LayeredDocRank,
    new_graph: &DocGraph,
    delta: &SiteDelta,
    config: &LayeredRankConfig,
) -> Result<(LayeredDocRank, UpdateStats)> {
    let delta = validate_delta(previous, new_graph, delta)?;
    let n_sites = new_graph.n_sites();
    let n_old = n_sites - delta.added_sites;
    // Personalization must fit the *new* graph: a site vector of the old
    // length (or a per-site vector of a grown site's old size) would fail
    // deep inside PageRank with an opaque message — or worse, silently
    // skew a recomposed ranking the caller believes personalized.
    if let Some(v) = &config.site_personalization {
        if v.len() != n_sites {
            return Err(LmmError::InvalidModel {
                reason: format!(
                    "site personalization has length {}, the updated graph has {} \
                     sites — supply a vector covering the added sites",
                    v.len(),
                    n_sites
                ),
            });
        }
    }
    for (&s, v) in &config.local_personalization {
        if s >= n_sites || v.len() != new_graph.site_size(SiteId(s)) {
            return Err(LmmError::InvalidModel {
                reason: format!(
                    "document personalization for site {s} has length {}, the \
                     updated graph's site has {} documents",
                    v.len(),
                    if s < n_sites {
                        new_graph.site_size(SiteId(s))
                    } else {
                        0
                    }
                ),
            });
        }
    }
    let mut stats = UpdateStats {
        sites_grown: delta.grown.len(),
        sites_added: delta.added_sites,
        ..UpdateStats::default()
    };

    // SiteRank: reuse, or recompute warm-started (padded when sites were
    // appended — the dimension changed, so reuse is impossible). Under a
    // self-loop SiteGraph, intra-site count changes also move the site
    // weights, so any changed/grown site stales the SiteRank too (the
    // warm start makes a spurious recompute converge immediately).
    let self_loops_stale = config.site_options.include_self_loops
        && !(delta.changed.is_empty() && delta.grown.is_empty());
    let (site_rank, site_report) =
        if delta.cross_links_changed || delta.added_sites > 0 || self_loops_stale {
            stats.site_rank_recomputed = true;
            recompute_site_rank(previous, new_graph, config)?
        } else {
            (previous.site_rank.clone(), previous.site_report)
        };

    // Local ranks: recompute only the stale sites, fanned across the shared
    // pool — changed sites warm, grown/added sites cold. Each solve is
    // independent and fills only its own slot, so the fan-out stays
    // deterministic at any thread count.
    let jobs: Vec<(usize, bool)> = delta
        .changed
        .iter()
        .map(|&s| (s, true))
        .chain(delta.grown.iter().map(|&s| (s, false)))
        .chain((n_old..n_sites).map(|s| (s, false)))
        .collect();
    let mut local_ranks: Vec<Option<Ranking>> =
        previous.local_ranks.iter().cloned().map(Some).collect();
    local_ranks.resize(n_sites, None);
    let mut total_local_iterations = 0usize;
    let mut max_local_iterations = 0usize;
    let pool = ThreadPool::shared(config.threads);
    let solved = pool.par_map(&jobs, |_, &(s, warm)| {
        let sub = new_graph.site_subgraph(SiteId(s));
        let mut pr = PageRank::new();
        pr.damping(config.local_damping)
            .tol(config.power.tol)
            .max_iters(config.power.max_iters);
        if warm {
            // Validated above: a changed site kept its size.
            pr.initial(previous.local_ranks[s].scores().to_vec());
        }
        if let Some(v) = config.local_personalization.get(&s) {
            pr.personalization(v.clone());
        }
        pr.run_adjacency(sub.adjacency)
    });
    for (&(s, _), result) in jobs.iter().zip(solved) {
        let result = result?;
        total_local_iterations += result.report.iterations;
        max_local_iterations = max_local_iterations.max(result.report.iterations);
        local_ranks[s] = Some(result.ranking);
    }
    stats.sites_recomputed = jobs.len();
    stats.sites_reused = n_sites - stats.sites_recomputed;

    // Recompose (O(N) — the Partition Theorem's aggregation step), with an
    // explicit size check so an inconsistent state can never silently
    // misalign scores.
    let mut scores = vec![0.0f64; new_graph.n_docs()];
    for (s, ranks) in local_ranks.iter().enumerate() {
        let ranks = ranks.as_ref().ok_or_else(|| LmmError::InvalidModel {
            reason: format!("no local rank computed or reused for site {s}"),
        })?;
        let members = new_graph.docs_of_site(SiteId(s));
        if ranks.len() != members.len() {
            return Err(LmmError::InvalidModel {
                reason: format!(
                    "local rank for site {s} covers {} documents, site has {}",
                    ranks.len(),
                    members.len()
                ),
            });
        }
        let weight = site_rank.score(s);
        for (local, doc) in members.iter().enumerate() {
            scores[doc.index()] = weight * ranks.score(local);
        }
    }
    let global = Ranking::from_scores(scores)?;
    let local_ranks: Vec<Ranking> = local_ranks.into_iter().flatten().collect();
    Ok((
        LayeredDocRank {
            site_rank,
            local_ranks,
            global,
            site_report,
            total_local_iterations,
            max_local_iterations,
        },
        stats,
    ))
}

/// Convenience: diff + update + (in debug builds) equivalence check against
/// a full recomputation.
///
/// # Errors
/// See [`diff_sites`] and [`incremental_update`].
pub fn refresh(
    previous: &LayeredDocRank,
    old_graph: &DocGraph,
    new_graph: &DocGraph,
    config: &LayeredRankConfig,
) -> Result<(LayeredDocRank, UpdateStats)> {
    let delta = diff_sites(old_graph, new_graph)?;
    if delta.is_empty() {
        return Ok((
            previous.clone(),
            UpdateStats {
                sites_reused: new_graph.n_sites(),
                ..UpdateStats::default()
            },
        ));
    }
    let (updated, stats) = incremental_update(previous, new_graph, &delta, config)?;
    debug_assert!(
        {
            let full = layered_doc_rank(new_graph, config)?;
            lmm_linalg::vec_ops::l1_diff(full.global.scores(), updated.global.scores()) < 1e-6
        },
        "incremental update diverged from full recomputation"
    );
    Ok((updated, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmm_graph::delta::GraphDelta;
    use lmm_graph::docgraph::DocGraphBuilder;
    use lmm_graph::generator::CampusWebConfig;
    use lmm_graph::DocId;
    use lmm_linalg::vec_ops;

    fn campus() -> DocGraph {
        let mut cfg = CampusWebConfig::small();
        cfg.total_docs = 600;
        cfg.n_sites = 12;
        cfg.spam_farms.clear();
        cfg.generate().unwrap()
    }

    /// Rewires one intra-site link inside `site` and returns the new graph.
    fn edit_intra_site(graph: &DocGraph, site: usize) -> DocGraph {
        let docs = graph.docs_of_site(SiteId(site));
        let (a, b, c) = (docs[0], docs[1], docs[docs.len() - 1]);
        let mut builder = DocGraphBuilder::from_graph(graph);
        builder.remove_link(a, b);
        builder.add_link(b, c).unwrap();
        builder.add_link(c, a).unwrap();
        builder.build()
    }

    #[test]
    fn diff_detects_local_change_only() {
        let old = campus();
        let new = edit_intra_site(&old, 3);
        let delta = diff_sites(&old, &new).unwrap();
        assert_eq!(delta.changed_sites, vec![3]);
        assert!(delta.grown_sites.is_empty());
        assert_eq!(delta.added_sites, 0);
        assert!(!delta.cross_links_changed);
        assert!(!delta.is_empty());
    }

    #[test]
    fn diff_detects_cross_change() {
        let old = campus();
        let src = old.docs_of_site(SiteId(2))[1];
        let dst = old.docs_of_site(SiteId(9))[0];
        let mut builder = DocGraphBuilder::from_graph(&old);
        builder.add_link(src, dst).unwrap();
        let new = builder.build();
        let delta = diff_sites(&old, &new).unwrap();
        assert!(delta.cross_links_changed);
        // The source doc's out-row changed but no intra-site subgraph did.
        assert!(delta.changed_sites.is_empty());
    }

    #[test]
    fn diff_detects_growth() {
        let old = campus();
        let mut gd = GraphDelta::for_graph(&old);
        let root = old.docs_of_site(SiteId(4))[0];
        let p = gd.add_page(SiteId(4), "http://grown.example/p").unwrap();
        gd.add_link(root, p).unwrap();
        gd.add_link(p, root).unwrap();
        let s = gd.add_site("appended.example");
        let q = gd.add_page(s, "http://appended.example/").unwrap();
        gd.add_link(q, root).unwrap();
        let (new, applied) = old.apply(&gd).unwrap();
        let delta = diff_sites(&old, &new).unwrap();
        assert_eq!(delta.grown_sites, vec![4]);
        assert_eq!(delta.added_sites, 1);
        assert!(delta.cross_links_changed);
        // The apply-time summary and the two-snapshot diff must agree.
        assert_eq!(delta, SiteDelta::from(&applied));
    }

    #[test]
    fn diff_rejects_shrinkage_and_repartition() {
        let old = campus();
        // Shrinkage: diff the other way around.
        let mut gd = GraphDelta::for_graph(&old);
        gd.add_page(SiteId(0), "http://x/p").unwrap();
        let (grown, _) = old.apply(&gd).unwrap();
        assert!(diff_sites(&grown, &old).is_err());
        // Re-partition: same doc count, one doc moved to another site.
        let mut builder = DocGraphBuilder::new();
        for d in 0..old.n_docs() {
            let doc = DocId(d);
            let site = if d == 0 {
                old.site_name(SiteId(1)).to_string()
            } else {
                old.site_name(old.site_of(doc)).to_string()
            };
            builder.add_doc(&site, old.url(doc));
        }
        let repartitioned = builder.build();
        assert!(diff_sites(&old, &repartitioned).is_err());
    }

    #[test]
    fn incremental_equals_full_recompute_local_edit() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let new = edit_intra_site(&old, 5);
        let (updated, stats) = refresh(&base, &old, &new, &cfg).unwrap();
        let full = layered_doc_rank(&new, &cfg).unwrap();
        assert!(vec_ops::l1_diff(updated.global.scores(), full.global.scores()) < 1e-8);
        assert_eq!(stats.sites_recomputed, 1);
        assert_eq!(stats.sites_reused, new.n_sites() - 1);
        assert!(!stats.site_rank_recomputed);
    }

    #[test]
    fn incremental_equals_full_recompute_cross_edit() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let src = old.docs_of_site(SiteId(1))[2];
        let dst = old.docs_of_site(SiteId(7))[0];
        let mut builder = DocGraphBuilder::from_graph(&old);
        builder.add_link(src, dst).unwrap();
        let new = builder.build();
        let (updated, stats) = refresh(&base, &old, &new, &cfg).unwrap();
        let full = layered_doc_rank(&new, &cfg).unwrap();
        assert!(vec_ops::l1_diff(updated.global.scores(), full.global.scores()) < 1e-8);
        assert!(stats.site_rank_recomputed);
        assert_eq!(stats.sites_recomputed, 0);
    }

    #[test]
    fn incremental_handles_growth_end_to_end() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let mut gd = GraphDelta::for_graph(&old);
        // Grow site 2 by two pages and append a small new site with links
        // in both directions.
        let root = old.docs_of_site(SiteId(2))[0];
        let p1 = gd.add_page(SiteId(2), "http://grown/1").unwrap();
        let p2 = gd.add_page(SiteId(2), "http://grown/2").unwrap();
        gd.add_link(root, p1).unwrap();
        gd.add_link(p1, p2).unwrap();
        gd.add_link(p2, root).unwrap();
        let s = gd.add_site("new-site.example");
        let q0 = gd.add_page(s, "http://new-site.example/").unwrap();
        let q1 = gd.add_page(s, "http://new-site.example/1").unwrap();
        gd.add_link(q0, q1).unwrap();
        gd.add_link(q1, q0).unwrap();
        gd.add_link(root, q0).unwrap();
        gd.add_link(q0, old.docs_of_site(SiteId(8))[0]).unwrap();
        let (new, applied) = old.apply(&gd).unwrap();

        let delta = SiteDelta::from(&applied);
        let (updated, stats) = incremental_update(&base, &new, &delta, &cfg).unwrap();
        let full = layered_doc_rank(&new, &cfg).unwrap();
        assert!(vec_ops::l1_diff(updated.global.scores(), full.global.scores()) < 1e-8);
        assert_eq!(stats.sites_grown, 1);
        assert_eq!(stats.sites_added, 1);
        assert_eq!(stats.sites_recomputed, 2);
        assert_eq!(stats.sites_reused, new.n_sites() - 2);
        assert!(stats.site_rank_recomputed);
        assert_eq!(updated.local_ranks.len(), new.n_sites());
        assert_eq!(updated.site_rank.len(), new.n_sites());
    }

    #[test]
    fn growth_works_with_stationary_site_layer() {
        let old = campus();
        let cfg = LayeredRankConfig {
            site_method: SiteLayerMethod::Stationary,
            ..LayeredRankConfig::default()
        };
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let mut gd = GraphDelta::for_graph(&old);
        let s = gd.add_site("stationary-new.example");
        let q = gd.add_page(s, "http://stationary-new.example/").unwrap();
        let root = old.docs_of_site(SiteId(0))[0];
        gd.add_link(root, q).unwrap();
        gd.add_link(q, root).unwrap();
        let (new, applied) = old.apply(&gd).unwrap();
        let (updated, _) =
            incremental_update(&base, &new, &SiteDelta::from(&applied), &cfg).unwrap();
        let full = layered_doc_rank(&new, &cfg).unwrap();
        assert!(vec_ops::l1_diff(updated.global.scores(), full.global.scores()) < 1e-7);
    }

    #[test]
    fn no_change_reuses_everything() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let (same, stats) = refresh(&base, &old, &old.clone(), &cfg).unwrap();
        assert_eq!(same.global.scores(), base.global.scores());
        assert_eq!(stats.sites_recomputed, 0);
        assert_eq!(stats.sites_reused, old.n_sites());
        assert!(!stats.site_rank_recomputed);
    }

    #[test]
    fn warm_start_converges_quickly() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let new = edit_intra_site(&old, 5);
        let delta = diff_sites(&old, &new).unwrap();
        let (updated, _) = incremental_update(&base, &new, &delta, &cfg).unwrap();
        // The single changed site should converge from the warm start in
        // far fewer iterations than the cold full pipeline's worst site.
        assert!(updated.max_local_iterations <= base.max_local_iterations);
        let _ = DocId(0);
    }

    #[test]
    fn duplicate_delta_entries_are_deduped() {
        // Regression: duplicate entries used to inflate `sites_recomputed`
        // past `n_sites`, underflowing the `sites_reused` subtraction.
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let new = edit_intra_site(&old, 5);
        let delta = SiteDelta {
            changed_sites: vec![5, 5, 5, 5],
            ..SiteDelta::default()
        };
        let (updated, stats) = incremental_update(&base, &new, &delta, &cfg).unwrap();
        assert_eq!(stats.sites_recomputed, 1);
        assert_eq!(stats.sites_reused, new.n_sites() - 1);
        let full = layered_doc_rank(&new, &cfg).unwrap();
        assert!(vec_ops::l1_diff(updated.global.scores(), full.global.scores()) < 1e-8);
    }

    #[test]
    fn out_of_range_delta_is_an_error_not_a_panic() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let delta = SiteDelta {
            changed_sites: vec![0, old.n_sites() + 3],
            ..SiteDelta::default()
        };
        let err = incremental_update(&base, &old, &delta, &cfg).unwrap_err();
        assert!(matches!(err, LmmError::InvalidModel { .. }));
    }

    #[test]
    fn under_reported_growth_is_an_explicit_error() {
        // Regression: a size mismatch used to silently skip the warm start
        // while the recomposition still assumed the old dimensions.
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let mut gd = GraphDelta::for_graph(&old);
        let root = old.docs_of_site(SiteId(3))[0];
        let p = gd.add_page(SiteId(3), "http://grown/x").unwrap();
        gd.add_link(root, p).unwrap();
        let (new, _) = old.apply(&gd).unwrap();
        // Lie: claim site 3 merely "changed" (or say nothing at all).
        for delta in [
            SiteDelta {
                changed_sites: vec![3],
                ..SiteDelta::default()
            },
            SiteDelta::default(),
        ] {
            let err = incremental_update(&base, &new, &delta, &cfg).unwrap_err();
            assert!(matches!(err, LmmError::InvalidModel { .. }), "{err}");
        }
    }

    #[test]
    fn self_loop_site_graph_stays_fresh_under_intra_edits() {
        // Regression: with include_self_loops the SiteRank depends on
        // intra-site link *counts*, so an intra edit that changes a count
        // must recompute it — reusing the old vector serves stale ranks.
        let old = campus();
        let cfg = LayeredRankConfig {
            site_options: lmm_graph::sitegraph::SiteGraphOptions {
                include_self_loops: true,
                ..Default::default()
            },
            ..LayeredRankConfig::default()
        };
        let base = layered_doc_rank(&old, &cfg).unwrap();
        // Add a brand-new intra-site link (count +1, not a rewire): find a
        // doc pair inside site 4 that the generator did not already link.
        let docs = old.docs_of_site(SiteId(4));
        let adj = old.adjacency();
        let (a, b) = docs
            .iter()
            .flat_map(|&a| docs.iter().map(move |&b| (a, b)))
            .find(|&(a, b)| a != b && adj.get(a.index(), b.index()) == 0.0)
            .expect("site 4 is not a complete digraph");
        let mut gd = GraphDelta::for_graph(&old);
        gd.add_link(a, b).unwrap();
        let (new, applied) = old.apply(&gd).unwrap();
        assert_eq!(applied.changed_sites, vec![4]);
        assert!(!applied.cross_links_changed);
        let (updated, stats) =
            incremental_update(&base, &new, &SiteDelta::from(&applied), &cfg).unwrap();
        assert!(stats.site_rank_recomputed);
        let full = layered_doc_rank(&new, &cfg).unwrap();
        assert!(vec_ops::l1_diff(updated.global.scores(), full.global.scores()) < 1e-8);
    }

    #[test]
    fn personalization_must_cover_the_grown_graph() {
        let old = campus();
        let mut gd = GraphDelta::for_graph(&old);
        let s = gd.add_site("personalized-new.example");
        let q = gd.add_page(s, "http://personalized-new.example/").unwrap();
        let root = old.docs_of_site(SiteId(0))[0];
        gd.add_link(root, q).unwrap();
        gd.add_link(q, root).unwrap();
        let (new, applied) = old.apply(&gd).unwrap();
        let delta = SiteDelta::from(&applied);

        // Stale vector (old site count): a clear error, not a deep rank
        // failure or a silently skewed recomposition.
        let mut stale = vec![1.0 / old.n_sites() as f64; old.n_sites()];
        stale[3] += 0.1;
        vec_ops::normalize_l1(&mut stale).unwrap();
        let stale_cfg = LayeredRankConfig {
            site_personalization: Some(stale),
            ..LayeredRankConfig::default()
        };
        let base = layered_doc_rank(&old, &stale_cfg).unwrap();
        let err = incremental_update(&base, &new, &delta, &stale_cfg).unwrap_err();
        assert!(matches!(err, LmmError::InvalidModel { .. }), "{err}");

        // An updated vector covering the added site flows through and
        // matches a scratch run under the same configuration.
        let mut v = vec![1.0 / new.n_sites() as f64; new.n_sites()];
        v[3] += 0.1;
        vec_ops::normalize_l1(&mut v).unwrap();
        let new_cfg = LayeredRankConfig {
            site_personalization: Some(v),
            ..LayeredRankConfig::default()
        };
        let (updated, _) = incremental_update(&base, &new, &delta, &new_cfg).unwrap();
        let full = layered_doc_rank(&new, &new_cfg).unwrap();
        assert!(vec_ops::l1_diff(updated.global.scores(), full.global.scores()) < 1e-7);

        // A stale per-site document vector on a grown site errors too.
        let mut gd = GraphDelta::for_graph(&old);
        let p = gd.add_page(SiteId(2), "http://grown-doc/").unwrap();
        gd.add_link(root, p).unwrap();
        let (grown, applied) = old.apply(&gd).unwrap();
        let mut local_cfg = LayeredRankConfig::default();
        let size = old.site_size(SiteId(2));
        let mut lv = vec![0.0; size];
        lv[0] = 1.0;
        local_cfg.local_personalization.insert(2, lv);
        let base = layered_doc_rank(&old, &local_cfg).unwrap();
        let err =
            incremental_update(&base, &grown, &SiteDelta::from(&applied), &local_cfg).unwrap_err();
        assert!(matches!(err, LmmError::InvalidModel { .. }), "{err}");
    }

    #[test]
    fn conflicting_changed_and_grown_rejected() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let delta = SiteDelta {
            changed_sites: vec![2],
            grown_sites: vec![2],
            ..SiteDelta::default()
        };
        assert!(incremental_update(&base, &old, &delta, &cfg).is_err());
    }

    #[test]
    fn wrong_added_count_rejected() {
        let old = campus();
        let cfg = LayeredRankConfig::default();
        let base = layered_doc_rank(&old, &cfg).unwrap();
        let delta = SiteDelta {
            added_sites: 2,
            cross_links_changed: true,
            ..SiteDelta::default()
        };
        assert!(incremental_update(&base, &old, &delta, &cfg).is_err());
    }
}
