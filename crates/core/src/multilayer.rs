//! Multi-layer extension of the Layered Markov Model.
//!
//! The paper analyzes a two-layer model but notes that "the analysis can be
//! extended to multi-layer models using similar reasoning" (Section 2.2).
//! This module implements that extension: an arbitrary-depth hierarchy
//! whose leaves carry sub-state transition matrices and whose internal
//! nodes carry transition matrices over their children.
//!
//! Ranking generalizes Approach 4 recursively:
//!
//! * a **leaf**'s local ranking is its gatekeeper distribution (PageRank at
//!   mixing factor `α`, as in Section 2.3.2);
//! * a **non-root internal** node's local ranking composes the PageRank of
//!   its child-transition matrix with its children's local rankings — the
//!   gatekeeper construction applied one level up;
//! * the **root** composes its children with either the raw stationary
//!   vector of its transition matrix (the Layered Method; requires
//!   primitivity) or its PageRank (the maximal-irreducibility variant).
//!
//! A two-level hierarchy with [`TopLevelMethod::Stationary`] reproduces the
//! two-layer Approach 4 exactly (verified in the tests).

use crate::error::{LmmError, Result};
use crate::model::LayeredMarkovModel;
use lmm_linalg::{power::stationary_distribution, structure, PowerOptions, StochasticMatrix};
use lmm_rank::gatekeeper::gatekeeper_distribution;
use lmm_rank::pagerank::PageRank;
use lmm_rank::Ranking;

/// A node of the layered hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub enum HierarchyNode {
    /// A leaf phase: sub-states with their transition matrix.
    Leaf {
        /// Sub-state transition matrix.
        transition: StochasticMatrix,
    },
    /// An internal grouping: a transition matrix over the children.
    Internal {
        /// Transition matrix over the children (dimension = number of
        /// children).
        transition: StochasticMatrix,
        /// The grouped sub-models.
        children: Vec<HierarchyNode>,
    },
}

impl HierarchyNode {
    /// Total number of leaf-level states in this subtree.
    #[must_use]
    pub fn total_states(&self) -> usize {
        match self {
            HierarchyNode::Leaf { transition } => transition.n(),
            HierarchyNode::Internal { children, .. } => {
                children.iter().map(HierarchyNode::total_states).sum()
            }
        }
    }

    /// Depth of the subtree (a leaf has depth 1).
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            HierarchyNode::Leaf { .. } => 1,
            HierarchyNode::Internal { children, .. } => {
                1 + children.iter().map(HierarchyNode::depth).max().unwrap_or(0)
            }
        }
    }

    fn validate(&self) -> Result<()> {
        match self {
            HierarchyNode::Leaf { transition } => {
                if transition.n() == 0 {
                    return Err(LmmError::InvalidModel {
                        reason: "leaf with zero sub-states".into(),
                    });
                }
                Ok(())
            }
            HierarchyNode::Internal {
                transition,
                children,
            } => {
                if children.is_empty() {
                    return Err(LmmError::InvalidModel {
                        reason: "internal node without children".into(),
                    });
                }
                if transition.n() != children.len() {
                    return Err(LmmError::InvalidModel {
                        reason: format!(
                            "internal transition is {}x{} over {} children",
                            transition.n(),
                            transition.n(),
                            children.len()
                        ),
                    });
                }
                children.iter().try_for_each(HierarchyNode::validate)
            }
        }
    }
}

/// How the root layer's weighting vector is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopLevelMethod {
    /// Raw stationary distribution of the root transition matrix — the
    /// multi-layer Layered Method (Approach 4). Requires primitivity.
    #[default]
    Stationary,
    /// PageRank of the root transition matrix (Approach 3's flavor).
    PageRank,
}

/// An arbitrary-depth layered model.
///
/// # Example
/// ```
/// use lmm_core::multilayer::{HierarchicalModel, HierarchyNode, TopLevelMethod};
/// use lmm_linalg::{DenseMatrix, StochasticMatrix};
///
/// # fn main() -> Result<(), lmm_core::LmmError> {
/// let leaf = |rows: &[Vec<f64>]| -> Result<HierarchyNode, lmm_core::LmmError> {
///     Ok(HierarchyNode::Leaf {
///         transition: StochasticMatrix::new(DenseMatrix::from_rows(rows)?.to_csr())?,
///     })
/// };
/// let root = HierarchyNode::Internal {
///     transition: StochasticMatrix::new(
///         DenseMatrix::from_rows(&[vec![0.3, 0.7], vec![0.6, 0.4]])?.to_csr(),
///     )?,
///     children: vec![
///         leaf(&[vec![0.5, 0.5], vec![0.2, 0.8]])?,
///         leaf(&[vec![0.1, 0.9], vec![0.9, 0.1]])?,
///     ],
/// };
/// let model = HierarchicalModel::new(root)?;
/// let ranking = model.rank(0.85, TopLevelMethod::Stationary)?;
/// assert_eq!(ranking.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalModel {
    root: HierarchyNode,
    power: PowerOptions,
    /// Worker threads for the fan-out over the root's children (`0` = one
    /// per available core). Each child's local ranking is computed
    /// serially in its own slot, so the composed ranking is identical for
    /// every value.
    threads: usize,
}

impl HierarchicalModel {
    /// Validates and wraps a hierarchy.
    ///
    /// # Errors
    /// Returns [`LmmError::InvalidModel`] for structural inconsistencies.
    pub fn new(root: HierarchyNode) -> Result<Self> {
        root.validate()?;
        Ok(Self {
            root,
            power: PowerOptions::with_tol(1e-12),
            threads: 0,
        })
    }

    /// Overrides the power-method options used by every layer.
    #[must_use]
    pub fn with_power_options(mut self, power: PowerOptions) -> Self {
        self.power = power;
        self
    }

    /// Sets the worker-thread count for the per-child fan-out (`0` = one
    /// per available core, the default; the ranking is identical for
    /// every value).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The hierarchy root.
    #[must_use]
    pub fn root(&self) -> &HierarchyNode {
        &self.root
    }

    /// Total number of leaf states.
    #[must_use]
    pub fn total_states(&self) -> usize {
        self.root.total_states()
    }

    /// Number of layers (a flat chain is depth 1, the paper's model is
    /// depth 2).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Computes the global ranking over all leaf states.
    ///
    /// # Errors
    /// * [`LmmError::PhaseMatrixNotPrimitive`] when the root matrix is not
    ///   primitive and `method` is [`TopLevelMethod::Stationary`];
    /// * propagated PageRank/power-method failures elsewhere.
    pub fn rank(&self, alpha: f64, method: TopLevelMethod) -> Result<Ranking> {
        let weights = match (&self.root, method) {
            (HierarchyNode::Leaf { transition }, _) => {
                // A flat chain: its "ranking" is the gatekeeper distribution
                // itself.
                return Ok(
                    gatekeeper_distribution(transition, alpha, None, &self.power)?.distribution,
                );
            }
            (HierarchyNode::Internal { transition, .. }, TopLevelMethod::Stationary) => {
                let report = structure::analyze(transition.matrix())?;
                if !report.primitive {
                    return Err(LmmError::PhaseMatrixNotPrimitive {
                        components: report.components,
                        period: report.period.unwrap_or(0),
                    });
                }
                stationary_distribution(transition.matrix(), &self.power)?.0
            }
            (HierarchyNode::Internal { transition, .. }, TopLevelMethod::PageRank) => {
                let mut pr = PageRank::new();
                pr.damping(alpha)
                    .tol(self.power.tol)
                    .max_iters(self.power.max_iters);
                pr.run(transition)?.ranking.into_scores()
            }
        };
        let HierarchyNode::Internal { children, .. } = &self.root else {
            unreachable!("leaf case returned above")
        };
        // The children's local rankings are independent — fan them across
        // the pool and concatenate in child order.
        let pool = lmm_par::ThreadPool::shared(self.threads);
        let locals = pool.par_map(children, |_, child| local_rank(child, alpha, &self.power));
        let mut scores = Vec::with_capacity(self.total_states());
        for (local, &w) in locals.into_iter().zip(&weights) {
            let local = local?;
            scores.extend(local.scores().iter().map(|&p| w * p));
        }
        Ok(Ranking::from_scores(scores)?)
    }
}

/// Local ranking of a non-root subtree: gatekeeper (PageRank) weighting at
/// every internal level, gatekeeper distributions at the leaves.
fn local_rank(node: &HierarchyNode, alpha: f64, power: &PowerOptions) -> Result<Ranking> {
    match node {
        HierarchyNode::Leaf { transition } => {
            Ok(gatekeeper_distribution(transition, alpha, None, power)?.distribution)
        }
        HierarchyNode::Internal {
            transition,
            children,
        } => {
            let mut pr = PageRank::new();
            pr.damping(alpha).tol(power.tol).max_iters(power.max_iters);
            let weights = pr.run(transition)?.ranking;
            let mut scores = Vec::with_capacity(node.total_states());
            for (child, &w) in children.iter().zip(weights.scores()) {
                let local = local_rank(child, alpha, power)?;
                scores.extend(local.scores().iter().map(|&p| w * p));
            }
            Ok(Ranking::from_scores(scores)?)
        }
    }
}

/// Converts a two-layer [`LayeredMarkovModel`] into the equivalent
/// two-level hierarchy.
#[must_use]
pub fn from_two_layer(model: &LayeredMarkovModel) -> HierarchicalModel {
    let children = model
        .phases()
        .iter()
        .map(|p| HierarchyNode::Leaf {
            transition: p.transition().clone(),
        })
        .collect();
    HierarchicalModel {
        root: HierarchyNode::Internal {
            transition: model.phase_matrix().clone(),
            children,
        },
        power: PowerOptions::with_tol(1e-12),
        threads: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::random_model;
    use crate::worked_example;
    use lmm_linalg::{vec_ops, DenseMatrix};

    fn leaf(rows: &[Vec<f64>]) -> HierarchyNode {
        HierarchyNode::Leaf {
            transition: StochasticMatrix::new(DenseMatrix::from_rows(rows).unwrap().to_csr())
                .unwrap(),
        }
    }

    fn internal(rows: &[Vec<f64>], children: Vec<HierarchyNode>) -> HierarchyNode {
        HierarchyNode::Internal {
            transition: StochasticMatrix::new(DenseMatrix::from_rows(rows).unwrap().to_csr())
                .unwrap(),
            children,
        }
    }

    #[test]
    fn two_level_matches_layered_method() {
        // The multi-layer generalization must agree with Approach 4 on
        // two-layer models.
        for seed in [3, 17, 99] {
            let m = random_model(4, 2, 5, seed);
            let expected = m.layered_method(0.85).unwrap();
            let hier = from_two_layer(&m);
            let got = hier.rank(0.85, TopLevelMethod::Stationary).unwrap();
            assert!(
                vec_ops::linf_diff(expected.scores(), got.scores()) < 1e-9,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn paper_model_through_hierarchy() {
        let m = worked_example::paper_model().unwrap();
        let hier = from_two_layer(&m);
        let got = hier.rank(0.85, TopLevelMethod::Stationary).unwrap();
        for (g, e) in got.scores().iter().zip(worked_example::PAPER_PI_W_TILDE) {
            assert!((g - e).abs() < 7e-4);
        }
    }

    #[test]
    fn three_level_hierarchy_ranks() {
        let group_a = internal(
            &[vec![0.4, 0.6], vec![0.7, 0.3]],
            vec![
                leaf(&[vec![0.5, 0.5], vec![0.2, 0.8]]),
                leaf(&[vec![0.1, 0.9], vec![0.9, 0.1]]),
            ],
        );
        let group_b = leaf(&[
            vec![0.3, 0.3, 0.4],
            vec![0.2, 0.6, 0.2],
            vec![0.5, 0.25, 0.25],
        ]);
        let root = internal(&[vec![0.2, 0.8], vec![0.5, 0.5]], vec![group_a, group_b]);
        let model = HierarchicalModel::new(root).unwrap();
        assert_eq!(model.depth(), 3);
        assert_eq!(model.total_states(), 7);
        let r = model.rank(0.85, TopLevelMethod::Stationary).unwrap();
        assert_eq!(r.len(), 7);
        assert!((r.scores().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flat_leaf_model_is_gatekeeper_distribution() {
        let model = HierarchicalModel::new(leaf(&[vec![0.5, 0.5], vec![0.9, 0.1]])).unwrap();
        assert_eq!(model.depth(), 1);
        let r = model.rank(0.85, TopLevelMethod::Stationary).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.score(0) > r.score(1));
    }

    #[test]
    fn structural_validation() {
        // Internal with mismatched transition size.
        let bad = internal(&[vec![0.5, 0.5], vec![0.5, 0.5]], vec![leaf(&[vec![1.0]])]);
        assert!(HierarchicalModel::new(bad).is_err());
        // Internal without children.
        let bad = internal(&[vec![1.0]], vec![]);
        assert!(HierarchicalModel::new(bad).is_err());
    }

    #[test]
    fn non_primitive_root_rejected_for_stationary() {
        let root = internal(
            &[vec![0.0, 1.0], vec![1.0, 0.0]],
            vec![leaf(&[vec![1.0]]), leaf(&[vec![1.0]])],
        );
        let model = HierarchicalModel::new(root).unwrap();
        assert!(matches!(
            model.rank(0.85, TopLevelMethod::Stationary),
            Err(LmmError::PhaseMatrixNotPrimitive { .. })
        ));
        // PageRank at the root handles it.
        assert!(model.rank(0.85, TopLevelMethod::PageRank).is_ok());
    }

    #[test]
    fn pagerank_top_level_matches_approach3_on_two_layer() {
        let m = random_model(3, 2, 4, 5);
        let expected = m.layered_with_pagerank_site(0.85).unwrap();
        let hier = from_two_layer(&m);
        let got = hier.rank(0.85, TopLevelMethod::PageRank).unwrap();
        assert!(vec_ops::linf_diff(expected.scores(), got.scores()) < 1e-9);
    }
}
