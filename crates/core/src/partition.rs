//! Numerical verification of the Partition Theorem (Theorem 2).
//!
//! The theorem asserts that the decentralized Layered Method (Approach 4)
//! produces *exactly* the stationary distribution of the global chain `W`
//! (Approach 2) whenever `Y` is primitive. [`verify_partition_theorem`]
//! computes both sides and reports the discrepancy — used by the test
//! suite (on random models), the experiment harness (E5) and the examples.

use crate::approaches::{compute, LmmParams, RankApproach};
use crate::error::Result;
use crate::model::LayeredMarkovModel;
use lmm_linalg::vec_ops;

/// Outcome of one Partition-Theorem check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionCheck {
    /// `max_i |π_A2(i) − π_A4(i)|`.
    pub linf: f64,
    /// `Σ_i |π_A2(i) − π_A4(i)|`.
    pub l1: f64,
    /// Whether both approaches rank every state identically.
    pub same_order: bool,
    /// Power iterations the centralized global chain needed.
    pub central_iterations: usize,
    /// Power iterations the layered phase chain needed (the per-phase
    /// gatekeeper iterations are independent of this count).
    pub layered_iterations: usize,
    /// Number of global states compared.
    pub states: usize,
}

impl std::fmt::Display for PartitionCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|A2 - A4|_inf = {:.3e}, |.|_1 = {:.3e}, same order: {} ({} states; {} vs {} iterations)",
            self.linf, self.l1, self.same_order, self.states,
            self.central_iterations, self.layered_iterations
        )
    }
}

/// Computes Approach 2 and Approach 4 on `model` and compares them.
///
/// # Errors
/// Propagates computation failures, including
/// [`LmmError::PhaseMatrixNotPrimitive`](crate::LmmError::PhaseMatrixNotPrimitive)
/// when `Y` violates the theorem's precondition.
pub fn verify_partition_theorem(
    model: &LayeredMarkovModel,
    params: &LmmParams,
) -> Result<PartitionCheck> {
    let central = compute(model, RankApproach::StationaryOfGlobal, params)?;
    let layered = compute(model, RankApproach::Layered, params)?;
    Ok(PartitionCheck {
        linf: vec_ops::linf_diff(central.scores(), layered.scores()),
        l1: vec_ops::l1_diff(central.scores(), layered.scores()),
        same_order: central.order_states() == layered.order_states(),
        central_iterations: central.report.iterations,
        layered_iterations: layered.report.iterations,
        states: central.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::random_model;

    #[test]
    fn holds_on_random_models() {
        for seed in 0..8 {
            let model = random_model(4, 2, 7, seed);
            let check = verify_partition_theorem(&model, &LmmParams::default()).unwrap();
            assert!(check.linf < 1e-9, "seed {seed}: {check}");
            assert!(check.same_order, "seed {seed}: order diverged");
        }
    }

    #[test]
    fn holds_for_various_alphas() {
        let model = random_model(5, 3, 6, 99);
        for alpha in [0.3, 0.5, 0.85, 0.99] {
            let check = verify_partition_theorem(&model, &LmmParams::with_factor(alpha)).unwrap();
            assert!(check.linf < 1e-9, "alpha {alpha}: {check}");
        }
    }

    #[test]
    fn display_mentions_norms() {
        let model = random_model(3, 2, 4, 1);
        let check = verify_partition_theorem(&model, &LmmParams::default()).unwrap();
        let s = check.to_string();
        assert!(s.contains("A2 - A4"));
        assert!(s.contains("same order"));
    }
}
