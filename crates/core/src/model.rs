//! The Layered Markov Model structure (Definition 1).

use crate::error::{LmmError, Result};
use lmm_linalg::{vec_ops, StochasticMatrix};

/// A global system state `(I, i)`: sub-state `i` of phase `I`
/// (the paper writes e.g. `(2,3)` for sub-state 3 of phase 2, 1-based; this
/// type is 0-based like everything else in the workspace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalState {
    /// Phase (site) index.
    pub phase: usize,
    /// Sub-state (document) index within the phase.
    pub sub: usize,
}

impl GlobalState {
    /// Creates a global state.
    #[must_use]
    pub fn new(phase: usize, sub: usize) -> Self {
        Self { phase, sub }
    }
}

impl std::fmt::Display for GlobalState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Match the paper's 1-based (phase, sub-state) notation for easy
        // cross-checking against Figure 2.
        write!(f, "({},{})", self.phase + 1, self.sub + 1)
    }
}

/// One phase `P_I` of the model: its sub-state transition matrix `U_I` and
/// initial distribution `v_U^I`.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseModel {
    u: StochasticMatrix,
    vu: Vec<f64>,
}

impl PhaseModel {
    /// Wraps a sub-state transition matrix with an optional initial
    /// distribution (uniform when `None`).
    ///
    /// # Errors
    /// Returns [`LmmError::InvalidModel`] when the phase has no sub-states
    /// or `vu` is not a distribution of matching length.
    pub fn new(u: StochasticMatrix, vu: Option<Vec<f64>>) -> Result<Self> {
        let n = u.n();
        if n == 0 {
            return Err(LmmError::InvalidModel {
                reason: "phase must have at least one sub-state".into(),
            });
        }
        let vu = match vu {
            Some(v) => {
                if v.len() != n {
                    return Err(LmmError::InvalidModel {
                        reason: format!(
                            "initial distribution has length {}, phase has {n} sub-states",
                            v.len()
                        ),
                    });
                }
                vec_ops::check_distribution(&v, 1e-6).map_err(|e| LmmError::InvalidModel {
                    reason: format!("initial distribution invalid: {e}"),
                })?;
                v
            }
            None => vec_ops::uniform(n),
        };
        Ok(Self { u, vu })
    }

    /// Number of sub-states `n_I`.
    #[must_use]
    pub fn n_substates(&self) -> usize {
        self.u.n()
    }

    /// The sub-state transition matrix `U_I`.
    #[must_use]
    pub fn transition(&self) -> &StochasticMatrix {
        &self.u
    }

    /// The initial sub-state distribution `v_U^I` (used as the gatekeeper's
    /// out-row in the minimal-irreducibility construction).
    #[must_use]
    pub fn initial(&self) -> &[f64] {
        &self.vu
    }
}

/// A two-layer Layered Markov Model `LMM = (P, Y, vY, O, U, vU)`
/// (Definition 1).
///
/// Use the high-level ranking methods ([`layered_method`],
/// [`stationary_of_global`], ...) or the lower-level functions in
/// [`crate::approaches`] and [`crate::global`].
///
/// [`layered_method`]: LayeredMarkovModel::layered_method
/// [`stationary_of_global`]: LayeredMarkovModel::stationary_of_global
#[derive(Debug, Clone, PartialEq)]
pub struct LayeredMarkovModel {
    y: StochasticMatrix,
    vy: Vec<f64>,
    phases: Vec<PhaseModel>,
    /// Prefix sums of phase sizes: global index of `(I, i)` is
    /// `offsets[I] + i`; `offsets[n_phases]` is the total state count.
    offsets: Vec<usize>,
}

impl LayeredMarkovModel {
    /// Assembles a model from the phase-layer matrix `Y`, an optional phase
    /// initial distribution `vY` (uniform when `None`) and the per-phase
    /// sub-models.
    ///
    /// # Errors
    /// Returns [`LmmError::InvalidModel`] when there are no phases, when
    /// `Y`'s dimension differs from the number of phases, or when `vy` is
    /// not a distribution of matching length.
    pub fn new(y: StochasticMatrix, vy: Option<Vec<f64>>, phases: Vec<PhaseModel>) -> Result<Self> {
        if phases.is_empty() {
            return Err(LmmError::InvalidModel {
                reason: "model must have at least one phase".into(),
            });
        }
        if y.n() != phases.len() {
            return Err(LmmError::InvalidModel {
                reason: format!(
                    "phase matrix Y is {}x{} but there are {} phases",
                    y.n(),
                    y.n(),
                    phases.len()
                ),
            });
        }
        let vy = match vy {
            Some(v) => {
                if v.len() != phases.len() {
                    return Err(LmmError::InvalidModel {
                        reason: format!(
                            "vY has length {}, model has {} phases",
                            v.len(),
                            phases.len()
                        ),
                    });
                }
                vec_ops::check_distribution(&v, 1e-6).map_err(|e| LmmError::InvalidModel {
                    reason: format!("vY invalid: {e}"),
                })?;
                v
            }
            None => vec_ops::uniform(phases.len()),
        };
        let mut offsets = Vec::with_capacity(phases.len() + 1);
        offsets.push(0);
        for p in &phases {
            offsets.push(offsets.last().expect("non-empty") + p.n_substates());
        }
        Ok(Self {
            y,
            vy,
            phases,
            offsets,
        })
    }

    /// Number of phases `N_P`.
    #[must_use]
    pub fn n_phases(&self) -> usize {
        self.phases.len()
    }

    /// Total number of global system states `N_P = Σ_I n_I`.
    #[must_use]
    pub fn total_states(&self) -> usize {
        *self.offsets.last().expect("offsets non-empty")
    }

    /// The phase-layer transition matrix `Y`.
    #[must_use]
    pub fn phase_matrix(&self) -> &StochasticMatrix {
        &self.y
    }

    /// The phase-layer initial distribution `v_Y`.
    #[must_use]
    pub fn phase_initial(&self) -> &[f64] {
        &self.vy
    }

    /// The phases in index order.
    #[must_use]
    pub fn phases(&self) -> &[PhaseModel] {
        &self.phases
    }

    /// One phase.
    ///
    /// # Errors
    /// Returns [`LmmError::PhaseOutOfRange`] for a bad index.
    pub fn phase(&self, index: usize) -> Result<&PhaseModel> {
        self.phases.get(index).ok_or(LmmError::PhaseOutOfRange {
            phase: index,
            n_phases: self.phases.len(),
        })
    }

    /// Flat index of a global state, ordered by phase then sub-state — the
    /// ordering the paper uses for `W` and the rank vectors.
    ///
    /// # Panics
    /// Panics if the state is out of range; states obtained from
    /// [`state_of`](Self::state_of) are always valid.
    #[must_use]
    pub fn state_index(&self, state: GlobalState) -> usize {
        assert!(state.phase < self.phases.len(), "phase out of range");
        assert!(
            state.sub < self.phases[state.phase].n_substates(),
            "sub-state out of range"
        );
        self.offsets[state.phase] + state.sub
    }

    /// Inverse of [`state_index`](Self::state_index).
    ///
    /// # Panics
    /// Panics if `index >= total_states()`.
    #[must_use]
    pub fn state_of(&self, index: usize) -> GlobalState {
        assert!(index < self.total_states(), "state index out of range");
        // offsets is sorted; find the phase whose range contains index.
        let phase = self.offsets.partition_point(|&o| o <= index) - 1;
        GlobalState {
            phase,
            sub: index - self.offsets[phase],
        }
    }

    /// All global states in index order.
    #[must_use]
    pub fn states(&self) -> Vec<GlobalState> {
        (0..self.total_states()).map(|i| self.state_of(i)).collect()
    }

    /// Prefix-sum offsets (`offsets[I]` = flat index of `(I, 0)`).
    #[must_use]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmm_linalg::DenseMatrix;

    fn stochastic(rows: &[Vec<f64>]) -> StochasticMatrix {
        StochasticMatrix::new(DenseMatrix::from_rows(rows).unwrap().to_csr()).unwrap()
    }

    fn tiny_model() -> LayeredMarkovModel {
        let y = stochastic(&[vec![0.5, 0.5], vec![0.3, 0.7]]);
        let p0 = PhaseModel::new(stochastic(&[vec![0.0, 1.0], vec![1.0, 0.0]]), None).unwrap();
        let p1 = PhaseModel::new(
            stochastic(&[
                vec![0.2, 0.3, 0.5],
                vec![0.1, 0.8, 0.1],
                vec![0.4, 0.4, 0.2],
            ]),
            None,
        )
        .unwrap();
        LayeredMarkovModel::new(y, None, vec![p0, p1]).unwrap()
    }

    #[test]
    fn structure_accessors() {
        let m = tiny_model();
        assert_eq!(m.n_phases(), 2);
        assert_eq!(m.total_states(), 5);
        assert_eq!(m.offsets(), &[0, 2, 5]);
        assert_eq!(m.phase(0).unwrap().n_substates(), 2);
        assert_eq!(m.phase(1).unwrap().n_substates(), 3);
        assert!(matches!(
            m.phase(9),
            Err(LmmError::PhaseOutOfRange { phase: 9, .. })
        ));
    }

    #[test]
    fn state_index_roundtrip() {
        let m = tiny_model();
        for idx in 0..m.total_states() {
            let s = m.state_of(idx);
            assert_eq!(m.state_index(s), idx);
        }
        assert_eq!(m.state_index(GlobalState::new(1, 0)), 2);
        assert_eq!(m.state_of(4), GlobalState::new(1, 2));
    }

    #[test]
    fn states_enumeration_ordered() {
        let m = tiny_model();
        let states = m.states();
        assert_eq!(states.len(), 5);
        assert_eq!(states[0], GlobalState::new(0, 0));
        assert_eq!(states[4], GlobalState::new(1, 2));
        assert!(states.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn display_matches_paper_notation() {
        // The paper's state "(2,3)" is 0-based (1,2).
        assert_eq!(GlobalState::new(1, 2).to_string(), "(2,3)");
    }

    #[test]
    fn default_initial_distributions_are_uniform() {
        let m = tiny_model();
        assert_eq!(m.phase_initial(), &[0.5, 0.5]);
        assert_eq!(m.phase(1).unwrap().initial(), &[1.0 / 3.0; 3]);
    }

    #[test]
    fn dimension_validation() {
        let y = stochastic(&[vec![0.5, 0.5], vec![0.3, 0.7]]);
        let p = PhaseModel::new(stochastic(&[vec![1.0]]), None).unwrap();
        // One phase but Y is 2x2.
        assert!(matches!(
            LayeredMarkovModel::new(y, None, vec![p]),
            Err(LmmError::InvalidModel { .. })
        ));
    }

    #[test]
    fn empty_phase_list_rejected() {
        let y = stochastic(&[vec![1.0]]);
        assert!(LayeredMarkovModel::new(y, None, vec![]).is_err());
    }

    #[test]
    fn bad_initial_distributions_rejected() {
        let u = stochastic(&[vec![0.5, 0.5], vec![0.5, 0.5]]);
        assert!(PhaseModel::new(u.clone(), Some(vec![0.5])).is_err()); // wrong length
        assert!(PhaseModel::new(u.clone(), Some(vec![0.7, 0.7])).is_err()); // not a distribution
        assert!(PhaseModel::new(u, Some(vec![0.5, 0.5])).is_ok());

        let y = stochastic(&[vec![1.0]]);
        let p = PhaseModel::new(stochastic(&[vec![1.0]]), None).unwrap();
        assert!(LayeredMarkovModel::new(y.clone(), Some(vec![0.9, 0.1]), vec![p.clone()]).is_err());
        assert!(LayeredMarkovModel::new(y, Some(vec![1.0]), vec![p]).is_ok());
    }
}
