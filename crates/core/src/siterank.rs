//! The Layered Method for DocRank (Section 3.2): SiteRank × local DocRank
//! over a real [`DocGraph`].
//!
//! Pipeline steps (numbered as in the paper):
//!
//! 1. the DocGraph is given;
//! 2. derive the SiteGraph with SiteLink counts;
//! 3. per site `s`, compute the local DocRank
//!    `π_D(s) = DocRank(M̂(G_d^s))` — classical PageRank on the intra-site
//!    subgraph (fully decentralizable);
//! 4. compute the SiteRank `π_S` = principal eigenvector of `M̂(G_S)`
//!    (PageRank of the SiteGraph, which is primitive by maximal
//!    irreducibility);
//! 5. the global DocRank is the weighted concatenation
//!    `DocRank(G_D) = (π_S(s_1)·π_D(s_1)ᵀ, …, π_S(s_N)·π_D(s_N)ᵀ)ᵀ`.
//!
//! Personalization (Section 3.2, last paragraphs) enters at step 3 (per-site
//! document preferences) and/or step 4 (site preferences).

use std::collections::HashMap;

use crate::error::{LmmError, Result};
use lmm_graph::docgraph::DocGraph;
use lmm_graph::ids::{DocId, SiteId};
use lmm_graph::sitegraph::{ranking_site_graph, SiteGraphOptions};
use lmm_linalg::{ConvergenceReport, CooMatrix, CsrMatrix, PowerOptions};
use lmm_par::ThreadPool;
use lmm_rank::pagerank::{PageRank, PageRankResult};
use lmm_rank::Ranking;

/// How the SiteRank vector `π_S` is computed at step 4.
///
/// `PageRank` is the paper's Web instantiation (Section 3.2): maximal
/// irreducibility applied to `M(G_S)`. `Stationary` is the raw stationary
/// distribution of `M(G_S)` — the Layered Method's Approach-4 site layer,
/// which by the Partition Theorem makes the composed DocRank equal the
/// stationary distribution of the layer-decomposable global chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SiteLayerMethod {
    /// Damped PageRank of the SiteGraph (the paper's default; supports
    /// site-layer personalization).
    #[default]
    PageRank,
    /// Raw stationary distribution of the SiteGraph transition matrix
    /// (requires a primitive SiteGraph; ignores personalization, which the
    /// un-damped chain cannot express).
    Stationary,
}

/// Configuration of the layered DocRank pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct LayeredRankConfig {
    /// Damping of the per-site local DocRank computations (step 3).
    pub local_damping: f64,
    /// Damping of the SiteRank computation (step 4).
    pub site_damping: f64,
    /// How the site layer is ranked (step 4).
    pub site_method: SiteLayerMethod,
    /// SiteGraph derivation options (step 2).
    pub site_options: SiteGraphOptions,
    /// Power-method budget shared by all computations.
    pub power: PowerOptions,
    /// Optional site-layer personalization vector (length = number of
    /// sites).
    pub site_personalization: Option<Vec<f64>>,
    /// Optional per-site document personalization vectors, keyed by site
    /// index; each vector is over the site's *local* document indices.
    pub local_personalization: HashMap<usize, Vec<f64>>,
    /// Worker threads for the per-site local DocRank fan-out (step 3) —
    /// `0` (the default) means one per available core. Each site's solve
    /// stays serial and writes only its own slot, so the composed ranking
    /// is **bit-identical for every thread count**; threads change wall
    /// time only.
    pub threads: usize,
}

impl Default for LayeredRankConfig {
    fn default() -> Self {
        Self {
            local_damping: 0.85,
            site_damping: 0.85,
            site_method: SiteLayerMethod::PageRank,
            site_options: SiteGraphOptions::default(),
            power: PowerOptions::with_tol(1e-10),
            site_personalization: None,
            local_personalization: HashMap::new(),
            threads: 0,
        }
    }
}

impl LayeredRankConfig {
    /// Configuration with both damping factors set to `f`.
    #[must_use]
    pub fn with_damping(f: f64) -> Self {
        Self {
            local_damping: f,
            site_damping: f,
            ..Self::default()
        }
    }
}

/// Output of the layered DocRank pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct LayeredDocRank {
    /// SiteRank `π_S` over sites.
    pub site_rank: Ranking,
    /// Per-site local DocRanks `π_D(s)` (indexed by site, then local doc).
    pub local_ranks: Vec<Ranking>,
    /// The composed global DocRank over all documents (a probability
    /// distribution by Theorem 1).
    pub global: Ranking,
    /// Convergence of the SiteRank computation.
    pub site_report: ConvergenceReport,
    /// Total power iterations across all local DocRank computations (the
    /// decentralized work; each site's share runs independently).
    pub total_local_iterations: usize,
    /// The largest local iteration count — the critical-path length when
    /// all sites compute in parallel.
    pub max_local_iterations: usize,
}

impl LayeredDocRank {
    /// Global score of one document.
    ///
    /// # Panics
    /// Panics if the id is out of bounds.
    #[must_use]
    pub fn score(&self, doc: DocId) -> f64 {
        self.global.score(doc.index())
    }

    /// The `k` top-ranked documents.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<DocId> {
        self.global.top_k(k).into_iter().map(DocId).collect()
    }
}

/// The live-site restriction of the ranking SiteGraph: the ascending list
/// of live site slots plus the dense `k×k` weight matrix over them. On a
/// graph without tombstoned sites this is the identity restriction (every
/// slot, the full weight matrix).
///
/// Removal keeps site ids stable by tombstoning slots, but a stationary
/// computation over the slot space would leak teleport mass into dead,
/// linkless sites — so every site-layer solve runs over this restriction
/// and scatters the result back into the slot space (dead slots score 0).
pub(crate) fn live_site_chain(
    graph: &DocGraph,
    options: &SiteGraphOptions,
) -> (Vec<usize>, CsrMatrix) {
    let site_graph = ranking_site_graph(graph, options);
    let live: Vec<usize> = graph.live_sites().map(SiteId::index).collect();
    if live.len() == graph.n_sites() {
        return (live, site_graph.into_weights());
    }
    let mut dense_of: Vec<Option<usize>> = vec![None; graph.n_sites()];
    for (j, &s) in live.iter().enumerate() {
        dense_of[s] = Some(j);
    }
    let mut coo = CooMatrix::new(live.len(), live.len());
    for (j, &s) in live.iter().enumerate() {
        let (cols, vals) = site_graph.weights().row(s);
        for (&t, &w) in cols.iter().zip(vals) {
            if let Some(jt) = dense_of[t] {
                coo.push(j, jt, w);
            }
        }
    }
    (live, coo.to_csr())
}

/// Errors when a personalized configuration meets a graph with tombstoned
/// sites: the slot-indexed vectors have no meaning over a restricted live
/// chain, so the combination is rejected instead of silently re-weighted.
pub(crate) fn reject_personalization_on_tombstones(
    graph: &DocGraph,
    config: &LayeredRankConfig,
) -> Result<()> {
    if config.site_personalization.is_some() {
        return Err(LmmError::InvalidModel {
            reason: "site personalization is unsupported on a graph with tombstoned \
                     sites; compact_ids() first"
                .into(),
        });
    }
    if let Some(&s) = config
        .local_personalization
        .keys()
        .find(|&&s| !graph.is_live_site(SiteId(s)))
    {
        return Err(LmmError::InvalidModel {
            reason: format!("document personalization names tombstoned site {s}"),
        });
    }
    Ok(())
}

/// The layered pipeline over a graph with tombstoned sites: the site layer
/// runs on the live restriction and scatters back into the slot space;
/// dead slots keep zero rank and an empty local vector.
fn layered_doc_rank_tombstoned(
    graph: &DocGraph,
    config: &LayeredRankConfig,
) -> Result<LayeredDocRank> {
    reject_personalization_on_tombstones(graph, config)?;
    let (live, chain) = live_site_chain(graph, &config.site_options);
    if live.is_empty() {
        return Err(LmmError::InvalidModel {
            reason: "every site is tombstoned — nothing to rank".into(),
        });
    }
    let stochastic = lmm_linalg::StochasticMatrix::from_adjacency(chain)?;
    let (pi, site_report) = match config.site_method {
        SiteLayerMethod::PageRank => {
            let mut site_pr = PageRank::new();
            site_pr
                .damping(config.site_damping)
                .tol(config.power.tol)
                .max_iters(config.power.max_iters);
            let result = site_pr.run(&stochastic)?;
            (result.ranking.into_scores(), result.report)
        }
        SiteLayerMethod::Stationary => {
            lmm_linalg::power::stationary_distribution(stochastic.matrix(), &config.power)?
        }
    };
    let mut site_scores = vec![0.0f64; graph.n_sites()];
    for (j, &s) in live.iter().enumerate() {
        site_scores[s] = pi[j];
    }
    let site_rank = Ranking::from_scores(site_scores)?;

    let pool = ThreadPool::shared(config.threads);
    let solved = pool.par_map(&live, |_, &s| {
        let sub = graph.site_subgraph(SiteId(s));
        let mut pr = PageRank::new();
        pr.damping(config.local_damping)
            .tol(config.power.tol)
            .max_iters(config.power.max_iters);
        if let Some(v) = config.local_personalization.get(&s) {
            pr.personalization(v.clone());
        }
        pr.run_adjacency(sub.adjacency)
    });
    let mut local_ranks = vec![Ranking::empty(); graph.n_sites()];
    let mut total_local_iterations = 0usize;
    let mut max_local_iterations = 0usize;
    for (&s, result) in live.iter().zip(solved) {
        let result = result?;
        total_local_iterations += result.report.iterations;
        max_local_iterations = max_local_iterations.max(result.report.iterations);
        local_ranks[s] = result.ranking;
    }

    let mut scores = vec![0.0f64; graph.n_docs()];
    for (s, ranks) in local_ranks.iter().enumerate() {
        let weight = site_rank.score(s);
        let members = graph.docs_of_site(SiteId(s));
        for (local, doc) in members.iter().enumerate() {
            scores[doc.index()] = weight * ranks.score(local);
        }
    }
    let global = Ranking::from_scores(scores)?;
    Ok(LayeredDocRank {
        site_rank,
        local_ranks,
        global,
        site_report,
        total_local_iterations,
        max_local_iterations,
    })
}

/// Runs the full layered DocRank pipeline (Section 3.2) on a document
/// graph. Tombstoned sites (if any) keep zero rank and an empty local
/// vector; the surviving sites' scores still form a distribution.
///
/// # Errors
/// Propagates PageRank failures (non-convergence, invalid personalization
/// vectors) from either layer; rejects personalization on a graph with
/// tombstoned sites.
///
/// # Example
/// ```
/// use lmm_core::siterank::{layered_doc_rank, LayeredRankConfig};
/// use lmm_graph::generator::CampusWebConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut cfg = CampusWebConfig::small();
/// cfg.total_docs = 600;
/// cfg.n_sites = 12;
/// cfg.spam_farms.clear();
/// let graph = cfg.generate()?;
/// let result = layered_doc_rank(&graph, &LayeredRankConfig::default())?;
/// assert!((result.global.scores().iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn layered_doc_rank(graph: &DocGraph, config: &LayeredRankConfig) -> Result<LayeredDocRank> {
    // Tombstoned sites change the site-layer state space; the dense path
    // below stays bit-identical for graphs without them.
    if !graph.dead_sites().is_empty() {
        return layered_doc_rank_tombstoned(graph, config);
    }
    // Step 2: SiteGraph — through the one shared derivation so distributed
    // and local pipelines provably rank the same `Y`.
    let site_graph = ranking_site_graph(graph, &config.site_options);

    // Step 4: SiteRank (independent of step 3 — the parallelism the paper
    // contrasts with BlockRank).
    let (site_rank, site_report) = match config.site_method {
        SiteLayerMethod::PageRank => {
            let mut site_pr = PageRank::new();
            site_pr
                .damping(config.site_damping)
                .tol(config.power.tol)
                .max_iters(config.power.max_iters);
            if let Some(v) = &config.site_personalization {
                site_pr.personalization(v.clone());
            }
            let site_result: PageRankResult = site_pr.run(&site_graph.to_stochastic()?)?;
            (site_result.ranking, site_result.report)
        }
        SiteLayerMethod::Stationary => {
            if config.site_personalization.is_some() {
                return Err(crate::error::LmmError::InvalidModel {
                    reason: "site-layer personalization requires SiteLayerMethod::PageRank \
                             (the un-damped stationary chain has no teleport vector)"
                        .into(),
                });
            }
            let (pi, report) = lmm_linalg::power::stationary_distribution(
                site_graph.to_stochastic()?.matrix(),
                &config.power,
            )?;
            (Ranking::from_scores(pi)?, report)
        }
    };

    // Step 3: local DocRanks, one independent PageRank per site — the
    // embarrassingly parallel half of the paper's pipeline, fanned across
    // the shared pool. Every site's solve is serial internally and fills
    // only its own slot, so the fan-out is deterministic.
    let n_sites = graph.n_sites();
    let pool = ThreadPool::shared(config.threads);
    let sites: Vec<usize> = (0..n_sites).collect();
    let solved = pool.par_map(&sites, |_, &s| {
        let sub = graph.site_subgraph(SiteId(s));
        let mut pr = PageRank::new();
        pr.damping(config.local_damping)
            .tol(config.power.tol)
            .max_iters(config.power.max_iters);
        if let Some(v) = config.local_personalization.get(&s) {
            pr.personalization(v.clone());
        }
        pr.run_adjacency(sub.adjacency)
    });
    let mut local_ranks = Vec::with_capacity(n_sites);
    let mut total_local_iterations = 0usize;
    let mut max_local_iterations = 0usize;
    for result in solved {
        let result = result?;
        total_local_iterations += result.report.iterations;
        max_local_iterations = max_local_iterations.max(result.report.iterations);
        local_ranks.push(result.ranking);
    }

    // Step 5: weighted concatenation in global document order.
    let mut scores = vec![0.0f64; graph.n_docs()];
    for (s, ranks) in local_ranks.iter().enumerate() {
        let weight = site_rank.score(s);
        let members = graph.docs_of_site(SiteId(s));
        for (local, doc) in members.iter().enumerate() {
            scores[doc.index()] = weight * ranks.score(local);
        }
    }
    let global = Ranking::from_scores(scores)?;

    Ok(LayeredDocRank {
        site_rank,
        local_ranks,
        global,
        site_report,
        total_local_iterations,
        max_local_iterations,
    })
}

/// The flat baseline: classical PageRank over the whole DocGraph (what the
/// paper's Figure 3 uses), with the gather SpMV and vector passes spread
/// over `threads` workers (`0` = one per core; the ranking is identical
/// for every value).
///
/// # Errors
/// Propagates PageRank failures.
pub fn flat_pagerank(
    graph: &DocGraph,
    damping: f64,
    power: &PowerOptions,
    threads: usize,
) -> Result<PageRankResult> {
    let mut pr = PageRank::new();
    pr.damping(damping)
        .tol(power.tol)
        .max_iters(power.max_iters)
        .threads(threads);
    Ok(pr.run_adjacency(graph.adjacency().clone())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmm_graph::docgraph::DocGraphBuilder;
    use lmm_graph::generator::CampusWebConfig;
    use lmm_rank::metrics;

    fn small_campus() -> DocGraph {
        let mut cfg = CampusWebConfig::small();
        cfg.total_docs = 800;
        cfg.n_sites = 16;
        cfg.spam_farms.truncate(1);
        cfg.spam_farms[0].host_site = 9;
        cfg.spam_farms[0].n_pages = 120;
        cfg.generate().unwrap()
    }

    #[test]
    fn global_is_distribution() {
        let g = small_campus();
        let r = layered_doc_rank(&g, &LayeredRankConfig::default()).unwrap();
        assert_eq!(r.global.len(), g.n_docs());
        assert!((r.global.scores().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(r.local_ranks.len(), g.n_sites());
    }

    #[test]
    fn composition_identity_holds() {
        // score(d) == site_rank(site(d)) * local_rank(d) for every doc.
        let g = small_campus();
        let r = layered_doc_rank(&g, &LayeredRankConfig::default()).unwrap();
        for s in 0..g.n_sites() {
            let members = g.docs_of_site(SiteId(s));
            for (local, doc) in members.iter().enumerate() {
                let expected = r.site_rank.score(s) * r.local_ranks[s].score(local);
                assert!((r.score(*doc) - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn demotes_spam_relative_to_flat_pagerank() {
        let g = small_campus();
        let spam = g.spam_labels();
        let layered = layered_doc_rank(&g, &LayeredRankConfig::default()).unwrap();
        let flat = flat_pagerank(&g, 0.85, &PowerOptions::with_tol(1e-10), 0).unwrap();
        let k = 15;
        let spam_flat = metrics::labeled_share_at_k(&flat.ranking, &spam, k);
        let spam_layered = metrics::labeled_share_at_k(&layered.global, &spam, k);
        assert!(
            spam_layered < spam_flat,
            "layered {spam_layered} should beat flat {spam_flat}"
        );
    }

    #[test]
    fn site_personalization_shifts_site_rank() {
        let g = small_campus();
        let n = g.n_sites();
        let mut v = vec![0.0; n];
        v[5] = 1.0;
        let cfg = LayeredRankConfig {
            site_personalization: Some(v),
            ..LayeredRankConfig::default()
        };
        let personalized = layered_doc_rank(&g, &cfg).unwrap();
        let neutral = layered_doc_rank(&g, &LayeredRankConfig::default()).unwrap();
        assert!(personalized.site_rank.score(5) > neutral.site_rank.score(5));
    }

    #[test]
    fn local_personalization_shifts_docs_within_site() {
        let g = small_campus();
        let site = 3usize;
        let size = g.site_size(SiteId(site));
        // All local preference on the last local doc of the site.
        let mut v = vec![0.0; size];
        v[size - 1] = 1.0;
        let mut cfg = LayeredRankConfig::default();
        cfg.local_personalization.insert(site, v);
        let personalized = layered_doc_rank(&g, &cfg).unwrap();
        let neutral = layered_doc_rank(&g, &LayeredRankConfig::default()).unwrap();
        let doc = *g.docs_of_site(SiteId(site)).last().unwrap();
        assert!(personalized.score(doc) > neutral.score(doc));
        // Other sites' scores are untouched (decentralized personalization).
        let other_doc = g.docs_of_site(SiteId(0))[0];
        assert!((personalized.score(other_doc) - neutral.score(other_doc)).abs() < 1e-9);
    }

    #[test]
    fn iteration_accounting_consistent() {
        let g = small_campus();
        let r = layered_doc_rank(&g, &LayeredRankConfig::default()).unwrap();
        assert!(r.max_local_iterations <= r.total_local_iterations);
        assert!(r.max_local_iterations > 0);
    }

    #[test]
    fn single_site_graph_reduces_to_local_rank() {
        let mut b = DocGraphBuilder::new();
        let d0 = b.add_doc("only.site", "u0");
        let d1 = b.add_doc("only.site", "u1");
        let d2 = b.add_doc("only.site", "u2");
        b.add_link(d0, d1).unwrap();
        b.add_link(d1, d2).unwrap();
        b.add_link(d2, d0).unwrap();
        let g = b.build();
        let r = layered_doc_rank(&g, &LayeredRankConfig::default()).unwrap();
        // One site: site rank = 1, global == local.
        assert!((r.site_rank.score(0) - 1.0).abs() < 1e-12);
        for d in 0..3 {
            assert!((r.global.score(d) - r.local_ranks[0].score(d)).abs() < 1e-12);
        }
    }

    #[test]
    fn thread_count_never_changes_the_ranking() {
        // The per-site fan-out must be bit-invisible: every layer of the
        // result — not just the composition — identical across pool sizes.
        let g = small_campus();
        let serial = layered_doc_rank(
            &g,
            &LayeredRankConfig {
                threads: 1,
                ..LayeredRankConfig::default()
            },
        )
        .unwrap();
        for threads in [2usize, 4, 0] {
            let parallel = layered_doc_rank(
                &g,
                &LayeredRankConfig {
                    threads,
                    ..LayeredRankConfig::default()
                },
            )
            .unwrap();
            assert_eq!(serial.global.scores(), parallel.global.scores());
            assert_eq!(serial.site_rank.scores(), parallel.site_rank.scores());
            assert_eq!(serial.local_ranks, parallel.local_ranks);
            assert_eq!(
                serial.total_local_iterations,
                parallel.total_local_iterations
            );
        }
    }

    #[test]
    fn top_k_accessor() {
        let g = small_campus();
        let r = layered_doc_rank(&g, &LayeredRankConfig::default()).unwrap();
        let top = r.top_k(5);
        assert_eq!(top.len(), 5);
        assert!(r.score(top[0]) >= r.score(top[4]));
    }
}
