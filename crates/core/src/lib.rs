//! The Layered Markov Model (LMM) for distributed web ranking — the primary
//! contribution of *Wu & Aberer, ICDCS 2005*.
//!
//! A two-layer LMM (Definition 1) is the 6-tuple `(P, Y, vY, O, U, vU)`:
//! a phase-layer transition matrix `Y` over `N_P` phases (Web sites) and,
//! for each phase, a sub-state transition matrix `U_I` over its `n_I`
//! sub-states (Web documents), with initial distributions at both layers.
//!
//! Under **layer-decomposability** (Definition 3) every transition between
//! global states factors through the destination phase's *gatekeeper*
//! sub-state, giving the global transition matrix (eq. 3):
//!
//! ```text
//! w_(I,i)(J,j) = y_IJ · u_Gj^J
//! ```
//!
//! where `u_G·^J` is the gatekeeper out-distribution of phase `J`, computed
//! by minimal irreducibility — equivalently, PageRank of `U_J`
//! (Section 2.3.2).
//!
//! The crate implements all four ranking approaches of Section 2.3 and the
//! **Partition Theorem** (Theorem 2) asserting Approach 2 ≡ Approach 4:
//!
//! | approach | kind | computation |
//! |----------|------|-------------|
//! | 1 | centralized | PageRank (maximal irreducibility) on `W` |
//! | 2 | centralized | stationary distribution of the primitive `W` |
//! | 3 | decentralized | `πY(I) · π_G^I(i)` with `πY` = PageRank of `Y` |
//! | 4 | decentralized | `π̃Y(I) · π_G^I(i)` with `π̃Y` = stationary of `Y` — **the Layered Method** |
//!
//! [`siterank`] instantiates the model for the Web (Section 3.2):
//! SiteRank × local DocRank over a [`lmm_graph::DocGraph`], and
//! [`worked_example`] reproduces the paper's 12-state example with its
//! printed vectors.
//!
//! # Example
//!
//! ```
//! use lmm_core::worked_example;
//! use lmm_linalg::vec_ops;
//!
//! # fn main() -> Result<(), lmm_core::LmmError> {
//! let model = worked_example::paper_model()?;
//! let layered = model.layered_method(0.85)?;        // Approach 4
//! let central = model.stationary_of_global(0.85)?;  // Approach 2
//! // Partition Theorem: identical distributions.
//! assert!(lmm_linalg::vec_ops::linf_diff(layered.scores(), central.scores()) < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod approaches;
pub mod error;
pub mod global;
pub mod incremental;
pub mod model;
pub mod multilayer;
pub mod partition;
pub mod personalize;
pub mod siterank;
pub mod synth;
pub mod worked_example;

pub use approaches::{GlobalRanking, LmmParams, RankApproach};
pub use error::{LmmError, Result};
pub use model::{GlobalState, LayeredMarkovModel, PhaseModel};
pub use partition::{verify_partition_theorem, PartitionCheck};
pub use siterank::{layered_doc_rank, LayeredDocRank, LayeredRankConfig, SiteLayerMethod};
