//! Synthetic Layered Markov Models for tests, property checks and
//! benchmarks.
//!
//! The generators produce strictly positive phase matrices (hence primitive
//! `Y`, satisfying Theorem 2's precondition) and sparse-but-irreducible or
//! dense sub-state matrices, all deterministically seeded.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::model::{LayeredMarkovModel, PhaseModel};
use lmm_linalg::{CooMatrix, DenseMatrix, StochasticMatrix};

/// Generates a random dense strictly-positive row-stochastic matrix.
///
/// Strict positivity makes the matrix primitive, which is what the
/// Partition Theorem requires of `Y`.
///
/// # Panics
/// Panics if `n == 0`.
#[must_use]
pub fn random_positive_stochastic(n: usize, rng: &mut StdRng) -> StochasticMatrix {
    assert!(n > 0, "matrix must be non-empty");
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        // Offset by a small epsilon so no entry is exactly zero.
        let row: Vec<f64> = (0..n).map(|_| rng.random::<f64>() + 0.01).collect();
        rows.push(row);
    }
    let mut dense = DenseMatrix::from_rows(&rows).expect("non-empty rows");
    let dangling = dense.normalize_rows();
    debug_assert!(dangling.is_empty());
    StochasticMatrix::new(dense.to_csr()).expect("normalized rows are stochastic")
}

/// Generates a random sparse row-stochastic matrix with about
/// `out_degree` transitions per state (plus a guaranteed cyclic backbone so
/// no state is dangling).
///
/// # Panics
/// Panics if `n == 0`.
#[must_use]
pub fn random_sparse_stochastic(n: usize, out_degree: usize, rng: &mut StdRng) -> StochasticMatrix {
    assert!(n > 0, "matrix must be non-empty");
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        // Backbone edge keeps every row non-dangling and the chain connected.
        coo.push(i, (i + 1) % n, 1.0);
        for _ in 0..out_degree {
            let j = rng.random_range(0..n);
            coo.push(i, j, rng.random::<f64>() + 0.05);
        }
    }
    let (m, dangling) = coo.to_csr().normalize_rows();
    debug_assert!(dangling.is_empty());
    StochasticMatrix::new(m).expect("normalized rows are stochastic")
}

/// Generates a random LMM: a strictly positive `n_phases × n_phases` phase
/// matrix and dense positive sub-state matrices whose sizes are drawn
/// uniformly from `min_sub..=max_sub`.
///
/// # Panics
/// Panics if `n_phases == 0` or `min_sub` is 0 or exceeds `max_sub`.
#[must_use]
pub fn random_model(
    n_phases: usize,
    min_sub: usize,
    max_sub: usize,
    seed: u64,
) -> LayeredMarkovModel {
    assert!(n_phases > 0, "need at least one phase");
    assert!(
        min_sub > 0 && min_sub <= max_sub,
        "invalid sub-state range {min_sub}..={max_sub}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let y = random_positive_stochastic(n_phases, &mut rng);
    let phases: Vec<PhaseModel> = (0..n_phases)
        .map(|_| {
            let n = rng.random_range(min_sub..=max_sub);
            PhaseModel::new(random_positive_stochastic(n, &mut rng), None)
                .expect("positive matrices make valid phases")
        })
        .collect();
    LayeredMarkovModel::new(y, None, phases).expect("dimensions align by construction")
}

/// Generates a large sparse LMM for scalability benchmarks: `n_phases`
/// phases with exactly `sub_states` sparse sub-states each.
///
/// # Panics
/// Panics if either count is zero.
#[must_use]
pub fn random_sparse_model(
    n_phases: usize,
    sub_states: usize,
    out_degree: usize,
    seed: u64,
) -> LayeredMarkovModel {
    assert!(n_phases > 0 && sub_states > 0, "model must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let y = random_positive_stochastic(n_phases, &mut rng);
    let phases: Vec<PhaseModel> = (0..n_phases)
        .map(|_| {
            PhaseModel::new(
                random_sparse_stochastic(sub_states, out_degree, &mut rng),
                None,
            )
            .expect("sparse stochastic matrices make valid phases")
        })
        .collect();
    LayeredMarkovModel::new(y, None, phases).expect("dimensions align by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmm_linalg::structure;

    #[test]
    fn positive_stochastic_is_primitive() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = random_positive_stochastic(6, &mut rng);
        assert!(structure::is_primitive(m.matrix()).unwrap());
        assert!(m.is_fully_stochastic());
    }

    #[test]
    fn sparse_stochastic_has_no_dangling() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = random_sparse_stochastic(50, 3, &mut rng);
        assert!(m.is_fully_stochastic());
        // The cyclic backbone guarantees irreducibility.
        assert!(structure::is_irreducible(m.matrix()).unwrap());
    }

    #[test]
    fn random_model_shape() {
        let m = random_model(4, 2, 5, 7);
        assert_eq!(m.n_phases(), 4);
        assert!(m.total_states() >= 8);
        assert!(m.total_states() <= 20);
    }

    #[test]
    fn random_model_deterministic() {
        assert_eq!(random_model(3, 2, 4, 5), random_model(3, 2, 4, 5));
        assert_ne!(random_model(3, 2, 4, 5), random_model(3, 2, 4, 6));
    }

    #[test]
    fn sparse_model_shape() {
        let m = random_sparse_model(5, 100, 4, 3);
        assert_eq!(m.n_phases(), 5);
        assert_eq!(m.total_states(), 500);
    }
}
