//! Personalization-vector construction (Section 3.2, personalization at
//! both layers).
//!
//! The paper observes that personalized rankings fall out of the layered
//! method "in an elegant way": replace the uniform teleport vector with a
//! preference distribution at the site layer (step 4), the document layer
//! within chosen sites (step 3), or both. [`PersonalizationBuilder`] builds
//! such vectors from boosts over a baseline.

use crate::error::{LmmError, Result};
use lmm_linalg::vec_ops;

/// Builds a personalization (teleport) distribution by boosting selected
/// indices over a uniform baseline.
///
/// The result assigns `baseline` total mass spread uniformly over all `n`
/// entries and `1 − baseline` distributed over the boosted indices in
/// proportion to their boost weights. With no boosts the vector is uniform.
///
/// # Example
/// ```
/// use lmm_core::personalize::PersonalizationBuilder;
///
/// # fn main() -> Result<(), lmm_core::LmmError> {
/// let v = PersonalizationBuilder::new(4)
///     .baseline(0.2)
///     .boost(1, 3.0)
///     .boost(2, 1.0)
///     .build()?;
/// assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// assert!(v[1] > v[2] && v[2] > v[0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PersonalizationBuilder {
    n: usize,
    baseline: f64,
    boosts: Vec<(usize, f64)>,
}

impl PersonalizationBuilder {
    /// Starts a builder for a vector over `n` items with the default
    /// baseline share `0.5`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            baseline: 0.5,
            boosts: Vec::new(),
        }
    }

    /// Sets the share of mass kept uniform (in `[0, 1]`). `1.0` ignores the
    /// boosts entirely; `0.0` concentrates all mass on the boosted indices.
    #[must_use]
    pub fn baseline(mut self, share: f64) -> Self {
        self.baseline = share;
        self
    }

    /// Adds (or accumulates) a non-negative boost weight for an index.
    #[must_use]
    pub fn boost(mut self, index: usize, weight: f64) -> Self {
        self.boosts.push((index, weight));
        self
    }

    /// Builds the distribution.
    ///
    /// # Errors
    /// Returns [`LmmError::InvalidModel`] when `n == 0`, the baseline is out
    /// of `[0, 1]`, a boost index is out of range, a boost weight is
    /// negative/non-finite, or all mass is assigned to boosts but no boost
    /// was added.
    pub fn build(self) -> Result<Vec<f64>> {
        if self.n == 0 {
            return Err(LmmError::InvalidModel {
                reason: "personalization over zero items".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.baseline) {
            return Err(LmmError::InvalidModel {
                reason: format!("baseline share {} must lie in [0, 1]", self.baseline),
            });
        }
        let mut weights = vec![0.0f64; self.n];
        let mut boost_total = 0.0;
        for &(i, w) in &self.boosts {
            if i >= self.n {
                return Err(LmmError::InvalidModel {
                    reason: format!("boost index {i} out of range for {} items", self.n),
                });
            }
            if !w.is_finite() || w < 0.0 {
                return Err(LmmError::InvalidModel {
                    reason: format!("boost weight {w} must be finite and non-negative"),
                });
            }
            weights[i] += w;
            boost_total += w;
        }
        let boosted_share = if boost_total > 0.0 {
            1.0 - self.baseline
        } else {
            if self.baseline == 0.0 {
                return Err(LmmError::InvalidModel {
                    reason: "baseline 0 with no boosts leaves no probability mass".into(),
                });
            }
            0.0
        };
        let uniform_share = 1.0 - boosted_share;
        let mut v = vec![uniform_share / self.n as f64; self.n];
        if boost_total > 0.0 {
            for (vi, wi) in v.iter_mut().zip(&weights) {
                *vi += boosted_share * wi / boost_total;
            }
        }
        debug_assert!(vec_ops::is_distribution(&v, 1e-9));
        Ok(v)
    }
}

/// Uniform personalization over `n` items — the neutral vector that
/// recovers the unpersonalized ranking.
///
/// # Errors
/// Returns [`LmmError::InvalidModel`] when `n == 0`.
pub fn uniform(n: usize) -> Result<Vec<f64>> {
    if n == 0 {
        return Err(LmmError::InvalidModel {
            reason: "personalization over zero items".into(),
        });
    }
    Ok(vec_ops::uniform(n))
}

/// A distribution fully concentrated on one index (maximal
/// personalization).
///
/// # Errors
/// Returns [`LmmError::InvalidModel`] when `index >= n`.
pub fn concentrated(n: usize, index: usize) -> Result<Vec<f64>> {
    if index >= n {
        return Err(LmmError::InvalidModel {
            reason: format!("index {index} out of range for {n} items"),
        });
    }
    let mut v = vec![0.0; n];
    v[index] = 1.0;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_boosts_is_uniform() {
        let v = PersonalizationBuilder::new(5).build().unwrap();
        assert_eq!(v, vec![0.2; 5]);
    }

    #[test]
    fn boosts_redistribute_mass() {
        let v = PersonalizationBuilder::new(4)
            .baseline(0.4)
            .boost(0, 1.0)
            .build()
            .unwrap();
        // 0.4 uniform => 0.1 each; index 0 additionally gets 0.6.
        assert!((v[0] - 0.7).abs() < 1e-12);
        assert!((v[1] - 0.1).abs() < 1e-12);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn boosts_accumulate() {
        let v = PersonalizationBuilder::new(2)
            .baseline(0.0)
            .boost(0, 1.0)
            .boost(0, 1.0)
            .boost(1, 2.0)
            .build()
            .unwrap();
        assert!((v[0] - 0.5).abs() < 1e-12);
        assert!((v[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        assert!(PersonalizationBuilder::new(0).build().is_err());
        assert!(PersonalizationBuilder::new(3)
            .baseline(1.5)
            .build()
            .is_err());
        assert!(PersonalizationBuilder::new(3)
            .boost(9, 1.0)
            .build()
            .is_err());
        assert!(PersonalizationBuilder::new(3)
            .boost(0, -1.0)
            .build()
            .is_err());
        assert!(PersonalizationBuilder::new(3)
            .baseline(0.0)
            .build()
            .is_err());
    }

    #[test]
    fn helpers() {
        assert_eq!(uniform(2).unwrap(), vec![0.5, 0.5]);
        assert!(uniform(0).is_err());
        assert_eq!(concentrated(3, 1).unwrap(), vec![0.0, 1.0, 0.0]);
        assert!(concentrated(3, 3).is_err());
    }
}
