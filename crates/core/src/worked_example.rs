//! The paper's Section 2.3 worked example: 3 phases, 12 sub-states, and all
//! printed reference vectors (Figure 2).
//!
//! The matrices `Y`, `U1`, `U2`, `U3` are transcribed verbatim; the
//! `PAPER_*` constants are the rank vectors the paper prints to 4 decimals.
//! The test suite and experiment E2 validate our computations against them
//! (with α = f = 0.85, the standard damping, which reproduces every printed
//! digit).

use crate::error::Result;
use crate::model::{LayeredMarkovModel, PhaseModel};
use lmm_linalg::{DenseMatrix, StochasticMatrix};

/// The phase transition matrix `Y` (3 phases).
pub const Y: [[f64; 3]; 3] = [[0.1, 0.3, 0.6], [0.2, 0.4, 0.4], [0.3, 0.5, 0.2]];

/// Sub-state transition matrix `U1` of phase I (4 sub-states).
pub const U1: [[f64; 4]; 4] = [
    [0.3, 0.3, 0.2, 0.2],
    [0.5, 0.1, 0.1, 0.3],
    [0.1, 0.2, 0.6, 0.1],
    [0.4, 0.3, 0.1, 0.2],
];

/// Sub-state transition matrix `U2` of phase II (3 sub-states).
pub const U2: [[f64; 3]; 3] = [[0.2, 0.1, 0.7], [0.1, 0.8, 0.1], [0.05, 0.05, 0.9]];

/// Sub-state transition matrix `U3` of phase III (5 sub-states).
pub const U3: [[f64; 5]; 5] = [
    [0.6, 0.02, 0.2, 0.1, 0.08],
    [0.05, 0.2, 0.5, 0.05, 0.2],
    [0.4, 0.1, 0.2, 0.1, 0.2],
    [0.7, 0.1, 0.05, 0.1, 0.05],
    [0.5, 0.2, 0.1, 0.1, 0.1],
];

/// The mixing factor that reproduces the paper's printed numbers.
pub const PAPER_ALPHA: f64 = 0.85;

/// Printed gatekeeper (local PageRank) vector `π_G^1` of phase I.
pub const PAPER_PI_G1: [f64; 4] = [0.3054, 0.2312, 0.2582, 0.2052];
/// Printed gatekeeper vector `π_G^2` of phase II.
pub const PAPER_PI_G2: [f64; 3] = [0.1191, 0.2691, 0.6117];
/// Printed gatekeeper vector `π_G^3` of phase III.
pub const PAPER_PI_G3: [f64; 5] = [0.4557, 0.1038, 0.2014, 0.1106, 0.1285];

/// Printed PageRank of `Y` (used by Approach 3).
pub const PAPER_PI_Y: [f64; 3] = [0.2315, 0.4015, 0.3670];
/// Printed stationary vector of `Y` (used by Approach 4).
pub const PAPER_PI_Y_TILDE: [f64; 3] = [0.2154, 0.4154, 0.3692];

/// Figure 2, middle vector: `π_W`, Approach 1 (PageRank on `W`).
pub const PAPER_PI_W: [f64; 12] = [
    0.0682, 0.0547, 0.0596, 0.0499, 0.0545, 0.1073, 0.2281, 0.1562, 0.0452, 0.0760, 0.0474, 0.0530,
];

/// Figure 2, right vector: `π̃_W`, Approaches 2 and 4.
pub const PAPER_PI_W_TILDE: [f64; 12] = [
    0.0658, 0.0498, 0.0556, 0.0442, 0.0495, 0.1118, 0.2541, 0.1683, 0.0383, 0.0744, 0.0408, 0.0474,
];

/// Figure 2's rank-order column (identical for both vectors): the 0-based
/// *rank position* of each state in flat order. State 7 = `(2,3)` is ranked
/// first, state 8 = `(3,1)` second, and so on.
pub const PAPER_RANK_POSITIONS: [usize; 12] = [4, 6, 5, 9, 7, 2, 0, 1, 11, 3, 10, 8];

/// The worked example's value `π̃(2,3) = π̃_Y(2) · π_G^2(3) = 0.2541`
/// (Approach 4 on the paper's highlighted state).
pub const PAPER_STATE_23_LAYERED: f64 = 0.2541;

/// The worked example's Approach 3 value `π(2,3) = π_Y(2) · π_G^2(3) =
/// 0.2456`.
pub const PAPER_STATE_23_APPROACH3: f64 = 0.2456;

fn stochastic_from<const N: usize>(rows: &[[f64; N]]) -> Result<StochasticMatrix> {
    let rows: Vec<Vec<f64>> = rows.iter().map(|r| r.to_vec()).collect();
    Ok(StochasticMatrix::new(
        DenseMatrix::from_rows(&rows)?.to_csr(),
    )?)
}

/// Builds the paper's 12-state Layered Markov Model with uniform initial
/// distributions (the configuration reproducing Figure 2).
///
/// # Errors
/// Never fails in practice — the constants are valid by transcription; the
/// `Result` simply propagates the validating constructors.
///
/// # Example
/// ```
/// # fn main() -> Result<(), lmm_core::LmmError> {
/// let model = lmm_core::worked_example::paper_model()?;
/// assert_eq!(model.n_phases(), 3);
/// assert_eq!(model.total_states(), 12);
/// # Ok(())
/// # }
/// ```
pub fn paper_model() -> Result<LayeredMarkovModel> {
    let y = stochastic_from(&Y)?;
    let phases = vec![
        PhaseModel::new(stochastic_from(&U1)?, None)?,
        PhaseModel::new(stochastic_from(&U2)?, None)?,
        PhaseModel::new(stochastic_from(&U3)?, None)?,
    ];
    LayeredMarkovModel::new(y, None, phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approaches::LmmParams;
    use crate::global::phase_gatekeeper_distributions;
    use crate::model::GlobalState;
    use lmm_linalg::PowerOptions;
    use lmm_rank::pagerank::PageRank;

    /// The paper prints 4 decimals; allow half a unit in the last place plus
    /// a little slack for their own convergence tolerance.
    const TOL: f64 = 7e-4;

    fn assert_close(actual: &[f64], expected: &[f64], what: &str) {
        assert_eq!(actual.len(), expected.len(), "{what}: length");
        for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
            assert!(
                (a - e).abs() < TOL,
                "{what}[{i}]: computed {a:.6}, paper prints {e:.4}"
            );
        }
    }

    #[test]
    fn model_shape() {
        let m = paper_model().unwrap();
        assert_eq!(m.n_phases(), 3);
        assert_eq!(m.total_states(), 12);
        assert_eq!(m.offsets(), &[0, 4, 7, 12]);
    }

    #[test]
    fn gatekeeper_vectors_match_paper() {
        let m = paper_model().unwrap();
        let dists =
            phase_gatekeeper_distributions(&m, PAPER_ALPHA, &PowerOptions::default()).unwrap();
        assert_close(dists[0].scores(), &PAPER_PI_G1, "pi_G^1");
        assert_close(dists[1].scores(), &PAPER_PI_G2, "pi_G^2");
        assert_close(dists[2].scores(), &PAPER_PI_G3, "pi_G^3");
    }

    #[test]
    fn site_vectors_match_paper() {
        let m = paper_model().unwrap();
        let pr = PageRank::new()
            .damping(PAPER_ALPHA)
            .run(m.phase_matrix())
            .unwrap();
        assert_close(pr.ranking.scores(), &PAPER_PI_Y, "pi_Y");
        let (tilde, _) = lmm_linalg::power::stationary_distribution(
            m.phase_matrix().matrix(),
            &PowerOptions::default(),
        )
        .unwrap();
        assert_close(&tilde, &PAPER_PI_Y_TILDE, "pi_Y_tilde");
    }

    #[test]
    fn figure2_pi_w_matches_paper() {
        let m = paper_model().unwrap();
        let a1 = m.pagerank_of_global(PAPER_ALPHA).unwrap();
        assert_close(a1.scores(), &PAPER_PI_W, "pi_W (Approach 1)");
    }

    #[test]
    fn figure2_pi_w_tilde_matches_paper_both_ways() {
        let m = paper_model().unwrap();
        let a2 = m.stationary_of_global(PAPER_ALPHA).unwrap();
        assert_close(a2.scores(), &PAPER_PI_W_TILDE, "pi_W_tilde (Approach 2)");
        let a4 = m.layered_method(PAPER_ALPHA).unwrap();
        assert_close(a4.scores(), &PAPER_PI_W_TILDE, "pi_W_tilde (Approach 4)");
    }

    #[test]
    fn figure2_rank_order_matches_paper() {
        let m = paper_model().unwrap();
        for ranking in [
            m.pagerank_of_global(PAPER_ALPHA).unwrap(),
            m.stationary_of_global(PAPER_ALPHA).unwrap(),
            m.layered_method(PAPER_ALPHA).unwrap(),
        ] {
            let positions = ranking.ranking().positions();
            assert_eq!(
                positions,
                PAPER_RANK_POSITIONS.to_vec(),
                "Figure 2 order column"
            );
        }
    }

    #[test]
    fn highlighted_state_23_values() {
        let m = paper_model().unwrap();
        let s23 = GlobalState::new(1, 2); // the paper's (2,3)
        let a4 = m.layered_method(PAPER_ALPHA).unwrap();
        assert!((a4.score_state(s23) - PAPER_STATE_23_LAYERED).abs() < TOL);
        let a3 = m.layered_with_pagerank_site(PAPER_ALPHA).unwrap();
        assert!((a3.score_state(s23) - PAPER_STATE_23_APPROACH3).abs() < TOL);
    }

    #[test]
    fn top_three_states_match_paper() {
        // "the top three (highly ranked) overall system states are number
        //  7, 8 and 6, namely (2,3), (3,1) and (2,2)."
        let m = paper_model().unwrap();
        let order = m.layered_method(PAPER_ALPHA).unwrap().order_states();
        assert_eq!(order[0], GlobalState::new(1, 2)); // (2,3)
        assert_eq!(order[1], GlobalState::new(2, 0)); // (3,1)
        assert_eq!(order[2], GlobalState::new(1, 1)); // (2,2)
    }

    #[test]
    fn partition_check_on_paper_model() {
        let m = paper_model().unwrap();
        let check =
            crate::partition::verify_partition_theorem(&m, &LmmParams::with_factor(PAPER_ALPHA))
                .unwrap();
        assert!(check.linf < 1e-9, "{check}");
        assert!(check.same_order);
    }

    #[test]
    fn example_transition_value_from_paper() {
        // "w_(3,5)(2,3) = y_32 * u_G3^2 = 0.5 x 0.6117 = 0.3059"
        let m = paper_model().unwrap();
        let dists =
            phase_gatekeeper_distributions(&m, PAPER_ALPHA, &PowerOptions::default()).unwrap();
        let w = crate::global::global_transition_matrix(&m, &dists).unwrap();
        let from = m.state_index(GlobalState::new(2, 4)); // (3,5) -> index 11
        let to = m.state_index(GlobalState::new(1, 2)); // (2,3) -> index 6
        assert!((w.get(from, to) - 0.3059).abs() < TOL);
    }
}
