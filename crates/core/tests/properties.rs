//! Property-based tests of the LMM core: structural invariants of the
//! global operator, the composition law, and parameter monotonicity.

use lmm_core::approaches::{compute, LmmParams, RankApproach};
use lmm_core::global::{global_transition_matrix, phase_gatekeeper_distributions, GlobalOperator};
use lmm_core::synth::{random_model, random_sparse_model};
use lmm_linalg::{vec_ops, LinearOperator, PowerOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The materialized W is row-stochastic and its rows are constant within
    /// each phase block (the paper's observation below eq. 3).
    #[test]
    fn w_structure_invariants(
        n_phases in 2usize..5,
        max_sub in 2usize..5,
        seed in any::<u64>(),
    ) {
        let model = random_model(n_phases, 1, max_sub, seed);
        let dists = phase_gatekeeper_distributions(&model, 0.85, &PowerOptions::default())
            .expect("gatekeepers");
        let w = global_transition_matrix(&model, &dists).expect("W");
        for s in w.row_sums() {
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
        let offsets = model.offsets();
        let dense = w.to_dense().expect("small");
        for i_phase in 0..model.n_phases() {
            let first = dense.row(offsets[i_phase]);
            for r in offsets[i_phase]..offsets[i_phase + 1] {
                prop_assert_eq!(dense.row(r), first, "rows differ within block {}", i_phase);
            }
        }
    }

    /// The implicit factored operator agrees with the explicit Wᵀx on
    /// arbitrary input vectors — not just on distributions.
    #[test]
    fn implicit_operator_matches_explicit(
        n_phases in 2usize..5,
        max_sub in 2usize..5,
        seed in any::<u64>(),
        raw in prop::collection::vec(-3.0f64..3.0, 1..32),
    ) {
        let model = random_model(n_phases, 1, max_sub, seed);
        let dists = phase_gatekeeper_distributions(&model, 0.85, &PowerOptions::default())
            .expect("gatekeepers");
        let w = global_transition_matrix(&model, &dists).expect("W");
        let op = GlobalOperator::new(&model, &dists).expect("operator");
        let n = model.total_states();
        let x: Vec<f64> = (0..n).map(|i| raw[i % raw.len()]).collect();
        let explicit = w.apply_transpose(&x).expect("dims");
        let mut implicit = vec![0.0; n];
        op.apply_to(&x, &mut implicit).expect("dims");
        prop_assert!(vec_ops::l1_diff(&explicit, &implicit) < 1e-9);
    }

    /// Composition law (eq. 5): every global score factors exactly into
    /// site weight x local gatekeeper weight.
    #[test]
    fn composition_law(
        n_phases in 2usize..6,
        max_sub in 1usize..6,
        alpha in 0.2f64..0.95,
        seed in any::<u64>(),
    ) {
        let model = random_model(n_phases, 1, max_sub, seed);
        let params = LmmParams::with_factor(alpha);
        let a4 = compute(&model, RankApproach::Layered, &params).expect("A4");
        let dists = phase_gatekeeper_distributions(&model, alpha, &params.power)
            .expect("gatekeepers");
        // Recover the site vector by summing each phase block; then check
        // every entry factors.
        let offsets = model.offsets();
        for i_phase in 0..model.n_phases() {
            let block = &a4.scores()[offsets[i_phase]..offsets[i_phase + 1]];
            let site_mass: f64 = block.iter().sum();
            for (i, &score) in block.iter().enumerate() {
                prop_assert!(
                    (score - site_mass * dists[i_phase].score(i)).abs() < 1e-9
                );
            }
        }
    }

    /// Sparse models: Approach 2 through the factored operator equals the
    /// layered method (Partition Theorem on the web-like regime).
    #[test]
    fn partition_theorem_sparse(
        n_phases in 2usize..6,
        sub in 5usize..30,
        seed in any::<u64>(),
    ) {
        let model = random_sparse_model(n_phases, sub, 3, seed);
        let params = LmmParams::default();
        let a2 = compute(&model, RankApproach::StationaryOfGlobal, &params).expect("A2");
        let a4 = compute(&model, RankApproach::Layered, &params).expect("A4");
        prop_assert!(vec_ops::linf_diff(a2.scores(), a4.scores()) < 1e-9);
    }

    /// GlobalRanking's state labeling is a bijection consistent with the
    /// model's.
    #[test]
    fn state_labels_roundtrip(
        n_phases in 1usize..6,
        max_sub in 1usize..6,
        seed in any::<u64>(),
    ) {
        let model = random_model(n_phases, 1, max_sub, seed);
        let r = model.layered_method(0.85).expect("ranks");
        for idx in 0..r.len() {
            let state = r.state_of(idx);
            prop_assert_eq!(model.state_index(state), idx);
            prop_assert!((r.score_state(state) - r.scores()[idx]).abs() < 1e-15);
        }
    }
}
