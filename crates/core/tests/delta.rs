//! Property tests of the delta pipeline: for random mixed-mutation
//! sequences — growth *and* removal — `DocGraph::apply(delta)` followed by
//! `incremental_update` must reproduce a from-scratch `layered_doc_rank`
//! on the mutated graph — at one worker thread and at four — rank mass
//! must be conserved through every redistribution, and malformed deltas
//! must surface as errors, never as panics or silent misalignment.

use std::collections::{BTreeMap, BTreeSet};

use lmm_core::incremental::{diff_sites, incremental_update, SiteDelta};
use lmm_core::siterank::{layered_doc_rank, LayeredRankConfig};
use lmm_graph::delta::GraphDelta;
use lmm_graph::generator::CampusWebConfig;
use lmm_graph::{DocGraph, SiteId};
use lmm_linalg::vec_ops;
use proptest::prelude::*;

fn campus(seed: u64) -> DocGraph {
    let mut cfg = CampusWebConfig::small();
    cfg.total_docs = 400;
    cfg.n_sites = 8;
    cfg.spam_farms.clear();
    cfg.seed = seed;
    cfg.generate().unwrap()
}

/// Splitmix-style deterministic stream for building mutation sequences.
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Builds a random mixed delta against `graph`: intra rewires, cross
/// links, page growth, whole new sites, page/site removal, and cancelled
/// (add-then-remove) additions. `ops == 0` yields an empty delta. Tracks
/// planned removals so the delta stays valid: no double removal, no site
/// emptied without `remove_site`, at least two sites survive.
fn random_delta(graph: &DocGraph, stream: &mut Stream, ops: usize) -> GraphDelta {
    let mut delta = GraphDelta::for_graph(graph);
    let mut removed_docs: BTreeSet<usize> = BTreeSet::new();
    let mut removed_sites: BTreeSet<usize> = BTreeSet::new();
    let mut lost_per_site: BTreeMap<usize, usize> = BTreeMap::new();
    // Base sites this delta adds pages to: `apply` rejects removing a
    // site while also adding pages to it (or removing its pages
    // explicitly), so site removal must avoid these.
    let mut added_to: BTreeSet<usize> = BTreeSet::new();
    for _ in 0..ops {
        match stream.below(8) {
            // Remove one page from a live site that keeps ≥ 2 members.
            5 => {
                let n = graph.n_sites();
                let site = (0..n).map(|k| (stream.below(n) + k) % n).find(|&s| {
                    !removed_sites.contains(&s)
                        && graph.site_size(SiteId(s))
                            > lost_per_site.get(&s).copied().unwrap_or(0) + 2
                });
                if let Some(s) = site {
                    let docs = graph.docs_of_site(SiteId(s));
                    let victim = (0..docs.len())
                        .map(|k| docs[(stream.below(docs.len()) + k) % docs.len()])
                        .find(|d| !removed_docs.contains(&d.index()));
                    if let Some(victim) = victim {
                        delta.remove_page(victim).unwrap();
                        removed_docs.insert(victim.index());
                        *lost_per_site.entry(s).or_insert(0) += 1;
                    }
                }
            }
            // Remove a whole site (keep at least two live; skip sites this
            // delta already grew or shrank).
            6 => {
                if removed_sites.len() + 2 < graph.n_sites() {
                    let n = graph.n_sites();
                    let site = (0..n).map(|k| (stream.below(n) + k) % n).find(|s| {
                        !removed_sites.contains(s)
                            && !added_to.contains(s)
                            && !lost_per_site.contains_key(s)
                    });
                    if let Some(s) = site {
                        delta.remove_site(SiteId(s)).unwrap();
                        removed_sites.insert(s);
                    }
                }
            }
            // Cancelled addition: add a page, link it, remove it again.
            7 => {
                let n = graph.n_sites();
                let site = (0..n)
                    .map(|k| SiteId((stream.below(n) + k) % n))
                    .find(|s| !removed_sites.contains(&s.index()))
                    .expect("at least two sites survive");
                let root = graph.docs_of_site(site)[0];
                let url = format!("http://cancelled.example/{}", stream.next());
                let p = delta.add_page(site, &url).unwrap();
                delta.add_link(root, p).unwrap();
                delta.add_link(p, root).unwrap();
                delta.remove_page(p).unwrap();
                added_to.insert(site.index());
            }
            // Intra-site rewire.
            0 => {
                let site = SiteId(stream.below(graph.n_sites()));
                let docs = graph.docs_of_site(site);
                if docs.len() >= 2 {
                    let a = docs[stream.below(docs.len())];
                    let b = docs[stream.below(docs.len())];
                    delta.remove_link(a, b).unwrap();
                    delta.add_link(b, a).unwrap();
                }
            }
            // Cross-site link.
            1 => {
                let s = SiteId(stream.below(graph.n_sites()));
                let t = SiteId(stream.below(graph.n_sites()));
                let a = graph.docs_of_site(s)[0];
                let b = graph.docs_of_site(t)[0];
                delta.add_link(a, b).unwrap();
            }
            // Grow an existing (not planned-removed) site by one page.
            2 => {
                let n = graph.n_sites();
                let site = (0..n)
                    .map(|k| SiteId((stream.below(n) + k) % n))
                    .find(|s| !removed_sites.contains(&s.index()))
                    .expect("at least two sites survive");
                let root = graph.docs_of_site(site)[0];
                let url = format!("http://grown.example/{}", stream.next());
                let p = delta.add_page(site, &url).unwrap();
                delta.add_link(root, p).unwrap();
                delta.add_link(p, root).unwrap();
                added_to.insert(site.index());
            }
            // Append a whole new site with one or two pages.
            3 => {
                let name = format!("new-{}.example", stream.next());
                let s = delta.add_site(&name);
                let q0 = delta.add_page(s, &format!("http://{name}/")).unwrap();
                let anchor = graph.docs_of_site(SiteId(stream.below(graph.n_sites())))[0];
                delta.add_link(anchor, q0).unwrap();
                delta.add_link(q0, anchor).unwrap();
                if stream.below(2) == 0 {
                    let q1 = delta.add_page(s, &format!("http://{name}/1")).unwrap();
                    delta.add_link(q0, q1).unwrap();
                    delta.add_link(q1, q0).unwrap();
                }
            }
            // Remove a (possibly absent) link — exercises no-op removals.
            _ => {
                let site = SiteId(stream.below(graph.n_sites()));
                let docs = graph.docs_of_site(site);
                let a = docs[stream.below(docs.len())];
                let b = docs[stream.below(docs.len())];
                delta.remove_link(a, b).unwrap();
            }
        }
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// apply(delta) + incremental_update ≡ from-scratch layered_doc_rank,
    /// across random mixed add/remove/grow churn, at 1 and 4 threads, with
    /// the apply-time summary agreeing with the two-snapshot diff, exact
    /// `UpdateStats` locality, and rank mass conserved through every
    /// removal redistribution.
    #[test]
    fn incremental_matches_scratch_under_mixed_mutations(
        graph_seed in 0u64..4,
        delta_seed in any::<u64>(),
        ops in 0usize..10,
    ) {
        let base = campus(graph_seed);
        let mut stream = Stream(delta_seed);
        let delta = random_delta(&base, &mut stream, ops);
        let (mutated, applied) = base.apply(&delta).expect("valid random delta");
        let site_delta = SiteDelta::from(&applied);
        prop_assert_eq!(&site_delta, &diff_sites(&base, &mutated).expect("churn diff"));
        let live_added = (base.n_sites()..mutated.n_sites())
            .filter(|&s| mutated.is_live_site(SiteId(s)))
            .count();

        for threads in [1usize, 4] {
            let cfg = LayeredRankConfig {
                threads,
                ..LayeredRankConfig::default()
            };
            let previous = layered_doc_rank(&base, &cfg).expect("base rank");
            let (updated, stats) =
                incremental_update(&previous, &mutated, &site_delta, &cfg).expect("update");
            let scratch = layered_doc_rank(&mutated, &cfg).expect("scratch rank");
            let drift = vec_ops::l1_diff(updated.global.scores(), scratch.global.scores());
            prop_assert!(drift < 1e-7, "drift {} at {} threads", drift, threads);
            let mass: f64 = updated.global.scores().iter().sum();
            prop_assert!((mass - 1.0).abs() < 1e-9, "mass {} at {} threads", mass, threads);
            prop_assert_eq!(
                stats.sites_recomputed + stats.sites_reused,
                mutated.n_live_sites()
            );
            prop_assert_eq!(
                stats.sites_recomputed,
                site_delta.changed_sites.len()
                    + site_delta.grown_sites.len()
                    + site_delta.shrunk_sites.len()
                    + live_added
            );
            prop_assert_eq!(stats.sites_removed, site_delta.removed_sites.len());
            prop_assert_eq!(stats.sites_shrunk, site_delta.shrunk_sites.len());
            prop_assert_eq!(updated.local_ranks.len(), mutated.n_sites());
            prop_assert_eq!(updated.global.len(), mutated.n_docs());
            // Dead slots hold no rank.
            for &d in mutated.dead_docs() {
                prop_assert_eq!(updated.global.score(d.index()), 0.0);
            }
        }
    }

    /// compact() ≡ sequential replay for churn that includes removals and
    /// cancelled (add-then-remove) additions — exactly when compared up to
    /// densification, and exactly on every ranking-relevant summary set.
    #[test]
    fn compact_equals_replay_under_removal_churn(
        graph_seed in 0u64..4,
        delta_seed in any::<u64>(),
        ops in 0usize..12,
    ) {
        let base = campus(graph_seed);
        let mut stream = Stream(delta_seed);
        let delta = random_delta(&base, &mut stream, ops);
        let compacted = delta.compact();
        let (seq, seq_applied) = base.apply(&delta).expect("replay");
        let (one, one_applied) = base.apply(&compacted).expect("compacted");
        prop_assert_eq!(seq.compact_ids().0, one.compact_ids().0);
        prop_assert_eq!(&seq_applied.changed_sites, &one_applied.changed_sites);
        prop_assert_eq!(&seq_applied.grown_sites, &one_applied.grown_sites);
        prop_assert_eq!(&seq_applied.shrunk_sites, &one_applied.shrunk_sites);
        prop_assert_eq!(&seq_applied.removed_sites, &one_applied.removed_sites);
        prop_assert_eq!(
            seq_applied.cross_links_changed,
            one_applied.cross_links_changed
        );
    }

    /// Duplicate site entries in a hand-built delta never inflate the
    /// accounting or panic — they dedup, and the result still matches a
    /// scratch recomputation.
    #[test]
    fn duplicate_entries_dedup(graph_seed in 0u64..4, site in 0usize..8) {
        let base = campus(graph_seed);
        let mut delta = GraphDelta::for_graph(&base);
        let docs = base.docs_of_site(SiteId(site));
        delta.remove_link(docs[0], docs[1]).unwrap();
        delta.add_link(docs[1], docs[0]).unwrap();
        let (mutated, applied) = base.apply(&delta).expect("apply");
        let mut noisy = SiteDelta::from(&applied);
        // Triple every entry.
        let doubled: Vec<usize> =
            noisy.changed_sites.iter().flat_map(|&s| [s, s, s]).collect();
        noisy.changed_sites = doubled;
        let cfg = LayeredRankConfig::default();
        let previous = layered_doc_rank(&base, &cfg).expect("base rank");
        let (updated, stats) =
            incremental_update(&previous, &mutated, &noisy, &cfg).expect("noisy update");
        prop_assert!(stats.sites_recomputed <= mutated.n_sites());
        prop_assert_eq!(stats.sites_reused, mutated.n_sites() - stats.sites_recomputed);
        let scratch = layered_doc_rank(&mutated, &cfg).expect("scratch");
        prop_assert!(
            vec_ops::l1_diff(updated.global.scores(), scratch.global.scores()) < 1e-7
        );
    }

    /// Grow-only deltas (no link rewires among existing pages) recompute
    /// exactly the grown/added sites.
    #[test]
    fn grow_only_deltas_localize_work(
        graph_seed in 0u64..4,
        delta_seed in any::<u64>(),
        n_growth in 1usize..4,
    ) {
        let base = campus(graph_seed);
        let mut stream = Stream(delta_seed);
        let mut delta = GraphDelta::for_graph(&base);
        let mut touched = std::collections::BTreeSet::new();
        for _ in 0..n_growth {
            let site = SiteId(stream.below(base.n_sites()));
            touched.insert(site.index());
            let root = base.docs_of_site(site)[0];
            let url = format!("http://grow-only.example/{}", stream.next());
            let p = delta.add_page(site, &url).unwrap();
            delta.add_link(root, p).unwrap();
            delta.add_link(p, root).unwrap();
        }
        let (mutated, applied) = base.apply(&delta).expect("apply");
        prop_assert_eq!(&applied.grown_sites, &touched.iter().copied().collect::<Vec<_>>());
        prop_assert!(applied.changed_sites.is_empty());
        let cfg = LayeredRankConfig::default();
        let previous = layered_doc_rank(&base, &cfg).expect("base rank");
        let (updated, stats) = incremental_update(
            &previous,
            &mutated,
            &SiteDelta::from(&applied),
            &cfg,
        ).expect("update");
        prop_assert_eq!(stats.sites_recomputed, touched.len());
        prop_assert_eq!(stats.sites_grown, touched.len());
        prop_assert_eq!(stats.sites_added, 0);
        let scratch = layered_doc_rank(&mutated, &cfg).expect("scratch");
        prop_assert!(
            vec_ops::l1_diff(updated.global.scores(), scratch.global.scores()) < 1e-7
        );
    }

    /// Empty deltas are exact no-ops through the whole pipeline.
    #[test]
    fn empty_deltas_are_noops(graph_seed in 0u64..4) {
        let base = campus(graph_seed);
        let delta = GraphDelta::for_graph(&base);
        let (mutated, applied) = base.apply(&delta).expect("apply");
        prop_assert!(applied.is_empty());
        prop_assert_eq!(&base, &mutated);
        let cfg = LayeredRankConfig::default();
        let previous = layered_doc_rank(&base, &cfg).expect("base rank");
        let (updated, stats) = incremental_update(
            &previous,
            &mutated,
            &SiteDelta::from(&applied),
            &cfg,
        ).expect("update");
        prop_assert_eq!(stats.sites_recomputed, 0);
        prop_assert_eq!(stats.sites_reused, base.n_sites());
        prop_assert!(!stats.site_rank_recomputed);
        prop_assert_eq!(updated.global.scores(), previous.global.scores());
    }
}
