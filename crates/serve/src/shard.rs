//! Immutable per-shard stores: precomputed top-k heaps, per-site document
//! orderings, and score lookups over one pinned [`RankSnapshot`].
//!
//! A [`ShardState`] is the unit the hot-swap replaces: it pins one snapshot
//! epoch and the shard's precomputed [`ShardData`]. Rebuilding the data is
//! the expensive part (a heap selection over the shard's documents), so a
//! publish only rebuilds the shards whose sites the delta staled —
//! everything else is [`re-pinned`](ShardState::repin): a new `ShardState`
//! with the new epoch and snapshot but the **same** `Arc<ShardData>`. The
//! engine's [`Staleness`](lmm_engine::Staleness) contract (untouched sites
//! keep bit-identical scores) is what makes pairing old orderings with the
//! new snapshot sound.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::ops::Range;
use std::sync::Arc;

use lmm_engine::RankSnapshot;
use lmm_graph::{DocId, SiteId};

/// Orders documents for serving: score descending, ties broken by id
/// ascending — the exact order `Ranking::order` uses, so serve-tier
/// results are bitwise comparable with engine-cache results.
fn serve_cmp(a: &(DocId, f64), b: &(DocId, f64)) -> Ordering {
    b.1.partial_cmp(&a.1)
        .expect("ranking scores are finite")
        .then(a.0.cmp(&b.0))
}

/// Max-heap entry whose `Ord` ranks *worse* entries greater, so the heap
/// root is the weakest kept document — a classic bounded top-k heap.
struct Weakest(DocId, f64);

impl PartialEq for Weakest {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Weakest {}
impl PartialOrd for Weakest {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Weakest {
    fn cmp(&self, other: &Self) -> Ordering {
        // Lower score = worse; equal score: higher id = worse.
        other
            .1
            .partial_cmp(&self.1)
            .expect("ranking scores are finite")
            .then(self.0.cmp(&other.0))
    }
}

/// The heavy, rebuild-on-stale part of a shard: everything derived from
/// the shard's document scores.
#[derive(Debug)]
pub struct ShardData {
    /// The shard's best documents (score desc, id asc), at most the
    /// configured heap capacity.
    top: Vec<(DocId, f64)>,
    /// Per covered site (indexed relative to the shard's first site), the
    /// site's documents in serving order.
    site_order: Vec<Vec<DocId>>,
    /// Documents owned by the shard (so `top.len() == n_docs.min(cap)`
    /// tells whether `top` is exhaustive).
    n_docs: usize,
}

/// One shard's pinned serving state: an epoch, the snapshot it came from,
/// and the precomputed data.
#[derive(Debug, Clone)]
pub struct ShardState {
    sites: Range<usize>,
    snapshot: RankSnapshot,
    data: Arc<ShardData>,
}

impl ShardState {
    /// Builds a shard store from scratch over `sites` (heap capacity
    /// `heap_k`): one pass over the shard's documents into a bounded
    /// top-k heap, plus a per-site sort.
    #[must_use]
    pub fn build(snapshot: &RankSnapshot, sites: Range<usize>, heap_k: usize) -> Self {
        let scores = snapshot.scores();
        let mut heap: BinaryHeap<Weakest> = BinaryHeap::with_capacity(heap_k + 1);
        let mut site_order = Vec::with_capacity(sites.len());
        let mut n_docs = 0usize;
        for site in sites.clone() {
            let members = snapshot.members_of_site(SiteId(site));
            n_docs += members.len();
            let mut ordered: Vec<(DocId, f64)> =
                members.iter().map(|&d| (d, scores[d.index()])).collect();
            ordered.sort_unstable_by(serve_cmp);
            for &(doc, score) in &ordered {
                if heap.len() < heap_k {
                    heap.push(Weakest(doc, score));
                } else if let Some(weakest) = heap.peek() {
                    if serve_cmp(&(doc, score), &(weakest.0, weakest.1)) == Ordering::Less {
                        heap.pop();
                        heap.push(Weakest(doc, score));
                    }
                }
            }
            site_order.push(ordered.into_iter().map(|(d, _)| d).collect());
        }
        let mut top: Vec<(DocId, f64)> = heap.into_iter().map(|w| (w.0, w.1)).collect();
        top.sort_unstable_by(serve_cmp);
        Self {
            sites,
            snapshot: snapshot.clone(),
            data: Arc::new(ShardData {
                top,
                site_order,
                n_docs,
            }),
        }
    }

    /// Re-pins this shard against a newer snapshot without rebuilding: the
    /// data `Arc` is shared. Sound only when every site of this shard is
    /// absent from the snapshot's staleness set (the publisher checks).
    #[must_use]
    pub fn repin(&self, snapshot: &RankSnapshot) -> Self {
        debug_assert!(snapshot.epoch() >= self.snapshot.epoch());
        Self {
            sites: self.sites.clone(),
            snapshot: snapshot.clone(),
            data: Arc::clone(&self.data),
        }
    }

    /// The epoch this state answers from.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// The site-id range this shard covers.
    #[must_use]
    pub fn sites(&self) -> &Range<usize> {
        &self.sites
    }

    /// `true` when this state shares its data with `other` (re-pinned, not
    /// rebuilt).
    #[must_use]
    pub fn shares_data_with(&self, other: &ShardState) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Score of one document at this shard's epoch — answered from the
    /// pinned global score vector, so *any* shard can serve any document.
    #[must_use]
    pub fn score(&self, doc: DocId) -> Option<f64> {
        self.snapshot.scores().get(doc.index()).copied()
    }

    /// The shard's `k` best documents. The boolean reports whether the
    /// precomputed heap sufficed (`false` = `k` exceeded its capacity and
    /// the shard fell back to a full scan).
    #[must_use]
    pub fn top_k(&self, k: usize) -> (Vec<(DocId, f64)>, bool) {
        let data = &self.data;
        if k <= data.top.len() || data.top.len() == data.n_docs {
            let mut out = data.top.clone();
            out.truncate(k);
            return (out, true);
        }
        // k exceeds the heap capacity: scan every covered site.
        let scores = self.snapshot.scores();
        let mut all: Vec<(DocId, f64)> = self
            .sites
            .clone()
            .flat_map(|s| self.snapshot.members_of_site(SiteId(s)))
            .map(|&d| (d, scores[d.index()]))
            .collect();
        all.sort_unstable_by(serve_cmp);
        all.truncate(k);
        (all, false)
    }

    /// The `k` best documents of one covered site, or `None` when the site
    /// is outside this shard's range or unknown to the pinned snapshot.
    #[must_use]
    pub fn site_top_k(&self, site: SiteId, k: usize) -> Option<Vec<(DocId, f64)>> {
        if !self.sites.contains(&site.index()) || site.index() >= self.snapshot.n_sites() {
            return None;
        }
        let order = self.data.site_order.get(site.index() - self.sites.start)?;
        let scores = self.snapshot.scores();
        Some(
            order
                .iter()
                .take(k)
                .map(|&d| (d, scores[d.index()]))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmm_engine::Staleness;

    /// Two sites: site 0 = docs {0, 1}, site 1 = docs {2, 3, 4}.
    fn snapshot(epoch: u64, scores: Vec<f64>) -> RankSnapshot {
        RankSnapshot::new(
            epoch,
            "test".into(),
            Arc::new(scores),
            None,
            Arc::new(vec![
                vec![DocId(0), DocId(1)],
                vec![DocId(2), DocId(3), DocId(4)],
            ]),
            Arc::new(vec![SiteId(0), SiteId(0), SiteId(1), SiteId(1), SiteId(1)]),
            Staleness::Full,
        )
    }

    #[test]
    fn build_precomputes_serving_order() {
        let snap = snapshot(1, vec![0.1, 0.3, 0.2, 0.25, 0.15]);
        let shard = ShardState::build(&snap, 0..2, 3);
        assert_eq!(shard.epoch(), 1);
        let (top, from_heap) = shard.top_k(3);
        assert!(from_heap);
        assert_eq!(
            top,
            vec![(DocId(1), 0.3), (DocId(3), 0.25), (DocId(2), 0.2)]
        );
        let site1 = shard.site_top_k(SiteId(1), 2).unwrap();
        assert_eq!(site1, vec![(DocId(3), 0.25), (DocId(2), 0.2)]);
        assert_eq!(shard.score(DocId(4)), Some(0.15));
        assert_eq!(shard.score(DocId(9)), None);
    }

    #[test]
    fn equal_scores_break_ties_by_id() {
        let snap = snapshot(1, vec![0.2, 0.2, 0.2, 0.2, 0.2]);
        let shard = ShardState::build(&snap, 0..2, 4);
        let (top, _) = shard.top_k(4);
        assert_eq!(
            top.iter().map(|&(d, _)| d).collect::<Vec<_>>(),
            vec![DocId(0), DocId(1), DocId(2), DocId(3)]
        );
    }

    #[test]
    fn oversized_k_falls_back_to_a_scan() {
        let snap = snapshot(1, vec![0.1, 0.3, 0.2, 0.25, 0.15]);
        let shard = ShardState::build(&snap, 0..2, 2);
        let (top, from_heap) = shard.top_k(5);
        assert!(!from_heap);
        assert_eq!(top.len(), 5);
        assert_eq!(top[0], (DocId(1), 0.3));
        assert_eq!(top[4], (DocId(0), 0.1));
        // Small shards whose heap holds everything never scan.
        let all = ShardState::build(&snap, 0..2, 16);
        let (_, from_heap) = all.top_k(9);
        assert!(from_heap);
    }

    #[test]
    fn repin_shares_data_and_advances_the_epoch() {
        let snap1 = snapshot(1, vec![0.1, 0.3, 0.2, 0.25, 0.15]);
        let shard = ShardState::build(&snap1, 0..2, 3);
        let snap2 = snapshot(2, vec![0.1, 0.3, 0.2, 0.25, 0.15]);
        let repinned = shard.repin(&snap2);
        assert_eq!(repinned.epoch(), 2);
        assert!(repinned.shares_data_with(&shard));
        assert_eq!(repinned.top_k(3), shard.top_k(3));
        let rebuilt = ShardState::build(&snap2, 0..2, 3);
        assert!(!rebuilt.shares_data_with(&shard));
    }

    #[test]
    fn site_outside_the_shard_is_refused() {
        let snap = snapshot(1, vec![0.1, 0.3, 0.2, 0.25, 0.15]);
        let shard = ShardState::build(&snap, 1..2, 3);
        assert!(shard.site_top_k(SiteId(0), 2).is_none());
        assert!(shard.site_top_k(SiteId(7), 2).is_none());
        assert!(shard.site_top_k(SiteId(1), 2).is_some());
        // But scores of foreign documents still answer (global vector).
        assert_eq!(shard.score(DocId(0)), Some(0.1));
    }
}
