//! Immutable per-shard stores: precomputed top-k orderings, per-site
//! document orderings, and score lookups over one pinned [`RankSnapshot`].
//!
//! A [`ShardState`] is the unit the hot-swap replaces: it pins one snapshot
//! epoch and the shard's precomputed [`ShardData`]. Scores are **always
//! read through the pinned snapshot** — the data stores only document
//! *orderings* — which gives the publisher three swap grades:
//!
//! * [`build`](ShardState::build) — full rebuild (per-site sorts over the
//!   shard's documents) for shards whose sites a delta staled;
//! * [`refresh`](ShardState::refresh) — reuse the per-site orderings,
//!   re-merge the shard-level top list under the new snapshot's scores.
//!   Sound whenever every covered site kept its member list and
//!   within-site order (the [`Staleness::Resized`] contract after a
//!   removal's SiteRank redistribution: per-site orders survive, absolute
//!   scores and cross-site interleavings do not);
//! * [`repin`](ShardState::repin) — share the data `Arc` outright, for
//!   snapshots whose unnamed sites are bit-identical
//!   ([`Staleness::Sites`]).
//!
//! [`Staleness::Resized`]: lmm_engine::Staleness::Resized
//! [`Staleness::Sites`]: lmm_engine::Staleness::Sites

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::ops::Range;
use std::sync::Arc;

use lmm_engine::RankSnapshot;
use lmm_graph::{DocId, SiteId};

/// Orders documents for serving: score descending, ties broken by id
/// ascending — the exact order `Ranking::order` uses, so serve-tier
/// results are bitwise comparable with engine-cache results.
fn serve_cmp(a: &(DocId, f64), b: &(DocId, f64)) -> Ordering {
    b.1.partial_cmp(&a.1)
        // lint: allow(panic, "scores come from a stochastic-matrix power iteration and are finite by construction; a NaN here means the kernel itself is broken")
        .expect("ranking scores are finite")
        .then(a.0.cmp(&b.0))
}

/// Max-heap entry whose `Ord` ranks *worse* entries greater, so the heap
/// root is the weakest kept document — a classic bounded top-k heap.
struct Weakest(DocId, f64);

impl PartialEq for Weakest {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Weakest {}
impl PartialOrd for Weakest {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Weakest {
    fn cmp(&self, other: &Self) -> Ordering {
        // Lower score = worse; equal score: higher id = worse.
        other
            .1
            .partial_cmp(&self.1)
            // lint: allow(panic, "scores come from a stochastic-matrix power iteration and are finite by construction; a NaN here means the kernel itself is broken")
            .expect("ranking scores are finite")
            .then(self.0.cmp(&other.0))
    }
}

/// Max-heap head for the k-way merge in [`ShardState::refresh`]: greatest
/// = best in serving order.
struct MergeHead {
    entry: (DocId, f64),
    site_idx: usize,
    pos: usize,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for MergeHead {}
impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> Ordering {
        // serve_cmp returns Less when its first argument serves first, so
        // flipping the arguments makes the serve-first entry the greatest.
        serve_cmp(&other.entry, &self.entry)
    }
}

/// A shard-level score lookup: live value, tombstoned slot, or a document
/// the answering epoch never ranked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DocScore {
    /// The document is ranked at this epoch.
    Live(f64),
    /// The document existed but was removed — its id slot is dead.
    Tombstoned,
    /// The document id is outside the answering epoch's range.
    Unknown,
}

/// A shard-level site top-k answer.
#[derive(Debug, Clone, PartialEq)]
pub enum SiteTopK {
    /// The site's best documents in serving order.
    Entries(Vec<(DocId, f64)>),
    /// The site was removed — queries for it must fail typed.
    Tombstoned,
    /// The site is outside this shard's range or the epoch's site count.
    NotCovered,
}

/// The heavy, rebuild-on-stale part of a shard: the document *orderings*
/// derived from the shard's scores (never the scores themselves — those
/// are always read through the pinned snapshot, so a refresh can re-pair
/// surviving orders with rescaled scores).
#[derive(Debug)]
pub struct ShardData {
    /// The shard's best documents in serving order, at most the configured
    /// heap capacity.
    top: Vec<DocId>,
    /// Per covered site (indexed relative to the shard's first site), the
    /// site's documents in serving order. Shared between a refreshed state
    /// and its predecessor.
    site_order: Arc<Vec<Vec<DocId>>>,
    /// Documents owned by the shard (so `top.len() == n_docs.min(cap)`
    /// tells whether `top` is exhaustive).
    n_docs: usize,
}

/// One shard's pinned serving state: an epoch, the snapshot it came from,
/// and the precomputed data.
#[derive(Debug, Clone)]
pub struct ShardState {
    sites: Range<usize>,
    snapshot: RankSnapshot,
    data: Arc<ShardData>,
}

impl ShardState {
    /// Builds a shard store from scratch over `sites` (heap capacity
    /// `heap_k`): one pass over the shard's documents into a bounded
    /// top-k heap, plus a per-site sort. Tombstoned sites in the range
    /// contribute an empty ordering.
    #[must_use]
    pub fn build(snapshot: &RankSnapshot, sites: Range<usize>, heap_k: usize) -> Self {
        let scores = snapshot.scores();
        let mut heap: BinaryHeap<Weakest> = BinaryHeap::with_capacity(heap_k + 1);
        let mut site_order = Vec::with_capacity(sites.len());
        let mut n_docs = 0usize;
        for site in sites.clone() {
            let members = snapshot.members_of_site(SiteId(site));
            n_docs += members.len();
            let mut ordered: Vec<(DocId, f64)> =
                members.iter().map(|&d| (d, scores[d.index()])).collect();
            ordered.sort_unstable_by(serve_cmp);
            for &(doc, score) in &ordered {
                if heap.len() < heap_k {
                    heap.push(Weakest(doc, score));
                } else if let Some(weakest) = heap.peek() {
                    if serve_cmp(&(doc, score), &(weakest.0, weakest.1)) == Ordering::Less {
                        heap.pop();
                        heap.push(Weakest(doc, score));
                    }
                }
            }
            site_order.push(ordered.into_iter().map(|(d, _)| d).collect());
        }
        let mut top: Vec<(DocId, f64)> = heap.into_iter().map(|w| (w.0, w.1)).collect();
        top.sort_unstable_by(serve_cmp);
        Self {
            sites,
            snapshot: snapshot.clone(),
            data: Arc::new(ShardData {
                top: top.into_iter().map(|(d, _)| d).collect(),
                site_order: Arc::new(site_order),
                n_docs,
            }),
        }
    }

    /// Re-pins this shard against a newer snapshot without rebuilding: the
    /// data `Arc` is shared. Sound only when every site of this shard is
    /// absent from the snapshot's staleness set (the publisher checks).
    #[must_use]
    pub fn repin(&self, snapshot: &RankSnapshot) -> Self {
        debug_assert!(snapshot.epoch() >= self.snapshot.epoch());
        Self {
            sites: self.sites.clone(),
            snapshot: snapshot.clone(),
            data: Arc::clone(&self.data),
        }
    }

    /// Rebuilds only the shard-level top list under the new snapshot's
    /// scores, **reusing** the per-site orderings (shared `Arc`). Exact —
    /// a k-way merge of the per-site orders is the shard's true top-k —
    /// whenever every covered site kept its member list and within-site
    /// order, which is what [`Staleness::Resized`] guarantees for sites it
    /// does not name. O(sites + k log sites) instead of a full re-sort.
    ///
    /// [`Staleness::Resized`]: lmm_engine::Staleness::Resized
    #[must_use]
    pub fn refresh(&self, snapshot: &RankSnapshot, heap_k: usize) -> Self {
        debug_assert!(snapshot.epoch() >= self.snapshot.epoch());
        let scores = snapshot.scores();
        let orders = &self.data.site_order;
        let mut heads: BinaryHeap<MergeHead> = BinaryHeap::with_capacity(orders.len());
        for (site_idx, order) in orders.iter().enumerate() {
            if let Some(&d) = order.first() {
                heads.push(MergeHead {
                    entry: (d, scores[d.index()]),
                    site_idx,
                    pos: 0,
                });
            }
        }
        let mut top = Vec::with_capacity(heap_k.min(self.data.n_docs));
        while top.len() < heap_k {
            let Some(head) = heads.pop() else { break };
            top.push(head.entry.0);
            let order = &orders[head.site_idx];
            if let Some(&next) = order.get(head.pos + 1) {
                heads.push(MergeHead {
                    entry: (next, scores[next.index()]),
                    site_idx: head.site_idx,
                    pos: head.pos + 1,
                });
            }
        }
        Self {
            sites: self.sites.clone(),
            snapshot: snapshot.clone(),
            data: Arc::new(ShardData {
                top,
                site_order: Arc::clone(orders),
                n_docs: self.data.n_docs,
            }),
        }
    }

    /// The epoch this state answers from.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// The site-id range this shard covers.
    #[must_use]
    pub fn sites(&self) -> &Range<usize> {
        &self.sites
    }

    /// Live documents owned by this shard.
    #[must_use]
    pub fn n_docs(&self) -> usize {
        self.data.n_docs
    }

    /// `true` when this state shares its data with `other` (re-pinned, not
    /// rebuilt).
    #[must_use]
    pub fn shares_data_with(&self, other: &ShardState) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// `true` when this state shares its per-site orderings with `other`
    /// (refreshed: new top list, same orders).
    #[must_use]
    pub fn shares_orders_with(&self, other: &ShardState) -> bool {
        Arc::ptr_eq(&self.data.site_order, &other.data.site_order)
    }

    /// Score of one document at this shard's epoch — answered from the
    /// pinned global score vector, so *any* shard can serve any document.
    /// Tombstoned slots answer [`DocScore::Tombstoned`], so a removed id
    /// never leaks a stale (or zero) score as if it were ranked.
    #[must_use]
    pub fn score(&self, doc: DocId) -> DocScore {
        if doc.index() >= self.snapshot.n_docs() {
            return DocScore::Unknown;
        }
        if !self.snapshot.is_live_doc(doc) {
            return DocScore::Tombstoned;
        }
        DocScore::Live(self.snapshot.scores()[doc.index()])
    }

    /// The shard's `k` best documents. The boolean reports whether the
    /// precomputed list sufficed (`false` = `k` exceeded its capacity and
    /// the shard fell back to a full scan).
    #[must_use]
    pub fn top_k(&self, k: usize) -> (Vec<(DocId, f64)>, bool) {
        let data = &self.data;
        let scores = self.snapshot.scores();
        if k <= data.top.len() || data.top.len() == data.n_docs {
            return (
                data.top
                    .iter()
                    .take(k)
                    .map(|&d| (d, scores[d.index()]))
                    .collect(),
                true,
            );
        }
        // k exceeds the precomputed capacity: scan every covered site.
        let mut all: Vec<(DocId, f64)> = self
            .sites
            .clone()
            .flat_map(|s| self.snapshot.members_of_site(SiteId(s)))
            .map(|&d| (d, scores[d.index()]))
            .collect();
        all.sort_unstable_by(serve_cmp);
        all.truncate(k);
        (all, false)
    }

    /// The `k` best documents of one covered site, distinguishing a
    /// tombstoned site from one this shard never covered.
    #[must_use]
    pub fn site_top_k(&self, site: SiteId, k: usize) -> SiteTopK {
        if !self.sites.contains(&site.index()) || site.index() >= self.snapshot.n_sites() {
            return SiteTopK::NotCovered;
        }
        if self.snapshot.is_tombstoned_site(site) {
            return SiteTopK::Tombstoned;
        }
        let Some(order) = self.data.site_order.get(site.index() - self.sites.start) else {
            return SiteTopK::NotCovered;
        };
        let scores = self.snapshot.scores();
        SiteTopK::Entries(
            order
                .iter()
                .take(k)
                .map(|&d| (d, scores[d.index()]))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmm_engine::Staleness;

    /// Two sites: site 0 = docs {0, 1}, site 1 = docs {2, 3, 4}.
    fn snapshot(epoch: u64, scores: Vec<f64>) -> RankSnapshot {
        RankSnapshot::new(
            epoch,
            "test".into(),
            Arc::new(scores),
            None,
            Arc::new(vec![
                vec![DocId(0), DocId(1)],
                vec![DocId(2), DocId(3), DocId(4)],
            ]),
            Arc::new(vec![SiteId(0), SiteId(0), SiteId(1), SiteId(1), SiteId(1)]),
            Staleness::Full,
        )
    }

    #[test]
    fn build_precomputes_serving_order() {
        let snap = snapshot(1, vec![0.1, 0.3, 0.2, 0.25, 0.15]);
        let shard = ShardState::build(&snap, 0..2, 3);
        assert_eq!(shard.epoch(), 1);
        assert_eq!(shard.n_docs(), 5);
        let (top, from_heap) = shard.top_k(3);
        assert!(from_heap);
        assert_eq!(
            top,
            vec![(DocId(1), 0.3), (DocId(3), 0.25), (DocId(2), 0.2)]
        );
        let site1 = shard.site_top_k(SiteId(1), 2);
        assert_eq!(
            site1,
            SiteTopK::Entries(vec![(DocId(3), 0.25), (DocId(2), 0.2)])
        );
        assert_eq!(shard.score(DocId(4)), DocScore::Live(0.15));
        assert_eq!(shard.score(DocId(9)), DocScore::Unknown);
    }

    #[test]
    fn equal_scores_break_ties_by_id() {
        let snap = snapshot(1, vec![0.2, 0.2, 0.2, 0.2, 0.2]);
        let shard = ShardState::build(&snap, 0..2, 4);
        let (top, _) = shard.top_k(4);
        assert_eq!(
            top.iter().map(|&(d, _)| d).collect::<Vec<_>>(),
            vec![DocId(0), DocId(1), DocId(2), DocId(3)]
        );
    }

    #[test]
    fn oversized_k_falls_back_to_a_scan() {
        let snap = snapshot(1, vec![0.1, 0.3, 0.2, 0.25, 0.15]);
        let shard = ShardState::build(&snap, 0..2, 2);
        let (top, from_heap) = shard.top_k(5);
        assert!(!from_heap);
        assert_eq!(top.len(), 5);
        assert_eq!(top[0], (DocId(1), 0.3));
        assert_eq!(top[4], (DocId(0), 0.1));
        // Small shards whose list holds everything never scan.
        let all = ShardState::build(&snap, 0..2, 16);
        let (_, from_heap) = all.top_k(9);
        assert!(from_heap);
    }

    #[test]
    fn repin_shares_data_and_advances_the_epoch() {
        let snap1 = snapshot(1, vec![0.1, 0.3, 0.2, 0.25, 0.15]);
        let shard = ShardState::build(&snap1, 0..2, 3);
        let snap2 = snapshot(2, vec![0.1, 0.3, 0.2, 0.25, 0.15]);
        let repinned = shard.repin(&snap2);
        assert_eq!(repinned.epoch(), 2);
        assert!(repinned.shares_data_with(&shard));
        assert_eq!(repinned.top_k(3), shard.top_k(3));
        let rebuilt = ShardState::build(&snap2, 0..2, 3);
        assert!(!rebuilt.shares_data_with(&shard));
    }

    #[test]
    fn refresh_remerges_the_top_under_rescaled_scores() {
        let snap1 = snapshot(1, vec![0.1, 0.3, 0.2, 0.25, 0.15]);
        let shard = ShardState::build(&snap1, 0..2, 3);
        // Site 0's weight shrank, site 1's grew: per-site orders are
        // unchanged but the cross-site interleaving flips.
        let snap2 = snapshot(2, vec![0.02, 0.06, 0.30, 0.375, 0.225]);
        let refreshed = shard.refresh(&snap2, 3);
        assert_eq!(refreshed.epoch(), 2);
        assert!(!refreshed.shares_data_with(&shard));
        assert!(refreshed.shares_orders_with(&shard));
        let (top, from_heap) = refreshed.top_k(3);
        assert!(from_heap);
        assert_eq!(
            top,
            vec![(DocId(3), 0.375), (DocId(2), 0.30), (DocId(4), 0.225)]
        );
        // The refreshed top equals a full rebuild's, entry for entry.
        let rebuilt = ShardState::build(&snap2, 0..2, 3);
        assert_eq!(refreshed.top_k(3), rebuilt.top_k(3));
        // Per-site answers read fresh scores through the shared orders.
        assert_eq!(
            refreshed.site_top_k(SiteId(0), 2),
            SiteTopK::Entries(vec![(DocId(1), 0.06), (DocId(0), 0.02)])
        );
    }

    #[test]
    fn tombstoned_docs_and_sites_answer_typed() {
        // Site 1 removed: members empty, its docs dead (slots remain).
        let snap = RankSnapshot::new(
            2,
            "test".into(),
            Arc::new(vec![0.4, 0.6, 0.0, 0.0, 0.0]),
            None,
            Arc::new(vec![vec![DocId(0), DocId(1)], Vec::new()]),
            Arc::new(vec![SiteId(0), SiteId(0), SiteId(1), SiteId(1), SiteId(1)]),
            Staleness::Resized {
                sites: vec![],
                removed_sites: vec![1],
            },
        );
        let shard = ShardState::build(&snap, 0..2, 4);
        assert_eq!(shard.n_docs(), 2);
        assert_eq!(shard.score(DocId(0)), DocScore::Live(0.4));
        assert_eq!(shard.score(DocId(3)), DocScore::Tombstoned);
        assert_eq!(shard.score(DocId(7)), DocScore::Unknown);
        assert_eq!(shard.site_top_k(SiteId(1), 2), SiteTopK::Tombstoned);
        assert_eq!(shard.site_top_k(SiteId(5), 2), SiteTopK::NotCovered);
        let (top, _) = shard.top_k(4);
        assert_eq!(top, vec![(DocId(1), 0.6), (DocId(0), 0.4)]);
    }

    #[test]
    fn site_outside_the_shard_is_refused() {
        let snap = snapshot(1, vec![0.1, 0.3, 0.2, 0.25, 0.15]);
        let shard = ShardState::build(&snap, 1..2, 3);
        assert_eq!(shard.site_top_k(SiteId(0), 2), SiteTopK::NotCovered);
        assert_eq!(shard.site_top_k(SiteId(7), 2), SiteTopK::NotCovered);
        assert!(matches!(
            shard.site_top_k(SiteId(1), 2),
            SiteTopK::Entries(_)
        ));
        // But scores of foreign documents still answer (global vector).
        assert_eq!(shard.score(DocId(0)), DocScore::Live(0.1));
    }
}
