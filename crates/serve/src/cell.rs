//! [`ArcCell`]: a hand-rolled, std-only, lock-free swappable `Arc` slot —
//! the primitive under the serving tier's read path.
//!
//! # Why not `Mutex<Arc<T>>`
//!
//! The tier's reads used to clone the current `Arc` out of a mutexed
//! cell. The clone itself is a pointer copy, but the mutex acquisition is
//! a serialization point: every reader of a shard funnels through one
//! cache line with a compare-and-swap *and a potential futex sleep* —
//! exactly the kind of hidden convoy an open-loop latency distribution
//! exposes at the tail. `ArcCell` replaces it with a wait-free-in-practice
//! read: two atomic loads, one counter increment/decrement, no syscall,
//! no parking, and — crucially — **no reader ever blocks on a publisher,
//! and no publisher ever blocks a reader**.
//!
//! # The algorithm
//!
//! The classic hazard with `AtomicPtr<ArcInner>` is the load/refcount
//! race: a reader that loads the pointer can be preempted before it
//! increments the strong count, while a writer swaps the pointer and
//! drops what turns out to be the last reference — a use-after-free.
//! Production crates solve this with hazard pointers or split refcounts;
//! this cell solves it with something simpler that fits the tier's shape
//! (many readers, rare single writer serialized by the publish gate): a
//! **two-slot seqlock-validated guard counter**.
//!
//! Each slot holds one owned `Arc` reference (as a raw pointer) plus a
//! guard counter of in-flight readers. `current` names the live slot.
//!
//! * **Read** (`load`): read `current = i`; increment `slots[i].guards`;
//!   *re-read* `current` (the seqlock-style validation). If it still says
//!   `i`, the slot is pinned: a writer cannot touch `slots[i].ptr` until
//!   the guard drops (writers only overwrite the slot that is *not*
//!   current, after waiting for its guards to drain — and a validated
//!   guard proves this slot was current strictly after the increment).
//!   Clone the `Arc`, decrement, done. If validation fails (a store
//!   flipped `current` in the window), decrement and retry — the guard
//!   was transient and the pointer was never dereferenced.
//! * **Write** (`store`): take the spare slot `j = 1 - current`; wait for
//!   `slots[j].guards == 0` (only stragglers from *before the previous
//!   flip* can hold validated guards there, and they are mid-clone, so
//!   the wait is bounded and short — this is the only waiting in the
//!   cell, and it is writer-waits-for-reader, never the reverse); swap in
//!   the new pointer, drop the old reference, then flip `current` to `j`.
//!
//! A reader that increments the spare slot's guard *while the writer is
//! overwriting it* is harmless by construction: its validation re-read of
//! `current` cannot succeed until the writer's final flip, and the flip
//! happens-after the new pointer is in place, so a validated reader
//! always dereferences the new value. The one-writer-at-a-time discipline
//! is enforced internally with a spin claim (`writer`), though in the
//! serving tier publishes are already serialized by the publish gate.
//!
//! Every atomic here is `SeqCst`. The reader's
//! increment-then-validate against the writer's publish-then-check is a
//! store-buffering (Dekker) pattern: with anything weaker, the reader's
//! guard increment could become visible *after* the writer's guard check
//! even though the reader's validation load saw the pre-flip `current`,
//! and both sides would proceed — reader dereferencing, writer freeing.
//! On x86 these are `lock`-prefixed RMWs the read path needs anyway; the
//! cost is noise next to the mutex + futex pair this replaces.
//!
//! A monotone [`version`](ArcCell::version) counter (odd while a store is
//! in flight) gives observers a seqlock-grade "did a swap happen / is one
//! happening" signal without touching the data path; the latency bench
//! uses it to tag epoch-swap windows.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One slot: an owned `Arc<T>` reference held as a raw pointer, plus the
/// count of readers currently cloning out of it.
struct Slot<T> {
    /// `Arc::into_raw` of the slot's value; never null once initialized.
    ptr: AtomicPtr<T>,
    /// In-flight readers pinning this slot (validated or about to
    /// validate). A writer may only replace `ptr` while this is 0 *and*
    /// the slot is not `current`.
    guards: AtomicUsize,
}

impl<T> Slot<T> {
    fn new(value: Arc<T>) -> Self {
        Self {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            guards: AtomicUsize::new(0),
        }
    }
}

/// A lock-free cell holding an `Arc<T>`, readable by any number of
/// threads while a writer swaps in replacements. See the module docs for
/// the algorithm and its safety argument.
pub struct ArcCell<T> {
    slots: [Slot<T>; 2],
    /// Index (0 or 1) of the live slot.
    current: AtomicUsize,
    /// Seqlock-style store counter: odd while a store is in flight, even
    /// when quiescent; bumped twice per completed store.
    version: AtomicU64,
    /// Writer mutual exclusion (spin claim): `store` is safe to call
    /// concurrently, but writers serialize here.
    writer: AtomicBool,
}

// SAFETY: the cell hands out `Arc<T>` clones and owns its two references
// through raw pointers; moving the cell between threads or sharing it is
// exactly as safe as sharing `Arc<T>` itself.
unsafe impl<T: Send + Sync> Send for ArcCell<T> {}
unsafe impl<T: Send + Sync> Sync for ArcCell<T> {}

impl<T> ArcCell<T> {
    /// A cell initially holding `value`. The spare slot starts with its
    /// own reference to the same value so both slots are always valid.
    #[must_use]
    pub fn new(value: Arc<T>) -> Self {
        Self {
            slots: [Slot::new(Arc::clone(&value)), Slot::new(value)],
            current: AtomicUsize::new(0),
            version: AtomicU64::new(0),
            writer: AtomicBool::new(false),
        }
    }

    /// Clones the current value out of the cell. Lock-free: two loads, an
    /// increment and a decrement on the happy path; retries only while a
    /// store's flip lands in the validation window, which resolves in one
    /// step (the freshly flipped slot validates immediately).
    #[must_use]
    pub fn load(&self) -> Arc<T> {
        loop {
            let idx = self.current.load(Ordering::SeqCst);
            self.slots[idx].guards.fetch_add(1, Ordering::SeqCst);
            if self.current.load(Ordering::SeqCst) == idx {
                // Validated: `idx` was current strictly after our guard
                // landed, so a writer retiring this slot must first
                // observe `guards > 0` and wait for us.
                let ptr = self.slots[idx].ptr.load(Ordering::SeqCst);
                // SAFETY: the validated guard pins `ptr`: the writer
                // replaces a slot's pointer (and drops its reference)
                // only after the slot stopped being `current` AND its
                // guards drained to zero — we hold one. The cell owns a
                // strong reference for as long as the pointer sits in the
                // slot, so materializing a borrowed Arc and cloning it is
                // sound; `increment_strong_count` is exactly that.
                unsafe { Arc::increment_strong_count(ptr) };
                let arc = unsafe { Arc::from_raw(ptr) };
                self.slots[idx].guards.fetch_sub(1, Ordering::SeqCst);
                return arc;
            }
            // A store flipped `current` inside our window: the guard is
            // transient (never dereferenced); undo and retry.
            self.slots[idx].guards.fetch_sub(1, Ordering::SeqCst);
            std::hint::spin_loop();
        }
    }

    /// Publishes `value`, dropping the cell's reference to the value two
    /// stores ago. Readers are never blocked: they keep loading the old
    /// value until the final flip, after which they load the new one. The
    /// writer spins only on stragglers mid-clone in the spare slot.
    pub fn store(&self, value: Arc<T>) {
        // Writers serialize (the serving tier already serializes them on
        // the publish gate; this makes the cell safe on its own).
        while self.writer.swap(true, Ordering::SeqCst) {
            // Writer-side only: yielding keeps a preempted peer writer
            // from costing a whole timeslice on single-core hosts.
            std::thread::yield_now();
        }
        let cur = self.current.load(Ordering::SeqCst);
        let spare = 1 - cur;
        // Odd version: a store is in flight.
        self.version.fetch_add(1, Ordering::SeqCst);
        // Drain the spare slot: only readers that validated before the
        // *previous* flip can hold guards here, and each is mid-clone.
        // Transient guards (readers about to fail validation) may blip
        // the counter; they never dereference, so waiting them out is a
        // liveness nicety, not a safety need.
        while self.slots[spare].guards.load(Ordering::SeqCst) != 0 {
            // A straggler here is mid-clone; on a single core it needs
            // the CPU we are spinning on, so yield rather than spin.
            std::thread::yield_now();
        }
        let fresh = Arc::into_raw(value).cast_mut();
        let retired = self.slots[spare].ptr.swap(fresh, Ordering::SeqCst);
        // SAFETY: `retired` is the reference the cell owned in the spare
        // slot; it stopped being reachable by validated readers when the
        // guards drained above, so dropping the cell's reference is sound.
        unsafe { drop(Arc::from_raw(retired)) };
        // The flip: from here readers validate against the new slot and
        // see `fresh`. SeqCst orders it after the pointer swap, so a
        // reader whose validation sees the new `current` cannot load the
        // retired pointer.
        self.current.store(spare, Ordering::SeqCst);
        self.version.fetch_add(1, Ordering::SeqCst); // even: store done
        self.writer.store(false, Ordering::SeqCst);
    }

    /// Seqlock-style store counter: odd while a store is in flight, even
    /// when quiescent. Two consecutive equal, even reads bracket a
    /// swap-free window.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }
}

impl<T> Drop for ArcCell<T> {
    fn drop(&mut self) {
        for slot in &self.slots {
            let ptr = slot.ptr.load(Ordering::SeqCst);
            // SAFETY: `&mut self` means no reader holds a guard; each
            // slot owns exactly one strong reference, reclaimed here.
            unsafe { drop(Arc::from_raw(ptr)) };
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcCell")
            .field("value", &self.load())
            .field("version", &self.version())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_the_stored_value() {
        let cell = ArcCell::new(Arc::new(41));
        assert_eq!(*cell.load(), 41);
        cell.store(Arc::new(42));
        assert_eq!(*cell.load(), 42);
        cell.store(Arc::new(43));
        assert_eq!(*cell.load(), 43);
    }

    #[test]
    fn version_brackets_stores() {
        let cell = ArcCell::new(Arc::new(0u64));
        assert_eq!(cell.version(), 0);
        cell.store(Arc::new(1));
        assert_eq!(cell.version(), 2);
        cell.store(Arc::new(2));
        assert_eq!(cell.version(), 4);
    }

    #[test]
    fn drops_every_reference_exactly_once() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let cell = ArcCell::new(Arc::new(Counted(Arc::clone(&drops))));
            for _ in 0..5 {
                cell.store(Arc::new(Counted(Arc::clone(&drops))));
            }
            let held = cell.load();
            cell.store(Arc::new(Counted(Arc::clone(&drops))));
            drop(held);
        }
        // 1 initial + 5 + 1 stored values, all dead with the cell gone.
        assert_eq!(drops.load(Ordering::SeqCst), 7);
    }

    /// Readers hammer `load` while a writer swaps monotonically increasing
    /// values: every loaded value must be one that was stored (liveness +
    /// no tearing), values must never run backwards *within one reader*
    /// more than a swap window allows (monotonicity of `current`), and
    /// the final load must see the last store.
    #[test]
    fn concurrent_loads_survive_stores() {
        const STORES: u64 = 2_000;
        let cell = Arc::new(ArcCell::new(Arc::new(0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut seen = 0u64;
                    // Check `stop` *after* loading: on a single-core host
                    // the writer can finish every store before this thread
                    // is first scheduled, and a load must still succeed
                    // then (readers never block, even with no writer left).
                    loop {
                        let v = *cell.load();
                        assert!(v <= STORES, "load returned a never-stored value");
                        assert!(v >= last, "reader observed time running backwards");
                        last = v;
                        seen += 1;
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                    seen
                })
            })
            .collect();
        for v in 1..=STORES {
            cell.store(Arc::new(v));
        }
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            assert!(r.join().expect("reader panicked") > 0);
        }
        assert_eq!(*cell.load(), STORES);
        assert_eq!(cell.version(), STORES * 2);
    }

    /// Concurrent writers serialize on the internal claim; no reference
    /// is leaked or double-dropped under write contention.
    #[test]
    fn concurrent_stores_serialize() {
        let cell = Arc::new(ArcCell::new(Arc::new(0usize)));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        cell.store(Arc::new(w * 1000 + i));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().expect("writer panicked");
        }
        assert_eq!(cell.version(), 4 * 500 * 2);
        let v = *cell.load();
        assert!((0..4000).contains(&v));
    }
}
