//! Serving-tier telemetry: lock-free counters the experiment harness (and
//! any monitoring layer) reads while the server is hot.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters accumulated over the server's lifetime. All updates
/// are relaxed atomics: the counters order nothing, they only count.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Snapshots published (including no-op re-publishes of the serving
    /// epoch, which swap nothing).
    pub publishes: AtomicU64,
    /// Shard stores rebuilt by publishes (stale shards).
    pub shards_rebuilt: AtomicU64,
    /// Shard stores re-pinned by publishes (fresh shards: new epoch, same
    /// data `Arc`).
    pub shards_repinned: AtomicU64,
    /// Point score lookups answered.
    pub score_queries: AtomicU64,
    /// Batched score lookups answered (one batch = one count).
    pub batch_queries: AtomicU64,
    /// Cross-shard global top-k queries answered.
    pub top_k_queries: AtomicU64,
    /// Single-site top-k queries answered.
    pub site_top_k_queries: AtomicU64,
    /// Pairwise compare queries answered.
    pub compare_queries: AtomicU64,
    /// Scatter-gathers retried because shards straddled a swap.
    pub gather_retries: AtomicU64,
    /// Scatter-gathers that escalated to the publish gate after exhausting
    /// retries.
    pub gather_escalations: AtomicU64,
    /// Shard-local top-k scans taken because `k` exceeded the precomputed
    /// heap capacity.
    pub heap_overflow_scans: AtomicU64,
}

/// A plain-value copy of [`ServeStats`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStatsSnapshot {
    /// See [`ServeStats::publishes`].
    pub publishes: u64,
    /// See [`ServeStats::shards_rebuilt`].
    pub shards_rebuilt: u64,
    /// See [`ServeStats::shards_repinned`].
    pub shards_repinned: u64,
    /// See [`ServeStats::score_queries`].
    pub score_queries: u64,
    /// See [`ServeStats::batch_queries`].
    pub batch_queries: u64,
    /// See [`ServeStats::top_k_queries`].
    pub top_k_queries: u64,
    /// See [`ServeStats::site_top_k_queries`].
    pub site_top_k_queries: u64,
    /// See [`ServeStats::compare_queries`].
    pub compare_queries: u64,
    /// See [`ServeStats::gather_retries`].
    pub gather_retries: u64,
    /// See [`ServeStats::gather_escalations`].
    pub gather_escalations: u64,
    /// See [`ServeStats::heap_overflow_scans`].
    pub heap_overflow_scans: u64,
}

impl ServeStats {
    /// Adds `n` to a counter.
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub(crate) fn bump(counter: &AtomicU64) {
        Self::add(counter, 1);
    }

    /// Reads every counter at one instant (each relaxed — the snapshot is
    /// not a consistent cut, which is fine for counting).
    #[must_use]
    pub fn snapshot(&self) -> ServeStatsSnapshot {
        let read = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServeStatsSnapshot {
            publishes: read(&self.publishes),
            shards_rebuilt: read(&self.shards_rebuilt),
            shards_repinned: read(&self.shards_repinned),
            score_queries: read(&self.score_queries),
            batch_queries: read(&self.batch_queries),
            top_k_queries: read(&self.top_k_queries),
            site_top_k_queries: read(&self.site_top_k_queries),
            compare_queries: read(&self.compare_queries),
            gather_retries: read(&self.gather_retries),
            gather_escalations: read(&self.gather_escalations),
            heap_overflow_scans: read(&self.heap_overflow_scans),
        }
    }
}

impl ServeStatsSnapshot {
    /// Total queries answered, across every query kind.
    #[must_use]
    pub fn total_queries(&self) -> u64 {
        self.score_queries
            + self.batch_queries
            + self.top_k_queries
            + self.site_top_k_queries
            + self.compare_queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_bumped_counters() {
        let stats = ServeStats::default();
        ServeStats::bump(&stats.publishes);
        ServeStats::add(&stats.shards_rebuilt, 3);
        ServeStats::bump(&stats.top_k_queries);
        ServeStats::bump(&stats.score_queries);
        let snap = stats.snapshot();
        assert_eq!(snap.publishes, 1);
        assert_eq!(snap.shards_rebuilt, 3);
        assert_eq!(snap.total_queries(), 2);
    }
}
