//! Serving-tier telemetry: lock-free counters and fixed-bucket latency
//! histograms the experiment harness (and any monitoring layer) reads
//! while the server is hot.
//!
//! The histograms make the read-path split observable in production, not
//! just in the bench: every query records into either the **direct**
//! histogram (answered on the caller's thread from a lock-free shard
//! load) or the **fan-out** histogram (scatter-gathered across the shard
//! workers), so a regression that silently demotes point lookups to the
//! worker path shows up as a shifted distribution, not just a vibe.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` nanoseconds, so 40 buckets span 1ns to ~9 minutes —
/// any serving latency beyond that is an outage, not a tail.
pub const LATENCY_BUCKETS: usize = 40;

/// A fixed-bucket (log2), lock-free latency histogram. Std-only: an
/// array of relaxed counters, no allocation after construction, safe to
/// record into from any number of threads.
#[derive(Debug)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts samples with `floor(log2(ns)) == i`.
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Records one sample of `ns` nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let idx = if ns == 0 {
            0
        } else {
            ((63 - ns.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one sample from a [`Duration`].
    pub fn record(&self, elapsed: Duration) {
        self.record_ns(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Plain-value copy of the buckets at one instant.
    #[must_use]
    pub fn snapshot(&self) -> LatencyHistogramSnapshot {
        LatencyHistogramSnapshot {
            // lint: allow(relaxed, "telemetry histogram buckets: monotonic counters, snapshot need not be a consistent cut")
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A plain-value copy of a [`LatencyHistogram`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogramSnapshot {
    /// `buckets[i]` counts samples in `[2^i, 2^(i+1))` ns.
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

impl LatencyHistogramSnapshot {
    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Exclusive upper bound (ns) of bucket `i`.
    #[must_use]
    pub fn bucket_upper_ns(i: usize) -> u64 {
        if i + 1 >= LATENCY_BUCKETS {
            u64::MAX
        } else {
            1u64 << (i + 1)
        }
    }

    /// Upper bound (ns) of the bucket containing the `q`-quantile
    /// (`0.0 < q <= 1.0`) — a conservative percentile: the true value is
    /// at most this, and at least half of it. `None` when empty.
    #[must_use]
    pub fn quantile_upper_ns(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        // ceil(q * total), clamped to [1, total].
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::bucket_upper_ns(i));
            }
        }
        Some(Self::bucket_upper_ns(LATENCY_BUCKETS - 1))
    }

    /// Merges another snapshot into this one (per-bucket sum).
    pub fn merge(&mut self, other: &LatencyHistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

/// Monotone counters accumulated over the server's lifetime. All updates
/// are relaxed atomics: the counters order nothing, they only count.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Snapshots published (including no-op re-publishes of the serving
    /// epoch, which swap nothing).
    pub publishes: AtomicU64,
    /// Shard stores rebuilt by publishes (stale shards).
    pub shards_rebuilt: AtomicU64,
    /// Shard stores re-pinned by publishes (fresh shards: new epoch, same
    /// data `Arc`).
    pub shards_repinned: AtomicU64,
    /// Shard stores refreshed by removal publishes (per-site orders
    /// reused, shard top list re-merged under redistributed scores).
    pub shards_refreshed: AtomicU64,
    /// Point lookups rejected because they named a tombstoned document or
    /// site.
    pub tombstone_rejections: AtomicU64,
    /// Point score lookups answered.
    pub score_queries: AtomicU64,
    /// Batched score lookups answered (one batch = one count).
    pub batch_queries: AtomicU64,
    /// Cross-shard global top-k queries answered.
    pub top_k_queries: AtomicU64,
    /// Single-site top-k queries answered.
    pub site_top_k_queries: AtomicU64,
    /// Pairwise compare queries answered.
    pub compare_queries: AtomicU64,
    /// Queries answered **directly** on the caller's thread from a
    /// lock-free shard load — zero mutexes, zero mpsc hops. The hot-path
    /// health signal: under a point-lookup workload this should track
    /// `score/batch/site_top_k/compare` counts one-for-one.
    pub direct_hits: AtomicU64,
    /// Queries answered through the worker fan-out (cross-shard gathers,
    /// or every query when `direct_reads` is disabled).
    pub fanout_queries: AtomicU64,
    /// Scatter-gathers retried because shards straddled a swap.
    pub gather_retries: AtomicU64,
    /// Scatter-gathers that escalated to the publish gate after
    /// exhausting retries.
    pub gate_escalations: AtomicU64,
    /// Shard-local top-k scans taken because `k` exceeded the precomputed
    /// heap capacity.
    pub heap_overflow_scans: AtomicU64,
    /// Latency of direct-path queries (caller-thread, lock-free).
    pub direct_latency: LatencyHistogram,
    /// Latency of fan-out queries (worker scatter-gather).
    pub fanout_latency: LatencyHistogram,
}

/// A plain-value copy of [`ServeStats`] at one instant, extended by
/// [`ShardedServer::stats`](crate::ShardedServer::stats) with the live
/// per-shard document counts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeStatsSnapshot {
    /// See [`ServeStats::publishes`].
    pub publishes: u64,
    /// See [`ServeStats::shards_rebuilt`].
    pub shards_rebuilt: u64,
    /// See [`ServeStats::shards_repinned`].
    pub shards_repinned: u64,
    /// See [`ServeStats::shards_refreshed`].
    pub shards_refreshed: u64,
    /// See [`ServeStats::tombstone_rejections`].
    pub tombstone_rejections: u64,
    /// Live documents per shard at the instant of the snapshot (filled by
    /// `ShardedServer::stats`; empty when read straight off `ServeStats`).
    /// Removal drains entries in place and growth piles into the last
    /// shard — the imbalance a dynamic resharder triggers on.
    pub shard_docs: Vec<u64>,
    /// See [`ServeStats::score_queries`].
    pub score_queries: u64,
    /// See [`ServeStats::batch_queries`].
    pub batch_queries: u64,
    /// See [`ServeStats::top_k_queries`].
    pub top_k_queries: u64,
    /// See [`ServeStats::site_top_k_queries`].
    pub site_top_k_queries: u64,
    /// See [`ServeStats::compare_queries`].
    pub compare_queries: u64,
    /// See [`ServeStats::direct_hits`].
    pub direct_hits: u64,
    /// See [`ServeStats::fanout_queries`].
    pub fanout_queries: u64,
    /// See [`ServeStats::gather_retries`].
    pub gather_retries: u64,
    /// See [`ServeStats::gate_escalations`].
    pub gate_escalations: u64,
    /// See [`ServeStats::heap_overflow_scans`].
    pub heap_overflow_scans: u64,
    /// See [`ServeStats::direct_latency`].
    pub direct_latency: LatencyHistogramSnapshot,
    /// See [`ServeStats::fanout_latency`].
    pub fanout_latency: LatencyHistogramSnapshot,
}

impl ServeStats {
    /// Adds `n` to a counter.
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub(crate) fn bump(counter: &AtomicU64) {
        Self::add(counter, 1);
    }

    /// Reads every counter at one instant (each relaxed — the snapshot is
    /// not a consistent cut, which is fine for counting).
    #[must_use]
    pub fn snapshot(&self) -> ServeStatsSnapshot {
        // lint: allow(relaxed, "telemetry snapshot: every field read here is a monotonic counter")
        let read = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServeStatsSnapshot {
            publishes: read(&self.publishes),
            shards_rebuilt: read(&self.shards_rebuilt),
            shards_repinned: read(&self.shards_repinned),
            shards_refreshed: read(&self.shards_refreshed),
            tombstone_rejections: read(&self.tombstone_rejections),
            shard_docs: Vec::new(),
            score_queries: read(&self.score_queries),
            batch_queries: read(&self.batch_queries),
            top_k_queries: read(&self.top_k_queries),
            site_top_k_queries: read(&self.site_top_k_queries),
            compare_queries: read(&self.compare_queries),
            direct_hits: read(&self.direct_hits),
            fanout_queries: read(&self.fanout_queries),
            gather_retries: read(&self.gather_retries),
            gate_escalations: read(&self.gate_escalations),
            heap_overflow_scans: read(&self.heap_overflow_scans),
            direct_latency: self.direct_latency.snapshot(),
            fanout_latency: self.fanout_latency.snapshot(),
        }
    }
}

impl ServeStatsSnapshot {
    /// Total queries answered, across every query kind.
    #[must_use]
    pub fn total_queries(&self) -> u64 {
        self.score_queries
            + self.batch_queries
            + self.top_k_queries
            + self.site_top_k_queries
            + self.compare_queries
    }

    /// Gather retries per answered query — the bounded-retries signal the
    /// chaos harness asserts on: under a seeded fault schedule this must
    /// stay a small constant instead of growing with run length (a retry
    /// storm shows up here long before it shows up as latency). `0.0`
    /// before any query.
    #[must_use]
    pub fn retries_per_query(&self) -> f64 {
        if self.total_queries() == 0 {
            return 0.0;
        }
        self.gather_retries as f64 / self.total_queries() as f64
    }

    /// Per-shard document-count skew: the largest shard's live doc count
    /// over the mean — `1.0` is perfectly balanced, and a value drifting
    /// upward under churn (removal draining some shards, growth clamping
    /// into the last) is the dynamic-resharding trigger signal. `1.0` when
    /// `shard_docs` is empty or the server holds no documents.
    #[must_use]
    pub fn doc_skew(&self) -> f64 {
        let total: u64 = self.shard_docs.iter().sum();
        if self.shard_docs.is_empty() || total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.shard_docs.len() as f64;
        let max = *self.shard_docs.iter().max().expect("non-empty") as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_bumped_counters() {
        let stats = ServeStats::default();
        ServeStats::bump(&stats.publishes);
        ServeStats::add(&stats.shards_rebuilt, 3);
        ServeStats::add(&stats.shards_refreshed, 2);
        ServeStats::bump(&stats.tombstone_rejections);
        ServeStats::bump(&stats.top_k_queries);
        ServeStats::bump(&stats.score_queries);
        ServeStats::bump(&stats.direct_hits);
        ServeStats::bump(&stats.fanout_queries);
        let snap = stats.snapshot();
        assert_eq!(snap.publishes, 1);
        assert_eq!(snap.shards_rebuilt, 3);
        assert_eq!(snap.shards_refreshed, 2);
        assert_eq!(snap.tombstone_rejections, 1);
        assert_eq!(snap.direct_hits, 1);
        assert_eq!(snap.fanout_queries, 1);
        assert_eq!(snap.total_queries(), 2);
    }

    #[test]
    fn doc_skew_measures_imbalance() {
        let mut snap = ServeStatsSnapshot::default();
        assert!((snap.doc_skew() - 1.0).abs() < 1e-12);
        snap.shard_docs = vec![100, 100, 100, 100];
        assert!((snap.doc_skew() - 1.0).abs() < 1e-12);
        // One shard drained to 40, another bloated to 160: skew = 160/100.
        snap.shard_docs = vec![40, 100, 100, 160];
        assert!((snap.doc_skew() - 1.6).abs() < 1e-12);
        snap.shard_docs = vec![0, 0];
        assert!((snap.doc_skew() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = LatencyHistogram::default();
        h.record_ns(0); // bucket 0
        h.record_ns(1); // bucket 0
        h.record_ns(2); // bucket 1
        h.record_ns(3); // bucket 1
        h.record_ns(1024); // bucket 10
        h.record_ns(u64::MAX); // clamped to the last bucket
        let snap = h.snapshot();
        assert_eq!(snap.count(), 6);
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets[1], 2);
        assert_eq!(snap.buckets[10], 1);
        assert_eq!(snap.buckets[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn histogram_quantiles_are_conservative_upper_bounds() {
        let h = LatencyHistogram::default();
        assert_eq!(h.snapshot().quantile_upper_ns(0.99), None);
        // 99 fast samples at ~1µs, one slow at ~1ms.
        for _ in 0..99 {
            h.record_ns(1_000); // bucket 9: [512, 1024)
        }
        h.record_ns(1_000_000); // bucket 19
        let snap = h.snapshot();
        assert_eq!(snap.quantile_upper_ns(0.5), Some(1024));
        assert_eq!(snap.quantile_upper_ns(0.99), Some(1024));
        // The single outlier owns the p999.
        assert_eq!(snap.quantile_upper_ns(0.999), Some(1 << 20));
        assert_eq!(snap.quantile_upper_ns(1.0), Some(1 << 20));
    }

    #[test]
    fn histogram_merge_sums_buckets() {
        let a = LatencyHistogram::default();
        let b = LatencyHistogram::default();
        a.record_ns(10);
        b.record_ns(10);
        b.record_ns(100_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
        assert_eq!(m.buckets[3], 2); // 10ns -> bucket 3: [8, 16)
    }

    #[test]
    fn histogram_records_durations() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(3)); // 3000ns -> bucket 11
        assert_eq!(h.snapshot().buckets[11], 1);
    }
}
