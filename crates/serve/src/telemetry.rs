//! Serving-tier telemetry: lock-free counters the experiment harness (and
//! any monitoring layer) reads while the server is hot.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters accumulated over the server's lifetime. All updates
/// are relaxed atomics: the counters order nothing, they only count.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Snapshots published (including no-op re-publishes of the serving
    /// epoch, which swap nothing).
    pub publishes: AtomicU64,
    /// Shard stores rebuilt by publishes (stale shards).
    pub shards_rebuilt: AtomicU64,
    /// Shard stores re-pinned by publishes (fresh shards: new epoch, same
    /// data `Arc`).
    pub shards_repinned: AtomicU64,
    /// Shard stores refreshed by removal publishes (per-site orders
    /// reused, shard top list re-merged under redistributed scores).
    pub shards_refreshed: AtomicU64,
    /// Point lookups rejected because they named a tombstoned document or
    /// site.
    pub tombstone_rejections: AtomicU64,
    /// Point score lookups answered.
    pub score_queries: AtomicU64,
    /// Batched score lookups answered (one batch = one count).
    pub batch_queries: AtomicU64,
    /// Cross-shard global top-k queries answered.
    pub top_k_queries: AtomicU64,
    /// Single-site top-k queries answered.
    pub site_top_k_queries: AtomicU64,
    /// Pairwise compare queries answered.
    pub compare_queries: AtomicU64,
    /// Scatter-gathers retried because shards straddled a swap.
    pub gather_retries: AtomicU64,
    /// Scatter-gathers that escalated to the publish gate after exhausting
    /// retries.
    pub gather_escalations: AtomicU64,
    /// Shard-local top-k scans taken because `k` exceeded the precomputed
    /// heap capacity.
    pub heap_overflow_scans: AtomicU64,
}

/// A plain-value copy of [`ServeStats`] at one instant, extended by
/// [`ShardedServer::stats`](crate::ShardedServer::stats) with the live
/// per-shard document counts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeStatsSnapshot {
    /// See [`ServeStats::publishes`].
    pub publishes: u64,
    /// See [`ServeStats::shards_rebuilt`].
    pub shards_rebuilt: u64,
    /// See [`ServeStats::shards_repinned`].
    pub shards_repinned: u64,
    /// See [`ServeStats::shards_refreshed`].
    pub shards_refreshed: u64,
    /// See [`ServeStats::tombstone_rejections`].
    pub tombstone_rejections: u64,
    /// Live documents per shard at the instant of the snapshot (filled by
    /// `ShardedServer::stats`; empty when read straight off `ServeStats`).
    /// Removal drains entries in place and growth piles into the last
    /// shard — the imbalance a dynamic resharder triggers on.
    pub shard_docs: Vec<u64>,
    /// See [`ServeStats::score_queries`].
    pub score_queries: u64,
    /// See [`ServeStats::batch_queries`].
    pub batch_queries: u64,
    /// See [`ServeStats::top_k_queries`].
    pub top_k_queries: u64,
    /// See [`ServeStats::site_top_k_queries`].
    pub site_top_k_queries: u64,
    /// See [`ServeStats::compare_queries`].
    pub compare_queries: u64,
    /// See [`ServeStats::gather_retries`].
    pub gather_retries: u64,
    /// See [`ServeStats::gather_escalations`].
    pub gather_escalations: u64,
    /// See [`ServeStats::heap_overflow_scans`].
    pub heap_overflow_scans: u64,
}

impl ServeStats {
    /// Adds `n` to a counter.
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub(crate) fn bump(counter: &AtomicU64) {
        Self::add(counter, 1);
    }

    /// Reads every counter at one instant (each relaxed — the snapshot is
    /// not a consistent cut, which is fine for counting).
    #[must_use]
    pub fn snapshot(&self) -> ServeStatsSnapshot {
        // lint: allow(relaxed, "telemetry snapshot: every field read here is a monotonic counter")
        let read = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServeStatsSnapshot {
            publishes: read(&self.publishes),
            shards_rebuilt: read(&self.shards_rebuilt),
            shards_repinned: read(&self.shards_repinned),
            shards_refreshed: read(&self.shards_refreshed),
            tombstone_rejections: read(&self.tombstone_rejections),
            shard_docs: Vec::new(),
            score_queries: read(&self.score_queries),
            batch_queries: read(&self.batch_queries),
            top_k_queries: read(&self.top_k_queries),
            site_top_k_queries: read(&self.site_top_k_queries),
            compare_queries: read(&self.compare_queries),
            gather_retries: read(&self.gather_retries),
            gather_escalations: read(&self.gather_escalations),
            heap_overflow_scans: read(&self.heap_overflow_scans),
        }
    }
}

impl ServeStatsSnapshot {
    /// Total queries answered, across every query kind.
    #[must_use]
    pub fn total_queries(&self) -> u64 {
        self.score_queries
            + self.batch_queries
            + self.top_k_queries
            + self.site_top_k_queries
            + self.compare_queries
    }

    /// Gather retries per answered query — the bounded-retries signal the
    /// chaos harness asserts on: under a seeded fault schedule this must
    /// stay a small constant instead of growing with run length (a retry
    /// storm shows up here long before it shows up as latency). `0.0`
    /// before any query.
    #[must_use]
    pub fn retries_per_query(&self) -> f64 {
        if self.total_queries() == 0 {
            return 0.0;
        }
        self.gather_retries as f64 / self.total_queries() as f64
    }

    /// Per-shard document-count skew: the largest shard's live doc count
    /// over the mean — `1.0` is perfectly balanced, and a value drifting
    /// upward under churn (removal draining some shards, growth clamping
    /// into the last) is the dynamic-resharding trigger signal. `1.0` when
    /// `shard_docs` is empty or the server holds no documents.
    #[must_use]
    pub fn doc_skew(&self) -> f64 {
        let total: u64 = self.shard_docs.iter().sum();
        if self.shard_docs.is_empty() || total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.shard_docs.len() as f64;
        let max = *self.shard_docs.iter().max().expect("non-empty") as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_bumped_counters() {
        let stats = ServeStats::default();
        ServeStats::bump(&stats.publishes);
        ServeStats::add(&stats.shards_rebuilt, 3);
        ServeStats::add(&stats.shards_refreshed, 2);
        ServeStats::bump(&stats.tombstone_rejections);
        ServeStats::bump(&stats.top_k_queries);
        ServeStats::bump(&stats.score_queries);
        let snap = stats.snapshot();
        assert_eq!(snap.publishes, 1);
        assert_eq!(snap.shards_rebuilt, 3);
        assert_eq!(snap.shards_refreshed, 2);
        assert_eq!(snap.tombstone_rejections, 1);
        assert_eq!(snap.total_queries(), 2);
    }

    #[test]
    fn doc_skew_measures_imbalance() {
        let mut snap = ServeStatsSnapshot::default();
        assert!((snap.doc_skew() - 1.0).abs() < 1e-12);
        snap.shard_docs = vec![100, 100, 100, 100];
        assert!((snap.doc_skew() - 1.0).abs() < 1e-12);
        // One shard drained to 40, another bloated to 160: skew = 160/100.
        snap.shard_docs = vec![40, 100, 100, 160];
        assert!((snap.doc_skew() - 1.6).abs() < 1e-12);
        snap.shard_docs = vec![0, 0];
        assert!((snap.doc_skew() - 1.0).abs() < 1e-12);
    }
}
