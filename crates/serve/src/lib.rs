//! # `lmm-serve` — the sharded serving tier
//!
//! The paper computes rankings in a distributed, per-site fashion so they
//! can be *consumed* that way too; this crate is the consumption side: a
//! std-only, read-mostly serving tier over `lmm-engine`'s snapshots, built
//! for the ROADMAP's "heavy traffic" north star.
//!
//! ```text
//!                 ┌──────────────┐   GraphDelta    ┌─────────────┐
//!   writer thread │  RankEngine  │ ──────────────► │ RankSnapshot│
//!                 │ (incremental)│    apply_delta  │ epoch E+1   │
//!                 └──────────────┘                 │ + Staleness │
//!                                                  └──────┬──────┘
//!                                                 publish │ (shard-by-shard,
//!                                                         ▼  rebuild or re-pin)
//!                 ┌───────────────────────────────────────────────┐
//!                 │                ShardedServer                  │
//!   point reads ──┼─► ArcCell load ─────────────► ShardState      │
//!   (direct,      │      (lock-free, caller's thread)             │
//!    lock-free)   │                                               │
//!                 │  router ──┬── mpsc ──► worker 0 ── ArcCell    │
//!   cross-shard   │  (scatter ├── mpsc ──► worker 1 ── ArcCell    │
//!   gathers ────► │   gather, └── mpsc ──► worker n ── ArcCell    │
//!   top-k/batch   │   epoch-checked, gate-escalated)              │
//!                 └───────────────────────────────────────────────┘
//! ```
//!
//! * **Shard = contiguous site range** ([`ShardMap`], from `lmm-graph`):
//!   the paper's unit of computation is the unit of serving, so the
//!   incremental layer's per-site staleness sets translate directly into
//!   shard invalidation sets.
//! * **Per-shard stores** ([`ShardState`]): precomputed top-k heaps,
//!   per-site serving orders, and score lookups over one pinned immutable
//!   [`RankSnapshot`](lmm_engine::RankSnapshot), each held in a lock-free
//!   [`ArcCell`] swapped atomically by the publisher.
//! * **Direct read path**: single-shard point queries (`score`, one-shard
//!   batches, `top_k_for_site`) answer on the **caller's thread** from a
//!   lock-free cell load — zero mutexes, zero mpsc hops.
//! * **Fixed worker pool**: one persistent worker per shard parked on an
//!   mpsc queue (the `lmm-par` idiom, specialized to long-lived serving),
//!   reserved for cross-shard scatter-gathers.
//! * **Router**: batches point lookups per shard and scatter-gathers
//!   cross-shard top-k from per-shard partial heaps, merging at the
//!   router. Every response carries exactly one epoch; gathers that
//!   straddle a swap retry, then escalate to the publish gate.
//! * **Writes never block reads** ([`ShardedServer::publish`]): a delta
//!   produces a new snapshot + staleness set; only stale shards rebuild,
//!   the rest re-pin their store `Arc` under the new epoch — or, after a
//!   removal redistributed the SiteRank, *refresh* (per-site orders
//!   reused, shard top list re-merged) — and readers keep answering
//!   (from the old epoch) throughout the swap.
//! * **Removal is first-class**: tombstoned documents and sites answer
//!   typed errors ([`ServeError::TombstonedDoc`] /
//!   [`ServeError::TombstonedSite`]) instead of stale scores, and
//!   [`ServeStatsSnapshot::doc_skew`] exposes the per-shard doc-count
//!   imbalance churn leaves behind — the dynamic-resharding trigger.
//!
//! # Example
//!
//! ```
//! use lmm_engine::{BackendSpec, RankEngine};
//! use lmm_graph::generator::CampusWebConfig;
//! use lmm_graph::sharding::ShardMap;
//! use lmm_serve::{ServeConfig, ShardedServer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cfg = CampusWebConfig::small();
//! cfg.total_docs = 300;
//! cfg.n_sites = 8;
//! cfg.spam_farms.clear();
//! let graph = cfg.generate()?;
//!
//! let mut engine = RankEngine::builder()
//!     .backend(BackendSpec::Incremental)
//!     .build()?;
//! engine.rank(&graph)?;
//!
//! let server = ShardedServer::start(
//!     ShardMap::balanced(&graph, 4)?,
//!     &engine.snapshot()?,
//!     ServeConfig::default(),
//! )?;
//! let (epoch, top) = server.top_k(5)?;
//! assert_eq!(epoch, 1);
//! assert_eq!(top, engine.top_k(5)?); // bitwise: same scores, same order
//! # Ok(())
//! # }
//! ```

pub mod cell;
pub mod error;
pub mod query;
pub mod router;
pub mod shard;
pub mod telemetry;

pub use cell::ArcCell;
pub use error::{Result, ServeError};
pub use query::ShardQuery;
pub use router::{
    publish_grades, shard_site_range, PublishReport, ServeConfig, ShardedServer, SwapGrade,
};
pub use shard::{DocScore, ShardState, SiteTopK};
pub use telemetry::{
    LatencyHistogram, LatencyHistogramSnapshot, ServeStats, ServeStatsSnapshot, LATENCY_BUCKETS,
};

// Re-exported so downstream code can name the shard key without a direct
// lmm-graph dependency.
pub use lmm_graph::sharding::ShardMap;
