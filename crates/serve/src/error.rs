//! Error type of the serving tier.

use std::error::Error as StdError;
use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Errors produced by server construction, publishing, and queries.
#[derive(Debug)]
pub enum ServeError {
    /// The server was configured inconsistently (shard map vs snapshot).
    InvalidConfig {
        /// Human-readable cause.
        reason: String,
    },
    /// A query referenced a document the answering epoch does not rank.
    UnknownDoc {
        /// The offending document index.
        doc: usize,
        /// The epoch that could not answer.
        epoch: u64,
    },
    /// A query referenced a site the answering epoch does not rank.
    UnknownSite {
        /// The offending site index.
        site: usize,
        /// The epoch that could not answer.
        epoch: u64,
    },
    /// A point lookup named a document that **was** ranked but has been
    /// removed — its id slot is tombstoned. Distinct from
    /// [`UnknownDoc`](ServeError::UnknownDoc) so clients can tell "never
    /// existed" from "gone": the first is a caller bug, the second is the
    /// web shrinking under them.
    TombstonedDoc {
        /// The removed document's (stable) id.
        doc: usize,
        /// The epoch that answered.
        epoch: u64,
    },
    /// A site-scoped query named a site that was removed.
    TombstonedSite {
        /// The removed site's (stable) id.
        site: usize,
        /// The epoch that answered.
        epoch: u64,
    },
    /// A published snapshot's epoch is older than the one being served.
    StaleSnapshot {
        /// Epoch of the rejected snapshot.
        published: u64,
        /// Epoch currently served.
        serving: u64,
    },
    /// A shard worker is gone (the server is shutting down).
    ShardDown {
        /// Index of the unreachable shard.
        shard: usize,
    },
    /// The OS refused to spawn a shard worker thread at construction
    /// (resource exhaustion) — the server cannot come up.
    WorkerSpawn {
        /// Shard whose worker failed to start.
        shard: usize,
        /// The OS error.
        reason: String,
    },
    /// The publish gate is poisoned: a publisher panicked mid-swap. The
    /// per-shard stores are individually intact (each swap is one `Arc`
    /// assignment), but the tier may be serving a mix of epochs that no
    /// new publish will repair, so publishing and gate-escalated gathers
    /// fail typed instead of propagating the panic into callers — readers
    /// on the single-shard fast path keep answering.
    PublishPoisoned,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig { reason } => {
                write!(f, "invalid serving configuration: {reason}")
            }
            ServeError::UnknownDoc { doc, epoch } => {
                write!(f, "document {doc} unknown at serving epoch {epoch}")
            }
            ServeError::UnknownSite { site, epoch } => {
                write!(f, "site {site} unknown at serving epoch {epoch}")
            }
            ServeError::TombstonedDoc { doc, epoch } => {
                write!(
                    f,
                    "document {doc} was removed (tombstoned) as of epoch {epoch}"
                )
            }
            ServeError::TombstonedSite { site, epoch } => {
                write!(
                    f,
                    "site {site} was removed (tombstoned) as of epoch {epoch}"
                )
            }
            ServeError::StaleSnapshot { published, serving } => {
                write!(
                    f,
                    "snapshot epoch {published} is older than serving epoch {serving}"
                )
            }
            ServeError::ShardDown { shard } => {
                write!(f, "shard {shard} worker is no longer running")
            }
            ServeError::WorkerSpawn { shard, reason } => {
                write!(f, "failed to spawn worker for shard {shard}: {reason}")
            }
            ServeError::PublishPoisoned => {
                write!(f, "publish gate poisoned: a publisher panicked mid-swap")
            }
        }
    }
}

impl StdError for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ServeError::UnknownDoc { doc: 42, epoch: 7 };
        assert!(e.to_string().contains("42"));
        assert!(e.to_string().contains('7'));
        let e = ServeError::StaleSnapshot {
            published: 3,
            serving: 5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
    }

    #[test]
    fn error_bounds() {
        fn assert_bounds<E: StdError + Send + Sync + 'static>() {}
        assert_bounds::<ServeError>();
    }
}
