//! The sharded server: a lock-free direct read path for single-shard
//! point queries, a fixed pool of shard workers fed by mpsc request
//! queues for cross-shard gathers, and an epoch-swap publisher that never
//! blocks reads.
//!
//! # Concurrency design
//!
//! Each shard owns a **cell** ([`ArcCell<ShardState>`]) holding its
//! current immutable state. Loading a cell is lock-free (see
//! [`crate::cell`] for the algorithm): no mutex, no syscall, no worker
//! wakeup — so a publish in progress never blocks a query, and a query
//! never observes a half-built store. The routing snapshot (doc → shard)
//! lives in its own `ArcCell` and is read the same way.
//!
//! Queries split by shape:
//!
//! * **Direct path** (single-shard point queries — [`score`], one-shard
//!   [`score_batch`], [`top_k_for_site`], [`compare`] of co-sharded
//!   docs): answered on the **caller's thread** against the loaded
//!   `Arc<ShardState>`. Zero mutex acquisitions, zero mpsc sends. One
//!   loaded state means exactly one epoch by construction.
//! * **Fan-out path** (cross-shard gathers — [`top_k`], multi-shard
//!   batches): scattered to the per-shard workers over mpsc and merged at
//!   the router, because a gather wants the shards computing in parallel.
//!
//! The publisher walks the shards one by one (the "shard-by-shard swap"),
//! rebuilding the stores the snapshot's [`Staleness`] set names and
//! re-pinning the rest, storing each cell as it goes, and stores the
//! routing snapshot **last** — so a reader that observes routing epoch
//! N+1 is guaranteed every cell already serves ≥ N+1 (the torn-read
//! hazard the old two-mutex design left open; now `debug_assert`ed on
//! every direct read).
//!
//! Every router-level response carries **exactly one epoch**. Direct
//! reads get this for free. Cross-shard gathers scatter, then check that
//! every partial answered from the same epoch; if a swap was straddled,
//! the gather retries (the swap is short), and after `max_gather_retries`
//! attempts it escalates: it takes the publish gate — the lock the
//! publisher holds for the duration of a swap — so the cells are
//! quiescent and one consistent gather is guaranteed. Escalation is the
//! slow path by construction; the read paths take no router-level lock.
//!
//! [`score`]: ShardedServer::score
//! [`score_batch`]: ShardedServer::score_batch
//! [`top_k_for_site`]: ShardedServer::top_k_for_site
//! [`compare`]: ShardedServer::compare
//! [`top_k`]: ShardedServer::top_k
//! [`ArcCell<ShardState>`]: crate::cell::ArcCell

use std::collections::HashMap;
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::cell::ArcCell;
use crate::error::{Result, ServeError};
use crate::shard::{DocScore, ShardState, SiteTopK};
use crate::telemetry::{ServeStats, ServeStatsSnapshot};
use lmm_engine::{RankSnapshot, Staleness};
use lmm_graph::sharding::ShardMap;
use lmm_graph::{DocId, SiteId};

/// Tuning knobs of a [`ShardedServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Capacity of each shard's precomputed top-k list. Queries with
    /// `k` beyond it still answer (the shard falls back to a scan), they
    /// just stop being O(k).
    pub heap_k: usize,
    /// Cross-shard gathers straddling a swap retry this many times before
    /// escalating to the publish gate.
    pub max_gather_retries: usize,
    /// Answer single-shard point queries (`score`, one-shard batches,
    /// `top_k_for_site`, co-sharded `compare`) directly on the caller's
    /// thread from a lock-free cell load instead of hopping through the
    /// shard worker's mpsc queue. On by default; the off position is the
    /// measured baseline (`exp_latency` runs both in one process) and an
    /// emergency chute, not a recommended mode.
    pub direct_reads: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            heap_k: 64,
            max_gather_retries: 4,
            direct_reads: true,
        }
    }
}

/// How one shard's store is swapped by a publish — the three grades the
/// epoch/staleness contract allows. Shared with the cluster tier
/// (`lmm-cluster`), whose controller grades each remote shard with the
/// same rules before shipping segments over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapGrade {
    /// The snapshot's staleness set names one of the shard's sites: the
    /// store is rebuilt from the snapshot.
    Rebuild,
    /// A removal rescaled every site's absolute scores
    /// ([`Staleness::Resized`]): per-site orders are reused, the shard top
    /// list re-merges under the new scores.
    Refresh,
    /// Bit-identical data ([`Staleness::Sites`] not naming the shard): the
    /// existing store is re-pinned against the new epoch.
    Repin,
}

/// Grades every shard of `map` for publishing `snapshot` over a tier
/// currently serving `serving_epoch`. A snapshot that skipped epochs
/// conservatively rebuilds everything, since its staleness set only
/// describes the last step. This is the single source of truth for the
/// swap contract: the in-process publisher and the cluster controller
/// both call it, so a shard is rebuilt remotely exactly when it would be
/// rebuilt locally.
#[must_use]
pub fn publish_grades(
    map: &ShardMap,
    serving_epoch: u64,
    snapshot: &RankSnapshot,
) -> Vec<SwapGrade> {
    let n_shards = map.n_shards();
    let contiguous = snapshot.epoch() == serving_epoch + 1;
    let (stale_shards, fresh): (Vec<usize>, SwapGrade) = match (contiguous, snapshot.staleness()) {
        (true, Staleness::Sites(sites)) => {
            (map.shards_of_sites(sites.iter().copied()), SwapGrade::Repin)
        }
        (
            true,
            Staleness::Resized {
                sites,
                removed_sites,
            },
        ) => (
            map.shards_of_sites(sites.iter().chain(removed_sites).copied()),
            SwapGrade::Refresh,
        ),
        _ => ((0..n_shards).collect(), SwapGrade::Repin),
    };
    let mut grades = vec![fresh; n_shards];
    for shard in stale_shards {
        grades[shard] = SwapGrade::Rebuild;
    }
    grades
}

/// Shard `shard`'s site range under `map`, with the last shard extended to
/// absorb sites appended after the map was built — the range a shard store
/// (local or remote) must cover at a snapshot with `n_sites` sites.
#[must_use]
pub fn shard_site_range(map: &ShardMap, shard: usize, n_sites: usize) -> std::ops::Range<usize> {
    let mut range = map.sites_of_shard(shard);
    if shard == map.n_shards() - 1 {
        range.end = range.end.max(n_sites);
    }
    range
}

/// Accounting of one [`ShardedServer::publish`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishReport {
    /// The epoch now served.
    pub epoch: u64,
    /// Shard stores rebuilt (stale shards).
    pub shards_rebuilt: usize,
    /// Shard stores re-pinned (fresh shards: new epoch, same data).
    pub shards_repinned: usize,
    /// Shard stores refreshed (removal publishes: per-site orders reused,
    /// shard top list re-merged under the redistributed scores).
    pub shards_refreshed: usize,
    /// `true` when the snapshot was already being served and nothing was
    /// swapped.
    pub noop: bool,
}

/// What a shard worker is asked to compute.
enum RequestKind {
    /// Batched score lookups (the router groups point lookups per shard).
    Scores(Vec<DocId>),
    /// Partial top-k for a cross-shard gather.
    TopK(usize),
    /// Top-k within one covered site.
    SiteTopK(SiteId, usize),
}

/// One request on a shard worker's queue: the work plus its reply channel,
/// so the worker never routes.
struct ShardRequest {
    kind: RequestKind,
    reply: Sender<ShardReply>,
}

/// A shard worker's answer, stamped with the epoch it answered from.
enum ShardReply {
    Scores {
        epoch: u64,
        scores: Vec<DocScore>,
    },
    Top {
        epoch: u64,
        entries: Vec<(DocId, f64)>,
        scanned: bool,
    },
    SiteTop {
        epoch: u64,
        entries: SiteTopK,
    },
}

impl ShardReply {
    fn epoch(&self) -> u64 {
        match self {
            ShardReply::Scores { epoch, .. }
            | ShardReply::Top { epoch, .. }
            | ShardReply::SiteTop { epoch, .. } => *epoch,
        }
    }
}

/// The serving tier: site-sharded, read-mostly, hot-swappable.
///
/// Build one with [`ShardedServer::start`] from an engine snapshot, then
/// answer queries from any number of threads (`&self` throughout) while a
/// writer thread feeds fresh snapshots through
/// [`publish`](ShardedServer::publish).
pub struct ShardedServer {
    map: ShardMap,
    /// Per-shard lock-free state cells, shared with the shard workers.
    cells: Vec<Arc<ArcCell<ShardState>>>,
    queues: Vec<Sender<ShardRequest>>,
    workers: Vec<JoinHandle<()>>,
    /// Snapshot used only for routing decisions (doc → shard); stored
    /// **after** every cell during a publish, so routing epoch N+1 implies
    /// every cell serves ≥ N+1 (the direct-read coherence invariant).
    routing: ArcCell<RankSnapshot>,
    /// The publish gate: guards the serving epoch and is held for the whole
    /// shard-by-shard swap, giving escalated gathers a quiescent view. The
    /// read paths never touch it.
    gate: Mutex<u64>,
    stats: Arc<ServeStats>,
    config: ServeConfig,
}

impl std::fmt::Debug for ShardedServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedServer")
            .field("n_shards", &self.n_shards())
            .field("epoch", &self.epoch())
            .field("config", &self.config)
            .finish()
    }
}

impl ShardedServer {
    /// Builds every shard store from `snapshot`, spawns one worker per
    /// shard, and starts serving.
    ///
    /// # Errors
    /// Returns [`ServeError::InvalidConfig`] when `heap_k` is zero or the
    /// shard map covers more sites than the snapshot ranks.
    pub fn start(map: ShardMap, snapshot: &RankSnapshot, config: ServeConfig) -> Result<Self> {
        if config.heap_k == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "heap_k must be at least 1".into(),
            });
        }
        if map.n_sites() > snapshot.n_sites() {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "shard map covers {} sites, snapshot ranks only {}",
                    map.n_sites(),
                    snapshot.n_sites()
                ),
            });
        }
        let n_shards = map.n_shards();
        let stats = Arc::new(ServeStats::default());
        let mut cells = Vec::with_capacity(n_shards);
        let mut queues = Vec::with_capacity(n_shards);
        let mut workers = Vec::with_capacity(n_shards);
        for shard in 0..n_shards {
            let sites = shard_site_range(&map, shard, snapshot.n_sites());
            let state = Arc::new(ShardState::build(snapshot, sites, config.heap_k));
            let cell = Arc::new(ArcCell::new(state));
            let (tx, rx) = mpsc::channel::<ShardRequest>();
            let worker_cell = Arc::clone(&cell);
            let handle = std::thread::Builder::new()
                .name(format!("lmm-serve-{shard}"))
                .spawn(move || {
                    // The worker parks on its queue and exits when the
                    // server drops the sender — the lmm-par idiom of
                    // persistent workers on a channel, specialized to one
                    // owner per queue.
                    while let Ok(ShardRequest { kind, reply }) = rx.recv() {
                        let state = worker_cell.load();
                        let answer = match kind {
                            RequestKind::Scores(docs) => ShardReply::Scores {
                                epoch: state.epoch(),
                                scores: docs.iter().map(|&d| state.score(d)).collect(),
                            },
                            RequestKind::TopK(k) => {
                                let (entries, from_heap) = state.top_k(k);
                                ShardReply::Top {
                                    epoch: state.epoch(),
                                    entries,
                                    scanned: !from_heap,
                                }
                            }
                            RequestKind::SiteTopK(site, k) => ShardReply::SiteTop {
                                epoch: state.epoch(),
                                entries: state.site_top_k(site, k),
                            },
                        };
                        let _ = reply.send(answer);
                    }
                })
                .map_err(|e| ServeError::WorkerSpawn {
                    shard,
                    reason: e.to_string(),
                })?;
            cells.push(cell);
            queues.push(tx);
            workers.push(handle);
        }
        Ok(Self {
            map,
            cells,
            queues,
            workers,
            routing: ArcCell::new(Arc::new(snapshot.clone())),
            gate: Mutex::new(snapshot.epoch()),
            stats,
            config,
        })
    }

    /// Number of shards.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.cells.len()
    }

    /// The epoch currently being published to (reads may still answer from
    /// the previous epoch while a swap is in flight). Reading the epoch is
    /// safe even after a publisher panic poisoned the gate — the `u64`
    /// itself cannot be torn — so this recovers instead of failing.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        *self
            .gate
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The routing snapshot's epoch — always ≤ every cell's serving epoch
    /// (cells are stored first during a publish). Exposed for the
    /// coherence regression tests; not part of the stable API.
    #[doc(hidden)]
    #[must_use]
    pub fn routing_epoch(&self) -> u64 {
        self.routing.load().epoch()
    }

    /// The epoch shard `shard` currently serves. Exposed for the coherence
    /// regression tests; not part of the stable API.
    #[doc(hidden)]
    #[must_use]
    pub fn shard_epoch(&self, shard: usize) -> u64 {
        self.cells[shard].load().epoch()
    }

    /// The server's telemetry counters, plus the live per-shard document
    /// counts (read from the currently pinned stores) — the skew signal a
    /// rebalancer watches: removal drains shards in place and growth piles
    /// into the last one, so
    /// [`doc_skew`](crate::ServeStatsSnapshot::doc_skew) drifting from 1.0
    /// is the trigger to re-split the site ranges.
    #[must_use]
    pub fn stats(&self) -> ServeStatsSnapshot {
        let mut snapshot = self.stats.snapshot();
        snapshot.shard_docs = self
            .cells
            .iter()
            .map(|cell| cell.load().n_docs() as u64)
            .collect();
        snapshot
    }

    /// Swaps in a fresh snapshot, shard by shard, without ever blocking
    /// readers: shards whose sites the snapshot's [`Staleness`] set names
    /// rebuild their stores; every other shard re-pins its existing store
    /// `Arc` against the new epoch — or, after a removal
    /// ([`Staleness::Resized`]), **refreshes**: the per-site orders are
    /// reused and only the shard top list re-merges under the
    /// redistributed scores. A snapshot that skipped epochs (the publisher
    /// missed one) conservatively rebuilds everything, since its staleness
    /// set only describes the last step.
    ///
    /// # Errors
    /// Returns [`ServeError::StaleSnapshot`] when the snapshot's epoch is
    /// older than the serving epoch, and [`ServeError::PublishPoisoned`]
    /// when a previous publisher panicked mid-swap. Re-publishing the
    /// serving epoch is a no-op, not an error.
    pub fn publish(&self, snapshot: &RankSnapshot) -> Result<PublishReport> {
        self.publish_paced(snapshot, &|_| {})
    }

    /// [`publish`](Self::publish) with a pacing hook invoked after each
    /// shard cell swap — lets tests construct deterministic straddling
    /// interleavings (a gather racing a half-done swap, a direct read
    /// while the gate is held). Not part of the stable API.
    ///
    /// # Errors
    /// As [`publish`](Self::publish).
    #[doc(hidden)]
    pub fn publish_paced(
        &self,
        snapshot: &RankSnapshot,
        swapped: &dyn Fn(usize),
    ) -> Result<PublishReport> {
        let mut serving = self.gate.lock().map_err(|_| ServeError::PublishPoisoned)?;
        if snapshot.epoch() < *serving {
            return Err(ServeError::StaleSnapshot {
                published: snapshot.epoch(),
                serving: *serving,
            });
        }
        ServeStats::bump(&self.stats.publishes);
        if snapshot.epoch() == *serving {
            return Ok(PublishReport {
                epoch: *serving,
                shards_rebuilt: 0,
                shards_repinned: 0,
                shards_refreshed: 0,
                noop: true,
            });
        }
        let grades = publish_grades(&self.map, *serving, snapshot);
        let mut rebuilt = 0usize;
        let mut repinned = 0usize;
        let mut refreshed = 0usize;
        for (shard, (cell, grade)) in self.cells.iter().zip(&grades).enumerate() {
            let next = match grade {
                SwapGrade::Rebuild => {
                    rebuilt += 1;
                    let sites = shard_site_range(&self.map, shard, snapshot.n_sites());
                    Arc::new(ShardState::build(snapshot, sites, self.config.heap_k))
                }
                SwapGrade::Refresh => {
                    refreshed += 1;
                    Arc::new(cell.load().refresh(snapshot, self.config.heap_k))
                }
                SwapGrade::Repin => {
                    repinned += 1;
                    Arc::new(cell.load().repin(snapshot))
                }
            };
            // The swap itself: lock-free, readers never blocked.
            cell.store(next);
            swapped(shard);
        }
        // Routing is stored strictly after every cell: a reader that
        // observes routing epoch N+1 therefore finds every cell at ≥ N+1
        // (the direct path's coherence invariant).
        self.routing.store(Arc::new(snapshot.clone()));
        *serving = snapshot.epoch();
        ServeStats::add(&self.stats.shards_rebuilt, rebuilt as u64);
        ServeStats::add(&self.stats.shards_repinned, repinned as u64);
        ServeStats::add(&self.stats.shards_refreshed, refreshed as u64);
        Ok(PublishReport {
            epoch: snapshot.epoch(),
            shards_rebuilt: rebuilt,
            shards_repinned: repinned,
            shards_refreshed: refreshed,
            noop: false,
        })
    }

    /// Records a completed direct-path query (caller-thread, lock-free).
    fn finish_direct(&self, start: Instant) {
        ServeStats::bump(&self.stats.direct_hits);
        self.stats.direct_latency.record(start.elapsed());
    }

    /// Records a completed fan-out query (worker scatter-gather).
    fn finish_fanout(&self, start: Instant) {
        ServeStats::bump(&self.stats.fanout_queries);
        self.stats.fanout_latency.record(start.elapsed());
    }

    /// Loads shard `shard`'s state for a direct read, asserting the
    /// coherence invariant against the routing epoch the caller routed
    /// with: because a publish stores every cell before the routing
    /// snapshot, a cell can never lag the routing that named it.
    fn load_coherent(&self, shard: usize, routing_epoch: u64) -> Arc<ShardState> {
        let state = self.cells[shard].load();
        debug_assert!(
            state.epoch() >= routing_epoch,
            "epoch coherence violated: routed at epoch {routing_epoch}, \
             shard {shard} still serving {}",
            state.epoch()
        );
        state
    }

    /// Global score of one document: routed to the shard owning its site
    /// and — on the direct path — answered on the calling thread from the
    /// shard's loaded state, with zero locks and zero mpsc hops.
    ///
    /// # Errors
    /// [`ServeError::UnknownDoc`] when the answering epoch never ranked
    /// the document; [`ServeError::TombstonedDoc`] when the document was
    /// removed (stale scores are never served for the dead);
    /// [`ServeError::ShardDown`] during shutdown.
    pub fn score(&self, doc: DocId) -> Result<(u64, f64)> {
        ServeStats::bump(&self.stats.score_queries);
        let start = Instant::now();
        let (epoch, score) = if self.config.direct_reads {
            let routing = self.routing.load();
            let shard = self.shard_of_doc_in(&routing, doc);
            let state = self.load_coherent(shard, routing.epoch());
            let answer = (state.epoch(), state.score(doc));
            self.finish_direct(start);
            answer
        } else {
            let shard = self.shard_of_doc(doc);
            let reply = self.request(shard, RequestKind::Scores(vec![doc]))?;
            let ShardReply::Scores { epoch, scores } = reply else {
                // lint: allow(panic, "workers echo the request kind by construction; a mismatched reply is shard-worker memory corruption")
                unreachable!("scores request answered with a different reply kind");
            };
            self.finish_fanout(start);
            (epoch, scores[0])
        };
        self.doc_score_to_result(score, doc, epoch)
            .map(|score| (epoch, score))
    }

    /// Maps a shard-level score lookup into the router's typed errors.
    fn doc_score_to_result(&self, score: DocScore, doc: DocId, epoch: u64) -> Result<f64> {
        match score {
            DocScore::Live(score) => Ok(score),
            DocScore::Tombstoned => {
                ServeStats::bump(&self.stats.tombstone_rejections);
                Err(ServeError::TombstonedDoc {
                    doc: doc.index(),
                    epoch,
                })
            }
            DocScore::Unknown => Err(ServeError::UnknownDoc {
                doc: doc.index(),
                epoch,
            }),
        }
    }

    /// Batched score lookups: grouped per shard and reassembled in input
    /// order, all answered from **one** epoch. A batch that lands entirely
    /// in one shard takes the direct path; a cross-shard batch
    /// scatter-gathers through the workers (the gather retries across
    /// swaps).
    ///
    /// # Errors
    /// [`ServeError::UnknownDoc`] when the answering epoch does not rank
    /// some document; [`ServeError::ShardDown`] during shutdown.
    pub fn score_batch(&self, docs: &[DocId]) -> Result<(u64, Vec<f64>)> {
        ServeStats::bump(&self.stats.batch_queries);
        self.score_batch_inner(docs, Instant::now())
    }

    /// Global top-`k`: per-shard partial heaps scatter-gathered and merged
    /// at the router, epoch-consistent. Always the fan-out path — a
    /// cross-shard gather wants the shards computing in parallel.
    ///
    /// # Errors
    /// [`ServeError::ShardDown`] during shutdown.
    pub fn top_k(&self, k: usize) -> Result<(u64, Vec<(DocId, f64)>)> {
        ServeStats::bump(&self.stats.top_k_queries);
        let start = Instant::now();
        let shards: Vec<usize> = (0..self.n_shards()).collect();
        let (epoch, replies) = self.consistent_gather(&shards, |_| RequestKind::TopK(k))?;
        self.finish_fanout(start);
        let mut merged: Vec<(DocId, f64)> = Vec::with_capacity(k.saturating_mul(2));
        for reply in replies {
            let ShardReply::Top {
                entries, scanned, ..
            } = reply
            else {
                // lint: allow(panic, "workers echo the request kind by construction; a mismatched reply is shard-worker memory corruption")
                unreachable!("top-k request answered with a different reply kind");
            };
            if scanned {
                ServeStats::bump(&self.stats.heap_overflow_scans);
            }
            merged.extend(entries);
        }
        merged.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                // lint: allow(panic, "scores come from a stochastic-matrix power iteration and are finite by construction; a NaN here means the kernel itself is broken")
                .expect("ranking scores are finite")
                .then(a.0.cmp(&b.0))
        });
        merged.truncate(k);
        Ok((epoch, merged))
    }

    /// Top-`k` within one site: routed to the owning shard's precomputed
    /// per-site ranking — on the direct path, straight off the loaded
    /// shard state.
    ///
    /// # Errors
    /// [`ServeError::UnknownSite`] when the answering epoch never ranked
    /// the site; [`ServeError::TombstonedSite`] when the site was removed;
    /// [`ServeError::ShardDown`] during shutdown.
    pub fn top_k_for_site(&self, site: SiteId, k: usize) -> Result<(u64, Vec<(DocId, f64)>)> {
        ServeStats::bump(&self.stats.site_top_k_queries);
        let start = Instant::now();
        let shard = self.map.shard_of_site(site);
        let (epoch, entries) = if self.config.direct_reads {
            let routing_epoch = self.routing.load().epoch();
            let state = self.load_coherent(shard, routing_epoch);
            let answer = (state.epoch(), state.site_top_k(site, k));
            self.finish_direct(start);
            answer
        } else {
            let reply = self.request(shard, RequestKind::SiteTopK(site, k))?;
            let ShardReply::SiteTop { epoch, entries } = reply else {
                // lint: allow(panic, "workers echo the request kind by construction; a mismatched reply is shard-worker memory corruption")
                unreachable!("site top-k request answered with a different reply kind");
            };
            self.finish_fanout(start);
            (epoch, entries)
        };
        match entries {
            SiteTopK::Entries(e) => Ok((epoch, e)),
            SiteTopK::Tombstoned => {
                ServeStats::bump(&self.stats.tombstone_rejections);
                Err(ServeError::TombstonedSite {
                    site: site.index(),
                    epoch,
                })
            }
            SiteTopK::NotCovered => Err(ServeError::UnknownSite {
                site: site.index(),
                epoch,
            }),
        }
    }

    /// Compares two documents at one epoch: `Greater` means `a` outranks
    /// `b`. Co-sharded documents compare on the direct path.
    ///
    /// # Errors
    /// [`ServeError::UnknownDoc`] when the answering epoch does not rank
    /// either document; [`ServeError::ShardDown`] during shutdown.
    pub fn compare(&self, a: DocId, b: DocId) -> Result<(u64, std::cmp::Ordering)> {
        ServeStats::bump(&self.stats.compare_queries);
        let (epoch, scores) = self.score_batch_inner(&[a, b], Instant::now())?;
        let order = scores[0]
            .partial_cmp(&scores[1])
            // lint: allow(panic, "scores come from a stochastic-matrix power iteration and are finite by construction; a NaN here means the kernel itself is broken")
            .expect("ranking scores are finite")
            // Equal scores: the lower doc id ranks first, matching the
            // serving order everywhere else in the tier.
            .then(b.cmp(&a));
        Ok((epoch, order))
    }

    /// Shard owning a document, per the given routing snapshot. Documents
    /// beyond the routing snapshot (appended by a delta racing this
    /// lookup) fall into the last shard, which absorbs growth by
    /// construction.
    fn shard_of_doc_in(&self, routing: &RankSnapshot, doc: DocId) -> usize {
        match routing.site_assignments().get(doc.index()) {
            Some(&site) => self.map.shard_of_site(site),
            None => self.n_shards() - 1,
        }
    }

    /// Shard owning a document, per the current routing snapshot.
    fn shard_of_doc(&self, doc: DocId) -> usize {
        let routing = self.routing.load();
        self.shard_of_doc_in(&routing, doc)
    }

    fn score_batch_inner(&self, docs: &[DocId], start: Instant) -> Result<(u64, Vec<f64>)> {
        if docs.is_empty() {
            // Answer at the routing epoch: lock-free, and within one swap
            // of the serving epoch by the publish ordering.
            return Ok((self.routing.load().epoch(), Vec::new()));
        }
        // Group lookups per shard (the batching), remembering positions.
        // One routing load for the whole batch — lock-free.
        let routing = self.routing.load();
        let mut per_shard: HashMap<usize, (Vec<DocId>, Vec<usize>)> = HashMap::new();
        for (pos, &doc) in docs.iter().enumerate() {
            let entry = per_shard
                .entry(self.shard_of_doc_in(&routing, doc))
                .or_default();
            entry.0.push(doc);
            entry.1.push(pos);
        }
        // The whole batch lands in one shard: answer it directly on this
        // thread. One loaded state = one epoch, no gather needed. (The
        // `if let` can only miss when the map is empty, which the guard
        // above rules out; falling through to the gather stays correct.)
        if self.config.direct_reads && per_shard.len() == 1 {
            if let Some(&shard) = per_shard.keys().next() {
                let state = self.load_coherent(shard, routing.epoch());
                let epoch = state.epoch();
                self.finish_direct(start);
                let mut out = Vec::with_capacity(docs.len());
                for &doc in docs {
                    out.push(self.doc_score_to_result(state.score(doc), doc, epoch)?);
                }
                return Ok((epoch, out));
            }
        }
        drop(routing);
        let shards: Vec<usize> = {
            let mut s: Vec<usize> = per_shard.keys().copied().collect();
            s.sort_unstable();
            s
        };
        let (epoch, replies) = self.consistent_gather(&shards, |shard| {
            RequestKind::Scores(per_shard[&shard].0.clone())
        })?;
        self.finish_fanout(start);
        let mut out = vec![0.0f64; docs.len()];
        for (&shard, reply) in shards.iter().zip(replies) {
            let ShardReply::Scores { scores, .. } = reply else {
                // lint: allow(panic, "workers echo the request kind by construction; a mismatched reply is shard-worker memory corruption")
                unreachable!("scores request answered with a different reply kind");
            };
            for (&pos, score) in per_shard[&shard].1.iter().zip(scores) {
                out[pos] = self.doc_score_to_result(score, docs[pos], epoch)?;
            }
        }
        Ok((epoch, out))
    }

    /// Sends one request to one shard worker and waits for its reply.
    fn request(&self, shard: usize, kind: RequestKind) -> Result<ShardReply> {
        let (reply, rx) = mpsc::channel();
        self.queues[shard]
            .send(ShardRequest { kind, reply })
            .map_err(|_| ServeError::ShardDown { shard })?;
        rx.recv().map_err(|_| ServeError::ShardDown { shard })
    }

    /// Scatters one request (built by `make`) to each listed shard and
    /// collects the replies **in shard order**, retrying (then escalating
    /// to the publish gate) until every reply carries the same epoch.
    fn consistent_gather(
        &self,
        shards: &[usize],
        mut make: impl FnMut(usize) -> RequestKind,
    ) -> Result<(u64, Vec<ShardReply>)> {
        if shards.is_empty() {
            return Ok((self.epoch(), Vec::new()));
        }
        let mut scatter = |gate_held: bool| -> Result<(bool, u64, Vec<ShardReply>)> {
            // One reply channel per shard keeps the pairing exact no
            // matter the completion order.
            let mut pending = Vec::with_capacity(shards.len());
            for &shard in shards {
                let (reply, rx) = mpsc::channel();
                self.queues[shard]
                    .send(ShardRequest {
                        kind: make(shard),
                        reply,
                    })
                    .map_err(|_| ServeError::ShardDown { shard })?;
                pending.push((shard, rx));
            }
            let mut replies = Vec::with_capacity(shards.len());
            for (shard, rx) in pending {
                replies.push(rx.recv().map_err(|_| ServeError::ShardDown { shard })?);
            }
            let epoch = replies[0].epoch();
            let consistent = replies.iter().all(|r| r.epoch() == epoch);
            debug_assert!(!gate_held || consistent, "cells moved under the gate");
            Ok((consistent, epoch, replies))
        };
        if shards.len() <= 1 {
            let (_, epoch, replies) = scatter(false)?;
            return Ok((epoch, replies));
        }
        for _ in 0..=self.config.max_gather_retries {
            let (consistent, epoch, replies) = scatter(false)?;
            if consistent {
                return Ok((epoch, replies));
            }
            ServeStats::bump(&self.stats.gather_retries);
        }
        // Escalate: hold the publish gate so no swap can run, guaranteeing
        // one consistent pass. Counted before the lock so observers can
        // see the escalation while it blocks on an in-flight swap. A
        // poisoned gate (publisher panicked mid-swap) degrades to a typed
        // error instead of propagating the panic into the reader.
        ServeStats::bump(&self.stats.gate_escalations);
        let _quiesce: MutexGuard<'_, u64> =
            self.gate.lock().map_err(|_| ServeError::PublishPoisoned)?;
        let (_, epoch, replies) = scatter(true)?;
        Ok((epoch, replies))
    }
}

impl Drop for ShardedServer {
    fn drop(&mut self) {
        // Closing the queues wakes every worker with `Err`; join so no
        // worker outlives the cells it reads.
        self.queues.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 sites x 2 docs, epoch-stamped scores.
    fn snapshot(epoch: u64, scores: Vec<f64>, staleness: Staleness) -> RankSnapshot {
        let n = scores.len();
        assert_eq!(n % 2, 0);
        let members = (0..n / 2)
            .map(|s| vec![DocId(2 * s), DocId(2 * s + 1)])
            .collect::<Vec<_>>();
        let site_of = (0..n).map(|d| SiteId(d / 2)).collect::<Vec<_>>();
        RankSnapshot::new(
            epoch,
            "test".into(),
            Arc::new(scores),
            None,
            Arc::new(members),
            Arc::new(site_of),
            staleness,
        )
    }

    fn base_scores() -> Vec<f64> {
        vec![0.05, 0.10, 0.20, 0.15, 0.08, 0.12, 0.18, 0.12]
    }

    fn server() -> ShardedServer {
        server_with(ServeConfig::default())
    }

    fn server_with(config: ServeConfig) -> ShardedServer {
        let map = ShardMap::uniform(4, 2).unwrap();
        let snap = snapshot(1, base_scores(), Staleness::Full);
        ShardedServer::start(map, &snap, config).unwrap()
    }

    #[test]
    fn queries_answer_from_the_started_snapshot() {
        let srv = server();
        assert_eq!(srv.epoch(), 1);
        let (epoch, top) = srv.top_k(3).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(
            top,
            vec![(DocId(2), 0.20), (DocId(6), 0.18), (DocId(3), 0.15)]
        );
        let (_, score) = srv.score(DocId(5)).unwrap();
        assert_eq!(score, 0.12);
        let (_, site_top) = srv.top_k_for_site(SiteId(1), 1).unwrap();
        assert_eq!(site_top, vec![(DocId(2), 0.20)]);
        // Equal scores tie-break by doc id, globally and in compare.
        let (_, order) = srv.compare(DocId(5), DocId(7)).unwrap();
        assert_eq!(order, std::cmp::Ordering::Greater);
        let (_, order) = srv.compare(DocId(2), DocId(6)).unwrap();
        assert_eq!(order, std::cmp::Ordering::Greater);
    }

    #[test]
    fn direct_and_fanout_paths_answer_identically() {
        let direct = server();
        let fanout = server_with(ServeConfig {
            direct_reads: false,
            ..ServeConfig::default()
        });
        assert_eq!(
            direct.score(DocId(5)).unwrap(),
            fanout.score(DocId(5)).unwrap()
        );
        assert_eq!(
            direct.top_k_for_site(SiteId(1), 2).unwrap(),
            fanout.top_k_for_site(SiteId(1), 2).unwrap()
        );
        // Docs 0 and 1 share site 0 → one shard → direct-eligible batch.
        let one_shard = [DocId(0), DocId(1)];
        assert_eq!(
            direct.score_batch(&one_shard).unwrap(),
            fanout.score_batch(&one_shard).unwrap()
        );
        assert_eq!(
            direct.compare(DocId(2), DocId(3)).unwrap(),
            fanout.compare(DocId(2), DocId(3)).unwrap()
        );
        let d = direct.stats();
        assert_eq!(d.direct_hits, 4);
        assert_eq!(d.fanout_queries, 0);
        assert_eq!(d.direct_latency.count(), 4);
        let f = fanout.stats();
        assert_eq!(f.direct_hits, 0);
        assert_eq!(f.fanout_queries, 4);
        assert_eq!(f.fanout_latency.count(), 4);
        // A cross-shard batch fans out even with direct reads on.
        let cross = [DocId(0), DocId(7)];
        assert_eq!(
            direct.score_batch(&cross).unwrap(),
            fanout.score_batch(&cross).unwrap()
        );
        assert_eq!(direct.stats().fanout_queries, 1);
    }

    #[test]
    fn batch_reassembles_in_input_order() {
        let srv = server();
        let docs = [DocId(7), DocId(0), DocId(4), DocId(2)];
        let (epoch, scores) = srv.score_batch(&docs).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(scores, vec![0.12, 0.05, 0.08, 0.20]);
    }

    #[test]
    fn empty_batch_answers_empty_at_the_serving_epoch() {
        // Regression: an empty batch used to panic indexing replies[0].
        let srv = server();
        let (epoch, scores) = srv.score_batch(&[]).unwrap();
        assert_eq!(epoch, 1);
        assert!(scores.is_empty());
    }

    #[test]
    fn unknown_references_are_errors() {
        let srv = server();
        assert!(matches!(
            srv.score(DocId(99)),
            Err(ServeError::UnknownDoc { doc: 99, epoch: 1 })
        ));
        assert!(matches!(
            srv.top_k_for_site(SiteId(9), 2),
            Err(ServeError::UnknownSite { site: 9, .. })
        ));
    }

    #[test]
    fn publish_rebuilds_only_stale_shards() {
        let srv = server();
        // Site 3 (shard 1) moved; shard 0 must re-pin.
        let mut scores = base_scores();
        scores[6] = 0.30;
        scores[7] = 0.00;
        let snap = snapshot(2, scores, Staleness::Sites(vec![3]));
        let report = srv.publish(&snap).unwrap();
        assert_eq!(report.epoch, 2);
        assert_eq!(report.shards_rebuilt, 1);
        assert_eq!(report.shards_repinned, 1);
        assert!(!report.noop);
        let (epoch, top) = srv.top_k(2).unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(top, vec![(DocId(6), 0.30), (DocId(2), 0.20)]);
        let stats = srv.stats();
        assert_eq!(stats.shards_rebuilt, 1);
        assert_eq!(stats.shards_repinned, 1);
    }

    #[test]
    fn publish_rejects_stale_and_noops_on_current() {
        let srv = server();
        let current = snapshot(1, base_scores(), Staleness::Full);
        let report = srv.publish(&current).unwrap();
        assert!(report.noop);
        let snap2 = snapshot(2, base_scores(), Staleness::Sites(vec![]));
        srv.publish(&snap2).unwrap();
        assert!(matches!(
            srv.publish(&current),
            Err(ServeError::StaleSnapshot {
                published: 1,
                serving: 2
            })
        ));
    }

    #[test]
    fn empty_staleness_repins_everything() {
        let srv = server();
        let snap = snapshot(2, base_scores(), Staleness::Sites(vec![]));
        let report = srv.publish(&snap).unwrap();
        assert_eq!(report.shards_rebuilt, 0);
        assert_eq!(report.shards_repinned, 2);
        assert_eq!(srv.epoch(), 2);
    }

    #[test]
    fn skipped_epochs_force_a_full_rebuild() {
        let srv = server();
        // Epoch jumps 1 -> 3: the staleness set only describes 2 -> 3, so
        // the publisher must not trust it.
        let snap = snapshot(3, base_scores(), Staleness::Sites(vec![0]));
        let report = srv.publish(&snap).unwrap();
        assert_eq!(report.shards_rebuilt, 2);
        assert_eq!(report.shards_repinned, 0);
    }

    #[test]
    fn full_staleness_rebuilds_everything() {
        let srv = server();
        let snap = snapshot(2, base_scores(), Staleness::Full);
        let report = srv.publish(&snap).unwrap();
        assert_eq!(report.shards_rebuilt, 2);
    }

    #[test]
    fn poisoned_gate_degrades_to_typed_errors() {
        let srv = server();
        // Poison the publish gate: a publisher panics while holding it.
        let poisoner = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = srv.gate.lock().expect("gate still clean");
                panic!("publisher died mid-swap");
            })
            .join()
        });
        assert!(poisoner.is_err(), "the poisoner must have panicked");
        // Readers keep answering — the direct path never touches the gate
        // and the worker path only takes it on escalation — and the epoch
        // read recovers (a u64 cannot be torn).
        assert_eq!(srv.epoch(), 1);
        let (_, score) = srv.score(DocId(5)).unwrap();
        assert_eq!(score, 0.12);
        let (_, top) = srv.top_k(2).unwrap();
        assert_eq!(top.len(), 2);
        // Publishing fails typed instead of propagating the panic.
        let snap = snapshot(2, base_scores(), Staleness::Full);
        assert!(matches!(
            srv.publish(&snap),
            Err(ServeError::PublishPoisoned)
        ));
        assert_eq!(srv.epoch(), 1, "a poisoned publish must swap nothing");
    }

    #[test]
    fn routing_never_outruns_the_cells() {
        let srv = server();
        for epoch in 2..6 {
            let snap = snapshot(epoch, base_scores(), Staleness::Full);
            srv.publish_paced(&snap, &|_| {
                // Mid-swap: cells may already be ahead, routing must not be.
                let routed = srv.routing_epoch();
                for shard in 0..srv.n_shards() {
                    assert!(srv.shard_epoch(shard) >= routed);
                }
            })
            .unwrap();
            assert_eq!(srv.routing_epoch(), epoch);
        }
    }

    #[test]
    fn grades_follow_the_staleness_contract() {
        let map = ShardMap::uniform(4, 2).unwrap();
        // Contiguous + Sites: named shards rebuild, rest re-pin.
        let snap = snapshot(2, base_scores(), Staleness::Sites(vec![3]));
        assert_eq!(
            publish_grades(&map, 1, &snap),
            vec![SwapGrade::Repin, SwapGrade::Rebuild]
        );
        // Contiguous + Resized: named shards rebuild, rest refresh.
        let snap = snapshot(
            2,
            base_scores(),
            Staleness::Resized {
                sites: vec![0],
                removed_sites: vec![],
            },
        );
        assert_eq!(
            publish_grades(&map, 1, &snap),
            vec![SwapGrade::Rebuild, SwapGrade::Refresh]
        );
        // Skipped epoch: staleness untrustworthy, rebuild everything.
        let snap = snapshot(3, base_scores(), Staleness::Sites(vec![]));
        assert_eq!(
            publish_grades(&map, 1, &snap),
            vec![SwapGrade::Rebuild, SwapGrade::Rebuild]
        );
    }

    #[test]
    fn growth_lands_in_the_last_shard() {
        let srv = server();
        // A fifth site (id 4) appears: beyond the map, absorbed by the
        // last shard under a Full publish.
        let mut members: Vec<Vec<DocId>> = (0..4)
            .map(|s| vec![DocId(2 * s), DocId(2 * s + 1)])
            .collect();
        members.push(vec![DocId(8), DocId(9)]);
        let mut site_of: Vec<SiteId> = (0..8).map(|d| SiteId(d / 2)).collect();
        site_of.extend([SiteId(4), SiteId(4)]);
        let snap = RankSnapshot::new(
            2,
            "test".into(),
            Arc::new(vec![
                0.04, 0.09, 0.18, 0.13, 0.07, 0.11, 0.16, 0.10, 0.02, 0.10,
            ]),
            None,
            Arc::new(members),
            Arc::new(site_of),
            Staleness::Full,
        );
        srv.publish(&snap).unwrap();
        let (epoch, site_top) = srv.top_k_for_site(SiteId(4), 2).unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(site_top, vec![(DocId(9), 0.10), (DocId(8), 0.02)]);
        let (_, score) = srv.score(DocId(8)).unwrap();
        assert_eq!(score, 0.02);
    }
}
