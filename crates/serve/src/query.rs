//! The shared query surface of a serving tier.
//!
//! [`ShardQuery`] abstracts over *where* the shards live: the in-process
//! [`ShardedServer`](crate::ShardedServer) (workers on mpsc queues) and
//! the remote `lmm-cluster` client (shards on TCP nodes) answer the same
//! five queries under the same epoch-consistency contract — every
//! response carries exactly one epoch, and every value in it was read
//! from that epoch's published snapshot. Harnesses that verify responses
//! (the `exp_serve` / `exp_cluster` benches, the concurrency tests) are
//! written against this trait, so the wire tier is held to bitwise parity
//! with the local one.

use std::cmp::Ordering;

use lmm_graph::{DocId, SiteId};

use crate::router::ShardedServer;

/// An epoch-consistent, site-sharded query surface.
///
/// Each method returns the answering epoch alongside the payload; a
/// multi-shard answer is only ever assembled from partials of one epoch.
/// Errors are implementation-specific (`ServeError` locally, a superset
/// with retriable transport failures over the wire), hence the associated
/// type.
pub trait ShardQuery {
    /// The tier's error type.
    type Error: std::error::Error + Send + Sync + 'static;

    /// The epoch currently being published to. Reads may still answer
    /// from the previous epoch while a swap is in flight.
    fn serving_epoch(&self) -> u64;

    /// Global score of one document.
    ///
    /// # Errors
    /// Unknown/tombstoned documents and transport failures, per tier.
    fn score(&self, doc: DocId) -> Result<(u64, f64), Self::Error>;

    /// Batched score lookups, reassembled in input order, all answered
    /// from one epoch.
    ///
    /// # Errors
    /// Unknown/tombstoned documents and transport failures, per tier.
    fn score_batch(&self, docs: &[DocId]) -> Result<(u64, Vec<f64>), Self::Error>;

    /// Global top-`k` in serving order (score descending, ties by id).
    ///
    /// # Errors
    /// Transport failures, per tier.
    #[allow(clippy::type_complexity)]
    fn top_k(&self, k: usize) -> Result<(u64, Vec<(DocId, f64)>), Self::Error>;

    /// Top-`k` within one site.
    ///
    /// # Errors
    /// Unknown/tombstoned sites and transport failures, per tier.
    #[allow(clippy::type_complexity)]
    fn top_k_for_site(
        &self,
        site: SiteId,
        k: usize,
    ) -> Result<(u64, Vec<(DocId, f64)>), Self::Error>;

    /// Compares two documents at one epoch: `Greater` means `a` outranks
    /// `b`.
    ///
    /// # Errors
    /// Unknown/tombstoned documents and transport failures, per tier.
    fn compare(&self, a: DocId, b: DocId) -> Result<(u64, Ordering), Self::Error>;
}

impl ShardQuery for ShardedServer {
    type Error = crate::ServeError;

    fn serving_epoch(&self) -> u64 {
        self.epoch()
    }

    fn score(&self, doc: DocId) -> Result<(u64, f64), Self::Error> {
        ShardedServer::score(self, doc)
    }

    fn score_batch(&self, docs: &[DocId]) -> Result<(u64, Vec<f64>), Self::Error> {
        ShardedServer::score_batch(self, docs)
    }

    fn top_k(&self, k: usize) -> Result<(u64, Vec<(DocId, f64)>), Self::Error> {
        ShardedServer::top_k(self, k)
    }

    fn top_k_for_site(
        &self,
        site: SiteId,
        k: usize,
    ) -> Result<(u64, Vec<(DocId, f64)>), Self::Error> {
        ShardedServer::top_k_for_site(self, site, k)
    }

    fn compare(&self, a: DocId, b: DocId) -> Result<(u64, Ordering), Self::Error> {
        ShardedServer::compare(self, a, b)
    }
}
