//! Deterministic coverage of the router's straddling-gather escalation
//! path: epoch-mismatch retries followed by the publish-gate wait.
//!
//! `exp_serve` only exercises this probabilistically (a reader has to
//! race a swap just so); here the interleaving is *constructed*: the
//! publisher is paused via the pacing hook after swapping shard 0, so a
//! cross-shard gather is guaranteed to observe shard 0 at the new epoch
//! and shard 1 at the old one, exhaust its retries, and escalate to the
//! publish gate — where it blocks until the paused publisher finishes.
//!
//! Runs its own threads only; safe under `RUST_TEST_THREADS=1`.

use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lmm_engine::{RankSnapshot, Staleness};
use lmm_graph::sharding::ShardMap;
use lmm_graph::{DocId, SiteId};
use lmm_serve::{ServeConfig, ShardedServer};

/// 4 sites x 2 docs over 2 shards.
fn snapshot(epoch: u64, scores: Vec<f64>, staleness: Staleness) -> RankSnapshot {
    let n = scores.len();
    let members = (0..n / 2)
        .map(|s| vec![DocId(2 * s), DocId(2 * s + 1)])
        .collect::<Vec<_>>();
    let site_of = (0..n).map(|d| SiteId(d / 2)).collect::<Vec<_>>();
    RankSnapshot::new(
        epoch,
        "test".into(),
        Arc::new(scores),
        None,
        Arc::new(members),
        Arc::new(site_of),
        staleness,
    )
}

#[test]
fn straddling_gather_retries_then_escalates_to_the_publish_gate() {
    let scores_v1 = vec![0.05, 0.10, 0.20, 0.15, 0.08, 0.12, 0.18, 0.12];
    let mut scores_v2 = scores_v1.clone();
    scores_v2[2] = 0.30; // shard 0 (site 1)
    scores_v2[6] = 0.35; // shard 1 (site 3)

    let map = ShardMap::uniform(4, 2).unwrap();
    let server = Arc::new(
        ShardedServer::start(
            map,
            &snapshot(1, scores_v1, Staleness::Full),
            ServeConfig {
                heap_k: 8,
                max_gather_retries: 2,
                direct_reads: true,
            },
        )
        .unwrap(),
    );

    // The publisher swaps shard 0, reports in, then blocks until released
    // — the straddle is now a stable state, not a race window.
    let (swapped_tx, swapped_rx) = mpsc::channel::<usize>();
    let (resume_tx, resume_rx) = mpsc::channel::<()>();
    let publisher = {
        let server = Arc::clone(&server);
        // Full staleness: both shards rebuild, so the hook fires for
        // shard 0 with shard 1 still pinned to epoch 1.
        let snap = snapshot(2, scores_v2.clone(), Staleness::Full);
        std::thread::spawn(move || {
            let report = server
                .publish_paced(&snap, &move |shard| {
                    if shard == 0 {
                        swapped_tx.send(shard).expect("test alive");
                        resume_rx.recv().expect("released");
                    }
                })
                .expect("publish succeeds");
            assert_eq!(report.shards_rebuilt, 2);
        })
    };
    assert_eq!(swapped_rx.recv().unwrap(), 0, "shard 0 swapped first");

    // A cross-shard gather now *must* see epochs {2, 1}: it retries
    // max_gather_retries times, escalates, and blocks on the gate the
    // publisher holds.
    let reader_done = Arc::new(AtomicBool::new(false));
    let reader = {
        let server = Arc::clone(&server);
        let reader_done = Arc::clone(&reader_done);
        std::thread::spawn(move || {
            let result = server.top_k(3).expect("escalated gather answers");
            reader_done.store(true, AtomicOrdering::Relaxed);
            result
        })
    };

    // The escalation counter is bumped *before* the gate wait, so we can
    // observe the reader parked on the gate while the publisher is paused.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().gate_escalations == 0 {
        assert!(Instant::now() < deadline, "reader never escalated");
        std::thread::yield_now();
    }
    assert!(
        !reader_done.load(AtomicOrdering::Relaxed),
        "the escalated gather must wait for the in-flight swap"
    );
    let mid_stats = server.stats();
    assert!(
        mid_stats.gather_retries >= 2,
        "expected the retry budget spent before escalating, saw {}",
        mid_stats.gather_retries
    );

    // Release the publisher; the gate frees; the escalated gather answers
    // one consistent epoch-2 response.
    resume_tx.send(()).unwrap();
    publisher.join().expect("publisher panicked");
    let (epoch, top) = reader.join().expect("reader panicked");
    assert_eq!(epoch, 2);
    assert_eq!(
        top,
        vec![(DocId(6), 0.35), (DocId(2), 0.30), (DocId(3), 0.15)]
    );
    assert_eq!(server.stats().gate_escalations, 1);
}

/// The retry path alone (no escalation): a gather straddling a brief swap
/// succeeds once the swap completes, within its retry budget.
#[test]
fn straddling_gather_recovers_within_its_retry_budget() {
    let scores = vec![0.05, 0.10, 0.20, 0.15, 0.08, 0.12, 0.18, 0.12];
    let map = ShardMap::uniform(4, 2).unwrap();
    let server = Arc::new(
        ShardedServer::start(
            map,
            &snapshot(1, scores.clone(), Staleness::Full),
            ServeConfig {
                heap_k: 8,
                // Effectively unbounded: the reader must ride out the
                // paused swap on retries alone, never the gate.
                max_gather_retries: usize::MAX,
                direct_reads: true,
            },
        )
        .unwrap(),
    );
    // Publisher pauses after shard 0 only until the reader has seen one
    // mixed gather, then finishes — the reader's next retry succeeds
    // without touching the gate.
    let (swapped_tx, swapped_rx) = mpsc::channel::<()>();
    let (resume_tx, resume_rx) = mpsc::channel::<()>();
    let publisher = {
        let server = Arc::clone(&server);
        let snap = snapshot(2, scores, Staleness::Full);
        std::thread::spawn(move || {
            server
                .publish_paced(&snap, &move |shard| {
                    if shard == 0 {
                        swapped_tx.send(()).expect("test alive");
                        resume_rx.recv().expect("released");
                    }
                })
                .expect("publish succeeds");
        })
    };
    swapped_rx.recv().unwrap();
    let reader = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.top_k(2).expect("gather answers"))
    };
    // Wait for the reader to burn at least one retry on the straddle,
    // then let the publisher finish.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().gather_retries == 0 {
        assert!(
            Instant::now() < deadline,
            "reader never observed the straddle"
        );
        std::thread::yield_now();
    }
    resume_tx.send(()).unwrap();
    publisher.join().expect("publisher panicked");
    let (epoch, _) = reader.join().expect("reader panicked");
    assert_eq!(epoch, 2);
    assert!(server.stats().gather_retries >= 1);
    assert_eq!(
        server.stats().gate_escalations,
        0,
        "the retry budget must absorb a short swap without escalating"
    );
}
