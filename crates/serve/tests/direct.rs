//! Proof that single-shard point queries ride the lock-free direct path:
//! they complete — with the `direct_hits` counter as witness — while the
//! publish gate is **held** by a paused mid-swap publisher, and even
//! after a publisher panic has **poisoned** the gate forever. A read path
//! that acquired any router-level mutex, or hopped through a worker that
//! did, would deadlock (held gate) or panic (poisoned gate) here.
//!
//! Runs its own threads only; safe under `RUST_TEST_THREADS=1`.

use std::sync::mpsc;
use std::sync::Arc;

use lmm_engine::{RankSnapshot, Staleness};
use lmm_graph::sharding::ShardMap;
use lmm_graph::{DocId, SiteId};
use lmm_serve::{ServeConfig, ServeError, ShardedServer};

/// 4 sites x 2 docs over 2 shards (sites 0–1 → shard 0, 2–3 → shard 1).
fn snapshot(epoch: u64, scores: Vec<f64>, staleness: Staleness) -> RankSnapshot {
    let n = scores.len();
    let members = (0..n / 2)
        .map(|s| vec![DocId(2 * s), DocId(2 * s + 1)])
        .collect::<Vec<_>>();
    let site_of = (0..n).map(|d| SiteId(d / 2)).collect::<Vec<_>>();
    RankSnapshot::new(
        epoch,
        "test".into(),
        Arc::new(scores),
        None,
        Arc::new(members),
        Arc::new(site_of),
        staleness,
    )
}

fn scores_v1() -> Vec<f64> {
    vec![0.05, 0.10, 0.20, 0.15, 0.08, 0.12, 0.18, 0.12]
}

#[test]
fn point_reads_complete_while_the_publish_gate_is_held() {
    let mut scores_v2 = scores_v1();
    scores_v2[0] = 0.06; // shard 0 moves
    scores_v2[6] = 0.17; // shard 1 moves
    let server = Arc::new(
        ShardedServer::start(
            ShardMap::uniform(4, 2).unwrap(),
            &snapshot(1, scores_v1(), Staleness::Full),
            ServeConfig::default(),
        )
        .unwrap(),
    );

    // Publisher swaps shard 0, then parks holding the gate: a stable
    // mid-swap state (shard 0 at epoch 2, shard 1 at epoch 1, routing at
    // 1). Any read needing the gate would block right here.
    let (paused_tx, paused_rx) = mpsc::channel::<()>();
    let (resume_tx, resume_rx) = mpsc::channel::<()>();
    let publisher = {
        let server = Arc::clone(&server);
        let snap = snapshot(2, scores_v2.clone(), Staleness::Full);
        std::thread::spawn(move || {
            server
                .publish_paced(&snap, &move |shard| {
                    if shard == 0 {
                        paused_tx.send(()).expect("test alive");
                        resume_rx.recv().expect("released");
                    }
                })
                .expect("publish succeeds");
        })
    };
    paused_rx.recv().unwrap();

    // Every point-query shape completes on the caller's thread, each
    // stamped with exactly one epoch (its shard's): shard 0 already
    // serves 2, shard 1 still serves 1.
    let (epoch, score) = server.score(DocId(0)).unwrap();
    assert_eq!((epoch, score), (2, 0.06));
    let (epoch, score) = server.score(DocId(6)).unwrap();
    assert_eq!((epoch, score), (1, 0.18));
    let (epoch, batch) = server.score_batch(&[DocId(0), DocId(2)]).unwrap();
    assert_eq!((epoch, batch), (2, vec![0.06, 0.20]));
    let (epoch, site_top) = server.top_k_for_site(SiteId(3), 1).unwrap();
    assert_eq!((epoch, site_top), (1, vec![(DocId(6), 0.18)]));
    let (epoch, order) = server.compare(DocId(4), DocId(5)).unwrap();
    assert_eq!((epoch, order), (1, std::cmp::Ordering::Less));

    let stats = server.stats();
    assert_eq!(stats.direct_hits, 5, "all five reads took the direct path");
    assert_eq!(stats.fanout_queries, 0, "no read hopped to a worker");
    assert_eq!(stats.direct_latency.count(), 5);

    resume_tx.send(()).unwrap();
    publisher.join().expect("publisher panicked");
    assert_eq!(server.epoch(), 2);
    let (epoch, score) = server.score(DocId(6)).unwrap();
    assert_eq!((epoch, score), (2, 0.17));
}

#[test]
fn point_reads_survive_a_poisoned_publish_gate() {
    let server = Arc::new(
        ShardedServer::start(
            ShardMap::uniform(4, 2).unwrap(),
            &snapshot(1, scores_v1(), Staleness::Full),
            ServeConfig::default(),
        )
        .unwrap(),
    );

    // The publisher dies mid-swap (pacing hook panics after shard 0),
    // unwinding with the gate held — the gate is poisoned for good.
    let publisher = {
        let server = Arc::clone(&server);
        let snap = snapshot(2, scores_v1(), Staleness::Full);
        std::thread::spawn(move || {
            let _ = server.publish_paced(&snap, &|shard| {
                assert!(shard != 0, "publisher dies mid-swap");
            });
        })
    };
    assert!(
        publisher.join().is_err(),
        "the publisher must have panicked"
    );
    let snap3 = snapshot(3, scores_v1(), Staleness::Full);
    assert!(matches!(
        server.publish(&snap3),
        Err(ServeError::PublishPoisoned)
    ));

    // Point reads never touch the gate: they keep answering, each from
    // its shard's (possibly mid-swap) epoch.
    let (epoch, score) = server.score(DocId(1)).unwrap();
    assert_eq!((epoch, score), (2, 0.10)); // shard 0 swapped before the panic
    let (epoch, score) = server.score(DocId(7)).unwrap();
    assert_eq!((epoch, score), (1, 0.12)); // shard 1 never swapped
    let (_, site_top) = server.top_k_for_site(SiteId(0), 2).unwrap();
    assert_eq!(site_top, vec![(DocId(1), 0.10), (DocId(0), 0.05)]);
    let stats = server.stats();
    assert_eq!(stats.direct_hits, 3);
    assert_eq!(stats.fanout_queries, 0);

    // A cross-shard gather over the permanently straddled tier exhausts
    // its retries and escalates into the poisoned gate — degrading to the
    // typed error, never a panic and never a wrong-epoch response.
    assert!(matches!(server.top_k(3), Err(ServeError::PublishPoisoned)));
    assert!(server.stats().gate_escalations >= 1);
}
