//! End-to-end removal acceptance: a mixed delta that removes a whole site,
//! shrinks another, and grows a third round-trips through
//! `RankEngine::apply_delta` and a `ShardedServer::publish`:
//!
//! * surviving documents' scores match a from-scratch rank of the
//!   compacted graph within L1 tolerance;
//! * tombstoned ids answer the typed errors, never stale scores;
//! * only the named sites' shards rebuild — everything else takes the
//!   cheap refresh path;
//! * total rank mass is conserved to 1e-9 after the redistribution.

use lmm_core::siterank::SiteLayerMethod;
use lmm_engine::{BackendSpec, RankEngine, Staleness};
use lmm_graph::delta::GraphDelta;
use lmm_graph::generator::CampusWebConfig;
use lmm_graph::sharding::ShardMap;
use lmm_graph::{DocGraph, DocId, SiteId};
use lmm_serve::{ServeConfig, ServeError, ShardedServer};

fn campus() -> DocGraph {
    let mut cfg = CampusWebConfig::small();
    cfg.total_docs = 600;
    cfg.n_sites = 12;
    cfg.spam_farms.clear();
    cfg.generate().unwrap()
}

#[test]
fn mixed_removal_delta_round_trips_through_engine_and_server() {
    let base = campus();
    let mut engine = RankEngine::builder()
        .backend(BackendSpec::Incremental)
        .damping(0.85)
        .tolerance(1e-10)
        .build()
        .unwrap();
    engine.rank(&base).unwrap();

    // 4 shards x 3 sites: shard 0 = sites 0..3, 1 = 3..6, 2 = 6..9, 3 = 9..12.
    let map = ShardMap::uniform(base.n_sites(), 4).unwrap();
    let server =
        ShardedServer::start(map, &engine.snapshot().unwrap(), ServeConfig::default()).unwrap();

    // The mixed delta: remove site 1 (shard 0), shrink site 4 (shard 1),
    // grow site 7 (shard 2). Shard 3 is untouched by name.
    let removed_site = SiteId(1);
    let shrunk_site = SiteId(4);
    let grown_site = SiteId(7);
    let dead_doc = base.docs_of_site(removed_site)[0];
    let shrunk_doc = base.docs_of_site(shrunk_site)[1];
    let mut delta = GraphDelta::for_graph(&base);
    delta.remove_site(removed_site).unwrap();
    delta.remove_page(shrunk_doc).unwrap();
    let root = base.docs_of_site(grown_site)[0];
    let p = delta
        .add_page(grown_site, "http://accept-grow.example/")
        .unwrap();
    delta.add_link(root, p).unwrap();
    delta.add_link(p, root).unwrap();

    let (mutated, applied) = base.apply(&delta).unwrap();
    assert_eq!(applied.removed_sites, vec![removed_site.index()]);
    assert_eq!(applied.shrunk_sites, vec![shrunk_site.index()]);
    assert_eq!(applied.grown_sites, vec![grown_site.index()]);

    engine.apply_delta(&delta).unwrap();
    let snapshot = engine.snapshot().unwrap();

    // The staleness contract names exactly the touched sites.
    match snapshot.staleness() {
        Staleness::Resized {
            sites,
            removed_sites,
        } => {
            assert_eq!(sites, &vec![shrunk_site.index(), grown_site.index()]);
            assert_eq!(removed_sites, &vec![removed_site.index()]);
        }
        other => panic!("expected Resized staleness, got {other:?}"),
    }

    // Mass conservation: the removed site's mass was redistributed, not
    // dropped.
    let total: f64 = snapshot.scores().iter().sum();
    assert!((total - 1.0).abs() < 1e-9, "rank mass leaked: {total}");

    // Publish: only the three named sites' shards rebuild; the untouched
    // shard refreshes (orders reused), nothing re-pins stale scores.
    let report = server.publish(&snapshot).unwrap();
    assert_eq!(report.shards_rebuilt, 3, "{report:?}");
    assert_eq!(report.shards_refreshed, 1, "{report:?}");
    assert_eq!(report.shards_repinned, 0, "{report:?}");

    // Cross-shard top-k stays bitwise identical to the engine cache — the
    // refreshed shard's re-merged top list is exact, not approximate.
    let (epoch, top) = server.top_k(20).unwrap();
    assert_eq!(epoch, snapshot.epoch());
    assert_eq!(top, engine.top_k(20).unwrap());

    // Tombstoned ids answer typed errors, never stale scores.
    assert!(matches!(
        server.score(dead_doc),
        Err(ServeError::TombstonedDoc { doc, .. }) if doc == dead_doc.index()
    ));
    assert!(matches!(
        server.score(shrunk_doc),
        Err(ServeError::TombstonedDoc { .. })
    ));
    assert!(matches!(
        server.top_k_for_site(removed_site, 3),
        Err(ServeError::TombstonedSite { site, .. }) if site == removed_site.index()
    ));
    assert!(matches!(
        server.score_batch(&[DocId(0), dead_doc]),
        Err(ServeError::TombstonedDoc { .. })
    ));
    // Out-of-range stays UnknownDoc — "gone" and "never existed" differ.
    assert!(matches!(
        server.score(DocId(mutated.n_docs() + 5)),
        Err(ServeError::UnknownDoc { .. })
    ));

    // The tombstone contract holds on *both* read paths. `server` runs
    // with `direct_reads: true` (the default), so every probe above was
    // answered on the caller's thread — prove it via the counter — and a
    // worker-path server over the same snapshot answers identically.
    let mid_stats = server.stats();
    assert!(
        mid_stats.direct_hits >= 3,
        "tombstone probes must ride the direct path, direct_hits = {}",
        mid_stats.direct_hits
    );
    let fanout_server = ShardedServer::start(
        ShardMap::uniform(base.n_sites(), 4).unwrap(),
        &snapshot,
        ServeConfig {
            direct_reads: false,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    assert!(matches!(
        fanout_server.score(dead_doc),
        Err(ServeError::TombstonedDoc { doc, .. }) if doc == dead_doc.index()
    ));
    assert!(matches!(
        fanout_server.top_k_for_site(removed_site, 3),
        Err(ServeError::TombstonedSite { site, .. }) if site == removed_site.index()
    ));
    assert_eq!(fanout_server.stats().direct_hits, 0);

    // Surviving docs match a from-scratch rank of the *compacted* graph,
    // id-translated through the remap, within L1 tolerance.
    let (dense, remap) = mutated.compact_ids();
    let mut scratch = RankEngine::builder()
        .backend(BackendSpec::Layered {
            site_layer: SiteLayerMethod::PageRank,
        })
        .damping(0.85)
        .tolerance(1e-10)
        .build()
        .unwrap();
    scratch.rank(&dense).unwrap();
    let mut l1 = 0.0f64;
    for d in 0..mutated.n_docs() {
        let old = DocId(d);
        if let Some(new) = remap.doc(old) {
            let (_, served) = server.score(old).unwrap();
            l1 += (served - scratch.score(new).unwrap()).abs();
        }
    }
    assert!(l1 < 1e-6, "survivors drifted from compacted scratch: {l1}");

    // Queries through the *refreshed* shard serve the redistributed (not
    // stale) scores: site 10 lives in shard 3, which only refreshed.
    let probe = mutated.docs_of_site(SiteId(10))[0];
    let (_, served) = server.score(probe).unwrap();
    assert_eq!(served, snapshot.scores()[probe.index()]);
    let (_, site_top) = server.top_k_for_site(SiteId(10), 3).unwrap();
    assert_eq!(site_top, engine.top_k_for_site(SiteId(10), 3).unwrap());

    // The skew signal reflects the drained shard.
    let stats = server.stats();
    assert_eq!(stats.shard_docs.len(), 4);
    assert_eq!(
        stats.shard_docs.iter().sum::<u64>(),
        mutated.n_live_docs() as u64
    );
    assert!(stats.doc_skew() > 1.0, "skew {}", stats.doc_skew());
    assert!(stats.tombstone_rejections >= 4);
}

#[test]
fn shrink_without_siterank_rerun_stays_sites_staleness() {
    // A page removal whose links were all intra-site keeps the SiteRank
    // fresh: staleness degrades gracefully to `Sites` and untouched shards
    // re-pin (bit-identical contract still holds).
    let base = campus();
    let mut engine = RankEngine::builder()
        .backend(BackendSpec::Incremental)
        .build()
        .unwrap();
    engine.rank(&base).unwrap();
    let map = ShardMap::uniform(base.n_sites(), 4).unwrap();
    let server =
        ShardedServer::start(map, &engine.snapshot().unwrap(), ServeConfig::default()).unwrap();

    // Find a page of site 2 with no cross-site links in either direction.
    let victim = *base
        .docs_of_site(SiteId(2))
        .iter()
        .skip(1) // keep the root
        .find(|&&d| {
            let intra_out = base
                .adjacency()
                .row(d.index())
                .0
                .iter()
                .all(|&t| base.site_of(DocId(t)) == SiteId(2));
            let intra_in = base
                .links()
                .filter(|&(_, to)| to == d)
                .all(|(from, _)| base.site_of(from) == SiteId(2));
            intra_out && intra_in
        })
        .expect("campus sites have leaf pages without cross links");
    let mut delta = GraphDelta::for_graph(&base);
    delta.remove_page(victim).unwrap();
    engine.apply_delta(&delta).unwrap();
    let snapshot = engine.snapshot().unwrap();
    assert_eq!(snapshot.staleness(), &Staleness::Sites(vec![2]));

    let report = server.publish(&snapshot).unwrap();
    assert_eq!(report.shards_rebuilt, 1);
    assert_eq!(report.shards_repinned, 3);
    assert_eq!(report.shards_refreshed, 0);
    assert!(matches!(
        server.score(victim),
        Err(ServeError::TombstonedDoc { .. })
    ));
    let (_, top) = server.top_k(10).unwrap();
    assert_eq!(top, engine.top_k(10).unwrap());
}
