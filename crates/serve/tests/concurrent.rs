//! Concurrent readers during snapshot hot-swap: reader threads hammer
//! `top_k` / `score` / `top_k_for_site` while the writer applies deltas
//! and publishes, and every single response must be *internally
//! consistent* — its payload bit-equal to what the epoch it claims was
//! published with. A torn read (data from one epoch stamped with another,
//! or a half-swapped gather) fails the comparison immediately.
//!
//! The test spawns its own threads and pins the engine pool to one worker,
//! so it behaves identically under `RUST_TEST_THREADS=1`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lmm_engine::{BackendSpec, RankEngine, RankSnapshot};
use lmm_graph::delta::GraphDelta;
use lmm_graph::generator::CampusWebConfig;
use lmm_graph::sharding::ShardMap;
use lmm_graph::{DocGraph, DocId, SiteId};
use lmm_serve::{ServeConfig, ShardedServer};

/// Expected answers per published epoch: the snapshot itself plus the
/// global top-10 it implies. Inserted *before* the epoch is published, so
/// a reader can always verify whatever epoch answers.
type Expected = Mutex<HashMap<u64, (RankSnapshot, Vec<(DocId, f64)>)>>;

fn campus() -> DocGraph {
    let mut cfg = CampusWebConfig::small();
    cfg.total_docs = 600;
    cfg.n_sites = 12;
    cfg.spam_farms.clear();
    cfg.generate().unwrap()
}

/// Expected serving order of one site under a snapshot.
fn expected_site_top(snapshot: &RankSnapshot, site: SiteId, k: usize) -> Vec<(DocId, f64)> {
    let scores = snapshot.scores();
    let mut members: Vec<(DocId, f64)> = snapshot
        .members_of_site(site)
        .iter()
        .map(|&d| (d, scores[d.index()]))
        .collect();
    members.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite scores")
            .then(a.0.cmp(&b.0))
    });
    members.truncate(k);
    members
}

/// A churn delta: always an intra-site rewire; growth every 2nd step; a
/// cross link every 3rd (forcing a full invalidation, i.e. all shards
/// rebuild) — so the stream exercises both re-pin and rebuild swaps.
fn delta_for_step(graph: &DocGraph, step: usize) -> GraphDelta {
    let n_sites = graph.n_sites();
    let mut delta = GraphDelta::for_graph(graph);
    let mut site = (step * 5 + 1) % n_sites;
    while graph.site_size(SiteId(site)) < 3 {
        site = (site + 1) % n_sites;
    }
    let docs = graph.docs_of_site(SiteId(site));
    delta.remove_link(docs[0], docs[1]).unwrap();
    delta.add_link(docs[1], docs[2]).unwrap();
    delta.add_link(docs[2], docs[0]).unwrap();
    if step.is_multiple_of(2) {
        let target = SiteId((step * 7 + 2) % n_sites);
        let root = graph.docs_of_site(target)[0];
        let p = delta
            .add_page(target, &format!("http://swap-grow-{step}.page/"))
            .unwrap();
        delta.add_link(root, p).unwrap();
        delta.add_link(p, root).unwrap();
    }
    if step.is_multiple_of(3) {
        let a = graph.docs_of_site(SiteId((step * 3 + 4) % n_sites))[0];
        let b = graph.docs_of_site(SiteId((step * 11 + 7) % n_sites))[0];
        delta.add_link(a, b).unwrap();
    }
    delta
}

#[test]
fn readers_never_observe_torn_state_across_swaps() {
    let base = campus();
    let base_docs = base.n_docs();
    let base_sites = base.n_sites();
    let mut engine = RankEngine::builder()
        .backend(BackendSpec::Incremental)
        .damping(0.85)
        .tolerance(1e-10)
        .threads(1)
        .build()
        .unwrap();
    engine.rank(&base).unwrap();

    let expected: Arc<Expected> = Arc::new(Mutex::new(HashMap::new()));
    let record = |expected: &Expected, engine: &RankEngine| {
        let snap = engine.snapshot().unwrap();
        let top = engine.top_k(10).unwrap();
        expected.lock().unwrap().insert(snap.epoch(), (snap, top));
    };
    record(&expected, &engine);

    let server = Arc::new(
        ShardedServer::start(
            ShardMap::balanced(&base, 4).unwrap(),
            &engine.snapshot().unwrap(),
            ServeConfig {
                heap_k: 16,
                max_gather_retries: 2,
                direct_reads: true,
            },
        )
        .unwrap(),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let n_readers = 3;
    let verified: Vec<Arc<AtomicU64>> = (0..n_readers)
        .map(|_| Arc::new(AtomicU64::new(0)))
        .collect();
    let final_epochs: Vec<Arc<AtomicU64>> = (0..n_readers)
        .map(|_| Arc::new(AtomicU64::new(0)))
        .collect();
    let mut readers = Vec::new();
    for reader in 0..n_readers {
        let server = Arc::clone(&server);
        let expected = Arc::clone(&expected);
        let stop = Arc::clone(&stop);
        let verified = Arc::clone(&verified[reader]);
        let last_epoch = Arc::clone(&final_epochs[reader]);
        readers.push(std::thread::spawn(move || {
            let mut rng: u64 = (0x9e37_79b9 * (reader as u64 + 1)) | 1;
            let mut step = |m: usize| -> usize {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                (rng.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 33) as usize % m
            };
            while !stop.load(Ordering::Relaxed) {
                let epoch = match step(3) {
                    0 => {
                        let (epoch, top) = server.top_k(10).unwrap();
                        let guard = expected.lock().unwrap();
                        let (_, want) = guard.get(&epoch).expect("unpublished epoch");
                        assert_eq!(&top, want, "torn top_k at epoch {epoch}");
                        epoch
                    }
                    1 => {
                        let doc = DocId(step(base_docs));
                        let (epoch, score) = server.score(doc).unwrap();
                        let guard = expected.lock().unwrap();
                        let (snap, _) = guard.get(&epoch).expect("unpublished epoch");
                        assert_eq!(
                            score.to_bits(),
                            snap.scores()[doc.index()].to_bits(),
                            "torn score at epoch {epoch}"
                        );
                        epoch
                    }
                    _ => {
                        let site = SiteId(step(base_sites));
                        let (epoch, top) = server.top_k_for_site(site, 5).unwrap();
                        let guard = expected.lock().unwrap();
                        let (snap, _) = guard.get(&epoch).expect("unpublished epoch");
                        assert_eq!(
                            top,
                            expected_site_top(snap, site, 5),
                            "torn site top_k at epoch {epoch}"
                        );
                        epoch
                    }
                };
                verified.fetch_add(1, Ordering::Relaxed);
                last_epoch.store(epoch, Ordering::Relaxed);
            }
        }));
    }

    // Writer: apply deltas and hot-swap while the readers hammer.
    let mut current = base;
    for step in 0..8 {
        let delta = delta_for_step(&current, step);
        let (mutated, _) = current.apply(&delta).unwrap();
        engine.apply_delta(&delta).unwrap();
        record(&expected, &engine);
        server.publish(&engine.snapshot().unwrap()).unwrap();
        current = mutated;
    }
    let final_epoch = engine.epoch();
    assert_eq!(server.epoch(), final_epoch);

    // Let every reader verify at least a few responses *after* the last
    // swap, so the final epoch is provably served, then stop.
    let marks: Vec<u64> = verified
        .iter()
        .map(|v| v.load(Ordering::Relaxed) + 3)
        .collect();
    while verified
        .iter()
        .zip(&marks)
        .any(|(v, &m)| v.load(Ordering::Relaxed) < m)
    {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for handle in readers {
        handle.join().expect("reader thread panicked (torn read?)");
    }

    for (reader, v) in verified.iter().enumerate() {
        assert!(
            v.load(Ordering::Relaxed) >= 3,
            "reader {reader} verified too few responses"
        );
    }
    // After the writer finished, the readers' most recent responses must
    // come from the final epoch.
    for (reader, e) in final_epochs.iter().enumerate() {
        assert_eq!(
            e.load(Ordering::Relaxed),
            final_epoch,
            "reader {reader} stuck on a stale epoch"
        );
    }
    // The stream mixed re-pin swaps with rebuild swaps.
    let stats = server.stats();
    assert_eq!(stats.publishes, 8);
    assert!(stats.shards_rebuilt > 0);
    assert!(stats.shards_repinned > 0);
    assert_eq!(stats.gate_escalations, 0, "escalation is the rare path");
    assert!(
        stats.direct_hits > 0,
        "score/site lookups must ride the direct path"
    );
}

/// The torn-read hazard the two-mutex design left open: routing epoch
/// N+1 observed while some shard still serves epoch N would route a doc
/// into a cell that does not yet rank it. The publisher now stores every
/// shard cell *before* the routing snapshot, so `routing_epoch <=
/// min(shard_epoch)` must hold at every observable instant. Readers
/// sample the pair (routing first, exactly like the direct path does)
/// while the writer publishes full-rebuild swaps as fast as it can.
#[test]
fn routing_epoch_never_leads_a_shard_epoch() {
    let base = campus();
    let mut engine = RankEngine::builder()
        .backend(BackendSpec::Incremental)
        .threads(1)
        .build()
        .unwrap();
    engine.rank(&base).unwrap();
    let server = Arc::new(
        ShardedServer::start(
            ShardMap::balanced(&base, 4).unwrap(),
            &engine.snapshot().unwrap(),
            ServeConfig::default(),
        )
        .unwrap(),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let samples = Arc::new(AtomicU64::new(0));
    let mut checkers = Vec::new();
    for _ in 0..2 {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        let samples = Arc::clone(&samples);
        checkers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                // Same order as the direct read path: routing, then cell.
                let routed = server.routing_epoch();
                for shard in 0..server.n_shards() {
                    let serving = server.shard_epoch(shard);
                    assert!(
                        serving >= routed,
                        "coherence violated: routing at epoch {routed}, \
                         shard {shard} still at {serving}"
                    );
                }
                samples.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    let mut current = base;
    for step in 0..6 {
        let delta = delta_for_step(&current, step);
        let (mutated, _) = current.apply(&delta).unwrap();
        engine.apply_delta(&delta).unwrap();
        // The pacing hook lands mid-swap (cells partially ahead): the
        // invariant must hold there too, not just between publishes.
        let srv = &server;
        server
            .publish_paced(&engine.snapshot().unwrap(), &|_| {
                let routed = srv.routing_epoch();
                for shard in 0..srv.n_shards() {
                    assert!(srv.shard_epoch(shard) >= routed);
                }
            })
            .unwrap();
        current = mutated;
    }
    // Keep checking a little after the last swap, then stop.
    let mark = samples.load(Ordering::Relaxed) + 5;
    while samples.load(Ordering::Relaxed) < mark {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for handle in checkers {
        handle.join().expect("coherence checker panicked");
    }
    assert_eq!(server.routing_epoch(), engine.epoch());
}

#[test]
fn serve_results_match_the_engine_cache_bitwise() {
    // The serve tier and the engine cache must agree bit for bit on every
    // query type, at the initial epoch and after a localized delta.
    let base = campus();
    let mut engine = RankEngine::builder()
        .backend(BackendSpec::Incremental)
        .threads(1)
        .build()
        .unwrap();
    engine.rank(&base).unwrap();
    let server = ShardedServer::start(
        ShardMap::balanced(&base, 3).unwrap(),
        &engine.snapshot().unwrap(),
        ServeConfig::default(),
    )
    .unwrap();

    let check = |engine: &RankEngine, server: &ShardedServer, n_sites: usize| {
        let (_, top) = server.top_k(20).unwrap();
        assert_eq!(top, engine.top_k(20).unwrap());
        for s in 0..n_sites {
            let (_, site_top) = server.top_k_for_site(SiteId(s), 4).unwrap();
            assert_eq!(site_top, engine.top_k_for_site(SiteId(s), 4).unwrap());
        }
        for d in (0..base.n_docs()).step_by(37) {
            let (_, score) = server.score(DocId(d)).unwrap();
            assert_eq!(score.to_bits(), engine.score(DocId(d)).unwrap().to_bits());
        }
    };
    check(&engine, &server, base.n_sites());

    // Localized delta: rewire inside one site; only its shard rebuilds.
    let mut delta = GraphDelta::for_graph(&base);
    let docs = base.docs_of_site(SiteId(4));
    delta.remove_link(docs[0], docs[1]).unwrap();
    delta.add_link(docs[1], docs[0]).unwrap();
    engine.apply_delta(&delta).unwrap();
    let report = server.publish(&engine.snapshot().unwrap()).unwrap();
    assert_eq!(report.shards_rebuilt, 1);
    assert_eq!(report.shards_repinned, 2);
    check(&engine, &server, base.n_sites());
}
