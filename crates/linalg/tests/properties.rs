//! Property-based tests of the linear-algebra kernels: the sparse paths
//! must agree with dense references, and the power method's fixed points
//! must be genuine.

use lmm_linalg::power::stationary_distribution;
use lmm_linalg::{
    vec_ops, CooMatrix, CsrMatrix, DenseMatrix, LinearOperator, PowerOptions, StationaryOperator,
    StochasticMatrix,
};
use lmm_par::ThreadPool;
use proptest::prelude::*;

/// Strategy: a random list of triplets inside an `n x n` matrix.
fn triplets(n: usize, max_entries: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((0..n, 0..n, 0.0f64..10.0), 0..max_entries)
}

fn build_pair(n: usize, entries: &[(usize, usize, f64)]) -> (CsrMatrix, DenseMatrix) {
    let mut coo = CooMatrix::new(n, n);
    let mut dense = DenseMatrix::zeros(n, n).expect("n > 0");
    for &(r, c, v) in entries {
        coo.push(r, c, v);
        dense.set(r, c, dense.get(r, c) + v);
    }
    (coo.to_csr(), dense)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// COO assembly with duplicate summing matches the dense accumulation.
    #[test]
    fn coo_to_csr_matches_dense(n in 1usize..12, entries in triplets(11, 40)) {
        let entries: Vec<_> = entries.into_iter()
            .filter(|&(r, c, _)| r < n && c < n)
            .collect();
        let (csr, dense) = build_pair(n, &entries);
        for r in 0..n {
            for c in 0..n {
                prop_assert!((csr.get(r, c) - dense.get(r, c)).abs() < 1e-12);
            }
        }
    }

    /// Sparse matrix-vector products agree with the dense reference.
    #[test]
    fn apply_matches_dense(
        n in 1usize..10,
        entries in triplets(9, 30),
        x_seed in prop::collection::vec(-5.0f64..5.0, 1..10),
    ) {
        let entries: Vec<_> = entries.into_iter()
            .filter(|&(r, c, _)| r < n && c < n)
            .collect();
        let (csr, dense) = build_pair(n, &entries);
        let x: Vec<f64> = (0..n).map(|i| x_seed[i % x_seed.len()]).collect();
        let sparse_y = csr.apply(&x).expect("dims");
        let dense_y = dense.apply(&x).expect("dims");
        prop_assert!(vec_ops::l1_diff(&sparse_y, &dense_y) < 1e-9);
        let sparse_t = csr.apply_transpose(&x).expect("dims");
        let dense_t = dense.apply_transpose(&x).expect("dims");
        prop_assert!(vec_ops::l1_diff(&sparse_t, &dense_t) < 1e-9);
    }

    /// Transposition is an involution and preserves every entry.
    #[test]
    fn transpose_involution(n in 1usize..10, entries in triplets(9, 30)) {
        let entries: Vec<_> = entries.into_iter()
            .filter(|&(r, c, _)| r < n && c < n)
            .collect();
        let (csr, _) = build_pair(n, &entries);
        let tt = csr.transpose().transpose();
        prop_assert_eq!(&tt, &csr);
        for (r, c, v) in csr.iter() {
            prop_assert_eq!(csr.transpose().get(c, r), v);
        }
    }

    /// Row normalization yields rows summing to 1 (or flagged dangling).
    #[test]
    fn normalize_rows_invariant(n in 1usize..10, entries in triplets(9, 30)) {
        let entries: Vec<_> = entries.into_iter()
            .filter(|&(r, c, _)| r < n && c < n)
            .collect();
        let (csr, _) = build_pair(n, &entries);
        let (normalized, dangling) = csr.normalize_rows();
        let sums = normalized.row_sums();
        for (r, s) in sums.iter().enumerate() {
            if dangling.contains(&r) {
                prop_assert_eq!(*s, 0.0);
            } else {
                prop_assert!((s - 1.0).abs() < 1e-9, "row {} sums to {}", r, s);
            }
        }
    }

    /// The power method's output on a strictly positive chain is a genuine
    /// fixed point and a distribution.
    #[test]
    fn stationary_is_fixed_point(
        n in 2usize..8,
        raw in prop::collection::vec(0.05f64..1.0, 4..64),
    ) {
        prop_assume!(raw.len() >= n * n);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|r| raw[r * n..(r + 1) * n].to_vec())
            .collect();
        let mut dense = DenseMatrix::from_rows(&rows).expect("square");
        let dangling = dense.normalize_rows();
        prop_assert!(dangling.is_empty());
        let csr = dense.to_csr();
        let (pi, report) =
            stationary_distribution(&csr, &PowerOptions::default()).expect("primitive");
        prop_assert!(report.converged);
        prop_assert!(vec_ops::is_distribution(&pi, 1e-9));
        let next = csr.apply_transpose(&pi).expect("dims");
        prop_assert!(vec_ops::l1_diff(&pi, &next) < 1e-9);
    }

    /// StochasticMatrix::from_adjacency never produces invalid rows.
    #[test]
    fn stochastic_from_adjacency_valid(n in 1usize..10, entries in triplets(9, 30)) {
        let entries: Vec<_> = entries.into_iter()
            .filter(|&(r, c, _)| r < n && c < n)
            .collect();
        let (csr, _) = build_pair(n, &entries);
        let m = StochasticMatrix::from_adjacency(csr).expect("non-negative");
        let sums = m.matrix().row_sums();
        for (r, s) in sums.iter().enumerate() {
            let is_dangling = m.dangling().contains(&r);
            prop_assert!(is_dangling == (*s == 0.0));
        }
    }

    /// The pull-mode gather operator agrees with the serial scatter
    /// `apply_transpose_into` to 1e-12 (in fact bitwise) on random
    /// row-normalized matrices, at every pool size.
    #[test]
    fn pull_mode_operator_matches_serial_scatter(
        n in 1usize..24,
        entries in triplets(23, 160),
    ) {
        let entries: Vec<_> = entries.into_iter()
            .filter(|&(r, c, _)| r < n && c < n)
            .collect();
        let (csr, _) = build_pair(n, &entries);
        let (stochastic, _) = csr.normalize_rows();
        let x: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 2.0)).collect();
        let mut serial = vec![0.0; n];
        stochastic.apply_transpose_into(&x, &mut serial).expect("dims");
        for threads in [1usize, 2, 4] {
            let pool = std::sync::Arc::new(ThreadPool::new(threads));
            let op = StationaryOperator::new(&stochastic, pool).expect("square");
            let mut gathered = vec![0.0; n];
            op.apply_to(&x, &mut gathered).expect("dims");
            prop_assert!(vec_ops::linf_diff(&serial, &gathered) <= 1e-12, "{threads} threads");
            for (a, b) in serial.iter().zip(&gathered) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Parallel vec_ops reductions match their serial counterparts within
    /// accumulated rounding, and are identical across pool sizes.
    #[test]
    fn parallel_vec_ops_match_serial(
        seed in prop::collection::vec(-8.0f64..8.0, 8..64),
        scale_by in 0.25f64..4.0,
    ) {
        // Stretch the seed across several PAR_CHUNK grids so the chunked
        // code path actually splits.
        let n = 2 * vec_ops::PAR_CHUNK + 37;
        let x: Vec<f64> = (0..n).map(|i| seed[i % seed.len()] * scale_by).collect();
        let y: Vec<f64> = (0..n).map(|i| seed[(i + 3) % seed.len()]).collect();
        let serial_pool = ThreadPool::serial();
        let pool = ThreadPool::new(4);
        let l1 = vec_ops::l1_norm(&x);
        prop_assert!((vec_ops::l1_norm_par(&pool, &x) - l1).abs() <= 1e-9 * (1.0 + l1));
        let d1 = vec_ops::l1_diff(&x, &y);
        prop_assert!((vec_ops::l1_diff_par(&pool, &x, &y) - d1).abs() <= 1e-9 * (1.0 + d1));
        prop_assert_eq!(vec_ops::linf_norm_par(&pool, &x), vec_ops::linf_norm(&x));
        prop_assert_eq!(vec_ops::linf_diff_par(&pool, &x, &y), vec_ops::linf_diff(&x, &y));
        // Cross-pool-size bit-identity.
        prop_assert_eq!(
            vec_ops::l1_norm_par(&serial_pool, &x).to_bits(),
            vec_ops::l1_norm_par(&pool, &x).to_bits()
        );
        prop_assert_eq!(
            vec_ops::sum_par(&serial_pool, &x).to_bits(),
            vec_ops::sum_par(&pool, &x).to_bits()
        );
        // Elementwise kernels are exact.
        let mut ys = y.clone();
        let mut yp = y.clone();
        vec_ops::axpy(0.5, &x, &mut ys);
        vec_ops::axpy_par(&pool, 0.5, &x, &mut yp);
        prop_assert_eq!(&ys, &yp);
    }

    /// The pooled stationary distribution agrees with the serial one.
    #[test]
    fn pooled_stationary_matches_serial(
        n in 2usize..8,
        raw in prop::collection::vec(0.05f64..1.0, 4..64),
    ) {
        prop_assume!(raw.len() >= n * n);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|r| raw[r * n..(r + 1) * n].to_vec())
            .collect();
        let mut dense = DenseMatrix::from_rows(&rows).expect("square");
        let dangling = dense.normalize_rows();
        prop_assume!(dangling.is_empty());
        let csr = dense.to_csr();
        let (serial, _) =
            stationary_distribution(&csr, &PowerOptions::default()).expect("primitive");
        for threads in [1usize, 4] {
            let pool = std::sync::Arc::new(ThreadPool::new(threads));
            let (pooled, report) = lmm_linalg::power::stationary_distribution_pool(
                &csr,
                &PowerOptions::default(),
                pool,
            )
            .expect("primitive");
            prop_assert!(report.converged);
            prop_assert!(vec_ops::l1_diff(&serial, &pooled) < 1e-9, "{threads} threads");
        }
    }
}
