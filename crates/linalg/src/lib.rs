//! Sparse and dense linear-algebra substrate for Markov-chain ranking.
//!
//! This crate provides the numerical kernels that every ranking algorithm in
//! the workspace is built on:
//!
//! * [`DenseMatrix`] — small row-major dense matrices (used for the paper's
//!   worked example and for reference implementations in tests);
//! * [`CooMatrix`] / [`CsrMatrix`] — sparse matrices in triplet and
//!   compressed-sparse-row form, sized for web-scale link matrices;
//! * [`StochasticMatrix`] — a validated row-stochastic transition matrix with
//!   explicit bookkeeping of dangling (all-zero) rows;
//! * [`power_method`] — a power-iteration engine over the [`LinearOperator`]
//!   abstraction, so both explicit CSR matrices and implicit factored
//!   operators (such as the Layered Markov Model's global transition) share
//!   one convergence loop ([`power_method_pool`] runs the same loop with
//!   all `O(n)` vector passes on an `lmm-par` thread pool);
//! * [`StationaryOperator`] — the pull-mode `y = Mᵀx` kernel: `Mᵀ` is
//!   materialized once and each step is a parallel row-wise gather with
//!   bit-identical results at any thread count;
//! * [`structure`] — reachability analysis: strongly connected components,
//!   periodicity, irreducibility and primitivity of transition matrices.
//!
//! # Example
//!
//! Computing the stationary distribution of a small primitive chain:
//!
//! ```
//! use lmm_linalg::{DenseMatrix, power::stationary_distribution, power::PowerOptions};
//!
//! # fn main() -> Result<(), lmm_linalg::LinalgError> {
//! let y = DenseMatrix::from_rows(&[
//!     vec![0.1, 0.3, 0.6],
//!     vec![0.2, 0.4, 0.4],
//!     vec![0.3, 0.5, 0.2],
//! ])?;
//! let csr = y.to_csr();
//! let (pi, report) = stationary_distribution(&csr, &PowerOptions::default())?;
//! assert!(report.converged);
//! assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod operator;
pub mod power;
pub mod stochastic;
pub mod structure;
pub mod vec_ops;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::{LinalgError, Result};
pub use operator::StationaryOperator;
pub use power::{
    power_method, power_method_pool, Acceleration, ConvergenceReport, LinearOperator, PowerOptions,
    TransposeOperator,
};
pub use stochastic::{DanglingPolicy, StochasticMatrix};
pub use structure::{is_primitive, period, strongly_connected_components, StructureReport};
