//! Error type shared by all linear-algebra operations in this crate.

use std::error::Error as StdError;
use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Errors produced by linear-algebra operations.
///
/// Every fallible public function in this crate returns [`LinalgError`]
/// rather than panicking, so that callers (ranking algorithms, simulators)
/// can surface malformed inputs as recoverable errors.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        operation: &'static str,
        /// Dimension the operation expected.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
    },
    /// A matrix that must be square is not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// An entry index is out of bounds.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Number of rows of the matrix.
        rows: usize,
        /// Number of columns of the matrix.
        cols: usize,
    },
    /// A row of a would-be stochastic matrix does not sum to one.
    NotStochastic {
        /// Index of the offending row.
        row: usize,
        /// The actual row sum.
        sum: f64,
    },
    /// A probability entry is negative, NaN or infinite.
    InvalidProbability {
        /// Flat index (or row index, depending on context) of the entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A vector that must be a probability distribution is not.
    NotDistribution {
        /// The actual sum of the vector.
        sum: f64,
    },
    /// An operation requires a non-empty matrix or vector.
    Empty,
    /// The power method failed to converge within the iteration budget.
    NotConverged {
        /// Number of iterations performed.
        iterations: usize,
        /// Residual at the last iteration.
        residual: f64,
    },
    /// An operation requires a primitive (irreducible + aperiodic) matrix.
    NotPrimitive {
        /// Number of strongly connected components found.
        components: usize,
        /// Period of the chain (meaningful when `components == 1`).
        period: usize,
    },
    /// A scalar parameter lies outside its valid open or closed interval.
    ParameterOutOfRange {
        /// Name of the parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                operation,
                expected,
                found,
            } => write!(
                f,
                "dimension mismatch in {operation}: expected {expected}, found {found}"
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "index ({row}, {col}) out of bounds for {rows}x{cols} matrix"
            ),
            LinalgError::NotStochastic { row, sum } => {
                write!(f, "row {row} sums to {sum}, expected 1")
            }
            LinalgError::InvalidProbability { index, value } => {
                write!(f, "invalid probability {value} at index {index}")
            }
            LinalgError::NotDistribution { sum } => {
                write!(f, "vector sums to {sum}, expected a probability distribution")
            }
            LinalgError::Empty => write!(f, "operation requires a non-empty operand"),
            LinalgError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "power method did not converge after {iterations} iterations (residual {residual:e})"
            ),
            LinalgError::NotPrimitive { components, period } => write!(
                f,
                "matrix is not primitive ({components} strongly connected components, period {period})"
            ),
            LinalgError::ParameterOutOfRange { name, value } => {
                write!(f, "parameter {name} = {value} is out of range")
            }
        }
    }
}

impl StdError for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::DimensionMismatch {
            operation: "apply",
            expected: 3,
            found: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("apply"));
        assert!(msg.contains('3'));
        assert!(msg.contains('4'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: StdError + Send + Sync + 'static>() {}
        assert_error::<LinalgError>();
    }

    #[test]
    fn not_converged_mentions_residual() {
        let e = LinalgError::NotConverged {
            iterations: 100,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn clone_and_eq() {
        let e = LinalgError::Empty;
        assert_eq!(e.clone(), e);
    }
}
