//! Free functions over `&[f64]` slices used throughout the ranking stack.
//!
//! These are deliberately plain-slice operations (no vector newtype) so they
//! compose with buffers owned by any caller — power-method workspaces,
//! ranking vectors, message payloads in the P2P simulator, and so on.

use crate::error::{LinalgError, Result};

/// Tolerance used by [`is_distribution`] and the stochastic validators.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Returns the L1 norm `sum(|x_i|)` of `x`.
///
/// # Example
/// ```
/// assert_eq!(lmm_linalg::vec_ops::l1_norm(&[0.25, -0.25, 0.5]), 1.0);
/// ```
#[must_use]
pub fn l1_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Returns the L2 norm `sqrt(sum(x_i^2))` of `x`.
#[must_use]
pub fn l2_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Returns the L∞ norm `max(|x_i|)` of `x` (0 for an empty slice).
#[must_use]
pub fn linf_norm(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |acc, v| acc.max(v.abs()))
}

/// Returns the L1 distance `sum(|x_i - y_i|)` between two equal-length slices.
///
/// # Panics
/// Panics if `x.len() != y.len()`; the callers in this workspace always pair
/// buffers of identical, statically-known length.
#[must_use]
pub fn l1_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "l1_diff requires equal lengths");
    x.iter().zip(y).map(|(a, b)| (a - b).abs()).sum()
}

/// Returns the L∞ distance `max(|x_i - y_i|)` between two equal-length slices.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn linf_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "linf_diff requires equal lengths");
    x.iter()
        .zip(y)
        .fold(0.0, |acc, (a, b)| acc.max((a - b).abs()))
}

/// Returns the dot product of two equal-length slices.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot requires equal lengths");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// In-place `y += alpha * x`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy requires equal lengths");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place multiplication of every element by `alpha`.
pub fn scale(x: &mut [f64], alpha: f64) {
    for v in x {
        *v *= alpha;
    }
}

/// Normalizes `x` in place so that its entries sum to 1 (L1, assuming
/// non-negative entries) and returns the original sum.
///
/// # Errors
/// Returns [`LinalgError::Empty`] for an empty slice and
/// [`LinalgError::NotDistribution`] if the sum is zero, negative, or not
/// finite (the vector cannot be normalized into a distribution).
pub fn normalize_l1(x: &mut [f64]) -> Result<f64> {
    if x.is_empty() {
        return Err(LinalgError::Empty);
    }
    let sum: f64 = x.iter().sum();
    if !(sum.is_finite() && sum > 0.0) {
        return Err(LinalgError::NotDistribution { sum });
    }
    let inv = 1.0 / sum;
    for v in x.iter_mut() {
        *v *= inv;
    }
    Ok(sum)
}

/// Returns the uniform distribution over `n` states.
///
/// # Panics
/// Panics if `n == 0`.
#[must_use]
pub fn uniform(n: usize) -> Vec<f64> {
    assert!(n > 0, "uniform distribution requires n > 0");
    vec![1.0 / n as f64; n]
}

/// Checks whether `x` is a probability distribution: all entries finite and
/// non-negative, and the total within `tol` of 1.
///
/// # Errors
/// Returns [`LinalgError::InvalidProbability`] for a bad entry or
/// [`LinalgError::NotDistribution`] for a bad total.
pub fn check_distribution(x: &[f64], tol: f64) -> Result<()> {
    if x.is_empty() {
        return Err(LinalgError::Empty);
    }
    for (i, &v) in x.iter().enumerate() {
        if !v.is_finite() || v < 0.0 {
            return Err(LinalgError::InvalidProbability { index: i, value: v });
        }
    }
    let sum: f64 = x.iter().sum();
    if (sum - 1.0).abs() > tol {
        return Err(LinalgError::NotDistribution { sum });
    }
    Ok(())
}

/// Returns `true` when `x` is a probability distribution within `tol`.
#[must_use]
pub fn is_distribution(x: &[f64], tol: f64) -> bool {
    check_distribution(x, tol).is_ok()
}

/// Index of the maximal element (first one on ties). `None` when empty.
#[must_use]
pub fn argmax(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_on_known_vectors() {
        let x = [3.0, -4.0];
        assert_eq!(l1_norm(&x), 7.0);
        assert_eq!(l2_norm(&x), 5.0);
        assert_eq!(linf_norm(&x), 4.0);
    }

    #[test]
    fn l1_diff_and_linf_diff() {
        let x = [1.0, 2.0, 3.0];
        let y = [1.5, 2.0, 1.0];
        assert!((l1_diff(&x, &y) - 2.5).abs() < 1e-15);
        assert!((linf_diff(&x, &y) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn dot_and_axpy() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        assert_eq!(dot(&x, &y), 50.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn normalize_l1_makes_distribution() {
        let mut x = vec![1.0, 3.0];
        let sum = normalize_l1(&mut x).unwrap();
        assert_eq!(sum, 4.0);
        assert_eq!(x, vec![0.25, 0.75]);
        assert!(is_distribution(&x, 1e-12));
    }

    #[test]
    fn normalize_l1_rejects_zero_vector() {
        let mut x = vec![0.0, 0.0];
        assert!(matches!(
            normalize_l1(&mut x),
            Err(LinalgError::NotDistribution { .. })
        ));
    }

    #[test]
    fn normalize_l1_rejects_empty() {
        let mut x: Vec<f64> = vec![];
        assert_eq!(normalize_l1(&mut x), Err(LinalgError::Empty));
    }

    #[test]
    fn uniform_is_distribution() {
        let u = uniform(7);
        assert!(is_distribution(&u, 1e-12));
        assert!(u.iter().all(|&v| (v - 1.0 / 7.0).abs() < 1e-15));
    }

    #[test]
    fn check_distribution_catches_negative() {
        assert!(matches!(
            check_distribution(&[0.5, -0.1, 0.6], 1e-9),
            Err(LinalgError::InvalidProbability { index: 1, .. })
        ));
    }

    #[test]
    fn check_distribution_catches_nan() {
        assert!(matches!(
            check_distribution(&[f64::NAN, 1.0], 1e-9),
            Err(LinalgError::InvalidProbability { index: 0, .. })
        ));
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0]), Some(0));
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        // First index wins ties.
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(&mut x, -3.0);
        assert_eq!(x, vec![-3.0, 6.0]);
    }
}
