//! Free functions over `&[f64]` slices used throughout the ranking stack.
//!
//! These are deliberately plain-slice operations (no vector newtype) so they
//! compose with buffers owned by any caller — power-method workspaces,
//! ranking vectors, message payloads in the P2P simulator, and so on.

use crate::error::{LinalgError, Result};
use lmm_par::ThreadPool;

/// Tolerance used by [`is_distribution`] and the stochastic validators.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Chunk length of the parallel reductions and elementwise kernels below.
///
/// The grid `[0..PAR_CHUNK)`, `[PAR_CHUNK..2·PAR_CHUNK)`, … depends only on
/// the vector length, never on the pool size, so every `*_par` function
/// returns **bit-identical** results for any thread count (including the
/// serial pool). Vectors at or below one chunk take the plain serial path.
pub const PAR_CHUNK: usize = 16 * 1024;

/// Returns the L1 norm `sum(|x_i|)` of `x`.
///
/// # Example
/// ```
/// assert_eq!(lmm_linalg::vec_ops::l1_norm(&[0.25, -0.25, 0.5]), 1.0);
/// ```
#[must_use]
pub fn l1_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Returns the L2 norm `sqrt(sum(x_i^2))` of `x`.
#[must_use]
pub fn l2_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Returns the L∞ norm `max(|x_i|)` of `x` (0 for an empty slice).
#[must_use]
pub fn linf_norm(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |acc, v| acc.max(v.abs()))
}

/// Returns the L1 distance `sum(|x_i - y_i|)` between two equal-length slices.
///
/// # Panics
/// Panics if `x.len() != y.len()`; the callers in this workspace always pair
/// buffers of identical, statically-known length.
#[must_use]
pub fn l1_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "l1_diff requires equal lengths");
    x.iter().zip(y).map(|(a, b)| (a - b).abs()).sum()
}

/// Returns the L∞ distance `max(|x_i - y_i|)` between two equal-length slices.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn linf_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "linf_diff requires equal lengths");
    x.iter()
        .zip(y)
        .fold(0.0, |acc, (a, b)| acc.max((a - b).abs()))
}

/// Returns the dot product of two equal-length slices.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot requires equal lengths");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// In-place `y += alpha * x`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy requires equal lengths");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place multiplication of every element by `alpha`.
pub fn scale(x: &mut [f64], alpha: f64) {
    for v in x {
        *v *= alpha;
    }
}

/// Normalizes `x` in place so that its entries sum to 1 (L1, assuming
/// non-negative entries) and returns the original sum.
///
/// # Errors
/// Returns [`LinalgError::Empty`] for an empty slice and
/// [`LinalgError::NotDistribution`] if the sum is zero, negative, or not
/// finite (the vector cannot be normalized into a distribution).
pub fn normalize_l1(x: &mut [f64]) -> Result<f64> {
    if x.is_empty() {
        return Err(LinalgError::Empty);
    }
    let sum: f64 = x.iter().sum();
    if !(sum.is_finite() && sum > 0.0) {
        return Err(LinalgError::NotDistribution { sum });
    }
    let inv = 1.0 / sum;
    for v in x.iter_mut() {
        *v *= inv;
    }
    Ok(sum)
}

/// Returns the uniform distribution over `n` states.
///
/// # Panics
/// Panics if `n == 0`.
#[must_use]
pub fn uniform(n: usize) -> Vec<f64> {
    assert!(n > 0, "uniform distribution requires n > 0");
    vec![1.0 / n as f64; n]
}

/// Checks whether `x` is a probability distribution: all entries finite and
/// non-negative, and the total within `tol` of 1.
///
/// # Errors
/// Returns [`LinalgError::InvalidProbability`] for a bad entry or
/// [`LinalgError::NotDistribution`] for a bad total.
pub fn check_distribution(x: &[f64], tol: f64) -> Result<()> {
    if x.is_empty() {
        return Err(LinalgError::Empty);
    }
    for (i, &v) in x.iter().enumerate() {
        if !v.is_finite() || v < 0.0 {
            return Err(LinalgError::InvalidProbability { index: i, value: v });
        }
    }
    let sum: f64 = x.iter().sum();
    if (sum - 1.0).abs() > tol {
        return Err(LinalgError::NotDistribution { sum });
    }
    Ok(())
}

/// Returns `true` when `x` is a probability distribution within `tol`.
#[must_use]
pub fn is_distribution(x: &[f64], tol: f64) -> bool {
    check_distribution(x, tol).is_ok()
}

/// Pool-parallel [`l1_norm`]: chunked partial sums folded in chunk order.
///
/// The chunk grid is fixed by the length alone, so the result does not
/// depend on the pool size (it may differ from the serial left-to-right
/// sum in the last bits — chunked summation is, if anything, more
/// accurate).
#[must_use]
pub fn l1_norm_par(pool: &ThreadPool, x: &[f64]) -> f64 {
    pool.par_reduce(
        x.len(),
        PAR_CHUNK,
        |r| x[r].iter().map(|v| v.abs()).sum::<f64>(),
        |a, b| a + b,
    )
    .unwrap_or(0.0)
}

/// Pool-parallel sum of all entries (chunk-ordered fold; see
/// [`l1_norm_par`] for the determinism contract).
#[must_use]
pub fn sum_par(pool: &ThreadPool, x: &[f64]) -> f64 {
    pool.par_reduce(
        x.len(),
        PAR_CHUNK,
        |r| x[r].iter().sum::<f64>(),
        |a, b| a + b,
    )
    .unwrap_or(0.0)
}

/// Pool-parallel [`l1_diff`].
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn l1_diff_par(pool: &ThreadPool, x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "l1_diff requires equal lengths");
    pool.par_reduce(
        x.len(),
        PAR_CHUNK,
        |r| {
            x[r.clone()]
                .iter()
                .zip(&y[r])
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
        },
        |a, b| a + b,
    )
    .unwrap_or(0.0)
}

/// Pool-parallel [`linf_diff`] (max of chunk maxima — exactly the serial
/// value, since `max` is order-insensitive).
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn linf_diff_par(pool: &ThreadPool, x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "linf_diff requires equal lengths");
    pool.par_reduce(
        x.len(),
        PAR_CHUNK,
        |r| {
            x[r.clone()]
                .iter()
                .zip(&y[r])
                .fold(0.0f64, |acc, (a, b)| acc.max((a - b).abs()))
        },
        f64::max,
    )
    .unwrap_or(0.0)
}

/// Pool-parallel [`linf_norm`].
#[must_use]
pub fn linf_norm_par(pool: &ThreadPool, x: &[f64]) -> f64 {
    pool.par_reduce(
        x.len(),
        PAR_CHUNK,
        |r| x[r].iter().fold(0.0f64, |acc, v| acc.max(v.abs())),
        f64::max,
    )
    .unwrap_or(0.0)
}

/// Pool-parallel [`axpy`] (`y += alpha * x`): elementwise, so bit-identical
/// to the serial loop at any pool size.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn axpy_par(pool: &ThreadPool, alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy requires equal lengths");
    pool.par_chunks_mut(y, PAR_CHUNK, |offset, chunk| {
        let len = chunk.len();
        for (yi, xi) in chunk.iter_mut().zip(&x[offset..offset + len]) {
            *yi += alpha * xi;
        }
    });
}

/// Pool-parallel [`scale`] (elementwise; bit-identical at any pool size).
pub fn scale_par(pool: &ThreadPool, x: &mut [f64], alpha: f64) {
    pool.par_chunks_mut(x, PAR_CHUNK, |_, chunk| {
        for v in chunk {
            *v *= alpha;
        }
    });
}

/// Pool-parallel [`normalize_l1`]: the total is a chunk-ordered parallel
/// sum, the rescale an elementwise parallel sweep.
///
/// # Errors
/// See [`normalize_l1`].
pub fn normalize_l1_par(pool: &ThreadPool, x: &mut [f64]) -> Result<f64> {
    if x.is_empty() {
        return Err(LinalgError::Empty);
    }
    let sum = sum_par(pool, x);
    if !(sum.is_finite() && sum > 0.0) {
        return Err(LinalgError::NotDistribution { sum });
    }
    let inv = 1.0 / sum;
    scale_par(pool, x, inv);
    Ok(sum)
}

/// Index of the maximal element (first one on ties). `None` when empty.
#[must_use]
pub fn argmax(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_on_known_vectors() {
        let x = [3.0, -4.0];
        assert_eq!(l1_norm(&x), 7.0);
        assert_eq!(l2_norm(&x), 5.0);
        assert_eq!(linf_norm(&x), 4.0);
    }

    #[test]
    fn l1_diff_and_linf_diff() {
        let x = [1.0, 2.0, 3.0];
        let y = [1.5, 2.0, 1.0];
        assert!((l1_diff(&x, &y) - 2.5).abs() < 1e-15);
        assert!((linf_diff(&x, &y) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn dot_and_axpy() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        assert_eq!(dot(&x, &y), 50.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn normalize_l1_makes_distribution() {
        let mut x = vec![1.0, 3.0];
        let sum = normalize_l1(&mut x).unwrap();
        assert_eq!(sum, 4.0);
        assert_eq!(x, vec![0.25, 0.75]);
        assert!(is_distribution(&x, 1e-12));
    }

    #[test]
    fn normalize_l1_rejects_zero_vector() {
        let mut x = vec![0.0, 0.0];
        assert!(matches!(
            normalize_l1(&mut x),
            Err(LinalgError::NotDistribution { .. })
        ));
    }

    #[test]
    fn normalize_l1_rejects_empty() {
        let mut x: Vec<f64> = vec![];
        assert_eq!(normalize_l1(&mut x), Err(LinalgError::Empty));
    }

    #[test]
    fn uniform_is_distribution() {
        let u = uniform(7);
        assert!(is_distribution(&u, 1e-12));
        assert!(u.iter().all(|&v| (v - 1.0 / 7.0).abs() < 1e-15));
    }

    #[test]
    fn check_distribution_catches_negative() {
        assert!(matches!(
            check_distribution(&[0.5, -0.1, 0.6], 1e-9),
            Err(LinalgError::InvalidProbability { index: 1, .. })
        ));
    }

    #[test]
    fn check_distribution_catches_nan() {
        assert!(matches!(
            check_distribution(&[f64::NAN, 1.0], 1e-9),
            Err(LinalgError::InvalidProbability { index: 0, .. })
        ));
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0]), Some(0));
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        // First index wins ties.
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(&mut x, -3.0);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    fn wiggly(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64 * 0.7).sin() * 3.0) + if i % 3 == 0 { -1.5 } else { 0.25 })
            .collect()
    }

    #[test]
    fn par_reductions_are_pool_size_independent() {
        // Large enough for many chunks; values chosen to make the fold
        // order observable if it ever varied.
        let x = wiggly(5 * PAR_CHUNK + 17);
        let y = wiggly(5 * PAR_CHUNK + 17)
            .iter()
            .map(|v| v * 1.01)
            .collect::<Vec<_>>();
        let serial = ThreadPool::serial();
        for threads in [2usize, 4] {
            let pool = ThreadPool::new(threads);
            for (a, b) in [
                (l1_norm_par(&serial, &x), l1_norm_par(&pool, &x)),
                (sum_par(&serial, &x), sum_par(&pool, &x)),
                (l1_diff_par(&serial, &x, &y), l1_diff_par(&pool, &x, &y)),
                (linf_diff_par(&serial, &x, &y), linf_diff_par(&pool, &x, &y)),
                (linf_norm_par(&serial, &x), linf_norm_par(&pool, &x)),
            ] {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads");
            }
        }
    }

    #[test]
    fn par_reductions_match_serial_closely() {
        let x = wiggly(3 * PAR_CHUNK);
        let y = wiggly(3 * PAR_CHUNK)
            .iter()
            .map(|v| v + 0.5)
            .collect::<Vec<_>>();
        let pool = ThreadPool::new(3);
        assert!((l1_norm_par(&pool, &x) - l1_norm(&x)).abs() < 1e-9 * l1_norm(&x));
        assert!((l1_diff_par(&pool, &x, &y) - l1_diff(&x, &y)).abs() < 1e-9 * l1_diff(&x, &y));
        // Max-based norms are order-insensitive: exactly equal.
        assert_eq!(linf_norm_par(&pool, &x), linf_norm(&x));
        assert_eq!(linf_diff_par(&pool, &x, &y), linf_diff(&x, &y));
    }

    #[test]
    fn par_elementwise_match_serial_exactly() {
        let x = wiggly(2 * PAR_CHUNK + 5);
        let pool = ThreadPool::new(4);
        let mut y_serial = wiggly(2 * PAR_CHUNK + 5);
        let mut y_par = y_serial.clone();
        axpy(0.37, &x, &mut y_serial);
        axpy_par(&pool, 0.37, &x, &mut y_par);
        assert_eq!(y_serial, y_par);
        scale(&mut y_serial, -1.25);
        scale_par(&pool, &mut y_par, -1.25);
        assert_eq!(y_serial, y_par);
    }

    #[test]
    fn normalize_l1_par_basics() {
        let pool = ThreadPool::new(2);
        let mut x: Vec<f64> = (0..2 * PAR_CHUNK).map(|i| (i % 7) as f64 + 1.0).collect();
        let sum = normalize_l1_par(&pool, &mut x).unwrap();
        assert!(sum > 0.0);
        assert!(is_distribution(&x, 1e-9));
        // Pool-size independence of the normalized vector.
        let mut x1: Vec<f64> = (0..2 * PAR_CHUNK).map(|i| (i % 7) as f64 + 1.0).collect();
        normalize_l1_par(&ThreadPool::serial(), &mut x1).unwrap();
        assert_eq!(x, x1);

        let mut zero = vec![0.0; 8];
        assert!(matches!(
            normalize_l1_par(&pool, &mut zero),
            Err(LinalgError::NotDistribution { .. })
        ));
        let mut empty: Vec<f64> = vec![];
        assert_eq!(normalize_l1_par(&pool, &mut empty), Err(LinalgError::Empty));
    }
}
