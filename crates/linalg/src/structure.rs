//! Structural analysis of transition matrices: strongly connected
//! components, periodicity, irreducibility and primitivity.
//!
//! The paper's Partition Theorem requires the phase matrix `Y` to be
//! *primitive* (irreducible and aperiodic); this module provides the checks
//! that let [`lmm-core`](../lmm_core/index.html) enforce that precondition
//! instead of silently producing an oscillating power iteration.

use crate::csr::CsrMatrix;
use crate::error::{LinalgError, Result};

/// Strongly-connected-component decomposition of a square sparse matrix's
/// positive sparsity pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccDecomposition {
    /// Component id of each node; ids are in reverse topological order of the
    /// condensation (Tarjan numbering).
    pub component_of: Vec<usize>,
    /// Number of components.
    pub count: usize,
}

impl SccDecomposition {
    /// Groups node indices by component id.
    #[must_use]
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.count];
        for (node, &c) in self.component_of.iter().enumerate() {
            groups[c].push(node);
        }
        groups
    }
}

/// Computes the strongly connected components of the directed graph whose
/// edges are the strictly positive entries of `m`, using an iterative
/// Tarjan algorithm (no recursion, safe for web-scale graphs).
///
/// # Errors
/// Returns [`LinalgError::NotSquare`] for a non-square matrix.
pub fn strongly_connected_components(m: &CsrMatrix) -> Result<SccDecomposition> {
    if !m.is_square() {
        return Err(LinalgError::NotSquare {
            rows: m.nrows(),
            cols: m.ncols(),
        });
    }
    let n = m.nrows();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNSET; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut count = 0usize;

    // Explicit DFS frame: (node, position within its adjacency list).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let (cols, vals) = m.row(v);
            let mut advanced = false;
            while *pos < cols.len() {
                let w = cols[*pos];
                let weight = vals[*pos];
                *pos += 1;
                if weight <= 0.0 {
                    continue;
                }
                if index[w] == UNSET {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                    advanced = true;
                    break;
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            }
            if advanced {
                continue;
            }
            // v is finished: pop the frame, close the component if v is a root.
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                lowlink[parent] = lowlink[parent].min(lowlink[v]);
            }
            if lowlink[v] == index[v] {
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w] = false;
                    comp[w] = count;
                    if w == v {
                        break;
                    }
                }
                count += 1;
            }
        }
    }
    Ok(SccDecomposition {
        component_of: comp,
        count,
    })
}

/// Returns `true` when the positive pattern of `m` is strongly connected
/// (the Markov chain is irreducible).
///
/// # Errors
/// Returns [`LinalgError::NotSquare`] for a non-square matrix.
pub fn is_irreducible(m: &CsrMatrix) -> Result<bool> {
    Ok(strongly_connected_components(m)?.count == 1 && m.nrows() > 0)
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Computes the period of an irreducible chain: the gcd of all cycle lengths
/// in the positive pattern of `m`.
///
/// Uses the BFS-level criterion: for a BFS labeling `level`, the period is
/// `gcd over all positive edges (u, v) of |level[u] + 1 - level[v]|`.
///
/// # Errors
/// * [`LinalgError::NotSquare`] for a non-square matrix;
/// * [`LinalgError::Empty`] for an empty matrix;
/// * [`LinalgError::NotPrimitive`] when the chain is not irreducible
///   (the period of a reducible chain is not well defined as a single gcd).
pub fn period(m: &CsrMatrix) -> Result<usize> {
    if !m.is_square() {
        return Err(LinalgError::NotSquare {
            rows: m.nrows(),
            cols: m.ncols(),
        });
    }
    let n = m.nrows();
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    let scc = strongly_connected_components(m)?;
    if scc.count != 1 {
        return Err(LinalgError::NotPrimitive {
            components: scc.count,
            period: 0,
        });
    }
    // BFS from node 0 over positive edges.
    let mut level = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    level[0] = 0;
    queue.push_back(0usize);
    while let Some(u) = queue.pop_front() {
        let (cols, vals) = m.row(u);
        for (&v, &w) in cols.iter().zip(vals) {
            if w > 0.0 && level[v] == usize::MAX {
                level[v] = level[u] + 1;
                queue.push_back(v);
            }
        }
    }
    let mut g: u64 = 0;
    for (u, v, w) in m.iter() {
        if w <= 0.0 {
            continue;
        }
        let d = level[u] as i64 + 1 - level[v] as i64;
        g = gcd(g, d.unsigned_abs());
    }
    // A strongly connected graph with at least one edge always yields g >= 1.
    Ok(g.max(1) as usize)
}

/// Full structural report for a square transition matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructureReport {
    /// Number of strongly connected components.
    pub components: usize,
    /// Period of the chain when irreducible, `None` otherwise.
    pub period: Option<usize>,
    /// Whether the chain is irreducible (one SCC).
    pub irreducible: bool,
    /// Whether the chain is aperiodic (period 1; `false` when reducible).
    pub aperiodic: bool,
    /// Whether the matrix is primitive: irreducible and aperiodic.
    pub primitive: bool,
}

impl std::fmt::Display for StructureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "components={}, period={:?}, primitive={}",
            self.components, self.period, self.primitive
        )
    }
}

/// Analyzes irreducibility, periodicity and primitivity of `m` in one pass.
///
/// # Errors
/// Returns [`LinalgError::NotSquare`] for a non-square matrix and
/// [`LinalgError::Empty`] for an empty one.
pub fn analyze(m: &CsrMatrix) -> Result<StructureReport> {
    if !m.is_square() {
        return Err(LinalgError::NotSquare {
            rows: m.nrows(),
            cols: m.ncols(),
        });
    }
    if m.nrows() == 0 {
        return Err(LinalgError::Empty);
    }
    let scc = strongly_connected_components(m)?;
    if scc.count != 1 {
        return Ok(StructureReport {
            components: scc.count,
            period: None,
            irreducible: false,
            aperiodic: false,
            primitive: false,
        });
    }
    let p = period(m)?;
    Ok(StructureReport {
        components: 1,
        period: Some(p),
        irreducible: true,
        aperiodic: p == 1,
        primitive: p == 1,
    })
}

/// Returns `true` when `m` is primitive (irreducible and aperiodic), the
/// precondition of the paper's Theorem 2 for the phase matrix `Y`.
///
/// # Errors
/// Returns [`LinalgError::NotSquare`] or [`LinalgError::Empty`] as in
/// [`analyze`].
///
/// # Example
/// ```
/// use lmm_linalg::{DenseMatrix, is_primitive};
/// # fn main() -> Result<(), lmm_linalg::LinalgError> {
/// let y = DenseMatrix::from_rows(&[
///     vec![0.1, 0.9],
///     vec![0.6, 0.4],
/// ])?;
/// assert!(is_primitive(&y.to_csr())?);
/// # Ok(())
/// # }
/// ```
pub fn is_primitive(m: &CsrMatrix) -> Result<bool> {
    Ok(analyze(m)?.primitive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::dense::DenseMatrix;

    fn csr_from_edges(n: usize, edges: &[(usize, usize)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for &(u, v) in edges {
            coo.push(u, v, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn single_cycle_is_one_component() {
        let m = csr_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let scc = strongly_connected_components(&m).unwrap();
        assert_eq!(scc.count, 1);
        assert!(is_irreducible(&m).unwrap());
    }

    #[test]
    fn chain_has_n_components() {
        let m = csr_from_edges(3, &[(0, 1), (1, 2)]);
        let scc = strongly_connected_components(&m).unwrap();
        assert_eq!(scc.count, 3);
        assert!(!is_irreducible(&m).unwrap());
    }

    #[test]
    fn two_cycles_bridged_one_way() {
        // {0,1} cycle, {2,3} cycle, bridge 1 -> 2: two SCCs.
        let m = csr_from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let scc = strongly_connected_components(&m).unwrap();
        assert_eq!(scc.count, 2);
        let comps = scc.components();
        let mut sizes: Vec<usize> = comps.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 2]);
        // Nodes 0,1 share a component; nodes 2,3 share a component.
        assert_eq!(scc.component_of[0], scc.component_of[1]);
        assert_eq!(scc.component_of[2], scc.component_of[3]);
        assert_ne!(scc.component_of[0], scc.component_of[2]);
    }

    #[test]
    fn zero_weight_edges_ignored() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 0.0); // structurally stored but weight zero
        let m = coo.to_csr();
        let scc = strongly_connected_components(&m).unwrap();
        assert_eq!(scc.count, 2);
    }

    #[test]
    fn period_of_pure_cycle_is_length() {
        for n in 2..6 {
            let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
            let m = csr_from_edges(n, &edges);
            assert_eq!(period(&m).unwrap(), n, "cycle of length {n}");
        }
    }

    #[test]
    fn self_loop_makes_aperiodic() {
        let m = csr_from_edges(3, &[(0, 1), (1, 2), (2, 0), (0, 0)]);
        assert_eq!(period(&m).unwrap(), 1);
        assert!(is_primitive(&m).unwrap());
    }

    #[test]
    fn two_cycle_lengths_gcd() {
        // Cycles of length 2 (0-1) and 4 (0-1-2-3): gcd = 2.
        let m = csr_from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(period(&m).unwrap(), 2);
        let rep = analyze(&m).unwrap();
        assert!(rep.irreducible);
        assert!(!rep.aperiodic);
        assert!(!rep.primitive);
    }

    #[test]
    fn period_rejects_reducible() {
        let m = csr_from_edges(2, &[(0, 1)]);
        assert!(matches!(
            period(&m),
            Err(LinalgError::NotPrimitive { components: 2, .. })
        ));
    }

    #[test]
    fn positive_dense_matrix_is_primitive() {
        let m = DenseMatrix::from_rows(&[
            vec![0.1, 0.3, 0.6],
            vec![0.2, 0.4, 0.4],
            vec![0.3, 0.5, 0.2],
        ])
        .unwrap()
        .to_csr();
        let rep = analyze(&m).unwrap();
        assert!(rep.primitive);
        assert_eq!(rep.period, Some(1));
        assert_eq!(rep.components, 1);
    }

    #[test]
    fn analyze_reducible_report() {
        let m = csr_from_edges(3, &[(0, 1), (1, 2)]);
        let rep = analyze(&m).unwrap();
        assert_eq!(rep.components, 3);
        assert_eq!(rep.period, None);
        assert!(!rep.primitive);
        assert!(rep.to_string().contains("components=3"));
    }

    #[test]
    fn isolated_node_not_irreducible() {
        let m = csr_from_edges(2, &[(0, 0)]);
        assert!(!is_irreducible(&m).unwrap());
    }

    #[test]
    fn empty_matrix_errors() {
        let m = CooMatrix::new(0, 0).to_csr();
        assert!(analyze(&m).is_err());
    }

    #[test]
    fn large_path_graph_no_stack_overflow() {
        // 200k-node path exercises the iterative DFS (a recursive Tarjan
        // would overflow the stack).
        let n = 200_000;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let m = csr_from_edges(n, &edges);
        let scc = strongly_connected_components(&m).unwrap();
        assert_eq!(scc.count, n);
    }
}
