//! Validated row-stochastic transition matrices.
//!
//! [`StochasticMatrix`] wraps a [`CsrMatrix`] whose every non-dangling row
//! sums to one, with the dangling (all-zero) rows recorded explicitly.
//! Ranking algorithms take a `StochasticMatrix`, so validation happens once
//! at the boundary instead of inside every iteration loop.

use crate::csr::CsrMatrix;
use crate::error::{LinalgError, Result};
use crate::vec_ops::DEFAULT_TOL;

/// How a ranking algorithm should treat dangling rows (pages without
/// out-links), whose transition row is all zero.
///
/// The paper's transition-matrix function `M(G)` follows standard PageRank
/// practice; the policy is made explicit here because the choice changes the
/// stationary vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DanglingPolicy {
    /// Redistribute the dangling mass uniformly over all states (the
    /// textbook patch, equivalent to replacing zero rows with `1/n` rows).
    #[default]
    Uniform,
    /// Redistribute the dangling mass according to the personalization /
    /// teleport vector.
    Teleport,
    /// Keep the matrix substochastic and renormalize the iterate each step
    /// (mass leaks and is rescaled; historically used by some crawler
    /// implementations).
    Renormalize,
}

/// A row-stochastic transition matrix with explicit dangling-row accounting.
///
/// # Example
/// ```
/// use lmm_linalg::{CooMatrix, StochasticMatrix};
///
/// // Two pages: page 0 links to page 1; page 1 has no out-links (dangling).
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 1, 1.0);
/// let m = StochasticMatrix::from_adjacency(coo.to_csr()).unwrap();
/// assert_eq!(m.dangling(), &[1]);
/// assert_eq!(m.matrix().get(0, 1), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StochasticMatrix {
    matrix: CsrMatrix,
    dangling: Vec<usize>,
}

impl StochasticMatrix {
    /// Builds a transition matrix from a non-negative adjacency/weight
    /// matrix by dividing each row by its sum (the paper's `M(G)`); all-zero
    /// rows become dangling rows.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::InvalidProbability`] if any entry is negative or not
    /// finite.
    pub fn from_adjacency(adjacency: CsrMatrix) -> Result<Self> {
        if !adjacency.is_square() {
            return Err(LinalgError::NotSquare {
                rows: adjacency.nrows(),
                cols: adjacency.ncols(),
            });
        }
        for (r, _c, v) in adjacency.iter() {
            if !v.is_finite() || v < 0.0 {
                return Err(LinalgError::InvalidProbability { index: r, value: v });
            }
        }
        let (matrix, dangling) = adjacency.normalize_rows();
        Ok(Self { matrix, dangling })
    }

    /// Wraps an already row-stochastic matrix, verifying that each row sums
    /// to 1 within `tol` or is entirely zero (dangling).
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`], [`LinalgError::NotStochastic`] or
    /// [`LinalgError::InvalidProbability`] accordingly.
    pub fn from_stochastic(matrix: CsrMatrix, tol: f64) -> Result<Self> {
        if !matrix.is_square() {
            return Err(LinalgError::NotSquare {
                rows: matrix.nrows(),
                cols: matrix.ncols(),
            });
        }
        let mut dangling = Vec::new();
        for r in 0..matrix.nrows() {
            let (_, vals) = matrix.row(r);
            let mut sum = 0.0;
            for &v in vals {
                if !v.is_finite() || v < 0.0 {
                    return Err(LinalgError::InvalidProbability { index: r, value: v });
                }
                sum += v;
            }
            if vals.is_empty() || sum == 0.0 {
                dangling.push(r);
            } else if (sum - 1.0).abs() > tol {
                return Err(LinalgError::NotStochastic { row: r, sum });
            }
        }
        Ok(Self { matrix, dangling })
    }

    /// Wraps a matrix checked with the default tolerance
    /// ([`DEFAULT_TOL`]).
    ///
    /// # Errors
    /// See [`StochasticMatrix::from_stochastic`].
    pub fn new(matrix: CsrMatrix) -> Result<Self> {
        Self::from_stochastic(matrix, DEFAULT_TOL)
    }

    /// The underlying row-stochastic CSR matrix (dangling rows are all-zero).
    #[must_use]
    pub fn matrix(&self) -> &CsrMatrix {
        &self.matrix
    }

    /// Indices of dangling (all-zero) rows, ascending.
    #[must_use]
    pub fn dangling(&self) -> &[usize] {
        &self.dangling
    }

    /// Returns `true` when the chain has no dangling rows.
    #[must_use]
    pub fn is_fully_stochastic(&self) -> bool {
        self.dangling.is_empty()
    }

    /// Number of states.
    #[must_use]
    pub fn n(&self) -> usize {
        self.matrix.nrows()
    }

    /// Consumes the wrapper and returns the underlying matrix.
    #[must_use]
    pub fn into_matrix(self) -> CsrMatrix {
        self.matrix
    }

    /// One step of the rank iteration: `y = Mᵀ x` plus dangling-mass
    /// redistribution according to `policy` with teleport vector `v`
    /// (used by [`DanglingPolicy::Teleport`]; `Uniform` ignores it).
    ///
    /// With `Renormalize` the dangling mass is dropped here; the caller's
    /// iteration loop is expected to renormalize the iterate.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on wrong buffer sizes.
    pub fn rank_step_into(
        &self,
        x: &[f64],
        v: &[f64],
        policy: DanglingPolicy,
        y: &mut [f64],
    ) -> Result<()> {
        self.matrix.apply_transpose_into(x, y)?;
        self.redistribute_dangling(x, v, policy, y)
    }

    /// Adds the dangling-mass redistribution of one rank step to an
    /// already-computed `y = Mᵀ x` — the second half of
    /// [`StochasticMatrix::rank_step_into`], exposed separately so callers
    /// that compute the transpose product through a different kernel (the
    /// parallel pull-mode gather) can reuse the identical dangling
    /// arithmetic.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when `policy` is
    /// [`DanglingPolicy::Teleport`] and `v` has the wrong length.
    pub fn redistribute_dangling(
        &self,
        x: &[f64],
        v: &[f64],
        policy: DanglingPolicy,
        y: &mut [f64],
    ) -> Result<()> {
        if self.dangling.is_empty() {
            return Ok(());
        }
        let dangling_mass: f64 = self.dangling.iter().map(|&r| x[r]).sum();
        if dangling_mass == 0.0 {
            return Ok(());
        }
        match policy {
            DanglingPolicy::Uniform => {
                let share = dangling_mass / self.n() as f64;
                for yi in y.iter_mut() {
                    *yi += share;
                }
            }
            DanglingPolicy::Teleport => {
                if v.len() != self.n() {
                    return Err(LinalgError::DimensionMismatch {
                        operation: "StochasticMatrix::rank_step_into teleport vector",
                        expected: self.n(),
                        found: v.len(),
                    });
                }
                for (yi, &vi) in y.iter_mut().zip(v) {
                    *yi += dangling_mass * vi;
                }
            }
            DanglingPolicy::Renormalize => {}
        }
        Ok(())
    }
}

impl AsRef<CsrMatrix> for StochasticMatrix {
    fn as_ref(&self) -> &CsrMatrix {
        &self.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::vec_ops::l1_norm;

    fn chain_with_dangling() -> StochasticMatrix {
        // 0 -> 1 (w 2), 0 -> 2 (w 2), 1 -> 2, 2 dangling
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 2.0);
        coo.push(0, 2, 2.0);
        coo.push(1, 2, 1.0);
        StochasticMatrix::from_adjacency(coo.to_csr()).unwrap()
    }

    #[test]
    fn from_adjacency_normalizes() {
        let m = chain_with_dangling();
        assert_eq!(m.matrix().get(0, 1), 0.5);
        assert_eq!(m.matrix().get(0, 2), 0.5);
        assert_eq!(m.matrix().get(1, 2), 1.0);
        assert_eq!(m.dangling(), &[2]);
        assert!(!m.is_fully_stochastic());
    }

    #[test]
    fn from_adjacency_rejects_negative() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, -1.0);
        assert!(matches!(
            StochasticMatrix::from_adjacency(coo.to_csr()),
            Err(LinalgError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn from_adjacency_rejects_non_square() {
        let coo = CooMatrix::new(2, 3);
        assert!(matches!(
            StochasticMatrix::from_adjacency(coo.to_csr()),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn from_stochastic_validates_row_sums() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 0.6);
        coo.push(0, 1, 0.6);
        coo.push(1, 0, 1.0);
        assert!(matches!(
            StochasticMatrix::new(coo.to_csr()),
            Err(LinalgError::NotStochastic { row: 0, .. })
        ));
    }

    #[test]
    fn rank_step_uniform_conserves_mass() {
        let m = chain_with_dangling();
        let x = [0.2, 0.3, 0.5];
        let v = [1.0 / 3.0; 3];
        let mut y = vec![0.0; 3];
        m.rank_step_into(&x, &v, DanglingPolicy::Uniform, &mut y)
            .unwrap();
        assert!((l1_norm(&y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_step_teleport_conserves_mass() {
        let m = chain_with_dangling();
        let x = [0.2, 0.3, 0.5];
        let v = [0.7, 0.2, 0.1];
        let mut y = vec![0.0; 3];
        m.rank_step_into(&x, &v, DanglingPolicy::Teleport, &mut y)
            .unwrap();
        assert!((l1_norm(&y) - 1.0).abs() < 1e-12);
        // The dangling mass 0.5 is routed through v: state 0 receives
        // 0.5 * 0.7 = 0.35 and nothing else points at state 0.
        assert!((y[0] - 0.35).abs() < 1e-12);
    }

    #[test]
    fn rank_step_renormalize_leaks_mass() {
        let m = chain_with_dangling();
        let x = [0.2, 0.3, 0.5];
        let v = [1.0 / 3.0; 3];
        let mut y = vec![0.0; 3];
        m.rank_step_into(&x, &v, DanglingPolicy::Renormalize, &mut y)
            .unwrap();
        assert!((l1_norm(&y) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rank_step_teleport_checks_vector_length() {
        let m = chain_with_dangling();
        let x = [0.2, 0.3, 0.5];
        let mut y = vec![0.0; 3];
        assert!(m
            .rank_step_into(&x, &[1.0], DanglingPolicy::Teleport, &mut y)
            .is_err());
    }

    #[test]
    fn fully_stochastic_has_no_dangling() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let m = StochasticMatrix::from_adjacency(coo.to_csr()).unwrap();
        assert!(m.is_fully_stochastic());
        assert_eq!(m.n(), 2);
    }
}
