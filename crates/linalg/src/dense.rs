//! Small row-major dense matrices.
//!
//! Dense matrices serve two roles in this workspace: the paper's worked
//! example (Section 2.3) is specified as small dense matrices, and the test
//! suites use dense reference implementations to validate the sparse kernels.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::{LinalgError, Result};
use crate::vec_ops;

/// A row-major dense matrix of `f64`.
///
/// # Example
/// ```
/// use lmm_linalg::DenseMatrix;
/// # fn main() -> Result<(), lmm_linalg::LinalgError> {
/// let m = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]])?;
/// assert_eq!(m.get(0, 1), 1.0);
/// assert_eq!(m.apply(&[2.0, 3.0])?, vec![3.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Errors
    /// Returns [`LinalgError::Empty`] if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::Empty);
        }
        Ok(Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        })
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// # Errors
    /// Returns [`LinalgError::Empty`] if `n == 0`.
    pub fn identity(n: usize) -> Result<Self> {
        let mut m = Self::zeros(n, n)?;
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        Ok(m)
    }

    /// Builds a matrix from a slice of equally-long rows.
    ///
    /// # Errors
    /// Returns [`LinalgError::Empty`] when there are no rows or the first row
    /// is empty, and [`LinalgError::DimensionMismatch`] when rows have
    /// differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    operation: "DenseMatrix::from_rows",
                    expected: cols,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` when the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= self.rows()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns a mutable view of row `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns the underlying row-major data slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix-vector product `y = M x`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() != cols`.
    pub fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "DenseMatrix::apply",
                expected: self.cols,
                found: x.len(),
            });
        }
        Ok((0..self.rows)
            .map(|i| vec_ops::dot(self.row(i), x))
            .collect())
    }

    /// Transposed matrix-vector product `y = Mᵀ x` (the direction used by
    /// stationary-distribution iterations on row-stochastic matrices).
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() != rows`.
    pub fn apply_transpose(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "DenseMatrix::apply_transpose",
                expected: self.rows,
                found: x.len(),
            });
        }
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi != 0.0 {
                vec_ops::axpy(xi, self.row(i), &mut y);
            }
        }
        Ok(y)
    }

    /// Matrix-matrix product `self * other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "DenseMatrix::matmul",
                expected: self.cols,
                found: other.rows,
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, other.cols)?;
        for i in 0..self.rows {
            for k in 0..self.cols {
                let v = self.get(i, k);
                if v == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    let cur = out.get(i, j);
                    out.set(i, j, cur + v * other.get(k, j));
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose.
    #[must_use]
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix {
            rows: self.cols,
            cols: self.rows,
            data: vec![0.0; self.data.len()],
        };
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Sum of each row.
    #[must_use]
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }

    /// Checks that every row sums to 1 within `tol` and all entries are
    /// finite and non-negative.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotStochastic`] or
    /// [`LinalgError::InvalidProbability`] accordingly.
    pub fn check_row_stochastic(&self, tol: f64) -> Result<()> {
        for i in 0..self.rows {
            let mut sum = 0.0;
            for (j, &v) in self.row(i).iter().enumerate() {
                if !v.is_finite() || v < 0.0 {
                    return Err(LinalgError::InvalidProbability {
                        index: i * self.cols + j,
                        value: v,
                    });
                }
                sum += v;
            }
            if (sum - 1.0).abs() > tol {
                return Err(LinalgError::NotStochastic { row: i, sum });
            }
        }
        Ok(())
    }

    /// Divides every row by its sum, leaving all-zero rows untouched, and
    /// returns the indices of those all-zero (dangling) rows.
    pub fn normalize_rows(&mut self) -> Vec<usize> {
        let mut dangling = Vec::new();
        for i in 0..self.rows {
            let row = self.row_mut(i);
            let sum: f64 = row.iter().sum();
            if sum > 0.0 {
                for v in row {
                    *v /= sum;
                }
            } else {
                dangling.push(i);
            }
        }
        dangling
    }

    /// Converts to compressed sparse row form, dropping exact zeros.
    #[must_use]
    pub fn to_csr(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let v = self.get(i, j);
                if v != 0.0 {
                    coo.push(i, j, v);
                }
            }
        }
        coo.to_csr()
    }
}

impl std::fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:8.4}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let m = sample();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }

    #[test]
    fn empty_rejected() {
        assert!(DenseMatrix::from_rows(&[]).is_err());
        assert!(DenseMatrix::zeros(0, 3).is_err());
    }

    #[test]
    fn apply_matches_manual() {
        let m = sample();
        let y = m.apply(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn apply_transpose_matches_transpose_apply() {
        let m = sample();
        let x = [2.0, -1.0];
        let via_tr = m.transpose().apply(&x).unwrap();
        let direct = m.apply_transpose(&x).unwrap();
        assert_eq!(via_tr, direct);
    }

    #[test]
    fn apply_dimension_checked() {
        let m = sample();
        assert!(m.apply(&[1.0]).is_err());
        assert!(m.apply_transpose(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn matmul_identity() {
        let m = sample();
        let id = DenseMatrix::identity(3).unwrap();
        assert_eq!(m.matmul(&id).unwrap(), m);
    }

    #[test]
    fn matmul_known() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]).unwrap()
        );
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn normalize_rows_reports_dangling() {
        let mut m =
            DenseMatrix::from_rows(&[vec![2.0, 2.0], vec![0.0, 0.0], vec![1.0, 3.0]]).unwrap();
        let dangling = m.normalize_rows();
        assert_eq!(dangling, vec![1]);
        assert_eq!(m.row(0), &[0.5, 0.5]);
        assert_eq!(m.row(2), &[0.25, 0.75]);
    }

    #[test]
    fn check_row_stochastic_works() {
        let good = DenseMatrix::from_rows(&[vec![0.5, 0.5], vec![1.0, 0.0]]).unwrap();
        assert!(good.check_row_stochastic(1e-12).is_ok());
        let bad = DenseMatrix::from_rows(&[vec![0.5, 0.6]]).unwrap();
        assert!(matches!(
            bad.check_row_stochastic(1e-12),
            Err(LinalgError::NotStochastic { row: 0, .. })
        ));
    }

    #[test]
    fn to_csr_roundtrip_values() {
        let m = sample();
        let csr = m.to_csr();
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                assert_eq!(csr.get(i, j), m.get(i, j));
            }
        }
    }

    #[test]
    fn display_nonempty() {
        let s = sample().to_string();
        assert!(s.contains("1.0000"));
    }
}
