//! Coordinate-format (triplet) sparse matrix builder.
//!
//! [`CooMatrix`] is the mutable staging form used while assembling a sparse
//! matrix (for example while scanning the edges of a web graph); it converts
//! into the immutable compute-oriented [`CsrMatrix`] with
//! [`CooMatrix::to_csr`], summing duplicate entries in the process.

use crate::csr::CsrMatrix;

/// A sparse matrix under construction, stored as `(row, col, value)` triplets.
///
/// Duplicate `(row, col)` pairs are allowed and are summed during conversion
/// to CSR — convenient when counting multi-edges such as SiteLinks.
///
/// # Example
/// ```
/// use lmm_linalg::CooMatrix;
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 1, 1.0);
/// coo.push(0, 1, 2.0); // duplicate: summed
/// let csr = coo.to_csr();
/// assert_eq!(csr.get(0, 1), 3.0);
/// assert_eq!(csr.nnz(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Creates an empty `nrows x ncols` triplet matrix.
    #[must_use]
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty triplet matrix with preallocated capacity.
    #[must_use]
    pub fn with_capacity(nrows: usize, ncols: usize, capacity: usize) -> Self {
        Self {
            nrows,
            ncols,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates counted individually).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no triplet has been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends a triplet.
    ///
    /// # Panics
    /// Panics if `row` or `col` is out of bounds — triplet pushes happen in
    /// tight graph-assembly loops where an early panic is preferable to a
    /// deferred, harder-to-attribute error at conversion time.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.nrows && col < self.ncols,
            "triplet ({row}, {col}) out of bounds for {}x{} matrix",
            self.nrows,
            self.ncols
        );
        self.entries.push((row, col, value));
    }

    /// Iterates over the raw triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Converts to compressed sparse row form.
    ///
    /// Duplicate `(row, col)` entries are summed; entries that sum to exactly
    /// zero are kept (callers that want to drop them can use
    /// [`CsrMatrix::map_values`] followed by pruning, or avoid pushing them).
    /// Column indices within each row are sorted ascending.
    #[must_use]
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row, then sort each row segment by column and sum
        // duplicates. O(nnz log nnz) worst case, no hashing.
        let mut row_counts = vec![0usize; self.nrows + 1];
        for &(r, _, _) in &self.entries {
            row_counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut cols = vec![0usize; self.entries.len()];
        let mut vals = vec![0.0f64; self.entries.len()];
        let mut cursor = row_counts.clone();
        for &(r, c, v) in &self.entries {
            let pos = cursor[r];
            cols[pos] = c;
            vals[pos] = v;
            cursor[r] += 1;
        }

        let mut out_ptr = Vec::with_capacity(self.nrows + 1);
        let mut out_cols = Vec::with_capacity(self.entries.len());
        let mut out_vals = Vec::with_capacity(self.entries.len());
        out_ptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            let (start, end) = (row_counts[r], row_counts[r + 1]);
            scratch.clear();
            scratch.extend(
                cols[start..end]
                    .iter()
                    .copied()
                    .zip(vals[start..end].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                out_cols.push(c);
                out_vals.push(v);
                i = j;
            }
            out_ptr.push(out_cols.len());
        }
        CsrMatrix::from_raw_parts(self.nrows, self.ncols, out_ptr, out_cols, out_vals)
            .expect("COO conversion produces structurally valid CSR")
    }
}

impl Extend<(usize, usize, f64)> for CooMatrix {
    fn extend<T: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: T) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_converts() {
        let coo = CooMatrix::new(3, 4);
        assert!(coo.is_empty());
        let csr = coo.to_csr();
        assert_eq!(csr.nrows(), 3);
        assert_eq!(csr.ncols(), 4);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(1, 2, 1.5);
        coo.push(1, 2, 2.5);
        coo.push(1, 0, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(1, 2), 4.0);
        assert_eq!(csr.get(1, 0), 1.0);
    }

    #[test]
    fn columns_sorted_within_rows() {
        let mut coo = CooMatrix::new(1, 5);
        coo.push(0, 4, 4.0);
        coo.push(0, 0, 0.5);
        coo.push(0, 2, 2.0);
        let csr = coo.to_csr();
        let (cols, vals) = csr.row(0);
        assert_eq!(cols, &[0, 2, 4]);
        assert_eq!(vals, &[0.5, 2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_push_panics() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(2, 0, 1.0);
    }

    #[test]
    fn extend_works() {
        let mut coo = CooMatrix::new(2, 2);
        coo.extend(vec![(0, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(coo.len(), 2);
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 0), 1.0);
        assert_eq!(csr.get(1, 1), 2.0);
    }

    #[test]
    fn insertion_order_preserved_in_iter() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 1, 1.0);
        coo.push(0, 0, 2.0);
        let triplets: Vec<_> = coo.iter().collect();
        assert_eq!(triplets, vec![(1, 1, 1.0), (0, 0, 2.0)]);
    }
}
