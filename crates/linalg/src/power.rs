//! Power-method engine for stationary distributions and principal
//! eigenvectors.
//!
//! The engine is generic over [`LinearOperator`], the abstraction of "one
//! rank-iteration step" `y ← op(x)`. Explicit CSR matrices participate via
//! [`TransposeOperator`] (which computes `y = Mᵀ x`); the Layered Markov
//! Model supplies an implicit factored operator that never materializes the
//! global transition matrix.

use std::sync::Arc;

use crate::csr::CsrMatrix;
use crate::error::{LinalgError, Result};
use crate::operator::StationaryOperator;
use crate::vec_ops;
use lmm_par::ThreadPool;

/// One step of a rank iteration: `y ← op(x)` with `dim`-sized buffers.
///
/// Implementors must map non-negative L1-normalized input to non-negative
/// output; the power method re-normalizes the iterate each step, so mass
/// leakage (substochastic operators) is tolerated.
pub trait LinearOperator {
    /// Dimension of the operand vectors.
    fn dim(&self) -> usize;

    /// Computes `y = op(x)`.
    ///
    /// # Errors
    /// Implementations return [`LinalgError::DimensionMismatch`] for wrong
    /// buffer sizes.
    fn apply_to(&self, x: &[f64], y: &mut [f64]) -> Result<()>;
}

/// Adapter exposing `y = Mᵀ x` of a row-stochastic [`CsrMatrix`] as a
/// [`LinearOperator`] — the iteration map whose fixed point is the
/// stationary distribution.
#[derive(Debug, Clone, Copy)]
pub struct TransposeOperator<'a>(pub &'a CsrMatrix);

impl LinearOperator for TransposeOperator<'_> {
    fn dim(&self) -> usize {
        self.0.nrows()
    }

    fn apply_to(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        self.0.apply_transpose_into(x, y)
    }
}

impl<T: LinearOperator + ?Sized> LinearOperator for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn apply_to(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        (**self).apply_to(x, y)
    }
}

/// Convergence norm used for the power-method stopping rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResidualNorm {
    /// L1 distance between successive iterates (the PageRank convention).
    #[default]
    L1,
    /// L∞ distance between successive iterates.
    LInf,
}

/// Convergence acceleration applied on top of the plain power iteration.
///
/// Aitken Δ² extrapolation is the scheme from the PageRank-acceleration
/// literature the LMM paper cites as the "speed up centralized PageRank"
/// alternative (Kamvar, Haveliwala, Manning & Golub): periodically estimate
/// the fixed point from three successive iterates, component-wise:
///
/// ```text
/// x*_i = x_i(k−2) − (Δx_i)² / (Δ²x_i)
/// ```
///
/// The extrapolated vector is clamped to be non-negative and renormalized,
/// so the iteration stays inside the probability simplex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Acceleration {
    /// Plain power iteration.
    #[default]
    None,
    /// Aitken Δ² extrapolation every `period` iterations (sensible values
    /// are 5–20). The formula needs three consecutive *plain* iterates, so
    /// the effective period is clamped to at least 3; overly frequent
    /// extrapolation amplifies noise before the iterate settles into its
    /// dominant geometric decay.
    Aitken {
        /// Iterations between extrapolation steps (clamped to >= 3).
        period: usize,
    },
}

/// Options controlling the power iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerOptions {
    /// Stop when the residual drops below this tolerance.
    pub tol: f64,
    /// Abort (with [`LinalgError::NotConverged`]) after this many iterations.
    pub max_iters: usize,
    /// Norm used for the residual.
    pub norm: ResidualNorm,
    /// When `true` (the default), a failure to converge is an error; when
    /// `false` the best iterate so far is returned with
    /// `ConvergenceReport::converged == false`.
    pub require_convergence: bool,
    /// Convergence acceleration scheme.
    pub acceleration: Acceleration,
}

impl Default for PowerOptions {
    fn default() -> Self {
        Self {
            tol: 1e-12,
            max_iters: 10_000,
            norm: ResidualNorm::L1,
            require_convergence: true,
            acceleration: Acceleration::None,
        }
    }
}

impl PowerOptions {
    /// Options with a custom tolerance, other fields default.
    #[must_use]
    pub fn with_tol(tol: f64) -> Self {
        Self {
            tol,
            ..Self::default()
        }
    }

    /// Returns `self` with the given iteration budget.
    #[must_use]
    pub fn max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Returns `self` with `require_convergence` disabled: the best iterate
    /// is returned instead of an error when the budget is exhausted.
    #[must_use]
    pub fn best_effort(mut self) -> Self {
        self.require_convergence = false;
        self
    }

    /// Returns `self` with Aitken Δ² extrapolation every `period`
    /// iterations.
    #[must_use]
    pub fn aitken(mut self, period: usize) -> Self {
        self.acceleration = Acceleration::Aitken { period };
        self
    }
}

/// Outcome statistics of a power iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceReport {
    /// Number of iterations performed.
    pub iterations: usize,
    /// Residual between the last two iterates.
    pub residual: f64,
    /// Whether the residual dropped below the tolerance.
    pub converged: bool,
}

impl std::fmt::Display for ConvergenceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} after {} iterations (residual {:.3e})",
            if self.converged {
                "converged"
            } else {
                "NOT converged"
            },
            self.iterations,
            self.residual
        )
    }
}

/// Runs the power method `x ← normalize(op(x))` from `x0` until the residual
/// between successive iterates drops below `opts.tol`.
///
/// The iterate is L1-renormalized every step, so substochastic operators
/// (mass-leaking chains) converge to their normalized dominant eigenvector.
///
/// Normalization and residual sums use the fixed
/// [`vec_ops::PAR_CHUNK`]-gridded chunked kernels (shared with
/// [`power_method_pool`], so serial and pooled runs agree bit-for-bit).
/// For operators larger than one chunk the summation grouping differs
/// from a plain left-to-right fold in the last bits — converged results
/// agree to the tolerance, but exact golden score vectors recorded from
/// pre-chunked versions of this routine may differ in trailing ulps.
///
/// # Errors
/// * [`LinalgError::DimensionMismatch`] if `x0.len() != op.dim()`;
/// * [`LinalgError::NotDistribution`] if `x0` cannot be normalized or the
///   operator annihilates the iterate;
/// * [`LinalgError::NotConverged`] if the budget is exhausted while
///   `opts.require_convergence` is set.
pub fn power_method<O: LinearOperator>(
    op: O,
    x0: &[f64],
    opts: &PowerOptions,
) -> Result<(Vec<f64>, ConvergenceReport)> {
    power_method_pool(op, x0, opts, &ThreadPool::serial())
}

/// [`power_method`] with every `O(n)` vector pass (normalization,
/// residual, Aitken extrapolation) executed on `pool`.
///
/// The operator is responsible for its own parallelism (see
/// [`StationaryOperator`]); this function parallelizes the glue around it.
/// All vector arithmetic uses the fixed-grid chunked kernels of
/// [`vec_ops`], so the trajectory — and the returned vector — is
/// **bit-identical for every pool size**, including the serial pool (which
/// is exactly what [`power_method`] passes).
///
/// # Errors
/// See [`power_method`].
pub fn power_method_pool<O: LinearOperator>(
    op: O,
    x0: &[f64],
    opts: &PowerOptions,
    pool: &ThreadPool,
) -> Result<(Vec<f64>, ConvergenceReport)> {
    let n = op.dim();
    if x0.len() != n {
        return Err(LinalgError::DimensionMismatch {
            operation: "power_method x0",
            expected: n,
            found: x0.len(),
        });
    }
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    let mut x = x0.to_vec();
    vec_ops::normalize_l1_par(pool, &mut x)?;
    let mut y = vec![0.0; n];
    let mut residual = f64::INFINITY;
    // Trailing iterates for Aitken extrapolation (x_{k-2} and x_{k-1}).
    let mut history: Option<(Vec<f64>, Vec<f64>)> = match opts.acceleration {
        Acceleration::Aitken { .. } => Some((vec![0.0; n], vec![0.0; n])),
        Acceleration::None => None,
    };
    for iter in 1..=opts.max_iters {
        op.apply_to(&x, &mut y)?;
        vec_ops::normalize_l1_par(pool, &mut y)?;
        if let (Acceleration::Aitken { period }, Some((prev2, prev1))) =
            (opts.acceleration, &mut history)
        {
            // Three consecutive plain iterates are required, so never
            // extrapolate more often than every third step.
            let period = period.max(3);
            if iter >= 3 && iter % period == 0 {
                aitken_extrapolate(prev2, prev1, &mut y, pool);
            }
            std::mem::swap(prev2, prev1);
            prev1.copy_from_slice(&y);
        }
        residual = match opts.norm {
            ResidualNorm::L1 => vec_ops::l1_diff_par(pool, &x, &y),
            ResidualNorm::LInf => vec_ops::linf_diff_par(pool, &x, &y),
        };
        std::mem::swap(&mut x, &mut y);
        if residual < opts.tol {
            return Ok((
                x,
                ConvergenceReport {
                    iterations: iter,
                    residual,
                    converged: true,
                },
            ));
        }
    }
    let report = ConvergenceReport {
        iterations: opts.max_iters,
        residual,
        converged: false,
    };
    if opts.require_convergence {
        Err(LinalgError::NotConverged {
            iterations: report.iterations,
            residual: report.residual,
        })
    } else {
        Ok((x, report))
    }
}

/// Component-wise Aitken Δ² applied to the newest iterate `x_k` using the
/// two trailing iterates; the result replaces `x_k` in place, clamped to be
/// non-negative and L1-renormalized. Components whose second difference is
/// numerically zero (already converged to their geometric limit) are left
/// untouched. The extrapolation is elementwise and the renormalization
/// chunk-gridded, so the outcome is pool-size independent.
fn aitken_extrapolate(x_km2: &[f64], x_km1: &[f64], x_k: &mut [f64], pool: &ThreadPool) {
    const SECOND_DIFF_FLOOR: f64 = 1e-300;
    let mut star = vec![0.0; x_k.len()];
    pool.par_chunks_mut(&mut star, vec_ops::PAR_CHUNK, |offset, chunk| {
        for (i, out) in chunk.iter_mut().enumerate() {
            let (a, b, c) = (x_km2[offset + i], x_km1[offset + i], x_k[offset + i]);
            let d1 = b - a;
            let d2 = c - 2.0 * b + a;
            *out = if d2.abs() > SECOND_DIFF_FLOOR {
                let s = a - d1 * d1 / d2;
                if s.is_finite() {
                    s.max(0.0)
                } else {
                    c
                }
            } else {
                c
            };
        }
    });
    // Commit only if the extrapolated vector can be renormalized back onto
    // the simplex; otherwise keep the plain iterate.
    if vec_ops::normalize_l1_par(pool, &mut star).is_ok() {
        x_k.copy_from_slice(&star);
    }
}

/// Computes the stationary distribution of a row-stochastic matrix by power
/// iteration from the uniform vector.
///
/// The matrix should be primitive for the result to be the unique stationary
/// distribution; use [`crate::structure::is_primitive`] to check when in
/// doubt (a non-primitive matrix typically surfaces as
/// [`LinalgError::NotConverged`] here).
///
/// # Errors
/// See [`power_method`]; additionally [`LinalgError::NotSquare`] for a
/// non-square matrix.
pub fn stationary_distribution(
    m: &CsrMatrix,
    opts: &PowerOptions,
) -> Result<(Vec<f64>, ConvergenceReport)> {
    if !m.is_square() {
        return Err(LinalgError::NotSquare {
            rows: m.nrows(),
            cols: m.ncols(),
        });
    }
    let x0 = vec_ops::uniform(m.nrows());
    power_method(TransposeOperator(m), &x0, opts)
}

/// [`stationary_distribution`] through the pull-mode
/// [`StationaryOperator`]: `Mᵀ` is materialized once and every iteration
/// step runs as a parallel row-wise gather on `pool`, with the `O(n)`
/// vector passes parallelized as well.
///
/// The result is bit-identical to the serial [`stationary_distribution`]'s
/// matrix step for any pool size (see the [`crate::operator`] docs); only
/// the normalization's summation grouping differs from the historical
/// serial code, and only for chains larger than
/// [`vec_ops::PAR_CHUNK`].
///
/// # Errors
/// See [`power_method`]; additionally [`LinalgError::NotSquare`] for a
/// non-square matrix.
pub fn stationary_distribution_pool(
    m: &CsrMatrix,
    opts: &PowerOptions,
    pool: Arc<ThreadPool>,
) -> Result<(Vec<f64>, ConvergenceReport)> {
    if m.nrows() == 0 {
        return Err(LinalgError::Empty);
    }
    let op = StationaryOperator::new(m, Arc::clone(&pool))?;
    let x0 = vec_ops::uniform(m.nrows());
    power_method_pool(&op, &x0, opts, &pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::dense::DenseMatrix;

    fn csr_from_rows(rows: &[Vec<f64>]) -> CsrMatrix {
        DenseMatrix::from_rows(rows).unwrap().to_csr()
    }

    #[test]
    fn two_state_chain_known_stationary() {
        // P = [[0.9, 0.1], [0.5, 0.5]] => pi = (5/6, 1/6)
        let m = csr_from_rows(&[vec![0.9, 0.1], vec![0.5, 0.5]]);
        let (pi, rep) = stationary_distribution(&m, &PowerOptions::default()).unwrap();
        assert!(rep.converged);
        assert!((pi[0] - 5.0 / 6.0).abs() < 1e-10);
        assert!((pi[1] - 1.0 / 6.0).abs() < 1e-10);
    }

    #[test]
    fn three_state_chain_matches_hand_solution() {
        // The paper's Y matrix; hand-derived stationary vector
        // (0.2154, 0.4154, 0.3692) (see Section 2.3.3, Approach 4).
        let m = csr_from_rows(&[
            vec![0.1, 0.3, 0.6],
            vec![0.2, 0.4, 0.4],
            vec![0.3, 0.5, 0.2],
        ]);
        let (pi, _) = stationary_distribution(&m, &PowerOptions::default()).unwrap();
        assert!((pi[0] - 0.2154).abs() < 5e-5);
        assert!((pi[1] - 0.4154).abs() < 5e-5);
        assert!((pi[2] - 0.3692).abs() < 5e-5);
    }

    #[test]
    fn stationary_is_fixed_point() {
        let m = csr_from_rows(&[
            vec![0.2, 0.3, 0.5],
            vec![0.4, 0.1, 0.5],
            vec![0.25, 0.25, 0.5],
        ]);
        let (pi, _) = stationary_distribution(&m, &PowerOptions::default()).unwrap();
        let next = m.apply_transpose(&pi).unwrap();
        assert!(vec_ops::l1_diff(&pi, &next) < 1e-10);
    }

    #[test]
    fn periodic_chain_does_not_converge() {
        // Pure 2-cycle: period 2, power method oscillates.
        let m = csr_from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let opts = PowerOptions {
            max_iters: 500,
            ..PowerOptions::default()
        };
        let err = stationary_distribution(&m, &opts);
        // From the uniform start the iterate is immediately the fixed point
        // (uniform is stationary for the doubly-stochastic cycle), so seed a
        // non-uniform start to expose the oscillation.
        assert!(err.is_ok(), "uniform start happens to be stationary");
        let res = power_method(TransposeOperator(&m), &[0.9, 0.1], &opts);
        assert!(matches!(res, Err(LinalgError::NotConverged { .. })));
    }

    #[test]
    fn best_effort_returns_report() {
        let m = csr_from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let opts = PowerOptions {
            max_iters: 50,
            require_convergence: false,
            ..PowerOptions::default()
        };
        let (_, rep) = power_method(TransposeOperator(&m), &[0.9, 0.1], &opts).unwrap();
        assert!(!rep.converged);
        assert_eq!(rep.iterations, 50);
    }

    #[test]
    fn substochastic_operator_converges_after_renormalization() {
        // Leaky chain: row sums 0.5; normalized iterate still converges.
        let m = csr_from_rows(&[vec![0.25, 0.25], vec![0.25, 0.25]]);
        let (pi, rep) =
            power_method(TransposeOperator(&m), &[0.3, 0.7], &PowerOptions::default()).unwrap();
        assert!(rep.converged);
        assert!((pi[0] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn zero_operator_errors() {
        let coo = CooMatrix::new(2, 2);
        let m = coo.to_csr();
        let res = power_method(TransposeOperator(&m), &[0.5, 0.5], &PowerOptions::default());
        assert!(matches!(res, Err(LinalgError::NotDistribution { .. })));
    }

    #[test]
    fn x0_dimension_checked() {
        let m = csr_from_rows(&[vec![1.0]]);
        assert!(
            power_method(TransposeOperator(&m), &[0.5, 0.5], &PowerOptions::default()).is_err()
        );
    }

    #[test]
    fn linf_norm_stopping() {
        let m = csr_from_rows(&[vec![0.9, 0.1], vec![0.5, 0.5]]);
        let opts = PowerOptions {
            norm: ResidualNorm::LInf,
            ..PowerOptions::default()
        };
        let (pi, rep) = stationary_distribution(&m, &opts).unwrap();
        assert!(rep.converged);
        assert!((pi[0] - 5.0 / 6.0).abs() < 1e-10);
    }

    #[test]
    fn report_display() {
        let rep = ConvergenceReport {
            iterations: 12,
            residual: 1e-13,
            converged: true,
        };
        let s = rep.to_string();
        assert!(s.contains("12"));
        assert!(s.contains("converged"));
    }

    #[test]
    fn options_builders() {
        let o = PowerOptions::with_tol(1e-6)
            .max_iters(5)
            .best_effort()
            .aitken(10);
        assert_eq!(o.tol, 1e-6);
        assert_eq!(o.max_iters, 5);
        assert!(!o.require_convergence);
        assert_eq!(o.acceleration, Acceleration::Aitken { period: 10 });
    }

    /// A slowly mixing chain: two near-disconnected 2-cliques with weak,
    /// asymmetric coupling eps (A leaks to B twice as fast as B to A), so
    /// the clique-mass balance converges at rate ≈ (1 − 3·eps) and plain
    /// power iteration crawls.
    fn slow_chain(eps: f64) -> CsrMatrix {
        csr_from_rows(&[
            vec![0.7 - 2.0 * eps, 0.3, eps, eps],
            vec![0.6, 0.4 - 2.0 * eps, eps, eps],
            vec![eps / 2.0, eps / 2.0, 0.5 - eps, 0.5],
            vec![eps / 2.0, eps / 2.0, 0.3, 0.7 - eps],
        ])
    }

    #[test]
    fn aitken_reaches_same_fixed_point() {
        let m = slow_chain(0.01);
        let plain = stationary_distribution(&m, &PowerOptions::default())
            .unwrap()
            .0;
        let accel = stationary_distribution(&m, &PowerOptions::default().aitken(5))
            .unwrap()
            .0;
        assert!(vec_ops::l1_diff(&plain, &accel) < 1e-9);
    }

    #[test]
    fn aitken_converges_faster_on_slow_chains() {
        let m = slow_chain(0.001);
        let opts = PowerOptions::with_tol(1e-12).max_iters(100_000);
        let (_, plain) = stationary_distribution(&m, &opts).unwrap();
        let (_, accel) = stationary_distribution(&m, &opts.clone().aitken(5)).unwrap();
        assert!(
            accel.iterations < plain.iterations,
            "aitken {} vs plain {}",
            accel.iterations,
            plain.iterations
        );
    }

    #[test]
    fn aitken_handles_converged_components() {
        // A chain that converges almost immediately: extrapolation must not
        // divide by the (zero) second difference.
        let m = csr_from_rows(&[vec![0.5, 0.5], vec![0.5, 0.5]]);
        let (pi, rep) = stationary_distribution(&m, &PowerOptions::default().aitken(1)).unwrap();
        assert!(rep.converged);
        assert!((pi[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aitken_period_is_clamped_to_three() {
        // Periods 0..=2 would extrapolate from already-extrapolated
        // iterates; they are clamped and must still converge correctly.
        let m = slow_chain(0.01);
        let reference = stationary_distribution(&m, &PowerOptions::default())
            .unwrap()
            .0;
        for period in [0, 1, 2] {
            let (pi, rep) =
                stationary_distribution(&m, &PowerOptions::default().aitken(period)).unwrap();
            assert!(rep.converged, "period {period}");
            assert!(vec_ops::l1_diff(&pi, &reference) < 1e-9, "period {period}");
        }
    }
}
