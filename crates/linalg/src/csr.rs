//! Compressed sparse row matrices — the compute-oriented sparse format.
//!
//! [`CsrMatrix`] is immutable once built (construct via
//! [`CooMatrix`] or [`CsrMatrix::from_raw_parts`]) and
//! provides the matrix-vector kernels that dominate ranking computations:
//! `y = M x` and the transpose product `y = Mᵀ x` used by
//! stationary-distribution iterations.

use crate::coo::CooMatrix;
use crate::dense::DenseMatrix;
use crate::error::{LinalgError, Result};

/// An immutable sparse matrix in compressed sparse row format.
///
/// Invariants (enforced by [`CsrMatrix::from_raw_parts`]):
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`, non-decreasing,
///   `row_ptr[nrows] == col_idx.len() == values.len()`;
/// * within each row, column indices are strictly increasing and `< ncols`.
///
/// # Example
/// ```
/// use lmm_linalg::{CooMatrix, CsrMatrix};
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 0.5);
/// coo.push(0, 1, 0.5);
/// coo.push(1, 0, 1.0);
/// let m: CsrMatrix = coo.to_csr();
/// assert_eq!(m.apply(&[1.0, 2.0]).unwrap(), vec![1.5, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts, validating all invariants.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when the arrays are
    /// inconsistent and [`LinalgError::IndexOutOfBounds`] when a column index
    /// exceeds `ncols` or indices within a row are not strictly increasing.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != nrows + 1 {
            return Err(LinalgError::DimensionMismatch {
                operation: "CsrMatrix::from_raw_parts row_ptr",
                expected: nrows + 1,
                found: row_ptr.len(),
            });
        }
        if col_idx.len() != values.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "CsrMatrix::from_raw_parts col_idx/values",
                expected: col_idx.len(),
                found: values.len(),
            });
        }
        if row_ptr[0] != 0 || row_ptr[nrows] != col_idx.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "CsrMatrix::from_raw_parts row_ptr bounds",
                expected: col_idx.len(),
                found: row_ptr[nrows],
            });
        }
        for r in 0..nrows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(LinalgError::DimensionMismatch {
                    operation: "CsrMatrix::from_raw_parts row_ptr monotone",
                    expected: row_ptr[r],
                    found: row_ptr[r + 1],
                });
            }
            let mut prev: Option<usize> = None;
            for &c in &col_idx[row_ptr[r]..row_ptr[r + 1]] {
                if c >= ncols || prev.is_some_and(|p| p >= c) {
                    return Err(LinalgError::IndexOutOfBounds {
                        row: r,
                        col: c,
                        rows: nrows,
                        cols: ncols,
                    });
                }
                prev = Some(c);
            }
        }
        Ok(Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// The `n x n` identity matrix.
    ///
    /// # Errors
    /// Returns [`LinalgError::Empty`] when `n == 0`.
    pub fn identity(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        Self::from_raw_parts(n, n, (0..=n).collect(), (0..n).collect(), vec![1.0; n])
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Returns `true` when the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Number of explicitly stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the `(column indices, values)` slices of row `i`.
    ///
    /// # Panics
    /// Panics if `i >= nrows`.
    #[must_use]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        assert!(i < self.nrows, "row index out of bounds");
        let (s, e) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[s..e], &self.values[s..e])
    }

    /// Number of stored entries in row `i`.
    ///
    /// # Panics
    /// Panics if `i >= nrows`.
    #[must_use]
    pub fn row_nnz(&self, i: usize) -> usize {
        assert!(i < self.nrows, "row index out of bounds");
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Entry at `(row, col)`, `0.0` if not stored. Binary search in the row.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        let (cols, vals) = self.row(row);
        match cols.binary_search(&col) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates over all stored entries as `(row, col, value)` in row-major
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Matrix-vector product `y = M x`, writing into a caller-provided buffer.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() != ncols` or
    /// `y.len() != nrows`.
    pub fn apply_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.ncols {
            return Err(LinalgError::DimensionMismatch {
                operation: "CsrMatrix::apply x",
                expected: self.ncols,
                found: x.len(),
            });
        }
        if y.len() != self.nrows {
            return Err(LinalgError::DimensionMismatch {
                operation: "CsrMatrix::apply y",
                expected: self.nrows,
                found: y.len(),
            });
        }
        for (r, out) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c];
            }
            *out = acc;
        }
        Ok(())
    }

    /// Matrix-vector product `y = M x`.
    ///
    /// # Errors
    /// See [`CsrMatrix::apply_into`].
    pub fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.nrows];
        self.apply_into(x, &mut y)?;
        Ok(y)
    }

    /// Transposed product `y = Mᵀ x`, writing into a caller-provided buffer.
    ///
    /// This is the kernel of stationary-distribution iterations: for a
    /// row-stochastic `M`, the rank vector satisfies `π = Mᵀ π`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() != nrows` or
    /// `y.len() != ncols`.
    pub fn apply_transpose_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.nrows {
            return Err(LinalgError::DimensionMismatch {
                operation: "CsrMatrix::apply_transpose x",
                expected: self.nrows,
                found: x.len(),
            });
        }
        if y.len() != self.ncols {
            return Err(LinalgError::DimensionMismatch {
                operation: "CsrMatrix::apply_transpose y",
                expected: self.ncols,
                found: y.len(),
            });
        }
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                y[c] += v * xr;
            }
        }
        Ok(())
    }

    /// Transposed product `y = Mᵀ x`.
    ///
    /// # Errors
    /// See [`CsrMatrix::apply_transpose_into`].
    pub fn apply_transpose(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.ncols];
        self.apply_transpose_into(x, &mut y)?;
        Ok(y)
    }

    /// Returns the explicit transpose as a new CSR matrix.
    #[must_use]
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let mut cols = vec![0usize; self.nnz()];
        let mut vals = vec![0.0; self.nnz()];
        let mut cursor = counts.clone();
        for (r, c, v) in self.iter() {
            let pos = cursor[c];
            cols[pos] = r;
            vals[pos] = v;
            cursor[c] += 1;
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr: counts,
            col_idx: cols,
            values: vals,
        }
    }

    /// Sum of each row.
    #[must_use]
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.nrows)
            .map(|r| self.row(r).1.iter().sum())
            .collect()
    }

    /// Returns a copy with every stored value transformed by `f`.
    ///
    /// Entries mapped to exactly `0.0` remain stored; use
    /// [`CsrMatrix::prune_zeros`] to drop them.
    #[must_use]
    pub fn map_values<F: FnMut(f64) -> f64>(&self, mut f: F) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v = f(*v);
        }
        out
    }

    /// Returns a copy without entries whose value is exactly `0.0`.
    #[must_use]
    pub fn prune_zeros(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for (r, c, v) in self.iter() {
            if v != 0.0 {
                coo.push(r, c, v);
            }
        }
        coo.to_csr()
    }

    /// Divides every row by its sum, leaving all-zero rows untouched, and
    /// returns the indices of those all-zero (dangling) rows.
    #[must_use = "the returned dangling rows usually need explicit handling"]
    pub fn normalize_rows(mut self) -> (CsrMatrix, Vec<usize>) {
        let mut dangling = Vec::new();
        for r in 0..self.nrows {
            let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let sum: f64 = self.values[s..e].iter().sum();
            if sum > 0.0 {
                for v in &mut self.values[s..e] {
                    *v /= sum;
                }
            } else {
                dangling.push(r);
            }
        }
        (self, dangling)
    }

    /// Converts to a dense matrix (test/diagnostic use; O(rows*cols) memory).
    ///
    /// # Errors
    /// Returns [`LinalgError::Empty`] when either dimension is zero.
    pub fn to_dense(&self) -> Result<DenseMatrix> {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols)?;
        for (r, c, v) in self.iter() {
            d.set(r, c, v);
        }
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(2, 0, 3.0);
        coo.push(2, 1, 4.0);
        coo.to_csr()
    }

    #[test]
    fn structure_accessors() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 0);
        assert!(m.is_square());
    }

    #[test]
    fn get_with_binary_search() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 1), 4.0);
    }

    #[test]
    fn apply_matches_dense() {
        let m = sample();
        let d = m.to_dense().unwrap();
        let x = [1.0, -1.0, 0.5];
        assert_eq!(m.apply(&x).unwrap(), d.apply(&x).unwrap());
    }

    #[test]
    fn apply_transpose_matches_dense() {
        let m = sample();
        let d = m.to_dense().unwrap();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(
            m.apply_transpose(&x).unwrap(),
            d.apply_transpose(&x).unwrap()
        );
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = sample();
        let dt = m.to_dense().unwrap().transpose();
        assert_eq!(m.transpose().to_dense().unwrap(), dt);
    }

    #[test]
    fn normalize_rows_reports_dangling() {
        let (n, dangling) = sample().normalize_rows();
        assert_eq!(dangling, vec![1]);
        let sums = n.row_sums();
        assert!((sums[0] - 1.0).abs() < 1e-15);
        assert_eq!(sums[1], 0.0);
        assert!((sums[2] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn map_values_and_prune() {
        let m = sample().map_values(|v| if v > 2.0 { 0.0 } else { v });
        assert_eq!(m.nnz(), 4); // zeros kept
        let p = m.prune_zeros();
        assert_eq!(p.nnz(), 2);
        assert_eq!(p.get(2, 0), 0.0);
        assert_eq!(p.get(0, 2), 2.0);
    }

    #[test]
    fn identity_applies_as_noop() {
        let id = CsrMatrix::identity(4).unwrap();
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(id.apply(&x).unwrap(), x.to_vec());
        assert_eq!(id.apply_transpose(&x).unwrap(), x.to_vec());
    }

    #[test]
    fn from_raw_parts_validates() {
        // row_ptr wrong length
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // column out of bounds
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![2], vec![1.0]).is_err());
        // unsorted columns within a row
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err());
        // duplicate columns within a row
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).is_err());
        // valid
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![0, 2], vec![1.0, 1.0]).is_ok());
    }

    #[test]
    fn iter_row_major_order() {
        let m = sample();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(
            entries,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }

    #[test]
    fn dimension_errors_on_apply() {
        let m = sample();
        assert!(m.apply(&[1.0]).is_err());
        let mut small = vec![0.0; 2];
        assert!(m.apply_into(&[1.0, 2.0, 3.0], &mut small).is_err());
        assert!(m.apply_transpose(&[1.0]).is_err());
    }
}
