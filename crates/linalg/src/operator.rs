//! Pull-mode stationary iteration operator: `y = Mᵀ x` as a parallel
//! row-wise gather over a pre-materialized transpose.
//!
//! [`CsrMatrix::apply_transpose_into`] walks the rows of `M` and
//! *scatters* `y[col] += v · x[row]`. That loop is unparallelizable as
//! written — every thread would contend on every element of `y` — and its
//! writes hop around `y` in column order, defeating the cache. A
//! stationary computation applies the same `Mᵀ` hundreds of times, so
//! [`StationaryOperator`] pays the transpose **once** and turns every
//! subsequent step into a *gather*: row `r` of `Mᵀ` computes
//! `y[r] = Σ_k v_k · x[col_k]`, meaning
//!
//! * each output row is owned by exactly one task — no races, no atomics;
//! * the matrix values and column indices stream sequentially;
//! * the in-row accumulation order equals the serial scatter's
//!   per-destination order, so the result is **bit-identical** to
//!   [`CsrMatrix::apply_transpose_into`] at any thread count.
//!
//! Rows are grouped into chunks of approximately equal `nnz` (not equal
//! row counts — web graphs are skewed), and chunks are claimed dynamically
//! by the pool's workers.

use std::sync::Arc;

use crate::csr::CsrMatrix;
use crate::error::{LinalgError, Result};
use crate::power::LinearOperator;
use lmm_par::ThreadPool;

/// How many chunks to cut per worker; >1 lets dynamic claiming smooth out
/// nnz-estimation error and OS scheduling noise.
const CHUNKS_PER_WORKER: usize = 4;

/// The iteration map `x ↦ Mᵀ x` of a (square) transition matrix `M`,
/// evaluated as a parallel gather over the pre-materialized `Mᵀ`.
///
/// # Example
/// ```
/// use std::sync::Arc;
/// use lmm_linalg::{CooMatrix, LinearOperator, StationaryOperator};
/// use lmm_par::ThreadPool;
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 1, 1.0);
/// coo.push(1, 0, 1.0);
/// let m = coo.to_csr();
/// let op = StationaryOperator::new(&m, ThreadPool::shared(2)).unwrap();
/// let mut y = vec![0.0; 2];
/// op.apply_to(&[0.25, 0.75], &mut y).unwrap();
/// assert_eq!(y, m.apply_transpose(&[0.25, 0.75]).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct StationaryOperator {
    /// `Mᵀ`, whose row `r` lists the in-edges of state `r`.
    mt: CsrMatrix,
    /// Half-open output-row ranges of roughly equal nnz covering `0..n`.
    row_chunks: Vec<(usize, usize)>,
    pool: Arc<ThreadPool>,
}

impl StationaryOperator {
    /// Builds the operator for a square matrix `M`, materializing `Mᵀ`
    /// (one `O(nnz)` pass) and precomputing the nnz-balanced row chunks.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] for a non-square matrix.
    pub fn new(m: &CsrMatrix, pool: Arc<ThreadPool>) -> Result<Self> {
        Self::from_transpose(m.transpose(), pool)
    }

    /// Builds the operator from an already-transposed matrix (row `r` of
    /// `mt` holds the in-edges of state `r`).
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] for a non-square matrix —
    /// stationary operators act on square chains.
    pub fn from_transpose(mt: CsrMatrix, pool: Arc<ThreadPool>) -> Result<Self> {
        if !mt.is_square() {
            return Err(LinalgError::NotSquare {
                rows: mt.nrows(),
                cols: mt.ncols(),
            });
        }
        let row_chunks = nnz_balanced_chunks(&mt, pool.threads() * CHUNKS_PER_WORKER);
        Ok(Self {
            mt,
            row_chunks,
            pool,
        })
    }

    /// The pre-materialized transpose `Mᵀ`.
    #[must_use]
    pub fn transpose_matrix(&self) -> &CsrMatrix {
        &self.mt
    }

    /// The pool this operator gathers on.
    #[must_use]
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }
}

/// Splits `0..nrows` into at most `target` contiguous row ranges whose nnz
/// counts are as even as a greedy sweep can make them.
fn nnz_balanced_chunks(mt: &CsrMatrix, target: usize) -> Vec<(usize, usize)> {
    let n = mt.nrows();
    if n == 0 {
        return Vec::new();
    }
    let target = target.clamp(1, n);
    // Include the dense vector traffic (1 read of x per nnz, 1 write of y
    // per row) so empty-row stretches still cost something.
    let total_work = mt.nnz() + n;
    let per_chunk = total_work.div_ceil(target);
    let mut chunks = Vec::with_capacity(target);
    let mut start = 0usize;
    let mut acc = 0usize;
    for r in 0..n {
        acc += mt.row_nnz(r) + 1;
        if acc >= per_chunk {
            chunks.push((start, r + 1));
            start = r + 1;
            acc = 0;
        }
    }
    if start < n {
        chunks.push((start, n));
    }
    chunks
}

/// The gather kernel for one chunk of output rows: `y[r] = Σ v·x[col]`.
fn gather_rows(mt: &CsrMatrix, rows: (usize, usize), x: &[f64], y_chunk: &mut [f64]) {
    for (out, r) in y_chunk.iter_mut().zip(rows.0..rows.1) {
        let (cols, vals) = mt.row(r);
        let mut acc = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            acc += v * x[c];
        }
        *out = acc;
    }
}

impl LinearOperator for StationaryOperator {
    fn dim(&self) -> usize {
        self.mt.nrows()
    }

    fn apply_to(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        let n = self.mt.nrows();
        if x.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "StationaryOperator::apply x",
                expected: n,
                found: x.len(),
            });
        }
        if y.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "StationaryOperator::apply y",
                expected: n,
                found: y.len(),
            });
        }
        if self.pool.is_serial() || self.row_chunks.len() <= 1 {
            for &rows in &self.row_chunks {
                gather_rows(&self.mt, rows, x, &mut y[rows.0..rows.1]);
            }
            return Ok(());
        }
        // Hand each chunk its disjoint output slice; workers claim the
        // (range, slice) tasks dynamically.
        let mut pieces: Vec<((usize, usize), &mut [f64])> =
            Vec::with_capacity(self.row_chunks.len());
        let mut rest = y;
        let mut cursor = 0usize;
        for &rows in &self.row_chunks {
            let (piece, tail) = rest.split_at_mut(rows.1 - cursor);
            pieces.push((rows, piece));
            rest = tail;
            cursor = rows.1;
        }
        self.pool.par_tasks(pieces, |(rows, piece)| {
            gather_rows(&self.mt, rows, x, piece)
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn random_ish_matrix(n: usize, seed: u64) -> CsrMatrix {
        // Deterministic LCG-filled sparse matrix (no external RNG).
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut step = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            let fanout = (step() % 6) as usize;
            for _ in 0..fanout {
                let c = (step() as usize) % n;
                let v = (step() % 1000) as f64 / 100.0;
                coo.push(r, c, v);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn gather_matches_scatter_bitwise() {
        for (n, seed) in [(1usize, 1u64), (7, 2), (64, 3), (501, 4)] {
            let m = random_ish_matrix(n, seed);
            let x: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
            let mut scatter = vec![0.0; n];
            m.apply_transpose_into(&x, &mut scatter).unwrap();
            for threads in [1usize, 2, 4] {
                let op = StationaryOperator::new(&m, Arc::new(ThreadPool::new(threads))).unwrap();
                let mut gather = vec![0.0; n];
                op.apply_to(&x, &mut gather).unwrap();
                let same = scatter
                    .iter()
                    .zip(&gather)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "n={n} seed={seed} threads={threads}");
            }
        }
    }

    #[test]
    fn rejects_non_square() {
        let coo = CooMatrix::new(2, 3);
        assert!(matches!(
            StationaryOperator::new(&coo.to_csr(), Arc::new(ThreadPool::serial())),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn dimension_checks() {
        let m = random_ish_matrix(8, 9);
        let op = StationaryOperator::new(&m, Arc::new(ThreadPool::serial())).unwrap();
        assert_eq!(op.dim(), 8);
        let mut y = vec![0.0; 8];
        assert!(op.apply_to(&[0.0; 5], &mut y).is_err());
        let mut short = vec![0.0; 5];
        assert!(op.apply_to(&[0.0; 8], &mut short).is_err());
    }

    #[test]
    fn chunks_cover_rows_exactly() {
        for (n, seed, target) in [
            (1usize, 5u64, 4usize),
            (10, 6, 3),
            (100, 7, 16),
            (100, 8, 1),
        ] {
            let m = random_ish_matrix(n, seed).transpose();
            let chunks = nnz_balanced_chunks(&m, target);
            assert!(chunks.len() <= target.max(1));
            let mut cursor = 0;
            for &(s, e) in &chunks {
                assert_eq!(s, cursor);
                assert!(e > s);
                cursor = e;
            }
            assert_eq!(cursor, n);
        }
    }

    #[test]
    fn transpose_accessor_is_the_transpose() {
        let m = random_ish_matrix(12, 11);
        let op = StationaryOperator::new(&m, Arc::new(ThreadPool::serial())).unwrap();
        assert_eq!(op.transpose_matrix(), &m.transpose());
        assert_eq!(op.pool().threads(), 1);
    }
}
