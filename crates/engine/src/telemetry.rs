//! Execution telemetry: what every backend reports about a run, and the
//! sink abstraction the serving tier hooks monitoring into.

use std::fmt;
use std::sync::Mutex;
use std::time::Duration;

/// Metrics of one completed ranking run, uniform across backends.
///
/// Fields that a backend cannot produce stay at their zero defaults (e.g.
/// a single-process run has no network traffic; the flat baseline has no
/// site layer).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunTelemetry {
    /// Name of the backend that produced the run.
    pub backend: String,
    /// Snapshot epoch the run published (`0` when the run did not go
    /// through an engine's serving cache).
    pub epoch: u64,
    /// Iterations of the site-layer computation (power-method iterations,
    /// or distributed SiteRank rounds).
    pub site_iterations: usize,
    /// Final residual of the dominant stationary computation.
    pub residual: f64,
    /// Whether every convergence-checked computation converged.
    pub converged: bool,
    /// Total power iterations across all per-site local computations.
    pub total_local_iterations: usize,
    /// Largest per-site local iteration count (the parallel critical path).
    pub max_local_iterations: usize,
    /// Per-site computations actually (re)run — equals the site count for
    /// full runs; smaller for incremental refreshes.
    pub sites_recomputed: usize,
    /// Per-site computations reused from a previous run (incremental).
    pub sites_reused: usize,
    /// Of the recomputed sites, how many were rebuilt cold because their
    /// document set changed — grown existing sites plus appended new sites
    /// (structural-delta updates only).
    pub sites_grown: usize,
    /// Of the recomputed sites, how many were rebuilt cold because they
    /// lost pages to a removal (structural-delta updates only).
    pub sites_shrunk: usize,
    /// Sites tombstoned outright by the update — no local rank computed,
    /// their mass redistributed over the survivors.
    pub sites_removed: usize,
    /// Messages sent over the simulated network (distributed backends).
    pub messages: u64,
    /// Bytes sent over the simulated network (distributed backends).
    pub bytes: u64,
    /// Retransmissions caused by injected faults (distributed backends).
    pub retransmissions: u64,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
}

impl fmt::Display for RunTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} site iters (residual {:.2e}, {}), {} local iters (max {}), \
             {} msgs / {} bytes / {} retx, {:?}",
            self.backend,
            self.site_iterations,
            self.residual,
            if self.converged {
                "converged"
            } else {
                "NOT converged"
            },
            self.total_local_iterations,
            self.max_local_iterations,
            self.messages,
            self.bytes,
            self.retransmissions,
            self.wall,
        )
    }
}

/// Receives telemetry from every engine run.
///
/// Implementations must be thread-safe: distributed backends may report
/// from worker threads, and one sink is typically shared by many engines.
pub trait TelemetrySink: Send + Sync {
    /// Called once per completed ranking run.
    fn record(&self, telemetry: &RunTelemetry);
}

/// Discards all telemetry (the default sink).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn record(&self, _telemetry: &RunTelemetry) {}
}

/// Accumulates telemetry in memory — the in-process monitoring backend and
/// the test harness's window into engine internals.
#[derive(Debug, Default)]
pub struct MemorySink {
    runs: Mutex<Vec<RunTelemetry>>,
}

impl MemorySink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of every run recorded so far.
    ///
    /// # Panics
    /// Panics if a recording thread panicked while holding the lock.
    #[must_use]
    pub fn runs(&self) -> Vec<RunTelemetry> {
        self.runs.lock().expect("telemetry lock").clone()
    }

    /// Number of runs recorded.
    ///
    /// # Panics
    /// Panics if a recording thread panicked while holding the lock.
    #[must_use]
    pub fn len(&self) -> usize {
        self.runs.lock().expect("telemetry lock").len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TelemetrySink for MemorySink {
    fn record(&self, telemetry: &RunTelemetry) {
        self.runs
            .lock()
            .expect("telemetry lock")
            .push(telemetry.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_accumulates() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(&RunTelemetry {
            backend: "test".into(),
            ..RunTelemetry::default()
        });
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.runs()[0].backend, "test");
    }

    #[test]
    fn display_mentions_backend_and_convergence() {
        let t = RunTelemetry {
            backend: "layered".into(),
            converged: true,
            ..RunTelemetry::default()
        };
        let s = t.to_string();
        assert!(s.contains("layered"));
        assert!(s.contains("converged"));
    }
}
