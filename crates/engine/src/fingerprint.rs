//! Delta-composable graph fingerprints — the serving cache's key.
//!
//! A fingerprint must answer "is this the graph I ranked?" cheaply. The
//! previous design mixed every word *sequentially*, which made composition
//! impossible: applying a [`GraphDelta`](lmm_graph::delta::GraphDelta)
//! forced a full O(docs + links) re-hash on every
//! [`RankEngine::apply_delta`](crate::RankEngine::apply_delta) — the one
//! path that is supposed to be O(delta).
//!
//! This version hashes each element (one site assignment, one weighted
//! edge) through a strong 64-bit finalizer and combines the element hashes
//! with **wrapping addition**. Addition is commutative and invertible, so
//! the exact edge diff reported by
//! [`AppliedDelta`](lmm_graph::delta::AppliedDelta) composes in O(delta):
//! add the terms of added links and appended documents, subtract the terms
//! of removed links. [`GraphFingerprint::compose`] is *exact* — it equals
//! [`GraphFingerprint::of`] on the mutated graph bit for bit (a regression
//! test replays `exp_churn`'s mutation stream to keep that true).
//!
//! The structural counts are compared exactly; the hash covers content, so
//! a stale cache hit needs a 64-bit collision between same-shape graphs —
//! accepted as negligible for a serving cache, and
//! [`RankEngine::invalidate`](crate::RankEngine::invalidate) always forces
//! a recompute.

use lmm_graph::delta::AppliedDelta;
use lmm_graph::docgraph::DocGraph;

/// Domain tags keep assignment terms and edge terms from aliasing even for
/// identical index words.
const ASSIGN_TAG: u64 = 0x9e37_79b9_7f4a_7c15;
const EDGE_TAG: u64 = 0xc2b2_ae3d_27d4_eb4f;
/// Odd multipliers injecting each field into the pre-mix word bijectively
/// (and asymmetrically, so edge `(a, b)` never aliases `(b, a)`).
const P1: u64 = 0x8cb9_2ba7_2f3d_8dd7;
const P2: u64 = 0xff51_afd7_ed55_8ccd;
const P3: u64 = 0x2545_f491_4f6c_dd1d;

/// SplitMix64 finalizer: a well-mixed bijection on 64-bit words.
fn splitmix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Hash term of one document's site assignment.
fn assign_term(doc: usize, site: usize) -> u64 {
    splitmix64(ASSIGN_TAG ^ (doc as u64).wrapping_mul(P1) ^ (site as u64).wrapping_mul(P2))
}

/// Hash term of one weighted edge.
fn edge_term(src: usize, dst: usize, weight_bits: u64) -> u64 {
    splitmix64(
        EDGE_TAG
            ^ (src as u64).wrapping_mul(P1)
            ^ (dst as u64).wrapping_mul(P2)
            ^ weight_bits.wrapping_mul(P3),
    )
}

/// Cache key for a graph: exact structural counts plus a commutative sum of
/// per-element hashes over the site assignments and weighted edges. See the
/// module docs for why the combine must be commutative (delta composition)
/// and why per-element collisions are not a practical concern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphFingerprint {
    n_docs: usize,
    n_sites: usize,
    n_links: usize,
    hash: u64,
}

impl GraphFingerprint {
    /// Fingerprints a graph from scratch: one pass over the **live**
    /// assignments (walked through the member lists, which exclude
    /// tombstoned documents) and the adjacency (dead rows are empty, dead
    /// columns absent) — O(docs + links).
    ///
    /// Audit note: the hash must cover the *content* of the edge set and
    /// the site partition — not just the counts — or a same-shape recrawl
    /// with rewired links would serve a stale cached ranking. The collision
    /// regression tests below keep this honest. Tombstoned slots are
    /// *excluded* so removal terms can retire commutatively in
    /// [`compose`](Self::compose); two graphs differing only in dead-slot
    /// metadata hash alike, which is sound because dead slots carry no
    /// ranking-relevant state.
    #[must_use]
    pub fn of(graph: &DocGraph) -> Self {
        let mut hash = 0u64;
        for site in 0..graph.n_sites() {
            for doc in graph.docs_of_site(lmm_graph::SiteId(site)) {
                hash = hash.wrapping_add(assign_term(doc.index(), site));
            }
        }
        for (src, dst, v) in graph.adjacency().iter() {
            hash = hash.wrapping_add(edge_term(src, dst, v.to_bits()));
        }
        Self {
            n_docs: graph.n_docs(),
            n_sites: graph.n_sites(),
            n_links: graph.n_links(),
            hash,
        }
    }

    /// Folds an applied delta into the fingerprint in O(delta): the terms
    /// of appended documents and added links are added; the terms of
    /// removed links **and removed documents' assignments** are
    /// subtracted — removal composes commutatively exactly like addition,
    /// because the combine is a wrapping sum of per-element terms. The
    /// result is bit-identical to [`GraphFingerprint::of`] on the mutated
    /// graph, because [`AppliedDelta`] reports the *exact* induced edge
    /// diff (no-op mutations never appear; every link dropped by a
    /// tombstoned endpoint does appear) and [`DocGraph::apply`] creates
    /// every link with weight `1.0`.
    #[must_use]
    pub fn compose(&self, applied: &AppliedDelta) -> Self {
        let mut hash = self.hash;
        for (i, site) in applied.new_doc_sites.iter().enumerate() {
            hash = hash.wrapping_add(assign_term(self.n_docs + i, site.index()));
        }
        for (doc, site) in applied.removed_docs.iter().zip(&applied.removed_doc_sites) {
            hash = hash.wrapping_sub(assign_term(doc.index(), site.index()));
        }
        let unit = 1.0f64.to_bits();
        for &(src, dst) in &applied.links_added {
            hash = hash.wrapping_add(edge_term(src.index(), dst.index(), unit));
        }
        for &(src, dst) in &applied.links_removed {
            hash = hash.wrapping_sub(edge_term(src.index(), dst.index(), unit));
        }
        Self {
            n_docs: self.n_docs + applied.new_doc_sites.len(),
            n_sites: self.n_sites + applied.added_sites,
            n_links: self.n_links + applied.links_added.len() - applied.links_removed.len(),
            hash,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmm_graph::delta::GraphDelta;
    use lmm_graph::docgraph::DocGraphBuilder;
    use lmm_graph::{DocId, SiteId};

    /// 2 sites x 2 docs with a configurable edge list.
    fn graph_with_edges(edges: &[(usize, usize)]) -> DocGraph {
        let mut b = DocGraphBuilder::new();
        b.add_doc("a.org", "http://a.org/");
        b.add_doc("a.org", "http://a.org/1");
        b.add_doc("b.org", "http://b.org/");
        b.add_doc("b.org", "http://b.org/1");
        for &(f, t) in edges {
            b.add_link(DocId(f), DocId(t)).unwrap();
        }
        b.build()
    }

    #[test]
    fn identical_graphs_share_a_fingerprint() {
        let g = graph_with_edges(&[(0, 1), (1, 2), (2, 3)]);
        let h = graph_with_edges(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(GraphFingerprint::of(&g), GraphFingerprint::of(&h));
    }

    #[test]
    fn rewired_links_change_the_fingerprint_despite_equal_counts() {
        // Same docs, same sites, same number of links — only the wiring
        // differs. A count-only fingerprint would collide and serve the
        // stale ranking.
        let g = graph_with_edges(&[(0, 1), (1, 2), (2, 3)]);
        let h = graph_with_edges(&[(1, 0), (1, 2), (2, 3)]);
        assert_eq!(g.n_docs(), h.n_docs());
        assert_eq!(g.n_links(), h.n_links());
        assert_ne!(GraphFingerprint::of(&g), GraphFingerprint::of(&h));
    }

    #[test]
    fn reversed_edge_direction_changes_the_fingerprint() {
        // The commutative combine must not make the edge term symmetric.
        let g = graph_with_edges(&[(0, 1)]);
        let h = graph_with_edges(&[(1, 0)]);
        assert_ne!(GraphFingerprint::of(&g), GraphFingerprint::of(&h));
    }

    #[test]
    fn repartitioned_sites_change_the_fingerprint_despite_equal_counts() {
        let edges = [(0, 1), (1, 2), (2, 3)];
        let g = graph_with_edges(&edges);
        // Same edge set, same site count — but doc 1 now belongs to b.org.
        let mut b = DocGraphBuilder::new();
        b.add_doc("a.org", "http://a.org/");
        b.add_doc("b.org", "http://a.org/1");
        b.add_doc("b.org", "http://b.org/");
        b.add_doc("a.org", "http://b.org/1");
        for (f, t) in edges {
            b.add_link(DocId(f), DocId(t)).unwrap();
        }
        let h = b.build();
        assert_eq!(g.n_sites(), h.n_sites());
        assert_eq!(g.n_links(), h.n_links());
        assert_ne!(GraphFingerprint::of(&g), GraphFingerprint::of(&h));
    }

    #[test]
    fn composition_is_exact_for_a_mixed_delta() {
        let g = graph_with_edges(&[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let base = GraphFingerprint::of(&g);
        let mut d = GraphDelta::for_graph(&g);
        d.remove_link(DocId(0), DocId(1)).unwrap();
        d.add_link(DocId(1), DocId(0)).unwrap();
        let p = d.add_page(SiteId(1), "http://b.org/2").unwrap();
        d.add_link(DocId(2), p).unwrap();
        let s = d.add_site("c.org");
        let c = d.add_page(s, "http://c.org/").unwrap();
        d.add_link(p, c).unwrap();
        let (h, applied) = g.apply(&d).unwrap();
        assert_eq!(base.compose(&applied), GraphFingerprint::of(&h));
    }

    #[test]
    fn composition_with_noop_mutations_is_identity() {
        let g = graph_with_edges(&[(0, 1), (1, 2)]);
        let base = GraphFingerprint::of(&g);
        let mut d = GraphDelta::for_graph(&g);
        d.remove_link(DocId(1), DocId(0)).unwrap(); // absent: no-op
        d.add_link(DocId(0), DocId(1)).unwrap(); // present: no-op
        let (h, applied) = g.apply(&d).unwrap();
        assert_eq!(g, h);
        assert_eq!(base.compose(&applied), base);
    }

    #[test]
    fn composition_is_exact_for_removal_deltas() {
        let g = graph_with_edges(&[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let base = GraphFingerprint::of(&g);
        // Tombstone one page: its assignment term and both incident links
        // retire from the sum.
        let mut d = GraphDelta::for_graph(&g);
        d.remove_page(DocId(1)).unwrap();
        let (h, applied) = g.apply(&d).unwrap();
        assert_eq!(applied.removed_docs, vec![DocId(1)]);
        let composed = base.compose(&applied);
        assert_ne!(composed, base);
        assert_eq!(composed, GraphFingerprint::of(&h));
        // Tombstone a whole site on top — composition chains.
        let mut d2 = GraphDelta::for_graph(&h);
        d2.remove_site(SiteId(1)).unwrap();
        let (i, applied2) = h.apply(&d2).unwrap();
        assert_eq!(composed.compose(&applied2), GraphFingerprint::of(&i));
        // A mixed remove + grow delta also composes exactly.
        let mut d3 = GraphDelta::for_graph(&g);
        d3.remove_page(DocId(3)).unwrap();
        let p = d3.add_page(SiteId(0), "http://a.org/2").unwrap();
        d3.add_link(DocId(0), p).unwrap();
        let (j, applied3) = g.apply(&d3).unwrap();
        assert_eq!(base.compose(&applied3), GraphFingerprint::of(&j));
    }

    #[test]
    fn cancelled_additions_compose_to_the_same_fingerprint() {
        // add-page-then-remove-page in one delta: the slot is appended
        // dead, so its terms cancel and only the slot count moves.
        let g = graph_with_edges(&[(0, 1), (2, 3)]);
        let base = GraphFingerprint::of(&g);
        let mut d = GraphDelta::for_graph(&g);
        let doomed = d.add_page(SiteId(0), "http://a.org/doomed").unwrap();
        d.add_link(DocId(0), doomed).unwrap();
        d.remove_page(doomed).unwrap();
        let (h, applied) = g.apply(&d).unwrap();
        let composed = base.compose(&applied);
        assert_eq!(composed, GraphFingerprint::of(&h));
        assert_eq!(composed.hash, base.hash, "dead slot leaves no term");
        assert_eq!(composed.n_docs, base.n_docs + 1, "but the slot count moved");
    }

    #[test]
    fn net_zero_rewire_still_changes_the_fingerprint() {
        // A cross-site rewire with unchanged per-pair counts keeps every
        // ranking layer fresh, yet the graph differs — the composed
        // fingerprint must differ too, and match a from-scratch hash.
        let g = graph_with_edges(&[(1, 2), (0, 1), (2, 3)]);
        let base = GraphFingerprint::of(&g);
        let mut d = GraphDelta::for_graph(&g);
        d.remove_link(DocId(1), DocId(2)).unwrap();
        d.add_link(DocId(0), DocId(3)).unwrap();
        let (h, applied) = g.apply(&d).unwrap();
        assert!(applied.is_empty(), "rank layers stay fresh");
        let composed = base.compose(&applied);
        assert_ne!(composed, base);
        assert_eq!(composed, GraphFingerprint::of(&h));
    }
}
