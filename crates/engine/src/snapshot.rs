//! Immutable rank snapshots — the hand-off unit between the engine and the
//! sharded serving tier (`lmm-serve`).
//!
//! Every fresh computation ([`RankEngine::rank`](crate::RankEngine::rank)
//! on a changed graph, or
//! [`RankEngine::apply_delta`](crate::RankEngine::apply_delta)) advances a
//! monotone **epoch** and produces a new [`RankSnapshot`]: the score
//! vector, the site layer, and the membership tables behind `Arc`s, plus a
//! [`Staleness`] record naming what changed since the previous epoch. A
//! serving tier pins a snapshot, answers every query of one response from
//! that single pin, and uses the staleness set to rebuild only the shards
//! a delta actually touched — everything else re-pins its existing
//! per-shard structures against the new epoch.
//!
//! The staleness contract is strict so re-pinning is sound: a site **not**
//! named by [`Staleness::Sites`] kept the scores of all its documents (and
//! its member list) *bit-identical* to the previous epoch. The incremental
//! layer guarantees this — untouched sites reuse their local vectors and
//! the SiteRank weight they are scaled by; any update that recomputes the
//! SiteRank (cross-site link changes, appended sites, self-loop site
//! graphs) reports [`Staleness::Full`] instead.

use std::sync::Arc;

use lmm_graph::{DocId, SiteId};

/// What changed between a snapshot and its predecessor (epoch − 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Staleness {
    /// Everything may have moved (first computation, full recompute, or
    /// any growth-only update that reran the SiteRank — a SiteRank change
    /// rescales every document of every site).
    Full,
    /// Only the named sites' documents changed (sorted, deduplicated);
    /// every other site's scores and membership are bit-identical to the
    /// previous epoch. An empty list means the ranking is unchanged (e.g.
    /// a no-op delta) even though the epoch advanced.
    Sites(Vec<usize>),
    /// Sites were removed (or pages removed) and the SiteRank was
    /// redistributed over the survivors. The named `sites` (sorted) and
    /// `removed_sites` changed **membership or within-site order** and
    /// must be rebuilt. Every *other* live site kept its member list and
    /// its within-site serving order (its local vector is untouched), but
    /// its absolute scores were rescaled by the redistributed SiteRank —
    /// so per-site orderings survive a cheap refresh while any cached
    /// absolute score or cross-site interleaving must be re-derived from
    /// this snapshot.
    Resized {
        /// Live sites whose membership or local ordering changed — grown,
        /// shrunk, changed, and appended live sites (sorted,
        /// deduplicated; slots appended dead by a cancelled same-delta
        /// addition have no content and are not named).
        sites: Vec<usize>,
        /// Sites tombstoned by this epoch (sorted); their documents are
        /// gone and point lookups for them must fail typed.
        removed_sites: Vec<usize>,
    },
}

/// One immutable, cheaply clonable ranking epoch: everything a serving
/// tier needs to answer `score` / `top_k` / `top_k_for_site` queries
/// without touching the engine again.
#[derive(Debug, Clone)]
pub struct RankSnapshot {
    epoch: u64,
    backend: String,
    scores: Arc<Vec<f64>>,
    site_rank: Option<Arc<Vec<f64>>>,
    site_members: Arc<Vec<Vec<DocId>>>,
    site_of: Arc<Vec<SiteId>>,
    staleness: Staleness,
}

impl RankSnapshot {
    /// Assembles a snapshot. Used by the engine; external `Ranker`
    /// implementations normally receive snapshots rather than build them.
    #[must_use]
    pub fn new(
        epoch: u64,
        backend: String,
        scores: Arc<Vec<f64>>,
        site_rank: Option<Arc<Vec<f64>>>,
        site_members: Arc<Vec<Vec<DocId>>>,
        site_of: Arc<Vec<SiteId>>,
        staleness: Staleness,
    ) -> Self {
        debug_assert_eq!(scores.len(), site_of.len());
        Self {
            epoch,
            backend,
            scores,
            site_rank,
            site_members,
            site_of,
            staleness,
        }
    }

    /// Monotone snapshot epoch (1 is the first computed ranking).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Name of the backend that produced the ranking.
    #[must_use]
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// Number of ranked documents.
    #[must_use]
    pub fn n_docs(&self) -> usize {
        self.scores.len()
    }

    /// Number of sites.
    #[must_use]
    pub fn n_sites(&self) -> usize {
        self.site_members.len()
    }

    /// Number of live (non-tombstoned) documents at this epoch — one pass
    /// over the member lists.
    #[must_use]
    pub fn n_live_docs(&self) -> usize {
        self.site_members.iter().map(Vec::len).sum()
    }

    /// The global score vector, indexed by `DocId`.
    #[must_use]
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// The SiteRank vector, when the backend computed a site layer.
    #[must_use]
    pub fn site_rank(&self) -> Option<&[f64]> {
        self.site_rank.as_deref().map(Vec::as_slice)
    }

    /// Member documents of one site (empty slice for an unknown site).
    #[must_use]
    pub fn members_of_site(&self, site: SiteId) -> &[DocId] {
        self.site_members
            .get(site.index())
            .map_or(&[], Vec::as_slice)
    }

    /// Owning site of one document.
    ///
    /// # Panics
    /// Panics for a document outside this snapshot.
    #[must_use]
    pub fn site_of(&self, doc: DocId) -> SiteId {
        self.site_of[doc.index()]
    }

    /// Site assignments of every document, indexed by `DocId`.
    #[must_use]
    pub fn site_assignments(&self) -> &[SiteId] {
        &self.site_of
    }

    /// What changed since epoch − 1.
    #[must_use]
    pub fn staleness(&self) -> &Staleness {
        &self.staleness
    }

    /// `true` when `doc` is ranked live at this epoch: in range and still
    /// a member of its site. Tombstoned documents keep their slot (and
    /// their last site assignment, for routing) but leave the member list,
    /// so liveness is a binary search in the owning site's members.
    #[must_use]
    pub fn is_live_doc(&self, doc: DocId) -> bool {
        let Some(&site) = self.site_of.get(doc.index()) else {
            return false;
        };
        self.members_of_site(site).binary_search(&doc).is_ok()
    }

    /// `true` when `site` is in range and tombstoned (no members). Live
    /// sites are never empty, so emptiness is the tombstone marker.
    #[must_use]
    pub fn is_tombstoned_site(&self, site: SiteId) -> bool {
        site.index() < self.n_sites() && self.members_of_site(site).is_empty()
    }

    /// Shared membership table — lets the engine re-pin it across
    /// membership-preserving deltas instead of re-materializing O(docs)
    /// tables per update.
    pub(crate) fn site_members_arc(&self) -> Arc<Vec<Vec<DocId>>> {
        Arc::clone(&self.site_members)
    }

    /// Shared assignment table (see [`Self::site_members_arc`]).
    pub(crate) fn site_of_arc(&self) -> Arc<Vec<SiteId>> {
        Arc::clone(&self.site_of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(staleness: Staleness) -> RankSnapshot {
        RankSnapshot::new(
            3,
            "test".into(),
            Arc::new(vec![0.25, 0.75]),
            None,
            Arc::new(vec![vec![DocId(0)], vec![DocId(1)]]),
            Arc::new(vec![SiteId(0), SiteId(1)]),
            staleness,
        )
    }

    #[test]
    fn accessors_expose_the_pinned_data() {
        let s = snapshot(Staleness::Sites(vec![1]));
        assert_eq!(s.epoch(), 3);
        assert_eq!(s.backend(), "test");
        assert_eq!(s.n_docs(), 2);
        assert_eq!(s.n_sites(), 2);
        assert_eq!(s.scores(), &[0.25, 0.75]);
        assert_eq!(s.members_of_site(SiteId(1)), &[DocId(1)]);
        assert!(s.members_of_site(SiteId(9)).is_empty());
        assert_eq!(s.site_of(DocId(1)), SiteId(1));
        assert_eq!(s.staleness(), &Staleness::Sites(vec![1]));
    }

    #[test]
    fn liveness_follows_membership() {
        // Doc 1's slot exists but it left site 1's member list: tombstoned.
        let s = RankSnapshot::new(
            3,
            "test".into(),
            Arc::new(vec![0.6, 0.0, 0.4]),
            None,
            Arc::new(vec![vec![DocId(0)], Vec::new(), vec![DocId(2)]]),
            Arc::new(vec![SiteId(0), SiteId(1), SiteId(2)]),
            Staleness::Resized {
                sites: vec![],
                removed_sites: vec![1],
            },
        );
        assert!(s.is_live_doc(DocId(0)));
        assert!(!s.is_live_doc(DocId(1)));
        assert!(!s.is_live_doc(DocId(9))); // out of range, not tombstoned
        assert!(s.is_tombstoned_site(SiteId(1)));
        assert!(!s.is_tombstoned_site(SiteId(0)));
        assert!(!s.is_tombstoned_site(SiteId(9)));
    }

    #[test]
    fn clones_share_storage() {
        let s = snapshot(Staleness::Full);
        let t = s.clone();
        assert!(std::ptr::eq(s.scores().as_ptr(), t.scores().as_ptr()));
    }
}
