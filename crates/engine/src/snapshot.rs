//! Immutable rank snapshots — the hand-off unit between the engine and the
//! sharded serving tier (`lmm-serve`).
//!
//! Every fresh computation ([`RankEngine::rank`](crate::RankEngine::rank)
//! on a changed graph, or
//! [`RankEngine::apply_delta`](crate::RankEngine::apply_delta)) advances a
//! monotone **epoch** and produces a new [`RankSnapshot`]: the score
//! vector, the site layer, and the membership tables behind `Arc`s, plus a
//! [`Staleness`] record naming what changed since the previous epoch. A
//! serving tier pins a snapshot, answers every query of one response from
//! that single pin, and uses the staleness set to rebuild only the shards
//! a delta actually touched — everything else re-pins its existing
//! per-shard structures against the new epoch.
//!
//! The staleness contract is strict so re-pinning is sound: a site **not**
//! named by [`Staleness::Sites`] kept the scores of all its documents (and
//! its member list) *bit-identical* to the previous epoch. The incremental
//! layer guarantees this — untouched sites reuse their local vectors and
//! the SiteRank weight they are scaled by; any update that recomputes the
//! SiteRank (cross-site link changes, appended sites, self-loop site
//! graphs) reports [`Staleness::Full`] instead.

use std::sync::Arc;

use lmm_graph::{DocId, SiteId};

/// What changed between a snapshot and its predecessor (epoch − 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Staleness {
    /// Everything may have moved (first computation, full recompute, or
    /// any growth-only update that reran the SiteRank — a SiteRank change
    /// rescales every document of every site).
    Full,
    /// Only the named sites' documents changed (sorted, deduplicated);
    /// every other site's scores and membership are bit-identical to the
    /// previous epoch. An empty list means the ranking is unchanged (e.g.
    /// a no-op delta) even though the epoch advanced.
    Sites(Vec<usize>),
    /// Sites were removed (or pages removed) and the SiteRank was
    /// redistributed over the survivors. The named `sites` (sorted) and
    /// `removed_sites` changed **membership or within-site order** and
    /// must be rebuilt. Every *other* live site kept its member list and
    /// its within-site serving order (its local vector is untouched), but
    /// its absolute scores were rescaled by the redistributed SiteRank —
    /// so per-site orderings survive a cheap refresh while any cached
    /// absolute score or cross-site interleaving must be re-derived from
    /// this snapshot.
    Resized {
        /// Live sites whose membership or local ordering changed — grown,
        /// shrunk, changed, and appended live sites (sorted,
        /// deduplicated; slots appended dead by a cancelled same-delta
        /// addition have no content and are not named).
        sites: Vec<usize>,
        /// Sites tombstoned by this epoch (sorted); their documents are
        /// gone and point lookups for them must fail typed.
        removed_sites: Vec<usize>,
    },
}

/// One immutable, cheaply clonable ranking epoch: everything a serving
/// tier needs to answer `score` / `top_k` / `top_k_for_site` queries
/// without touching the engine again.
#[derive(Debug, Clone)]
pub struct RankSnapshot {
    epoch: u64,
    backend: String,
    scores: Arc<Vec<f64>>,
    site_rank: Option<Arc<Vec<f64>>>,
    site_members: Arc<Vec<Vec<DocId>>>,
    site_of: Arc<Vec<SiteId>>,
    staleness: Staleness,
}

impl RankSnapshot {
    /// Assembles a snapshot. Used by the engine; external `Ranker`
    /// implementations normally receive snapshots rather than build them.
    #[must_use]
    pub fn new(
        epoch: u64,
        backend: String,
        scores: Arc<Vec<f64>>,
        site_rank: Option<Arc<Vec<f64>>>,
        site_members: Arc<Vec<Vec<DocId>>>,
        site_of: Arc<Vec<SiteId>>,
        staleness: Staleness,
    ) -> Self {
        debug_assert_eq!(scores.len(), site_of.len());
        Self {
            epoch,
            backend,
            scores,
            site_rank,
            site_members,
            site_of,
            staleness,
        }
    }

    /// Monotone snapshot epoch (1 is the first computed ranking).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Name of the backend that produced the ranking.
    #[must_use]
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// Number of ranked documents.
    #[must_use]
    pub fn n_docs(&self) -> usize {
        self.scores.len()
    }

    /// Number of sites.
    #[must_use]
    pub fn n_sites(&self) -> usize {
        self.site_members.len()
    }

    /// Number of live (non-tombstoned) documents at this epoch — one pass
    /// over the member lists.
    #[must_use]
    pub fn n_live_docs(&self) -> usize {
        self.site_members.iter().map(Vec::len).sum()
    }

    /// The global score vector, indexed by `DocId`.
    #[must_use]
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// The SiteRank vector, when the backend computed a site layer.
    #[must_use]
    pub fn site_rank(&self) -> Option<&[f64]> {
        self.site_rank.as_deref().map(Vec::as_slice)
    }

    /// Member documents of one site (empty slice for an unknown site).
    #[must_use]
    pub fn members_of_site(&self, site: SiteId) -> &[DocId] {
        self.site_members
            .get(site.index())
            .map_or(&[], Vec::as_slice)
    }

    /// Owning site of one document.
    ///
    /// # Panics
    /// Panics for a document outside this snapshot.
    #[must_use]
    pub fn site_of(&self, doc: DocId) -> SiteId {
        self.site_of[doc.index()]
    }

    /// Site assignments of every document, indexed by `DocId`.
    #[must_use]
    pub fn site_assignments(&self) -> &[SiteId] {
        &self.site_of
    }

    /// What changed since epoch − 1.
    #[must_use]
    pub fn staleness(&self) -> &Staleness {
        &self.staleness
    }

    /// `true` when `doc` is ranked live at this epoch: in range and still
    /// a member of its site. Tombstoned documents keep their slot (and
    /// their last site assignment, for routing) but leave the member list,
    /// so liveness is a binary search in the owning site's members.
    #[must_use]
    pub fn is_live_doc(&self, doc: DocId) -> bool {
        let Some(&site) = self.site_of.get(doc.index()) else {
            return false;
        };
        self.members_of_site(site).binary_search(&doc).is_ok()
    }

    /// `true` when `site` is in range and tombstoned (no members). Live
    /// sites are never empty, so emptiness is the tombstone marker.
    #[must_use]
    pub fn is_tombstoned_site(&self, site: SiteId) -> bool {
        site.index() < self.n_sites() && self.members_of_site(site).is_empty()
    }

    /// Exports the slice of this snapshot one shard needs: the member
    /// lists and scores of the sites in `sites`, plus the tombstoned
    /// document slots assigned to those sites (so a remote store can
    /// answer "gone" distinctly from "never existed"). The segment is the
    /// unit a cluster controller stages to a shard node over the wire; a
    /// node turns it back into a servable (sparse) snapshot with
    /// [`SnapshotSegment::to_snapshot`].
    ///
    /// Sites beyond this snapshot's range contribute nothing (the range is
    /// clamped), so callers can pass a shard map's last-shard range
    /// extended past the site count without special-casing.
    #[must_use]
    pub fn export_segment(&self, sites: std::ops::Range<usize>) -> SnapshotSegment {
        let sites = sites.start.min(self.n_sites())..sites.end.min(self.n_sites());
        let members: Vec<Vec<DocId>> = sites
            .clone()
            .map(|s| self.site_members[s].clone())
            .collect();
        let member_scores: Vec<Vec<f64>> = members
            .iter()
            .map(|docs| docs.iter().map(|d| self.scores[d.index()]).collect())
            .collect();
        // One pass over the assignment table finds the dead slots owned by
        // the covered sites: assigned in range, absent from the members.
        let tombstoned: Vec<(DocId, SiteId)> = self
            .site_of
            .iter()
            .enumerate()
            .filter_map(|(d, &site)| {
                let doc = DocId(d);
                (sites.contains(&site.index()) && !self.is_live_doc(doc)).then_some((doc, site))
            })
            .collect();
        SnapshotSegment {
            epoch: self.epoch,
            backend: self.backend.clone(),
            sites,
            n_docs: self.n_docs(),
            n_sites: self.n_sites(),
            members,
            member_scores,
            tombstoned,
        }
    }

    /// Shared membership table — lets the engine re-pin it across
    /// membership-preserving deltas instead of re-materializing O(docs)
    /// tables per update.
    pub(crate) fn site_members_arc(&self) -> Arc<Vec<Vec<DocId>>> {
        Arc::clone(&self.site_members)
    }

    /// Shared assignment table (see [`Self::site_members_arc`]).
    pub(crate) fn site_of_arc(&self) -> Arc<Vec<SiteId>> {
        Arc::clone(&self.site_of)
    }
}

/// One shard's slice of a [`RankSnapshot`]: everything a remote shard
/// store needs to serve its site range at one epoch, in a flat,
/// wire-serializable shape (plain vectors, no `Arc` sharing).
///
/// Scores are carried as `f64` values and round-trip bit-exactly through
/// `to_bits`/`from_bits`, so a store rebuilt from a shipped segment is
/// *bitwise* identical to one built from the full snapshot — the property
/// the cluster tier's parity benches assert.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotSegment {
    /// The snapshot epoch the segment was cut from.
    pub epoch: u64,
    /// Name of the backend that produced the ranking.
    pub backend: String,
    /// The covered site-id range (clamped to the snapshot's site count).
    pub sites: std::ops::Range<usize>,
    /// Total documents of the source snapshot (the full id space, so the
    /// reconstruction can distinguish out-of-range ids from dead slots).
    pub n_docs: usize,
    /// Total sites of the source snapshot.
    pub n_sites: usize,
    /// Member documents per covered site (empty = tombstoned site).
    pub members: Vec<Vec<DocId>>,
    /// Scores parallel to `members`.
    pub member_scores: Vec<Vec<f64>>,
    /// Dead document slots assigned to covered sites, with their last site
    /// assignment — needed so point lookups for removed documents answer
    /// typed "tombstoned" rather than "unknown".
    pub tombstoned: Vec<(DocId, SiteId)>,
}

impl SnapshotSegment {
    /// Live documents carried by this segment.
    #[must_use]
    pub fn n_live_docs(&self) -> usize {
        self.members.iter().map(Vec::len).sum()
    }

    /// Reconstructs a servable snapshot covering exactly this segment's
    /// sites. The result is **sparse**: score and membership tables have
    /// the source snapshot's full dimensions (so document/site ids resolve
    /// identically), but only the covered sites' entries are populated —
    /// queries for documents of *uncovered* sites are a routing error and
    /// answer as dead slots. Staleness is [`Staleness::Full`]; swap
    /// grading happens controller-side, before segments are cut.
    #[must_use]
    pub fn to_snapshot(&self) -> RankSnapshot {
        let mut scores = vec![0.0f64; self.n_docs];
        let mut site_members = vec![Vec::new(); self.n_sites];
        // Uncovered documents point at an out-of-range site, whose member
        // list is empty: `is_live_doc` correctly answers false.
        let mut site_of = vec![SiteId(usize::MAX); self.n_docs];
        for (offset, (docs, doc_scores)) in self.members.iter().zip(&self.member_scores).enumerate()
        {
            let site = self.sites.start + offset;
            for (&doc, &score) in docs.iter().zip(doc_scores) {
                scores[doc.index()] = score;
                site_of[doc.index()] = SiteId(site);
            }
            site_members[site] = docs.clone();
        }
        for &(doc, site) in &self.tombstoned {
            site_of[doc.index()] = site;
        }
        RankSnapshot::new(
            self.epoch,
            self.backend.clone(),
            Arc::new(scores),
            None,
            Arc::new(site_members),
            Arc::new(site_of),
            Staleness::Full,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(staleness: Staleness) -> RankSnapshot {
        RankSnapshot::new(
            3,
            "test".into(),
            Arc::new(vec![0.25, 0.75]),
            None,
            Arc::new(vec![vec![DocId(0)], vec![DocId(1)]]),
            Arc::new(vec![SiteId(0), SiteId(1)]),
            staleness,
        )
    }

    #[test]
    fn accessors_expose_the_pinned_data() {
        let s = snapshot(Staleness::Sites(vec![1]));
        assert_eq!(s.epoch(), 3);
        assert_eq!(s.backend(), "test");
        assert_eq!(s.n_docs(), 2);
        assert_eq!(s.n_sites(), 2);
        assert_eq!(s.scores(), &[0.25, 0.75]);
        assert_eq!(s.members_of_site(SiteId(1)), &[DocId(1)]);
        assert!(s.members_of_site(SiteId(9)).is_empty());
        assert_eq!(s.site_of(DocId(1)), SiteId(1));
        assert_eq!(s.staleness(), &Staleness::Sites(vec![1]));
    }

    #[test]
    fn liveness_follows_membership() {
        // Doc 1's slot exists but it left site 1's member list: tombstoned.
        let s = RankSnapshot::new(
            3,
            "test".into(),
            Arc::new(vec![0.6, 0.0, 0.4]),
            None,
            Arc::new(vec![vec![DocId(0)], Vec::new(), vec![DocId(2)]]),
            Arc::new(vec![SiteId(0), SiteId(1), SiteId(2)]),
            Staleness::Resized {
                sites: vec![],
                removed_sites: vec![1],
            },
        );
        assert!(s.is_live_doc(DocId(0)));
        assert!(!s.is_live_doc(DocId(1)));
        assert!(!s.is_live_doc(DocId(9))); // out of range, not tombstoned
        assert!(s.is_tombstoned_site(SiteId(1)));
        assert!(!s.is_tombstoned_site(SiteId(0)));
        assert!(!s.is_tombstoned_site(SiteId(9)));
    }

    #[test]
    fn clones_share_storage() {
        let s = snapshot(Staleness::Full);
        let t = s.clone();
        assert!(std::ptr::eq(s.scores().as_ptr(), t.scores().as_ptr()));
    }

    /// 3 sites: {0,1}, {} (tombstoned, doc 2 dead), {3,4}.
    fn tombstoned_snapshot() -> RankSnapshot {
        RankSnapshot::new(
            5,
            "test".into(),
            Arc::new(vec![0.3, 0.2, 0.0, 0.4, 0.1]),
            None,
            Arc::new(vec![
                vec![DocId(0), DocId(1)],
                Vec::new(),
                vec![DocId(3), DocId(4)],
            ]),
            Arc::new(vec![SiteId(0), SiteId(0), SiteId(1), SiteId(2), SiteId(2)]),
            Staleness::Full,
        )
    }

    #[test]
    fn segment_carries_the_covered_slice() {
        let s = tombstoned_snapshot();
        let seg = s.export_segment(1..3);
        assert_eq!(seg.epoch, 5);
        assert_eq!(seg.sites, 1..3);
        assert_eq!(seg.n_docs, 5);
        assert_eq!(seg.n_sites, 3);
        assert_eq!(seg.n_live_docs(), 2);
        assert_eq!(seg.members, vec![Vec::new(), vec![DocId(3), DocId(4)]]);
        assert_eq!(seg.member_scores, vec![Vec::new(), vec![0.4, 0.1]]);
        // Doc 2's slot is dead and owned by covered site 1.
        assert_eq!(seg.tombstoned, vec![(DocId(2), SiteId(1))]);
        // A segment of other sites does not carry it.
        assert!(s.export_segment(0..1).tombstoned.is_empty());
    }

    #[test]
    fn segment_range_is_clamped() {
        let s = tombstoned_snapshot();
        // The last shard's range is extended past the site count; the
        // export must clamp instead of panicking.
        let seg = s.export_segment(2..10);
        assert_eq!(seg.sites, 2..3);
        assert_eq!(seg.members.len(), 1);
    }

    #[test]
    fn reconstructed_snapshot_answers_like_the_source_on_covered_sites() {
        let s = tombstoned_snapshot();
        let seg = s.export_segment(1..3);
        let sparse = seg.to_snapshot();
        assert_eq!(sparse.epoch(), 5);
        assert_eq!(sparse.n_docs(), 5);
        assert_eq!(sparse.n_sites(), 3);
        // Covered sites: bitwise-equal scores, identical membership and
        // liveness — including the typed tombstone for doc 2.
        for doc in [3usize, 4] {
            assert_eq!(
                sparse.scores()[doc].to_bits(),
                s.scores()[doc].to_bits(),
                "score of doc {doc} must survive the segment bit-exactly"
            );
            assert!(sparse.is_live_doc(DocId(doc)));
            assert_eq!(sparse.site_of(DocId(doc)), s.site_of(DocId(doc)));
        }
        assert_eq!(
            sparse.members_of_site(SiteId(2)),
            s.members_of_site(SiteId(2))
        );
        assert!(sparse.is_tombstoned_site(SiteId(1)));
        assert!(!sparse.is_live_doc(DocId(2)));
        // Uncovered documents read as dead slots, never as live zeros.
        assert!(!sparse.is_live_doc(DocId(0)));
        // Out-of-range ids stay out of range.
        assert!(!sparse.is_live_doc(DocId(9)));
    }
}
